"""Smoke tests: the documented example scripts must run end to end.

Each example is executed as a real subprocess (``python examples/<x>.py``,
exactly as the README tells users to run it) so import rot, API drift or
a non-zero exit in the walkthroughs fails the suite instead of silently
shipping broken documentation.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, env=env, cwd=str(REPO),
        timeout=600)


@pytest.mark.slow
class TestExamples:
    def test_quickstart_runs(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        # the walkthrough prints one converged solve per solver
        assert "cg" in proc.stdout.lower()

    def test_fault_tolerance_runs(self):
        proc = run_example("fault_tolerance.py")
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout.lower()
        # all four walkthrough stages made it to their output
        assert "fault" in out
        assert "restart" in out or "checkpoint" in out

    def test_service_demo_runs(self):
        proc = run_example("service_demo.py")
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout.lower()
        # all four walkthrough stages made it to their output
        assert "deadline_exceeded" in out
        assert "bit-transparent" in out
        assert "cache" in out
        assert "all stages passed" in out
