"""Unit tests: utils (events, timing, validation, errors)."""

import time

import pytest

from repro.utils import (
    ConfigurationError,
    ConvergenceError,
    EventLog,
    ReproError,
    Timer,
    check_in,
    check_positive,
    check_type,
    require,
)


class TestEventLog:
    def test_record_and_count(self):
        log = EventLog()
        log.record("halo_exchange", 4, bytes=128)
        log.record("halo_exchange", 4, bytes=64)
        log.record("halo_exchange", 1)
        assert log.count("halo_exchange", 4) == 2
        assert log.count("halo_exchange", 1) == 1
        assert log.count_kind("halo_exchange") == 3

    def test_record_n(self):
        log = EventLog()
        log.record("matvec", n=5, cells=500)
        assert log.count("matvec") == 5
        assert log.total("matvec", "cells") == 500

    def test_total_by_key_and_kind(self):
        log = EventLog()
        log.record("halo_exchange", 1, bytes=100)
        log.record("halo_exchange", 8, bytes=900)
        assert log.total("halo_exchange", "bytes", key=1) == 100
        assert log.total("halo_exchange", "bytes", key=8) == 900
        assert log.total("halo_exchange", "bytes") == 1000

    def test_total_missing_is_zero(self):
        log = EventLog()
        assert log.total("nothing", "bytes") == 0.0
        assert log.count("nothing") == 0

    def test_keys_for(self):
        log = EventLog()
        log.record("halo_exchange", 8)
        log.record("halo_exchange", 1)
        log.record("other", None)
        assert log.keys_for("halo_exchange") == [1, 8]
        assert log.keys_for("other") == [None]

    def test_merge(self):
        a, b = EventLog(), EventLog()
        a.record("x", None, bytes=1)
        b.record("x", None, bytes=2)
        b.record("y", None)
        a.merge(b)
        assert a.count("x") == 2
        assert a.total("x", "bytes") == 3
        assert a.count("y") == 1

    def test_merged_static(self):
        logs = [EventLog() for _ in range(3)]
        for i, log in enumerate(logs):
            log.record("k", None, n=i + 1)
        merged = EventLog.merged(logs)
        assert merged.count("k") == 6

    def test_clear(self):
        log = EventLog()
        log.record("x", None, bytes=5)
        log.clear()
        assert log.count("x") == 0
        assert log.total("x", "bytes") == 0

    def test_as_dict_snapshot(self):
        log = EventLog()
        log.record("x", 1)
        d = log.as_dict()
        assert d[("x", 1)] == 1
        log.record("x", 1)
        assert d[("x", 1)] == 1  # snapshot, not a view


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        assert first >= 0.005
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_pluggable_clock_is_deterministic(self):
        from repro.resilience import VirtualClock

        clock = VirtualClock()
        t = Timer(clock=clock)
        t.start()
        clock.sleep(2.5)
        t.stop()
        assert t.elapsed == 2.5
        with t:
            clock.sleep(0.5)
        assert t.elapsed == 3.0  # accumulates across windows

    def test_default_clock_is_perf_counter(self):
        assert Timer().clock is time.perf_counter

    def test_reset_keeps_clock(self):
        ticks = iter(range(10))
        t = Timer(clock=lambda: float(next(ticks)))
        with t:
            pass
        t.reset()
        with t:
            pass
        assert t.elapsed == 1.0  # reads 2 -> 3 on the injected clock


class TestValidation:
    def test_require_passes(self):
        require(True, "never")

    def test_require_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")

    def test_check_positive(self):
        assert check_positive("x", 2) == 2
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)
        assert check_positive("x", 0, allow_zero=True) == 0
        with pytest.raises(ConfigurationError):
            check_positive("x", -1, allow_zero=True)

    def test_check_in(self):
        assert check_in("x", "a", ("a", "b")) == "a"
        with pytest.raises(ConfigurationError, match="must be one of"):
            check_in("x", "c", ("a", "b"))

    def test_check_type(self):
        assert check_type("x", 1, int) == 1
        with pytest.raises(ConfigurationError):
            check_type("x", "s", int)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ConvergenceError, RuntimeError)

    def test_convergence_error_carries_result(self):
        err = ConvergenceError("failed", result="partial")
        assert err.result == "partial"
