"""The service sweep's acceptance gates (``repro.harness.service_sweep``).

The three load-bearing claims: same-seed sweeps are byte-identical,
every request ends in exactly one classified terminal status (zero
hangs, zero unclassified failures), and every served solution passes
the differential oracle.  Ledger naming/schema and the CLI ride along.
"""

from __future__ import annotations

import json

import pytest

from repro.harness import service_sweep
from repro.service import STATUSES

pytestmark = pytest.mark.slow

SEED = 20170905
COUNT = 60


@pytest.fixture(scope="module")
def result():
    return service_sweep.run_service_sweep(SEED, COUNT)


class TestDeterminism:
    def test_same_seed_byte_identical(self, result):
        again = service_sweep.run_service_sweep(SEED, COUNT)
        assert again.to_json() == result.to_json()

    def test_request_generation_seeded(self):
        a = service_sweep.generate_requests(7, 20)
        b = service_sweep.generate_requests(7, 20)
        assert a == b
        assert a != service_sweep.generate_requests(8, 20)


class TestClassification:
    def test_every_request_terminal_and_classified(self, result):
        assert len(result.outcomes) == COUNT
        for o in result.outcomes:
            assert o["status"] in STATUSES, o
            if o["status"] == "failed":
                assert o["error_class"], o          # structured, never bare
            if o["status"] == "shed":
                assert o["shed_reason"] in ("quota", "queue_full")
            else:
                assert o["finish_s"] >= o["arrival_s"]

    def test_workload_exercises_every_status(self, result):
        seen = {o["status"] for o in result.outcomes}
        assert seen == set(STATUSES), sorted(seen)

    def test_sweep_passes_slo_and_oracle(self, result):
        assert result.violations == []
        assert result.passed and result.exit_code == 0
        assert result.oracle["violations"] == 0
        assert result.oracle["checked"] > 0

    def test_stats_shape(self, result):
        s = result.stats
        assert s["submitted"] == COUNT
        assert sum(s["by_status"].values()) == COUNT
        assert 0 <= s["shed_rate"] <= 1
        assert s["latency_p99_s"] >= s["latency_p50_s"] >= 0
        assert set(s["cache"]) >= {"hits", "misses", "evictions",
                                   "corruptions"}
        assert s["cache"]["hits"] > 0           # eigenbounds reuse happened


class TestLedgerIO:
    def test_schema_and_naming(self, result, tmp_path):
        path = service_sweep.write_ledger(result, tmp_path)
        assert path.name == "SERVICE_0.json"
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.service/v1"
        assert len(data["outcomes"]) == COUNT
        next_path = service_sweep.next_ledger_path(tmp_path)
        assert next_path.name == "SERVICE_1.json"

    def test_pinned_index(self, result, tmp_path):
        path = service_sweep.write_ledger(result, tmp_path, index=9)
        assert path.name == "SERVICE_9.json"

    def test_render_summarises(self, result):
        out = service_sweep.render(result)
        assert "PASS" in out
        for status in STATUSES:
            assert status in out


def test_committed_ledger_matches_regeneration():
    """The committed SERVICE_9.json is exactly what its pinned seed and
    request count regenerate — the byte-determinism acceptance gate."""
    from pathlib import Path

    pinned = Path(__file__).resolve().parents[1] / "SERVICE_9.json"
    data = json.loads(pinned.read_text())
    fresh = service_sweep.run_service_sweep(data["seed"], data["requests"])
    assert fresh.to_json() + "\n" == pinned.read_text()


def test_cli_main_writes_ledger(tmp_path, capsys):
    rc = service_sweep.main(["--seed", "3", "--requests", "30",
                             "--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert "ledger written to" in out
    data = json.loads((tmp_path / "SERVICE_0.json").read_text())
    assert data["seed"] == 3 and data["requests"] == 30
    assert rc in (0, 1)  # small unpinned runs may legitimately miss SLOs
    assert rc == (0 if data["violations"] == [] else 1)
