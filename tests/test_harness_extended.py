"""Tests: extended harness studies (depth sweep, future solvers, report)."""

import numpy as np
import pytest

from repro.harness.depth_sweep import DEPTHS, run_depth_sweep
from repro.harness.future_solvers import run_future_solvers
from repro.perfmodel import MACHINES, PIZ_DAINT, SPRUCE, TITAN


class TestDepthSweep:
    @pytest.fixture(scope="class")
    def titan(self):
        return run_depth_sweep(TITAN)

    def test_all_depths_present(self, titan):
        assert set(titan.seconds) == set(DEPTHS)
        for series in titan.seconds.values():
            assert len(series) == len(titan.node_counts)
            assert all(s > 0 for s in series)

    def test_gpu_best_depth_grows_with_scale(self, titan):
        bests = titan.best_depths()
        assert bests[-1] >= bests[0]
        assert titan.best_depth(8192) >= 8

    def test_cpu_plateaus_early(self):
        sweep = run_depth_sweep(SPRUCE, ranks_per_node=20)
        assert max(sweep.best_depths()) <= 8

    def test_depth_irrelevant_at_one_node(self):
        sweep = run_depth_sweep(PIZ_DAINT, node_counts=[1])
        vals = [sweep.seconds[d][0] for d in DEPTHS]
        # all depths within a few percent when communication is absent
        assert max(vals) / min(vals) < 1.05

    def test_main_prints(self, capsys):
        from repro.harness.depth_sweep import main
        text = main()
        assert "Titan" in text and "best depth" in text


class TestFutureSolvers:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_future_solvers()

    def test_lines(self, fig):
        assert set(fig.series) == {"CG", "CG-fused", "Deflated CG",
                                   "CPPCG - 16"}

    def test_cppcg_dominates_at_scale(self, fig):
        at_top = {label: fig.series[label][-1] for label in fig.series}
        assert min(at_top, key=at_top.get) == "CPPCG - 16"

    def test_fused_cg_crossover(self, fig):
        cg = fig.series["CG"]
        fused = fig.series["CG-fused"]
        signs = [f < c for f, c in zip(fused, cg)]
        assert not signs[0] and signs[-1]  # overhead first, win later

    def test_main_prints(self, capsys):
        from repro.harness.future_solvers import main
        text = main()
        assert "best" in text


class TestSolveResultHelpers:
    def test_total_iterations(self):
        from repro.mesh import Grid2D, decompose, Field
        from repro.solvers import SolveResult
        t = decompose(Grid2D(4, 4), 1)[0]
        r = SolveResult(x=Field(t, 1), solver="x", converged=True,
                        iterations=5, residual_norm=0.0,
                        initial_residual_norm=1.0, inner_iterations=50,
                        warmup_iterations=10)
        assert r.total_iterations == 65
        assert r.relative_residual == 0.0

    def test_zero_initial_residual(self):
        from repro.mesh import Grid2D, decompose, Field
        from repro.solvers import SolveResult
        t = decompose(Grid2D(4, 4), 1)[0]
        r = SolveResult(x=Field(t, 1), solver="x", converged=True,
                        iterations=0, residual_norm=0.0,
                        initial_residual_norm=0.0)
        assert r.relative_residual == 0.0


class TestFieldSummaryStr:
    def test_str_contains_quantities(self):
        from repro.physics import FieldSummary
        s = FieldSummary(volume=1.0, mass=2.0, internal_energy=3.0,
                         mean_temperature=4.0, max_temperature=5.0,
                         min_temperature=0.5)
        text = str(s)
        assert "mass=2" in text and "ie=3" in text
