"""Integration: every solver configuration, decomposed == serial.

This is the library's central correctness property — the distributed
algorithms (halo exchange at any depth, reduction placement, matrix powers,
truncated preconditioner strips at rank boundaries) must reproduce the
serial solve to floating-point reassociation tolerance.
"""

import numpy as np
import pytest

from repro.solvers import SolverOptions

from tests.helpers import (
    crooked_pipe_system,
    distributed_solve,
    reference_solution,
)

pytestmark = pytest.mark.distributed

N = 32
EPS = 1e-11


@pytest.fixture(scope="module")
def system():
    g, kx, ky, bg = crooked_pipe_system(N)
    return g, kx, ky, bg, reference_solution(kx, ky, bg)


CONFIGS = [
    pytest.param(SolverOptions(solver="cg", eps=EPS), id="cg"),
    pytest.param(SolverOptions(solver="cg", eps=EPS,
                               preconditioner="diagonal"), id="cg-diag"),
    pytest.param(SolverOptions(solver="cg", eps=EPS,
                               preconditioner="block_jacobi"), id="cg-block"),
    pytest.param(SolverOptions(solver="ppcg", eps=EPS, ppcg_inner_steps=8),
                 id="ppcg-1"),
    pytest.param(SolverOptions(solver="ppcg", eps=EPS, ppcg_inner_steps=8,
                               halo_depth=4), id="ppcg-4"),
    pytest.param(SolverOptions(solver="ppcg", eps=EPS, ppcg_inner_steps=12,
                               halo_depth=8), id="ppcg-8"),
    pytest.param(SolverOptions(solver="ppcg", eps=EPS, ppcg_inner_steps=8,
                               preconditioner="diagonal", halo_depth=4),
                 id="ppcg-4-diag"),
    pytest.param(SolverOptions(solver="ppcg", eps=EPS, ppcg_inner_steps=8,
                               preconditioner="block_jacobi"),
                 id="ppcg-1-block"),
    pytest.param(SolverOptions(solver="chebyshev", eps=1e-9), id="cheby"),
    pytest.param(SolverOptions(solver="chebyshev", eps=1e-9, halo_depth=4),
                 id="cheby-4"),
    pytest.param(SolverOptions(solver="jacobi", eps=1e-8, max_iters=200_000),
                 id="jacobi"),
]


@pytest.mark.parametrize("options", CONFIGS)
@pytest.mark.parametrize("size", [2, 4])
def test_distributed_matches_reference(system, options, size):
    g, kx, ky, bg, x_ref = system
    x, result = distributed_solve(g, kx, ky, bg, options, size)
    assert result.converged
    scale = np.abs(x_ref).max()
    tol = 1e-4 if options.solver == "jacobi" else 1e-7
    assert np.abs(x - x_ref).max() <= tol * scale


@pytest.mark.parametrize("size", [3, 6])
def test_uneven_decompositions(system, size):
    """Tile sizes that do not divide the mesh evenly still agree."""
    g, kx, ky, bg, x_ref = system
    options = SolverOptions(solver="ppcg", eps=EPS, ppcg_inner_steps=8,
                            halo_depth=4)
    x, result = distributed_solve(g, kx, ky, bg, options, size)
    assert result.converged
    assert np.abs(x - x_ref).max() <= 1e-7 * np.abs(x_ref).max()


def test_iteration_counts_decomposition_invariant(system):
    """Same iterates regardless of rank count (mod FP reassociation)."""
    g, kx, ky, bg, _ = system
    options = SolverOptions(solver="cg", eps=EPS)
    iters = []
    for size in (1, 2, 4, 6):
        _, result = distributed_solve(g, kx, ky, bg, options, size)
        iters.append(result.iterations)
    assert max(iters) - min(iters) <= 1


def test_block_jacobi_truncated_strips_at_rank_boundaries(system):
    """Rank-local strips change the preconditioner, not the answer."""
    g, kx, ky, bg, x_ref = system
    options = SolverOptions(solver="cg", eps=EPS,
                            preconditioner="block_jacobi")
    # py=2 splits strips across ranks in y -> truncated strips appear
    x, result = distributed_solve(g, kx, ky, bg, options, 4)
    assert result.converged
    assert np.abs(x - x_ref).max() <= 1e-7 * np.abs(x_ref).max()
