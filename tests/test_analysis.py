"""Tests for the ``repro.analysis`` communication-contract linter.

Covers: each rule on small synthetic positive/negative snippets, the
operator cost-table derivation, baseline and inline suppression, JSON
output, the tier-1 lint gate over ``src/repro``, the contract-presence
requirement for every solver module, and the dynamic ``--verify`` bridge
on a 32x32 crooked-pipe problem.
"""

from __future__ import annotations

import importlib
import inspect
import json
import pkgutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    analyze_paths,
    validate_contract,
    verify_contracts,
)
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main as cli_main
from repro.analysis.costmodel import build_operator_table
from repro.analysis.report import render_json

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def write_solver(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    """Drop a synthetic module into a ``solvers/`` dir (matches the
    default solver glob) and return its path."""
    d = tmp_path / "solvers"
    d.mkdir(exist_ok=True)
    path = d / name
    path.write_text(textwrap.dedent(source))
    return path


def run(tmp_path: Path, **kwargs):
    return analyze_paths([tmp_path], AnalysisConfig(root=tmp_path), **kwargs)


def codes(result) -> list[str]:
    return [f.code for f in result.findings]


# -- comm-contract rule (RPR001/002/003/008) -----------------------------------


def test_missing_contract_flagged(tmp_path):
    write_solver(tmp_path, """
        def my_solve(op, b):
            while True:
                op.apply(b, b)
    """)
    assert codes(run(tmp_path)) == ["RPR001"]


def test_conforming_module_is_clean(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                pw = op.dots([(b, b)])
                rz = op.dots([(b, b)])
                it += 1
    """)
    assert codes(run(tmp_path)) == []


def test_excess_allreduce_flagged(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                pw = op.dots([(b, b)])
                rz = op.dots([(b, b)])
                op.comm.allreduce(0.0)   # one too many
                it += 1
    """)
    assert codes(run(tmp_path)) == ["RPR002"]


def test_excess_halo_exchange_flagged(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 1, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                op.residual(b, b, out=b)   # second hidden exchange
                rr = op.dot(b, b)
                it += 1
    """)
    assert codes(run(tmp_path)) == ["RPR003"]


def test_recovery_scope_body_excluded(tmp_path):
    # Communication under ``with recovery_scope(...)`` is recovery-path
    # traffic (rerouted under RECOVERY_KIND at runtime), so the static
    # budget must not charge it — this is how ABFT replay in cg_solve
    # stays within the declared first-attempt contract.
    write_solver(tmp_path, """
        from repro.comm import recovery_scope

        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                pw = op.dots([(b, b)])
                rz = op.dots([(b, b)])
                if it % 8 == 0:
                    with recovery_scope(op.events):
                        op.residual(b, b, out=b)
                        check = op.dots([(b, b)])
                it += 1
    """)
    assert codes(run(tmp_path)) == []


def test_same_comm_outside_recovery_scope_flagged(tmp_path):
    # The identical replay block without recovery_scope exceeds both
    # budgets: the exclusion is keyed on the context manager, not on the
    # shape of the code.
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                pw = op.dots([(b, b)])
                rz = op.dots([(b, b)])
                if it % 8 == 0:
                    op.residual(b, b, out=b)
                    check = op.dots([(b, b)])
                it += 1
    """)
    assert sorted(codes(run(tmp_path))) == ["RPR002", "RPR003"]


def test_branches_count_max_not_sum(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 1, "halo_depth": 1}

        def my_solve(op, b, identity=True, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                if identity:
                    rz = op.dots([(b, b)])
                else:
                    rz = op.dots([(b, b), (b, b)])
                it += 1
    """)
    assert codes(run(tmp_path)) == []


def test_comm_in_nested_loop_is_unbounded(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 99, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            it = 0
            while it < max_iters:
                for _ in range(3):
                    op.comm.allreduce(0.0)
                it += 1
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR002"]
    assert "nested loop" in result.findings[0].message


def test_local_helper_followed_one_level(tmp_path):
    # The allreduce hidden inside a module-local helper class is charged
    # to the loop (mirrors DeflationSpace.project in deflated CG).
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 1, "halo_depth": 1}

        class Space:
            def project(self, v):
                return self.op.comm.allreduce(v)

        def my_solve(op, b, space, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                space.project(b)
                rz = op.dots([(b, b)])
                it += 1
    """)
    assert codes(run(tmp_path)) == ["RPR002"]


def test_preconditioner_receiver_ignored(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 0, "halo_depth": 1}

        class Expensive:
            def apply(self, r, z):
                return self.op.comm.allreduce(r)

        def my_solve(op, b, M, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                M.apply(b, b)     # preconditioner cost budgeted separately
                it += 1
    """)
    assert codes(run(tmp_path)) == []


def test_malformed_contract_flagged(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1,
                         "made_up_key": 7}

        def my_solve(op, b):
            while True:
                op.apply(b, b)
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR008"]
    assert "made_up_key" in result.findings[0].message


def test_non_literal_contract_flagged(tmp_path):
    write_solver(tmp_path, """
        N = 2
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": N, "halo_depth": 1}

        def my_solve(op, b):
            while True:
                op.apply(b, b)
    """)
    assert codes(run(tmp_path)) == ["RPR008"]


def test_hot_function_not_found_flagged(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1,
                         "hot_function": "Missing.run"}

        def my_solve(op, b):
            while True:
                op.apply(b, b)
    """)
    assert codes(run(tmp_path)) == ["RPR008"]


def test_delegating_contract_skips_static_loop_check(tmp_path):
    write_solver(tmp_path, """
        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1,
                         "hot_function": None, "delegates_to": "other.mod"}

        def my_solve(op, b):
            pass
    """)
    assert codes(run(tmp_path)) == []


def test_validate_contract_rejects_bad_values():
    base = {"solver": "x", "halo_exchanges_per_iter": 1,
            "allreduces_per_iter": 1, "halo_depth": 1}
    assert validate_contract(base) == []
    assert validate_contract({**base, "halo_depth": 0})
    assert validate_contract({**base, "allreduces_per_iter": -1})
    assert validate_contract({k: v for k, v in base.items()
                              if k != "solver"})


# -- injection into the *real* CG source (acceptance criterion) ----------------


def _copy_real_solver(tmp_path: Path, inject: bool) -> Path:
    d = tmp_path / "solvers"
    d.mkdir(exist_ok=True)
    (d / "operator.py").write_text((SRC / "solvers/operator.py").read_text())
    src = (SRC / "solvers/cg.py").read_text()
    if inject:
        marker = "            pw = op.apply_dot(p, w)"
        assert marker in src
        src = src.replace(
            marker, marker + "\n            op.comm.allreduce(0.0)")
    (d / "cg.py").write_text(src)
    return d


def test_real_cg_copy_is_clean(tmp_path):
    d = _copy_real_solver(tmp_path, inject=False)
    assert codes(run(d)) == []


def test_injected_allreduce_in_real_cg_fails(tmp_path):
    d = _copy_real_solver(tmp_path, inject=True)
    result = run(d)
    assert codes(result) == ["RPR002"]
    # ... and through the CLI, with a non-zero exit status.
    assert cli_main([str(d), "--root", str(tmp_path)]) == 1


# -- hygiene rules (RPR004-007) ------------------------------------------------


def test_allocation_in_hot_loop_flagged(tmp_path):
    write_solver(tmp_path, """
        import numpy as np

        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 1, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            r = op.new_field()          # pre-loop allocation is fine
            it = 0
            while it < max_iters:
                w = np.zeros(b.shape)   # churns the allocator every iter
                p = b.copy()
                op.apply(b, r)
                rr = op.dot(b, b)
                it += 1
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR004", "RPR004"]
    assert "np.zeros" in result.findings[0].message


def test_dtype_drift_flagged(tmp_path):
    (tmp_path / "kern.py").write_text(textwrap.dedent("""
        import numpy as np
        x = np.zeros(4, dtype=np.float32)
        y = np.array([1.0], dtype="float32")
    """))
    result = run(tmp_path)
    assert codes(result) == ["RPR005", "RPR005"]


def test_mutable_default_flagged(tmp_path):
    (tmp_path / "m.py").write_text(
        "def f(x, history=[]):\n    return history\n")
    assert codes(run(tmp_path)) == ["RPR006"]


def test_bare_except_flagged(tmp_path):
    (tmp_path / "m.py").write_text(textwrap.dedent("""
        try:
            x = 1
        except:
            pass
    """))
    assert codes(run(tmp_path)) == ["RPR007"]


# -- suppression and baseline --------------------------------------------------


def test_inline_suppression(tmp_path):
    (tmp_path / "m.py").write_text(
        "def f(x, h=[]):  # repro: ignore[RPR006]\n    return h\n")
    result = run(tmp_path)
    assert result.findings == []
    assert [f.code for f in result.suppressed] == ["RPR006"]


def test_inline_suppression_wrong_code_does_not_silence(tmp_path):
    (tmp_path / "m.py").write_text(
        "def f(x, h=[]):  # repro: ignore[RPR007]\n    return h\n")
    assert codes(run(tmp_path)) == ["RPR006"]


def test_baseline_roundtrip(tmp_path):
    (tmp_path / "m.py").write_text("def f(x, h=[]):\n    return h\n")
    first = run(tmp_path)
    assert codes(first) == ["RPR006"]
    baseline_path = tmp_path / "analysis-baseline.json"
    write_baseline(baseline_path, first.findings)
    second = run(tmp_path, baseline=load_baseline(baseline_path))
    assert second.findings == []
    assert [f.code for f in second.baselined] == ["RPR006"]
    # A *new* finding still fails even with the old baseline.
    (tmp_path / "m.py").write_text(
        "def f(x, h=[]):\n    return h\n\ndef g(y={}):\n    return y\n")
    third = run(tmp_path, baseline=load_baseline(baseline_path))
    assert [f.symbol for f in third.findings] == ["g"]


# -- reporters and CLI ---------------------------------------------------------


def test_json_report_shape(tmp_path):
    (tmp_path / "m.py").write_text("def f(x, h=[]):\n    return h\n")
    payload = json.loads(render_json(run(tmp_path)))
    assert payload["ok"] is False
    assert payload["findings"][0]["code"] == "RPR006"
    assert payload["findings"][0]["fingerprint"].startswith("RPR006:")


def test_cli_json_and_exit_codes(tmp_path, capsys):
    (tmp_path / "m.py").write_text("x = 1\n")
    assert cli_main([str(tmp_path), "--root", str(tmp_path),
                     "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert cli_main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for code in ["RPR001", "RPR004", "RPR005", "RPR006", "RPR007"]:
        assert code in listing


def test_cli_rejects_typos_instead_of_passing_silently(tmp_path, capsys):
    """Nonexistent paths, unknown rule codes and unknown solver names
    must be usage errors (exit 2), never a silent clean exit 0."""
    assert cli_main([str(tmp_path / "nope"), "--root", str(tmp_path)]) == 2
    assert cli_main([str(tmp_path), "--root", str(tmp_path),
                     "--select", "RPR999"]) == 2
    assert cli_main([str(tmp_path), "--root", str(tmp_path),
                     "--disable", "BOGUS"]) == 2
    assert cli_main(["--verify-only", "--verify-solver", "nope"]) == 2
    err = capsys.readouterr().err
    assert "no such path" in err and "RPR999" in err and "nope" in err


def test_cli_write_baseline(tmp_path, capsys):
    (tmp_path / "m.py").write_text("def f(x, h=[]):\n    return h\n")
    assert cli_main([str(tmp_path), "--root", str(tmp_path),
                     "--write-baseline"]) == 0
    capsys.readouterr()
    assert cli_main([str(tmp_path), "--root", str(tmp_path)]) == 0


# -- the operator cost table ---------------------------------------------------


def test_operator_table_derived_from_source():
    table = build_operator_table(SRC / "solvers/operator.py")
    assert table["apply"].halos == 1 and table["apply"].allreduces == 0
    assert table["residual"].halos == 1
    assert table["dot"].allreduces == 1
    assert table["dots"].allreduces == 1
    assert table["norm"].allreduces == 1
    assert not table["apply_noexchange"]


# -- the shipped tree (tier-1 lint gate) ---------------------------------------


def test_lint_gate_src_repro_is_clean():
    """Contract regressions anywhere in src/repro fail the test suite."""
    config = AnalysisConfig.from_pyproject(REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / config.baseline)
    result = analyze_paths([SRC], config, baseline=baseline)
    assert result.findings == [], "\n".join(
        f"{f.location()}: {f.code} {f.message}" for f in result.findings)
    assert result.files_checked > 80


def test_every_solver_module_declares_contract():
    import repro.solvers as pkg

    with_solve = []
    for info in pkgutil.iter_modules(pkg.__path__):
        mod = importlib.import_module(f"repro.solvers.{info.name}")
        solves = [
            name for name, obj in vars(mod).items()
            if inspect.isfunction(obj) and obj.__module__ == mod.__name__
            and name.endswith("_solve") and not name.startswith("_")
        ]
        if not solves:
            continue
        with_solve.append(info.name)
        contract = getattr(mod, "COMM_CONTRACT", None)
        assert contract is not None, f"{mod.__name__} lacks COMM_CONTRACT"
        assert validate_contract(contract) == [], mod.__name__
    assert sorted(with_solve) == [
        "cg", "cg_fused", "chebyshev", "deflation", "jacobi", "ppcg"]


# -- dynamic verification (--verify) -------------------------------------------


def test_verify_mode_confirms_paper_budgets():
    """Measured CG counts: 1 halo + 2 allreduces per iteration (1 for
    fused CG) on a 32x32 crooked-pipe solve — the paper's headline
    budget, cross-checked against the declared contracts."""
    reports = {r.name: r for r in verify_contracts(n=32)}
    assert all(r.ok for r in reports.values()), [
        (r.name, r.measured_allreduces, r.measured_halos)
        for r in reports.values() if not r.ok]
    cg = reports["cg"]
    assert cg.measured_allreduces == pytest.approx(2.0)
    assert cg.measured_halos == pytest.approx(1.0)
    fused = reports["cg_fused"]
    assert fused.measured_allreduces == pytest.approx(1.0)
    assert fused.measured_halos == pytest.approx(1.0)
    # Matrix powers amortise the deep halo exchange (paper SIV-C2).
    assert reports["chebyshev[depth=4]"].measured_halos == pytest.approx(0.25)
    assert reports["dcg"].measured_allreduces == pytest.approx(3.0)


def test_verify_detects_contract_drift(monkeypatch):
    """If a contract drifts from the measured reality, verify fails."""
    import repro.solvers.cg as cg_mod

    wrong = dict(cg_mod.COMM_CONTRACT, allreduces_per_iter=1)
    monkeypatch.setattr(cg_mod, "COMM_CONTRACT", wrong)
    reports = verify_contracts(n=32, names=["cg"])
    assert len(reports) == 1 and not reports[0].ok


def test_cli_verify_only(capsys):
    assert cli_main(["--verify-only", "--verify-solver", "cg",
                     "--verify-solver", "cg_fused"]) == 0
    out = capsys.readouterr().out
    assert "[ok] cg:" in out and "[ok] cg_fused:" in out
