"""The perf ledger's determinism contract (``repro.harness.bench``).

Two same-config runs must agree byte for byte on every non-timing field;
wall-clock measurements are machine noise and are only checked for shape,
type and positivity.  Ledger naming, schema and the CLI wiring ride along.
"""

import json

import pytest

from repro.harness import bench
from repro.kernels import available_backends

#: Tiny configuration: every backend, one small grid, pinned short solves.
TINY = dict(repeats=2, warmup=0, grids=[12], dtypes=["float64"],
            solver_n=24, solver_repeats=1)


@pytest.fixture(scope="module")
def ledgers():
    return [bench.run_bench(**TINY) for _ in range(2)]


class TestDeterminism:
    def test_static_view_byte_identical_across_runs(self, ledgers):
        views = [bench.to_json(bench.static_view(lg)) for lg in ledgers]
        assert views[0] == views[1]

    def test_static_view_strips_every_timing_dict(self, ledgers):
        assert "timing" not in bench.to_json(bench.static_view(ledgers[0]))

    def test_ledger_shape(self, ledgers):
        lg = ledgers[0]
        assert lg["schema"] == "repro.bench/v1"
        assert lg["config"]["backends"] == list(available_backends())
        assert set(lg["backend_status"]) >= set(lg["config"]["backends"])
        kinds = {c["kind"] for c in lg["cases"]}
        assert kinds == {"kernel", "solver"}
        kernels = {c["kernel"] for c in lg["cases"] if c["kind"] == "kernel"}
        assert {"stencil_apply", "apply_dot", "apply_axpy_dot",
                "dot", "axpy", "pack_halo"} == kernels
        solvers = {c["solver"] for c in lg["cases"] if c["kind"] == "solver"}
        assert solvers == {name for name, _ in bench.SOLVER_CASES}

    def test_timing_fields_are_sane(self, ledgers):
        for case in ledgers[0]["cases"]:
            t = case["timing"]
            assert isinstance(t["wall_s_min"], float) and t["wall_s_min"] > 0
            assert isinstance(t["wall_s_all"], list)
            assert all(isinstance(s, float) and s > 0
                       for s in t["wall_s_all"])
            assert t["wall_s_min"] == min(t["wall_s_all"])
            assert t["cells_per_s"] > 0

    def test_kernel_cases_model_bytes_moved(self, ledgers):
        for case in ledgers[0]["cases"]:
            if case["kind"] != "kernel":
                continue
            itemsize = 8 if case["dtype"] == "float64" else 4
            assert case["bytes_moved"] == \
                case["streams"] * case["cells"] * itemsize

    def test_solver_iterations_pinned(self, ledgers):
        # eps is unreachable, so every backend runs the full budget and
        # the iteration counts (non-timing fields) are deterministic.
        budgets = dict(bench.SOLVER_CASES)
        for case in ledgers[0]["cases"]:
            if case["kind"] != "solver":
                continue
            assert not case["converged"]
            assert case["iterations"] == budgets[case["solver"]]

    def test_json_is_sorted_and_parseable(self, ledgers):
        text = bench.to_json(ledgers[0])
        data = json.loads(text)
        assert text == json.dumps(data, indent=2, sort_keys=True)


class TestLedgerFiles:
    def test_next_ledger_path_scans_free_slot(self, tmp_path):
        assert bench.next_ledger_path(tmp_path).name == "BENCH_0.json"
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        assert bench.next_ledger_path(tmp_path).name == "BENCH_8.json"

    def test_write_ledger_pins_explicit_index(self, tmp_path, ledgers):
        path = bench.write_ledger(ledgers[0], tmp_path, index=8)
        assert path.name == "BENCH_8.json"
        assert json.loads(path.read_text())["schema"] == "repro.bench/v1"

    def test_committed_ledger_meets_acceptance(self):
        """The repo's BENCH_8.json shows fused beating numpy on the
        stencil+axpy+dot chain at the cache-exceeding grid."""
        from pathlib import Path
        ledger = json.loads(Path("BENCH_8.json").read_text())
        assert ledger["schema"] == "repro.bench/v1"
        speedups = bench.fused_speedups(ledger, kernel="apply_axpy_dot")
        big = max(n for _, n in
                  [(d, c["n"]) for c in ledger["cases"]
                   for d in [c["dtype"]] if c["kind"] == "kernel"])
        at_big = {k: v for k, v in speedups.items() if k.endswith(str(big))}
        assert at_big and all(v > 1.0 for v in at_big.values()), speedups


class TestRenderAndCli:
    def test_render_lists_every_case(self, ledgers):
        out = bench.render(ledgers[0])
        assert "schema=repro.bench/v1" in out
        assert len(out.splitlines()) == 2 + len(ledgers[0]["cases"])

    def test_fused_speedups_reads_ledger(self, ledgers):
        speedups = bench.fused_speedups(ledgers[0])
        if "fused" in available_backends():
            assert set(speedups) == {"float64/n=12"}
            assert all(v > 0 for v in speedups.values())

    def test_cli_writes_ledger(self, tmp_path, capsys):
        rc = bench.main(["--out", str(tmp_path), "--pr", "3",
                         "--repeats", "1", "--warmup", "0",
                         "--quick", "--backends", "numpy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ledger written to" in out
        data = json.loads((tmp_path / "BENCH_3.json").read_text())
        assert data["config"]["backends"] == ["numpy"]
        assert data["config"]["quick"] is True


class TestCompareLedgers:
    def _scale(self, ledger, factor, keys=()):
        """Copy with selected cases' wall_s_min scaled by factor."""
        import copy
        out = copy.deepcopy(ledger)
        for c in out["cases"]:
            if not keys or bench.case_key(c) in keys:
                c["timing"]["wall_s_min"] *= factor
        return out

    def test_identical_ledgers_pass(self, ledgers):
        report = bench.compare_ledgers(ledgers[0], ledgers[0],
                                       threshold=1.25)
        assert report["passed"] and report["compared"] > 0
        assert not report["only_old"] and not report["only_new"]
        assert all(r["ratio"] == pytest.approx(1.0) for r in report["rows"])

    def test_regression_detected_and_named(self, ledgers):
        slow_key = bench.case_key(ledgers[0]["cases"][0])
        slowed = self._scale(ledgers[0], 2.0, keys={slow_key})
        report = bench.compare_ledgers(ledgers[0], slowed, threshold=1.25)
        assert not report["passed"]
        assert [tuple(r["key"]) for r in report["regressions"]] == [slow_key]
        assert "REGRESSED" in bench.render_comparison(report)

    def test_speedup_is_not_a_regression(self, ledgers):
        faster = self._scale(ledgers[0], 0.5)
        report = bench.compare_ledgers(ledgers[0], faster, threshold=1.25)
        assert report["passed"]

    def test_threshold_tolerates_noise(self, ledgers):
        noisy = self._scale(ledgers[0], 1.2)
        assert bench.compare_ledgers(ledgers[0], noisy,
                                     threshold=1.25)["passed"]
        assert not bench.compare_ledgers(ledgers[0], noisy,
                                         threshold=1.1)["passed"]

    def test_disjoint_case_lists_report_but_pass(self, ledgers):
        import copy
        other = copy.deepcopy(ledgers[0])
        for c in other["cases"]:
            c["n"] += 1000
        report = bench.compare_ledgers(ledgers[0], other)
        assert report["compared"] == 0 and report["passed"]
        assert report["only_old"] and report["only_new"]

    def test_threshold_validation(self, ledgers):
        with pytest.raises(ValueError):
            bench.compare_ledgers(ledgers[0], ledgers[0], threshold=1.0)

    def test_cli_compare_exit_codes(self, tmp_path, ledgers, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(bench.to_json(ledgers[0]))
        new.write_text(bench.to_json(self._scale(ledgers[0], 3.0)))
        assert bench.main(["--compare", str(old), str(old)]) == 0
        assert bench.main(["--compare", str(old), str(new),
                           "--threshold", "1.5"]) == 1
        assert "FAIL" in capsys.readouterr().out
