"""Chaos campaign engine: plans, oracle, determinism, shrinker, soak.

The expensive acceptance runs (two byte-compared 200-trial campaigns,
``make chaos``) live in CI; here the same invariants are held on smaller
pinned-seed campaigns so the suite stays fast.
"""

import json
from pathlib import Path

import pytest

from repro.observe import MetricsRegistry, record_chaos_metrics
from repro.resilience import FaultPlan
from repro.resilience.chaos import (
    CAMPAIGN_SOLVERS,
    DEFAULT_BUDGETS,
    FAULT_CLASSES,
    GoldenCache,
    TrialSpec,
    campaign_specs,
    known_bad_spec,
    load_fixture,
    minimize_and_write_fixture,
    plan_classes,
    random_fault_plan,
    replay_fixture,
    run_campaign,
    run_soak,
    run_trial,
    shrink_plan,
    spec_from_dict,
    spec_to_dict,
    transparent,
)
from repro.utils.errors import ConfigurationError

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "chaos"


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        a = random_fault_plan(7, 3, size=2, solver="cg", max_attempts=5)
        b = random_fault_plan(7, 3, size=2, solver="cg", max_attempts=5)
        assert a == b

    def test_different_trials_differ(self):
        plans = {random_fault_plan(7, t, size=1, solver="cg",
                                   max_attempts=5)
                 for t in range(20)}
        assert len(plans) > 1

    def test_classes_cover_taxonomy(self):
        seen: set = set()
        for t in range(120):
            plan = random_fault_plan(7, t, size=2, solver="cg",
                                     max_attempts=5, allow_drops=(t % 9 == 0),
                                     fatal_crash=(t % 11 == 0))
            seen.update(plan_classes(plan))
        # random plans always inject something; "none" is the control
        # trials' class (disabled plan)
        assert seen == set(FAULT_CLASSES) - {"none"}
        assert plan_classes(FaultPlan.disabled()) == ("none",)

    def test_transparent_means_no_corruption_or_crash(self):
        for t in range(60):
            plan = random_fault_plan(7, t, size=1, solver="cg",
                                     max_attempts=5)
            if transparent(plan):
                assert not plan.crashes
                assert all(r.mode in ("error", "delay") for r in plan.rules)

    def test_round_trips_as_json(self):
        for t in range(30):
            plan = random_fault_plan(5, t, size=2, solver="ppcg",
                                     max_attempts=5, allow_drops=True,
                                     fatal_crash=(t % 4 == 0))
            assert FaultPlan.from_dict(
                json.loads(json.dumps(plan.to_dict()))) == plan


class TestCampaignSpecs:
    def test_schedule_is_deterministic(self):
        a = campaign_specs(1234, 60, n=12)
        b = campaign_specs(1234, 60, n=12)
        assert a == b

    def test_schedule_mixes_trial_kinds(self):
        specs = campaign_specs(1234, 100, n=12)
        kinds = {s.kind for s in specs}
        assert kinds == {"solve", "recover", "sim"}
        assert any(s.size > 1 for s in specs)
        assert any(s.integrity for s in specs)
        assert any(not s.plan.active() for s in specs)  # controls

    def test_covers_all_solvers(self):
        specs = campaign_specs(1234, 40, n=12)
        assert {s.solver for s in specs} \
            == {name for name, _ in CAMPAIGN_SOLVERS}

    def test_invalid_kind_rejected(self):
        from repro.solvers import SolverOptions
        with pytest.raises(ConfigurationError):
            TrialSpec(index=0, kind="meltdown", solver="cg",
                      options=SolverOptions(solver="cg"),
                      plan=FaultPlan.disabled(), n=12)

    def test_spec_round_trips(self):
        for spec in campaign_specs(1234, 25, n=12):
            assert spec_from_dict(spec_to_dict(spec)) == spec


class TestTrialOracle:
    def test_control_trial_matches_golden_exactly(self, tmp_path):
        spec = next(s for s in campaign_specs(1234, 30, n=12)
                    if not s.plan.active())
        result = run_trial(spec, GoldenCache(), workdir=tmp_path)
        assert result.outcome == "converged"
        assert result.violations == []
        assert result.iterations == result.golden_iterations
        assert result.faults == 0 and result.retries == 0

    def test_known_bad_trial_is_caught(self, tmp_path):
        result = run_trial(known_bad_spec(), GoldenCache(),
                           workdir=tmp_path)
        assert result.outcome == "converged"  # the solve *claims* success
        assert any("true-residual" in v for v in result.violations)


@pytest.mark.slow
class TestCampaignDeterminism:
    TRIALS = 60

    def test_two_runs_byte_identical_and_passing(self, tmp_path):
        ledgers = []
        for run in range(2):
            result = run_campaign(trials=self.TRIALS,
                                  workdir=tmp_path / f"run{run}")
            assert result.passed, (result.oracle_violations,
                                   result.budget_violations())
            ledgers.append(result.to_json())
        assert ledgers[0] == ledgers[1]

    def test_ledger_shape(self, tmp_path):
        result = run_campaign(trials=25, workdir=tmp_path)
        data = json.loads(result.to_json())
        assert data["schema"] == "repro.chaos/v1"
        assert data["trials"] == 25
        assert len(data["trial_rows"]) == 25
        assert set(data["classes"]) <= set(FAULT_CLASSES)
        for row in data["trial_rows"]:
            assert {"trial", "kind", "solver", "outcome", "iterations",
                    "violations"} <= set(row)

    def test_budget_violation_fails_campaign(self, tmp_path):
        tight = {cls: dict(b) for cls, b in DEFAULT_BUDGETS.items()}
        tight["transient"] = {"min_recovery_rate": 1.01}  # unattainable
        result = run_campaign(trials=25, budgets=tight, workdir=tmp_path)
        assert not result.passed and result.exit_code == 1
        assert any("transient" in v for v in result.budget_violations())


class TestShrinker:
    def test_minimizes_known_bad_to_at_most_two_rules(self, tmp_path):
        spec = known_bad_spec()
        path = minimize_and_write_fixture(spec, GoldenCache(), tmp_path,
                                          workdir=tmp_path / "wk")
        fixture = load_fixture(path)
        assert len(fixture.plan.rules) + len(fixture.plan.crashes) <= 2
        replayed = replay_fixture(path)
        assert replayed.violations, "minimized plan must still reproduce"

    def test_shrink_requires_failing_input(self):
        plan = known_bad_spec().plan
        with pytest.raises(ConfigurationError):
            shrink_plan(plan, lambda p: False)

    def test_shrink_result_is_one_minimal(self, tmp_path):
        # failing iff the corrupt_scale rule survives: ddmin must strip
        # the two decoys and keep exactly the culprit
        plan = known_bad_spec().plan
        minimal = shrink_plan(
            plan, lambda p: any(r.mode == "corrupt_scale" for r in p.rules))
        assert len(minimal.rules) == 1
        assert minimal.rules[0].mode == "corrupt_scale"


class TestCommittedFixture:
    """The regression fixture the shrinker wrote stays reproducing."""

    FIXTURE = FIXTURES / "chaos-seed99-trial0000.json"

    def test_fixture_exists_and_is_minimal(self):
        spec = load_fixture(self.FIXTURE)
        assert len(spec.plan.rules) + len(spec.plan.crashes) <= 2

    def test_fixture_still_reproduces(self):
        result = replay_fixture(self.FIXTURE)
        recorded = json.loads(
            self.FIXTURE.read_text(encoding="utf-8"))["violations"]
        assert result.violations == recorded


@pytest.mark.slow
class TestSoak:
    def test_soak_is_bit_identical_and_restores(self, tmp_path):
        report = run_soak(cycles=2, steps_per_cycle=2, n=16, nranks=1,
                          checkpoint_root=tmp_path / "ck")
        assert report.passed, report.violations
        assert report.bit_identical
        assert report.cycles[0].restored_step == -1
        assert report.cycles[1].restored_step == 2
        assert any(c.faults for c in report.cycles)


class TestHarnessAndMetrics:
    def test_ledger_writer_scans_next_index(self, tmp_path):
        from repro.harness.chaos_sweep import next_ledger_path, write_ledger
        result = run_campaign(trials=5, workdir=tmp_path / "wk")
        assert next_ledger_path(tmp_path).name == "CHAOS_0.json"
        first = write_ledger(result, tmp_path)
        assert first.name == "CHAOS_0.json"
        second = write_ledger(result, tmp_path)
        assert second.name == "CHAOS_1.json"
        assert json.loads(first.read_text())["schema"] == "repro.chaos/v1"

    def test_render_marks_pass(self, tmp_path):
        from repro.harness.chaos_sweep import render
        result = run_campaign(trials=5, workdir=tmp_path)
        out = render(result)
        assert "chaos campaign" in out and out.endswith("PASS")

    def test_chaos_metrics_mirror_class_stats(self, tmp_path):
        result = run_campaign(trials=10, workdir=tmp_path)
        registry = MetricsRegistry()
        record_chaos_metrics(registry, result)
        snap = registry.snapshot()
        assert snap["counters"]["chaos.trials"] == 10
        assert snap["gauges"]["chaos.passed"] == 1.0
        for cls, s in result.class_stats().items():
            assert snap["counters"][f"chaos.converged.{cls}"] \
                == s["converged"]
            assert snap["gauges"][f"chaos.recovery_rate.{cls}"] \
                == s["recovery_rate"]


@pytest.mark.slow
class TestCli:
    def test_chaos_cli_exits_zero(self, tmp_path, capsys):
        from repro.cli.main import main
        code = main(["chaos", "--trials", "10",
                     "--out", str(tmp_path / "chaos")])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "chaos" / "CHAOS_0.json").exists()
        assert "PASS" in out

    def test_soak_cli_exits_zero(self, tmp_path, capsys):
        from repro.cli.main import main
        code = main(["soak", "--cycles", "2", "--ranks", "1",
                     "--out", str(tmp_path / "soak")])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "soak" / "SOAK_0.json").exists()
        assert "bit-identical to fault-free: True" in out
