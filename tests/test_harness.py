"""Integration tests: the experiment harness (reduced parameters)."""

import math

import numpy as np
import pytest

from repro.harness import (
    FigureSeries,
    gpu_node_counts,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table1,
    spruce_node_counts,
)
from repro.utils import ConfigurationError


class TestCommon:
    def test_gpu_node_counts(self):
        assert gpu_node_counts(8) == [1, 2, 4, 8]
        assert gpu_node_counts(8192)[-1] == 8192

    def test_spruce_node_counts(self):
        assert spruce_node_counts() == [2 ** i for i in range(11)]

    def test_figure_series_api(self):
        fig = FigureSeries(name="t", node_counts=[1, 2, 4])
        fig.add("a", [3.0, 2.0, 1.5])
        assert fig.value("a", 2) == 2.0
        assert fig.best("a") == (4, 1.5)
        assert "t" in fig.to_text()
        csv = fig.to_csv()
        assert csv.splitlines()[0] == "nodes,a"
        with pytest.raises(ConfigurationError):
            fig.add("bad", [1.0])


class TestTable1:
    def test_rows_match_paper(self):
        rows = run_table1()
        by_name = {r["system"]: r for r in rows}
        assert set(by_name) == {"Spruce", "Piz Daint", "Titan"}
        assert by_name["Titan"]["compute_device"] == "NVIDIA K20x"
        assert by_name["Piz Daint"]["compute_device"] == "NVIDIA K20x"
        assert "E5-2680v2" in by_name["Spruce"]["compute_device"]
        assert by_name["Titan"]["interconnect"] == "torus3d"      # Gemini
        assert by_name["Piz Daint"]["interconnect"] == "dragonfly"  # Aries


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        # reduced mesh and end time to keep the test quick
        return run_fig3(mesh_n=32, end_time=3.0, eps=1e-7)

    def test_pipe_hotter_than_dense_material(self, result):
        T = result.temperature
        pipe = result.pipe_mask()
        assert T[pipe].mean() > 5 * T[~pipe].mean()

    def test_heat_progresses_along_pipe(self, result):
        """Temperature decreases monotonically-ish along the pipe path."""
        T = result.temperature
        n = result.mesh_n
        row = int(1.5 / 10 * n)  # y ~ 1.5: the first pipe segment
        seg = T[row, : int(0.5 * n)]
        assert seg[0] > seg[-1]

    def test_render(self, result):
        art = result.render(width=40)
        assert len(art.splitlines()) > 5

    def test_conservation(self, result):
        # mean temperature equals the initial mean (insulated box)
        from repro.mesh import Grid2D
        from repro.physics import crooked_pipe, global_initial_state
        _, _, u0 = global_initial_state(Grid2D(32, 32), crooked_pipe())
        assert result.temperature.mean() == pytest.approx(u0.mean(), rel=1e-6)


class TestFig4:
    def test_mean_temperature_converges_with_mesh(self):
        result = run_fig4(mesh_sizes=(16, 24, 32, 48), dt=1.5, eps=1e-7)
        deltas = result.deltas()
        # refinement deltas shrink (allowing rasterisation noise)
        assert deltas[-1] < deltas[0]
        assert all(t > 0 for t in result.mean_temperatures)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(mesh_n=4000)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(mesh_n=4000)


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(mesh_n=4000)


class TestFig5:
    def test_series_present(self, fig5):
        assert set(fig5.series) == {"CG - 1", "PPCG - 1", "PPCG - 4",
                                    "PPCG - 8", "PPCG - 16"}
        assert fig5.node_counts[-1] == 8192

    def test_ppcg16_wins_at_scale(self, fig5):
        at_8192 = {label: fig5.value(label, 8192) for label in fig5.series}
        assert min(at_8192, key=at_8192.get) == "PPCG - 16"

    def test_cg_plateau(self, fig5):
        best_nodes, _ = fig5.best("CG - 1")
        assert best_nodes <= 2048

    def test_anchor(self, fig5):
        assert fig5.value("PPCG - 16", 8192) == pytest.approx(4.26, rel=0.2)


class TestFig6:
    def test_faster_than_titan_at_2048(self, fig5, fig6):
        t = fig5.value("PPCG - 16", 2048)
        p = fig6.value("PPCG - 16", 2048)
        assert 1.2 < t / p < 2.0  # paper: 47%

    def test_anchor(self, fig6):
        assert fig6.value("PPCG - 16", 2048) == pytest.approx(2.79, rel=0.2)


class TestFig7:
    def test_six_lines(self, fig7):
        assert len(fig7.series) == 6

    def test_baseline_wins_small_loses_big(self, fig7):
        assert fig7.value("BoomerAMG (MPI)", 1) < fig7.value("CG - 1 (MPI)", 1)
        assert fig7.value("PPCG - 1 (MPI)", 512) < \
            fig7.value("BoomerAMG (MPI)", 512)

    def test_amg_peak_position(self, fig7):
        nodes, _ = fig7.best("BoomerAMG (Hybrid)")
        assert nodes <= 64  # paper: peaks at 32


class TestFig8:
    def test_spruce_superlinear(self):
        fig = run_fig8(mesh_n=4000)
        spruce = [v for v in fig.series["Spruce - PPCG - 1 (MPI)"]
                  if not math.isnan(v)]
        assert max(spruce) > 1.3
        titan = fig.series["Titan - PPCG - 16 (CUDA)"]
        piz = [v for v in fig.series["Piz Daint - PPCG - 16 (CUDA)"]
               if not math.isnan(v)]
        # Piz Daint efficiency beats Titan at equal node counts
        assert all(p >= t - 1e-9 for p, t in zip(piz, titan))


class TestReport:
    def test_write_report(self, tmp_path):
        from repro.harness.report import write_report
        paths = write_report(tmp_path, fig3_mesh=24)
        names = {p.name for p in paths}
        assert {"table1.txt", "fig3.txt", "fig4.csv", "fig5.csv",
                "fig6.csv", "fig7.csv", "fig8.csv"} <= names
        assert all(p.stat().st_size > 0 for p in paths)
