"""Tests: VTK output and the 3D simulation driver."""

import numpy as np
import pytest

from repro.io.vtk import read_vtk, write_vtk
from repro.mesh import Grid2D, Grid3D
from repro.physics.simulation3d import (
    BoxRegion3D,
    Simulation3D,
    crooked_duct_3d,
)
from repro.utils import ConfigurationError


class TestVTK:
    def test_roundtrip_2d(self, tmp_path, rng):
        grid = Grid2D(8, 6)
        T = rng.standard_normal(grid.shape)
        rho = rng.uniform(0.1, 10.0, grid.shape)
        path = write_vtk(tmp_path / "out.vtk", grid,
                         {"temperature": T, "density": rho})
        shape, fields = read_vtk(path)
        assert shape == (6, 8)
        assert np.allclose(fields["temperature"], T)
        assert np.allclose(fields["density"], rho)

    def test_roundtrip_3d(self, tmp_path, rng):
        grid = Grid3D(4, 3, 5)
        T = rng.standard_normal(grid.shape)
        path = write_vtk(tmp_path / "out3d.vtk", grid, {"temperature": T})
        shape, fields = read_vtk(path)
        assert shape == (5, 3, 4)
        assert np.allclose(fields["temperature"], T)

    def test_header_contents(self, tmp_path):
        grid = Grid2D(4, 4)
        path = write_vtk(tmp_path / "h.vtk", grid,
                         {"u": np.zeros(grid.shape)}, title="mytitle")
        text = path.read_text()
        assert text.startswith("# vtk DataFile Version 3.0")
        assert "mytitle" in text
        assert "DATASET RECTILINEAR_GRID" in text
        assert "DIMENSIONS 5 5 2" in text
        assert "CELL_DATA 16" in text

    def test_coordinates_match_extent(self, tmp_path):
        grid = Grid2D(4, 2, extent=(0.0, 2.0, 0.0, 1.0))
        path = write_vtk(tmp_path / "c.vtk", grid,
                         {"u": np.zeros(grid.shape)})
        text = path.read_text()
        assert "X_COORDINATES 5 double" in text
        assert "0 0.5 1 1.5 2" in text

    def test_validation(self, tmp_path):
        grid = Grid2D(4, 4)
        with pytest.raises(ConfigurationError):
            write_vtk(tmp_path / "x.vtk", grid, {})
        with pytest.raises(ConfigurationError):
            write_vtk(tmp_path / "x.vtk", grid, {"u": np.zeros((2, 2))})
        with pytest.raises(ConfigurationError):
            write_vtk(tmp_path / "x.vtk", grid,
                      {"bad name": np.zeros(grid.shape)})


class TestSimulation3D:
    @pytest.fixture(scope="class")
    def sim(self):
        sim = Simulation3D(Grid3D(12, 12, 12), crooked_duct_3d(),
                           dt=0.04, eps=1e-10)
        sim.run(3)
        return sim

    def test_energy_conserved(self, sim):
        fresh = Simulation3D(Grid3D(12, 12, 12), crooked_duct_3d())
        assert sim.mean_temperature() == pytest.approx(
            fresh.mean_temperature(), rel=1e-9)

    def test_heat_follows_duct(self, sim):
        """The low-density duct conducts; the dense block barely does."""
        grid = sim.grid
        duct = sim.density < 1.0
        assert sim.u[duct].mean() > 3 * sim.u[~duct].mean()

    def test_max_temperature_decays(self):
        sim = Simulation3D(Grid3D(10, 10, 10), crooked_duct_3d())
        t0 = sim.u.max()
        sim.run(2)
        assert sim.u.max() < t0

    def test_step_stats(self):
        sim = Simulation3D(Grid3D(8, 8, 8), crooked_duct_3d())
        stats = sim.step()
        assert stats["step"] == 1
        assert stats["time"] == pytest.approx(0.04)
        assert stats["iterations"] > 0

    def test_background_required_first(self):
        with pytest.raises(ConfigurationError):
            Simulation3D(Grid3D(4, 4, 4),
                         (BoxRegion3D(1.0, 1.0, bounds=(0, 1, 0, 1, 0, 1)),))

    def test_vtk_export_of_3d_state(self, tmp_path, sim):
        path = write_vtk(tmp_path / "state.vtk", sim.grid,
                         {"temperature": sim.u, "density": sim.density})
        shape, fields = read_vtk(path)
        assert shape == sim.grid.shape
        assert np.allclose(fields["temperature"], sim.u)
