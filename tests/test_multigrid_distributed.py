"""Tests: the hybrid domain-decomposition + agglomeration multigrid."""

import numpy as np
import pytest

from repro.comm import SerialComm, launch_spmd
from repro.mesh import Field, Grid2D, decompose
from repro.multigrid.distributed import (
    DistributedMultigrid,
    DistributedMultigridPreconditioner,
    dmgcg_solve,
)
from repro.solvers import SolverOptions, StencilOperator2D, solve_linear
from repro.utils import ConfigurationError

from tests.helpers import (
    crooked_pipe_system,
    distributed_solve,
    random_spd_faces,
    reference_solution,
    serial_operator,
)

pytestmark = pytest.mark.distributed


def run_dmgcg(g, kx, ky, bg, size, **kwargs):
    def rank_main(comm):
        tile = decompose(g, comm.size)[comm.rank]
        op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
        b = Field.from_global(tile, 1, bg)
        return tile, dmgcg_solve(op, b, **kwargs)

    out = launch_spmd(rank_main, size)
    x = np.zeros(g.shape)
    for tile, res in out:
        x[tile.global_slices] = res.x.interior
    return x, out[0][1]


class TestDistributedMGCG:
    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_matches_reference(self, size):
        g, kx, ky, bg = crooked_pipe_system(64)
        x_ref = reference_solution(kx, ky, bg)
        x, result = run_dmgcg(g, kx, ky, bg, size, eps=1e-11)
        assert result.converged
        assert np.abs(x - x_ref).max() <= 1e-8 * np.abs(x_ref).max()

    def test_iteration_count_decomposition_invariant(self):
        g, kx, ky, bg = crooked_pipe_system(64)
        iters = [run_dmgcg(g, kx, ky, bg, size, eps=1e-10)[1].iterations
                 for size in (1, 2, 4)]
        assert max(iters) - min(iters) <= 2

    def test_matches_serial_baseline_quality(self):
        """Hybrid V-cycle converges about as fast as the serial hierarchy."""
        from repro.multigrid import mgcg_solve
        g, kx, ky, bg = crooked_pipe_system(64)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        serial = mgcg_solve(op, b, eps=1e-10)
        _, dist = run_dmgcg(g, kx, ky, bg, 4, eps=1e-10)
        assert dist.iterations <= serial.iterations * 2

    def test_uneven_tiles_fall_back_to_agglomeration(self):
        """Odd local sizes: zero decomposed levels, still correct."""
        g, kx, ky, bg = crooked_pipe_system(30)  # 30 over 4 ranks: 15-wide
        x_ref = reference_solution(kx, ky, bg)
        x, result = run_dmgcg(g, kx, ky, bg, 4, eps=1e-10)
        assert result.converged
        assert result.n_levels >= 1
        assert np.abs(x - x_ref).max() <= 1e-7 * np.abs(x_ref).max()

    def test_driver_routes_mgcg_by_comm_size(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        x_ref = reference_solution(kx, ky, bg)
        options = SolverOptions(solver="mgcg", eps=1e-10)
        x, result = distributed_solve(g, kx, ky, bg, options, 4)
        assert result.converged
        assert np.abs(x - x_ref).max() <= 1e-7 * np.abs(x_ref).max()

    def test_level_counts_agree_across_ranks(self):
        g, kx, ky, bg = crooked_pipe_system(64)

        def rank_main(comm):
            tile = decompose(g, comm.size)[comm.rank]
            op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
            mg = DistributedMultigrid(op)
            return mg.n_local_levels

        counts = launch_spmd(rank_main, 4)
        assert len(set(counts)) == 1


class TestHybridVCyclePreconditioner:
    def test_spd_on_serial_world(self, rng):
        n = 8
        kx, ky = random_spd_faces(rng, n, n)
        op = serial_operator(Grid2D(n, n), kx, ky)
        M = DistributedMultigridPreconditioner(op, min_local=2)
        cells = n * n
        mat = np.zeros((cells, cells))
        r, z = op.new_field(), op.new_field()
        for col in range(cells):
            e = np.zeros(cells)
            e[col] = 1.0
            r.interior[...] = e.reshape(n, n)
            M.apply(r, z)
            mat[:, col] = z.interior.ravel()
        assert np.allclose(mat, mat.T, atol=1e-10)
        assert np.linalg.eigvalsh(0.5 * (mat + mat.T)).min() > 0

    def test_cycle_contracts_residual(self):
        g, kx, ky, bg = crooked_pipe_system(32)

        def rank_main(comm):
            tile = decompose(g, comm.size)[comm.rank]
            op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
            b = Field.from_global(tile, 1, bg)
            mg = DistributedMultigrid(op)
            x = op.new_field()
            r = op.new_field()
            norms = []
            for _ in range(4):
                op.residual(b, x, out=r)
                norms.append(op.norm(r))
                x.interior += mg.cycle(r).interior
            return norms

        for norms in launch_spmd(rank_main, 4):
            assert norms[-1] < 0.05 * norms[0]

    def test_invalid_sweeps(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky)
        with pytest.raises(ConfigurationError):
            DistributedMultigrid(op, pre_sweeps=0)


class TestWeakScalingModel:
    def test_weak_mesh_side(self):
        from repro.perfmodel.weak import weak_mesh_side
        assert weak_mesh_side(100, 1) == 100
        assert weak_mesh_side(100, 4) == 200
        assert weak_mesh_side(100, 16, ranks_per_node=4) == 800

    def test_weak_efficiency_decays_for_krylov(self):
        """The paper's §VI argument: weak scaling is ruined by iteration
        growth, not communication."""
        from repro.harness.common import iteration_model_for
        from repro.perfmodel import TITAN, SolverConfig
        from repro.perfmodel.weak import predict_weak_scaling, weak_efficiency

        config = SolverConfig("cg")
        pts = predict_weak_scaling(
            TITAN, config, local_side=500, node_counts=[1, 4, 16, 64],
            iteration_model=iteration_model_for(config))
        eff = weak_efficiency(pts)
        assert eff[0] == 1.0
        assert all(a > b for a, b in zip(eff, eff[1:]))
        # ~sqrt(P) time growth: efficiency near 1/sqrt(P) at 64 nodes
        assert 0.05 < eff[-1] < 0.35
