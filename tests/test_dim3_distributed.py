"""Tests: distributed 3D — decomposition, halos, and the shared solvers.

The headline property: the dimension-agnostic solver implementations (CG,
Chebyshev, CPPCG with matrix powers) run unchanged on decomposed 3D
problems through :class:`DistributedOperator3D`.
"""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.comm import SerialComm, launch_spmd
from repro.mesh import (
    Field3D,
    Grid3D,
    HaloExchanger3D,
    Tile3D,
    choose_factors_3d,
    decompose3d,
)
from repro.physics import face_coefficients_3d
from repro.solvers import (
    DistributedOperator3D,
    cg_fused_solve,
    cg_solve,
    chebyshev_solve,
    ppcg_solve,
)
from repro.solvers.dim3 import StencilOperator3D
from repro.utils import CommunicationError, ConfigurationError, EventLog

pytestmark = pytest.mark.distributed


def system_3d(n=12, seed=3, rx=0.5):
    rng = np.random.default_rng(seed)
    g = Grid3D(n, n, n)
    kappa = rng.uniform(0.2, 5.0, g.shape)
    kx, ky, kz = face_coefficients_3d(kappa, rx, rx, rx)
    bg = rng.standard_normal(g.shape)
    A = StencilOperator3D(kx=kx, ky=ky, kz=kz).to_sparse()
    x_ref = spla.spsolve(A.tocsc(), bg.ravel()).reshape(g.shape)
    return g, (kx, ky, kz), bg, x_ref


def run_solver(g, faces, bg, size, solver, halo=1, **kw):
    kx, ky, kz = faces

    def rank_main(comm):
        t = decompose3d(g, comm.size)[comm.rank]
        op = DistributedOperator3D.from_global_faces(t, halo, kx, ky, kz,
                                                     comm)
        b = Field3D.from_global(t, halo, bg)
        return t, solver(op, b, **kw)

    out = launch_spmd(rank_main, size)
    x = np.zeros(g.shape)
    for t, res in out:
        x[t.global_slices] = res.x.interior
    return x, out[0][1]


class TestDecomposition3D:
    def test_factors_minimise_surface(self):
        assert choose_factors_3d(8, 64, 64, 64) == (2, 2, 2)
        px, py, pz = choose_factors_3d(4, 1000, 10, 10)
        assert px == 4 and py == pz == 1

    def test_partition_covers_grid(self):
        g = Grid3D(7, 6, 5)
        for nranks in (1, 2, 4, 6, 8):
            tiles = decompose3d(g, nranks)
            total = sum(t.n_cells for t in tiles)
            assert total == g.n_cells

    def test_neighbor_symmetry(self):
        tiles = decompose3d(Grid3D(8, 8, 8), 8, factors=(2, 2, 2))
        for t in tiles:
            for side, opposite in (("left", "right"), ("down", "up"),
                                   ("back", "front")):
                nbr = getattr(t, side)
                if nbr is not None:
                    assert getattr(tiles[nbr], opposite) == t.rank

    def test_center_tile_six_neighbors(self):
        tiles = decompose3d(Grid3D(9, 9, 9), 27, factors=(3, 3, 3))
        center = tiles[13]
        assert center.n_neighbors == 6
        assert tiles[0].n_neighbors == 3

    def test_extension_clipping(self):
        tiles = decompose3d(Grid3D(8, 8, 8), 8, factors=(2, 2, 2))
        ext = tiles[0].extension(2)
        assert ext == {"left": 0, "right": 2, "down": 0, "up": 2,
                       "back": 0, "front": 2}

    def test_too_many_ranks(self):
        from repro.utils import DecompositionError
        with pytest.raises(DecompositionError):
            decompose3d(Grid3D(2, 2, 2), 16)


class TestHalo3D:
    @pytest.mark.parametrize("size,depth", [(2, 1), (4, 2), (8, 2), (8, 3)])
    def test_exchange_fills_all_ghosts(self, size, depth):
        g = Grid3D(12, 12, 12)
        rng = np.random.default_rng(size * 10 + depth)
        glob = rng.standard_normal(g.shape)

        def rank_main(comm):
            t = decompose3d(g, comm.size)[comm.rank]
            f = Field3D.from_global(t, depth, glob)
            HaloExchanger3D(comm).exchange(f, depth=depth)
            ext = t.extension(depth)
            region = f.region(ext)
            want = glob[t.z0 - ext["back"]:t.z1 + ext["front"],
                        t.y0 - ext["down"]:t.y1 + ext["up"],
                        t.x0 - ext["left"]:t.x1 + ext["right"]]
            assert np.array_equal(f.data[region], want), comm.rank
            return True

        assert all(launch_spmd(rank_main, size))

    def test_depth_exceeds_halo(self):
        t = decompose3d(Grid3D(4, 4, 4), 1)[0]
        f = Field3D(t, halo=1)
        with pytest.raises(CommunicationError):
            HaloExchanger3D(SerialComm()).exchange(f, depth=2)

    def test_event_recorded(self):
        g = Grid3D(8, 8, 8)

        def rank_main(comm):
            t = decompose3d(g, comm.size)[comm.rank]
            f = Field3D(t, 2)
            log = EventLog()
            HaloExchanger3D(comm, events=log).exchange(f, depth=2)
            return log

        log = launch_spmd(rank_main, 2)[0]
        assert log.count("halo_exchange", 2) == 1


class TestOperator3DDistributed:
    def test_matvec_matches_serial_assembly(self):
        g, faces, bg, _ = system_3d()
        kx, ky, kz = faces
        A = StencilOperator3D(kx=kx, ky=ky, kz=kz).to_sparse()
        want = (A @ bg.ravel()).reshape(g.shape)

        def rank_main(comm):
            t = decompose3d(g, comm.size)[comm.rank]
            op = DistributedOperator3D.from_global_faces(t, 1, kx, ky, kz,
                                                         comm)
            p = Field3D.from_global(t, 1, bg)
            w = op.new_field()
            op.apply(p, w)
            assert np.allclose(w.interior, want[t.global_slices], atol=1e-12)
            return True

        for size in (1, 4, 8):
            assert all(launch_spmd(rank_main, size))

    def test_diagonal_matches_sparse(self):
        g, faces, bg, _ = system_3d(8)
        kx, ky, kz = faces
        A = StencilOperator3D(kx=kx, ky=ky, kz=kz).to_sparse()
        t = decompose3d(g, 1)[0]
        op = DistributedOperator3D.from_global_faces(t, 1, kx, ky, kz,
                                                     SerialComm())
        assert np.allclose(op.diagonal().ravel(), A.diagonal())

    def test_diagonal_padded_interior_consistent(self):
        g, faces, _, _ = system_3d(8)
        kx, ky, kz = faces
        t = decompose3d(g, 1)[0]
        op = DistributedOperator3D.from_global_faces(t, 2, kx, ky, kz,
                                                     SerialComm())
        pad = op.diagonal_padded()
        assert np.allclose(pad[op.kx.region(0)], op.diagonal())

    def test_mismatched_fields_rejected(self):
        t = decompose3d(Grid3D(4, 4, 4), 1)[0]
        with pytest.raises(ConfigurationError):
            DistributedOperator3D(kx=Field3D(t, 1), ky=Field3D(t, 2),
                                  kz=Field3D(t, 1), comm=SerialComm())


class TestSharedSolversIn3D:
    """The 2D solver implementations, unchanged, on 3D problems."""

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_cg(self, size):
        g, faces, bg, x_ref = system_3d()
        x, res = run_solver(g, faces, bg, size, cg_solve, eps=1e-11)
        assert res.converged
        assert np.abs(x - x_ref).max() <= 1e-8 * np.abs(x_ref).max()

    @pytest.mark.parametrize("size,depth", [(1, 1), (4, 2), (8, 3)])
    def test_ppcg_with_3d_matrix_powers(self, size, depth):
        g, faces, bg, x_ref = system_3d()
        x, res = run_solver(g, faces, bg, size, ppcg_solve, halo=depth,
                            eps=1e-11, inner_steps=8, halo_depth=depth,
                            warmup_iters=10)
        assert res.converged
        assert np.abs(x - x_ref).max() <= 1e-8 * np.abs(x_ref).max()

    def test_matrix_powers_depth_invariance_3d(self):
        g, faces, bg, _ = system_3d()
        results = {}
        for depth in (1, 2, 3):
            _, res = run_solver(g, faces, bg, 8, ppcg_solve, halo=depth,
                                eps=1e-11, inner_steps=6, halo_depth=depth,
                                warmup_iters=10)
            results[depth] = res.iterations
        assert len(set(results.values())) == 1

    def test_chebyshev(self):
        g, faces, bg, x_ref = system_3d()
        x, res = run_solver(g, faces, bg, 4, chebyshev_solve, eps=1e-9,
                            warmup_iters=15)
        assert res.converged
        assert np.abs(x - x_ref).max() <= 1e-5 * np.abs(x_ref).max()

    def test_cg_fused(self):
        g, faces, bg, x_ref = system_3d()
        x, res = run_solver(g, faces, bg, 4, cg_fused_solve, eps=1e-11)
        assert res.converged
        assert np.abs(x - x_ref).max() <= 1e-8 * np.abs(x_ref).max()

    def test_diagonal_preconditioner_3d(self):
        from repro.solvers import DiagonalPreconditioner
        g, faces, bg, x_ref = system_3d()
        kx, ky, kz = faces
        t = decompose3d(g, 1)[0]
        op = DistributedOperator3D.from_global_faces(t, 1, kx, ky, kz,
                                                     SerialComm())
        b = Field3D.from_global(t, 1, bg)
        res = cg_solve(op, b, eps=1e-11,
                       preconditioner=DiagonalPreconditioner(op))
        assert res.converged
        assert np.abs(res.x.interior - x_ref).max() <= \
            1e-8 * np.abs(x_ref).max()

    def test_block_jacobi_rejected_in_3d(self):
        from repro.solvers import BlockJacobiPreconditioner
        g, faces, _, _ = system_3d(6)
        kx, ky, kz = faces
        t = decompose3d(g, 1)[0]
        op = DistributedOperator3D.from_global_faces(t, 1, kx, ky, kz,
                                                     SerialComm())
        with pytest.raises(ConfigurationError, match="2D"):
            BlockJacobiPreconditioner(op)
