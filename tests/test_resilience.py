"""Unit tests: deterministic fault injection, retry, guard, degradation."""

import numpy as np
import pytest

from repro.comm import (
    EventWindow,
    InstrumentedComm,
    SerialComm,
    launch_spmd,
)
from repro.mesh import Field, Grid2D
from repro.resilience import (
    CrashWindow,
    FaultPlan,
    FaultRule,
    FaultyComm,
    SolverGuard,
    build_resilient_comm,
    run_resilient,
)
from repro.solvers import (
    EigenBounds,
    SolverOptions,
    cg_fused_solve,
    cg_solve,
    chebyshev_solve,
    deflated_cg_solve,
    jacobi_solve,
    ppcg_solve,
)
from repro.utils import EventLog
from repro.utils.errors import (
    CommunicationError,
    ConfigurationError,
    ConvergenceError,
    TransientCommError,
)

from tests.helpers import crooked_pipe_system, serial_operator

#: The acceptance-criteria fault mix: 2% transient wire errors on every op
#: class plus 1% NaN-corrupted allreduce results.
MIX_PLAN = FaultPlan(seed=7, rules=(
    FaultRule(mode="error", probability=0.02,
              ops=("send", "recv", "allreduce")),
    FaultRule(mode="corrupt_nan", probability=0.02, ops=("allreduce",)),
))

CG_OPTS = SolverOptions(solver="cg", eps=1e-10, max_iters=600,
                        guard_interval=5)


def serial_system(n=24, halo=1):
    g, kx, ky, bg = crooked_pipe_system(n)
    op = serial_operator(g, kx, ky, halo=halo)
    b = Field.from_global(op.tile, halo, bg)
    return op, b


class TestFaultPlan:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(mode="explode")

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(mode="error", probability=1.5)

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(mode="error", ops=("sendrecv",))

    def test_disabled_plan_is_inert(self):
        comm = FaultyComm(SerialComm(), FaultPlan.disabled())
        assert comm.allreduce(3.0) == 3.0
        assert comm.log == []

    def test_transient_shorthand(self):
        plan = FaultPlan.transient(0.25, seed=3)
        assert plan.active()
        assert plan.rules[0].mode == "error"
        assert plan.rules[0].probability == 0.25

    def test_certain_error_raises_and_logs(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(mode="error", probability=1.0, ops=("allreduce",)),))
        comm = FaultyComm(SerialComm(), plan)
        with pytest.raises(TransientCommError):
            comm.allreduce(1.0)
        assert len(comm.log) == 1 and comm.log[0].op == "allreduce"

    def test_max_faults_caps_firing(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(mode="corrupt_sign", probability=1.0,
                      ops=("allreduce",), max_faults=2),))
        comm = FaultyComm(SerialComm(), plan)
        values = [comm.allreduce(1.0) for _ in range(5)]
        assert values == [-1.0, -1.0, 1.0, 1.0, 1.0]
        assert len(comm.log) == 2


class TestDeterminism:
    def test_same_seed_identical_runs(self):
        a = run_resilient(CG_OPTS, MIX_PLAN, n=24)
        b = run_resilient(CG_OPTS, MIX_PLAN, n=24)
        assert a.fault_events == b.fault_events
        assert a.iterations == b.iterations
        assert a.residual_norm == b.residual_norm

    def test_different_seed_different_faults(self):
        other = FaultPlan(seed=8, rules=MIX_PLAN.rules)
        a = run_resilient(CG_OPTS, MIX_PLAN, n=24)
        b = run_resilient(CG_OPTS, other, n=24)
        assert a.fault_events != b.fault_events

    def test_events_carry_iteration_stamp(self):
        report = run_resilient(CG_OPTS, MIX_PLAN, n=24)
        assert report.fault_events
        assert all(ev.iteration >= 0 for ev in report.fault_events)


class TestAcceptance:
    """ISSUE acceptance: >=1% faults + corrupted allreduce, same answer."""

    @pytest.mark.parametrize("options", [
        CG_OPTS,
        SolverOptions(solver="ppcg", eps=1e-10, max_iters=200,
                      ppcg_inner_steps=4, eigen_warmup_iters=10,
                      guard_interval=5, degrade=True),
        SolverOptions(solver="ppcg", eps=1e-10, max_iters=200,
                      ppcg_inner_steps=8, halo_depth=4,
                      eigen_warmup_iters=10, guard_interval=5, degrade=True),
    ], ids=["cg", "ppcg", "cppcg4"])
    def test_converges_like_fault_free(self, options):
        clean = run_resilient(options, FaultPlan.disabled(), n=24)
        faulty = run_resilient(options, MIX_PLAN, n=24)
        assert clean.converged and faulty.converged
        assert faulty.relative_residual <= 1e-10
        assert faulty.iterations == clean.iterations
        np.testing.assert_allclose(faulty.x, clean.x, atol=1e-9)

    def test_faults_actually_fired(self):
        report = run_resilient(CG_OPTS, MIX_PLAN, n=24)
        assert len(report.fault_events) >= 1
        assert any(ev.mode.startswith("corrupt") and ev.op == "allreduce"
                   for ev in report.fault_events)


class TestRetryNotCounted:
    """Satellite: retries must never inflate COMM_CONTRACT counts."""

    def test_contract_counts_unchanged_under_faults(self):
        from repro.mesh import decompose
        from repro.solvers import StencilOperator2D

        def counted_solve(plan):
            grid, kxg, kyg, bg = crooked_pipe_system(24)
            stack = build_resilient_comm(SerialComm(), plan)
            tile = decompose(grid, 1)[0]
            op = StencilOperator2D.from_global_faces(
                tile, 1, kxg, kyg, stack.comm, events=stack.events)
            b = Field.from_global(tile, 1, bg)
            with EventWindow(stack.events) as w:
                result = cg_solve(op, b, eps=1e-10, max_iters=600)
            return result, w

        # Error-only plan: retried ops succeed, nothing is corrupted, so
        # the logical operation stream is identical to fault-free.
        plan = FaultPlan(seed=7, rules=(
            FaultRule(mode="error", probability=0.05, ops=("allreduce",)),))
        clean, w_clean = counted_solve(FaultPlan.disabled())
        faulty, w_faulty = counted_solve(plan)
        assert w_clean.retry_count() == 0
        assert w_faulty.retry_count() > 0
        assert clean.iterations == faulty.iterations
        assert (w_faulty.count_kind("allreduce")
                == w_clean.count_kind("allreduce"))

    def test_verify_contracts_through_resilient_stack(self):
        from repro.analysis.verify import verify_contracts
        reports = verify_contracts(n=16, names=["cg"], resilience=True)
        assert reports and all(r.ok for r in reports)


class TestGuard:
    class FakeField:
        def __init__(self, data):
            self.data = np.asarray(data, dtype=float)

    def test_rollback_restores_data(self):
        f = self.FakeField([1.0, 2.0])
        guard = SolverGuard(checkpoint_interval=5)
        guard.save(0, fields={"f": f}, scalars={"k": 42})
        f.data[...] = [9.0, 9.0]
        snap = guard.rollback("test")
        assert snap.iteration == 0 and snap.scalars == {"k": 42}
        np.testing.assert_array_equal(f.data, [1.0, 2.0])

    def test_healthy_screens_nan_and_divergence(self):
        guard = SolverGuard(divergence_ratio=10.0)
        assert guard.healthy(1.0)
        assert not guard.healthy(float("nan"))
        assert not guard.healthy(float("inf"))
        assert not guard.healthy(100.0)   # > 10 x best (1.0)
        assert guard.healthy(5.0)

    def test_rollback_without_checkpoint_raises(self):
        guard = SolverGuard()
        with pytest.raises(ConvergenceError):
            guard.rollback()

    def test_consecutive_budget_exhausts(self):
        f = self.FakeField([0.0])
        guard = SolverGuard(max_rollbacks=2)
        guard.save(0, fields={"f": f}, scalars={})
        guard.rollback()
        guard.rollback()
        with pytest.raises(ConvergenceError, match="budget exhausted"):
            guard.rollback()

    def test_healthy_iteration_resets_budget(self):
        f = self.FakeField([0.0])
        guard = SolverGuard(max_rollbacks=1)
        guard.save(0, fields={"f": f}, scalars={})
        guard.rollback()
        assert guard.healthy(1.0)
        guard.rollback()  # budget was reset; must not raise
        assert guard.rollbacks == 2

    def test_guard_recovers_corrupted_cg(self):
        """A NaN'd allreduce rolls back instead of poisoning the solve."""
        plan = FaultPlan(seed=7, rules=(
            FaultRule(mode="corrupt_nan", probability=0.02,
                      ops=("allreduce",)),))
        report = run_resilient(CG_OPTS, plan, n=24)
        assert report.converged and report.rollbacks >= 1
        assert any(ev.action == "rollback" for ev in report.guard_events)


class TestDegradation:
    def _deep_exchange_poisoned(self, halo):
        op, b = serial_system(32, halo=halo)
        real = op.exchanger.exchange

        def failing(fields, depth=1, **kw):
            if depth > 1:
                raise CommunicationError("injected deep-halo failure")
            return real(fields, depth=depth, **kw)

        op.exchanger.exchange = failing
        return op, b

    def test_chebyshev_falls_back_to_depth_1(self):
        op, b = self._deep_exchange_poisoned(4)
        result = chebyshev_solve(op, b, eps=1e-10, warmup_iters=10,
                                 halo_depth=4, degrade=True)
        assert result.converged and result.degraded
        assert "4 -> 1" in result.degraded_reason

    def test_chebyshev_without_degrade_raises(self):
        op, b = self._deep_exchange_poisoned(4)
        with pytest.raises(CommunicationError):
            chebyshev_solve(op, b, eps=1e-10, warmup_iters=10, halo_depth=4)

    def test_ppcg_falls_back_to_depth_1(self):
        op, b = self._deep_exchange_poisoned(4)
        result = ppcg_solve(op, b, eps=1e-10, inner_steps=8, halo_depth=4,
                            warmup_iters=10, degrade=True)
        assert result.converged and result.degraded

    def test_ppcg_degenerate_bounds_fall_back_to_cg(self):
        op, b = serial_system(32)
        result = ppcg_solve(op, b, eps=1e-10, warmup_iters=10,
                            bounds=EigenBounds(1.0, 1.0), degrade=True)
        assert result.converged and result.degraded
        assert "plain CG" in result.degraded_reason

    def test_ppcg_degenerate_bounds_without_degrade_raises(self):
        op, b = serial_system(32)
        with pytest.raises(ConfigurationError):
            ppcg_solve(op, b, eps=1e-10, warmup_iters=10,
                       bounds=EigenBounds(1.0, 1.0))


class TestCrashWindows:
    def test_survivable_crash(self):
        plan = FaultPlan(seed=3,
                         crashes=(CrashWindow(rank=1, start=40, length=3),))
        report = run_resilient(CG_OPTS, plan, n=24, size=4)
        assert report.converged
        crash = [ev for ev in report.fault_events if ev.rule == -1]
        assert crash and all(ev.rank == 1 for ev in crash)

    def test_fatal_crash_raises(self):
        plan = FaultPlan(seed=3,
                         crashes=(CrashWindow(rank=1, start=40, length=10),))
        with pytest.raises(CommunicationError):
            run_resilient(CG_OPTS, plan, n=24, size=4, max_attempts=5)

    def test_determinism_across_ranks(self):
        plan = FaultPlan(seed=11, rules=(
            FaultRule(mode="error", probability=0.01,
                      ops=("send", "recv", "allreduce")),))
        a = run_resilient(CG_OPTS, plan, n=24, size=4)
        b = run_resilient(CG_OPTS, plan, n=24, size=4)
        assert a.converged and a.fault_events == b.fault_events
        assert a.iterations == b.iterations


class TestDropAndTimeout:
    def test_dropped_send_times_out_receiver(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(mode="drop", probability=1.0, ops=("send",)),))

        def rank_main(comm):
            stack = build_resilient_comm(comm, plan, recv_timeout=0.2)
            peer = 1 - comm.rank
            stack.comm.send(comm.rank, dest=peer, tag=0)
            return stack.comm.recv(source=peer, tag=0)

        with pytest.raises(CommunicationError):
            launch_spmd(rank_main, 2)

    def test_timeout_error_is_not_retried(self):
        """Timeouts are plain CommunicationError: retrying cannot help."""
        plan = FaultPlan(seed=0, rules=(
            FaultRule(mode="drop", probability=1.0, ops=("send",)),))
        retried = []

        def rank_main(comm):
            stack = build_resilient_comm(comm, plan, recv_timeout=0.2)
            peer = 1 - comm.rank
            stack.comm.send(comm.rank, dest=peer, tag=0)
            try:
                stack.comm.recv(source=peer, tag=0)
            finally:
                retried.append(stack.retrying.retries)
            return None

        with pytest.raises(CommunicationError):
            launch_spmd(rank_main, 2)
        assert retried and all(r == 0 for r in retried)


class TestFaultPlanRoundTrip:
    """Satellite: FaultPlan ⇄ dict ⇄ JSON round-trips exactly."""

    FULL_PLAN = FaultPlan(seed=42, rules=(
        # every field non-default at least once, every corruption mode
        FaultRule(mode="error", probability=0.015,
                  ops=("send", "recv", "allreduce"), ranks=(0, 2),
                  tags=(101, 102), min_bytes=64, window=(10, 20),
                  max_faults=3, delay_s=0.5, scale=7.0),
        FaultRule(mode="drop", probability=1.0, ops=("send",),
                  max_faults=1),
        FaultRule(mode="delay", probability=0.25, ops=("recv",),
                  delay_s=2e-3),
        FaultRule(mode="corrupt_nan", probability=0.1, ops=("allreduce",)),
        FaultRule(mode="corrupt_inf", probability=0.1, ops=("bcast",)),
        FaultRule(mode="corrupt_sign", probability=0.1, ops=("gather",),
                  window=(0, 1)),
        FaultRule(mode="corrupt_scale", probability=0.1,
                  ops=("allreduce", "allgather"), scale=1e-12,
                  window=(5, 1 << 40)),
    ), crashes=(
        CrashWindow(rank=0, start=0, length=1),
        CrashWindow(rank=3, start=100, length=17),
    ))

    def test_round_trip_identity(self):
        plan = self.FULL_PLAN
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_through_json_bytes(self):
        import json
        plan = self.FULL_PLAN
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan
        # and serializing the rebuilt plan is byte-identical
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) \
            == json.dumps(plan.to_dict(), sort_keys=True)

    def test_disabled_plan_round_trips(self):
        plan = FaultPlan.disabled()
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan and not rebuilt.active()

    def test_none_filters_survive(self):
        rule = FaultRule(mode="error", probability=0.5)
        back = FaultRule.from_dict(rule.to_dict())
        assert back.ranks is None and back.tags is None \
            and back.window is None and back.max_faults is None
        assert back == rule

    def test_window_edges_preserved_as_tuples(self):
        # tuples come back as tuples (JSON lists must not leak through,
        # or frozen-dataclass equality and rule matching both break)
        rule = FaultRule.from_dict(FaultRule(
            mode="error", window=(0, 1), ops=("send",)).to_dict())
        assert rule.window == (0, 1) and isinstance(rule.window, tuple)
        assert rule.matches("send", 0, None, 8, 0)
        assert not rule.matches("send", 0, None, 8, 1)

    def test_unknown_schema_rejected(self):
        data = self.FULL_PLAN.to_dict()
        data["schema"] = "repro.fault_plan/v99"
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict(data)

    def test_invalid_mode_rejected_on_load(self):
        data = self.FULL_PLAN.to_dict()
        data["rules"][0]["mode"] = "explode"
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict(data)


class TestRetryBackoffCap:
    """Satellite: the backoff cap and final-attempt error semantics."""

    class _AlwaysFailing(SerialComm):
        def __init__(self, exc_class=TransientCommError):
            super().__init__()
            self.exc_class = exc_class
            self.attempts = 0

        def allreduce(self, value, op="sum"):
            self.attempts += 1
            raise self.exc_class("injected")

    def test_backoff_cap_honored(self):
        from repro.resilience import RetryingComm, VirtualClock

        inner = self._AlwaysFailing()
        clock = VirtualClock()
        comm = RetryingComm(inner, max_attempts=20, base_delay=1e-3,
                            backoff=2.0, max_delay=0.01, clock=clock)
        with pytest.raises(TransientCommError):
            comm.allreduce(1.0)
        assert inner.attempts == 20
        # 19 sleeps of min(1e-3 * 2**k, 0.01): uncapped this would charge
        # ~262 s; the cap keeps the whole chain under 19 * max_delay.
        expected = sum(min(1e-3 * 2.0 ** k, 0.01) for k in range(19))
        assert clock.now == pytest.approx(expected)
        assert clock.now <= 19 * 0.01

    def test_cap_below_base_delay_rejected(self):
        from repro.resilience import RetryingComm

        with pytest.raises(ConfigurationError):
            RetryingComm(SerialComm(), base_delay=1e-2, max_delay=1e-3)

    def test_final_attempt_reraises_retryable_class(self):
        """Exhausting the budget re-raises the *retryable* error class.

        Solver-level recovery distinguishes a transient-fault death
        (worth a rank-recovery attempt) from a fail-fast plain
        CommunicationError; collapsing the class on the last attempt
        would erase that signal.
        """
        from repro.resilience import RetryingComm
        from repro.utils.errors import ChecksumError

        for exc_class in (TransientCommError, ChecksumError):
            inner = self._AlwaysFailing(exc_class)
            comm = RetryingComm(inner, max_attempts=3)
            with pytest.raises(exc_class):
                comm.allreduce(1.0)
            assert inner.attempts == 3

    def test_recv_timeout_forwarded_on_every_attempt(self):
        """Each attempt gets the per-attempt timeout — the final one too.

        A recv whose early attempts die of transient faults must still
        pass ``recv_timeout`` to the last attempt, so a dropped message
        surfaces as a bounded timeout instead of the thread world's
        120 s deadlock guard.
        """
        from repro.resilience import RetryingComm

        seen: list = []

        class _Inner(SerialComm):
            def recv(self, source, tag=0, timeout=None):
                seen.append(timeout)
                if len(seen) < 3:
                    raise TransientCommError("flaky")
                raise CommunicationError("receive timeout (simulated)")

        comm = RetryingComm(_Inner(), max_attempts=3, recv_timeout=0.25)
        with pytest.raises(CommunicationError):
            comm.recv(source=0)
        assert seen == [0.25, 0.25, 0.25]
        assert comm.retries == 2


class TestInputValidation:
    """Satellite: NaN/Inf in b or x0 fails upfront for every solver."""

    SOLVERS = {
        "jacobi": jacobi_solve,
        "cg": cg_solve,
        "cg_fused": cg_fused_solve,
        "dcg": deflated_cg_solve,
        "chebyshev": chebyshev_solve,
        "ppcg": ppcg_solve,
    }

    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_nan_rhs_rejected(self, name):
        op, b = serial_system(8)
        b.interior[2, 3] = float("nan")
        with pytest.raises(ValueError, match="non-finite"):
            self.SOLVERS[name](op, b)

    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_inf_x0_rejected(self, name):
        op, b = serial_system(8)
        x0 = op.new_field()
        x0.interior[0, 0] = float("inf")
        with pytest.raises(ValueError, match="x0"):
            self.SOLVERS[name](op, b, x0)


class TestStallConsistency:
    """Satellite: cg/ppcg/chebyshev raise the same stall error shape."""

    CASES = {
        "cg": lambda op, b: cg_solve(op, b, eps=1e-300, max_iters=5,
                                     raise_on_stall=True),
        "chebyshev": lambda op, b: chebyshev_solve(
            op, b, eps=1e-300, max_iters=20, warmup_iters=8,
            raise_on_stall=True),
        "ppcg": lambda op, b: ppcg_solve(
            op, b, eps=1e-300, max_iters=5, inner_steps=4, warmup_iters=8,
            raise_on_stall=True),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_stall_message_format(self, name):
        op, b = serial_system(16)
        with pytest.raises(ConvergenceError) as exc_info:
            self.CASES[name](op, b)
        message = str(exc_info.value)
        assert message.startswith(f"{name} did not converge in ")
        assert "relative residual" in message and "eps" in message


class TestSimulationCheckpoint:
    def _sim(self):
        from repro.physics import crooked_pipe
        from repro.physics.simulation import Simulation
        options = SolverOptions(solver="cg", eps=1e-10, max_iters=400)
        return Simulation(SerialComm(), Grid2D(16, 16), crooked_pipe(),
                          options)

    def test_step_retry_reproduces_fault_free_run(self):
        baseline = self._sim().run(3)
        sim = self._sim()
        step, armed = sim.step, [True]

        def flaky():
            if sim.step_index == 1 and armed[0]:
                armed[0] = False
                raise ConvergenceError("injected")
            return step()

        sim.step = flaky
        stats = sim.run(3, checkpoint_interval=1, max_step_retries=2)
        assert [s.step for s in stats] == [s.step for s in baseline]
        assert stats[-1].mean_temperature == baseline[-1].mean_temperature

    def test_retry_budget_exhaustion_reraises(self):
        sim = self._sim()

        def always_fail():
            raise ConvergenceError("persistent")

        sim.step = always_fail
        with pytest.raises(ConvergenceError):
            sim.run(2, checkpoint_interval=1, max_step_retries=2)

    def test_no_checkpoint_means_no_retry(self):
        sim = self._sim()

        def always_fail():
            raise ConvergenceError("persistent")

        sim.step = always_fail
        with pytest.raises(ConvergenceError):
            sim.run(1, max_step_retries=5)


class TestSweepHarness:
    def test_small_sweep_converges_everywhere(self):
        from repro.harness.resilience_sweep import run_resilience_sweep
        sweep = run_resilience_sweep(n=16, rates=(0.0, 0.02))
        for key, report in sweep.reports.items():
            assert report.converged, key
        clean = sweep.report("cg", 0.0)
        faulty = sweep.report("cg", 0.02)
        assert clean.iterations == faulty.iterations
