"""Tests for the static SPMD rules (RPR009-RPR011).

Covers: each rule on synthetic positive/negative snippets, the transitive
(helper-call) variants, the checked-in mutation fixtures against their
golden report, the SPMD-exemption and exclusion globs, the real halo
modules staying clean, the RPR004 nested/async walker fix, and the
``--update-baseline`` CLI workflow.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_paths
from repro.analysis.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "spmd_mutations"


def write_mod(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def run(tmp_path: Path, **kwargs):
    return analyze_paths([tmp_path], AnalysisConfig(root=tmp_path), **kwargs)


def codes(result) -> list[str]:
    return [f.code for f in result.findings]


# -- RPR009: collective divergence ---------------------------------------------


def test_rank_guarded_collective_flagged(tmp_path):
    write_mod(tmp_path, """
        def f(comm, x):
            if comm.rank == 0:
                return comm.allreduce(x)
            return 0.0
    """)
    assert codes(run(tmp_path)) == ["RPR009"]


def test_transitive_guard_through_helper_flagged(tmp_path):
    write_mod(tmp_path, """
        def _norm(comm, x):
            return comm.allreduce(x * x)

        def f(comm, x):
            me = comm.rank
            if me == 0:
                return _norm(comm, x)
            return 0.0
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR009"]
    # Provenance points at the helper *call site* inside the guard.
    assert result.findings[0].symbol == "f"


def test_symmetric_branches_are_clean(tmp_path):
    write_mod(tmp_path, """
        def f(comm, payload):
            if comm.rank == 0:
                return comm.bcast(payload)
            return comm.bcast(None)
    """)
    assert codes(run(tmp_path)) == []


def test_mismatched_reduce_op_flagged(tmp_path):
    write_mod(tmp_path, """
        def f(comm, x):
            if comm.rank == 0:
                return comm.allreduce(x, "max")
            return comm.allreduce(x, "sum")
    """)
    assert codes(run(tmp_path)) == ["RPR009", "RPR009"]


def test_early_exit_before_collective_flagged(tmp_path):
    write_mod(tmp_path, """
        def f(comm, x):
            if comm.rank == 0:
                return x
            comm.barrier()
            return x
    """)
    assert codes(run(tmp_path)) == ["RPR009"]


def test_symmetric_early_exit_is_clean(tmp_path):
    write_mod(tmp_path, """
        def f(comm, x):
            if comm.rank == 0:
                comm.barrier()
                return x
            comm.barrier()
            return x
    """)
    assert codes(run(tmp_path)) == []


def test_rank_bound_loop_flagged(tmp_path):
    write_mod(tmp_path, """
        def f(comm, x):
            for _ in range(comm.rank):
                comm.allreduce(x)
    """)
    assert codes(run(tmp_path)) == ["RPR009"]


def test_uniform_guard_is_clean(tmp_path):
    write_mod(tmp_path, """
        def f(comm, x, verbose):
            if verbose:
                return comm.allreduce(x)
            return comm.allreduce(x)
    """)
    assert codes(run(tmp_path)) == []


# -- RPR010: tag/peer mismatch -------------------------------------------------


def test_unreceived_tag_flagged(tmp_path):
    write_mod(tmp_path, """
        def exchange(comm, t, lo, hi):
            comm.send(lo, t.left, 1)
            comm.send(hi, t.right, 2)
            a = comm.recv(t.left, 1)
            b = comm.recv(t.right, 1)
            return a, b
    """)
    assert "RPR010" in codes(run(tmp_path))


def test_crossed_directions_flagged(tmp_path):
    # Tags balance as sets, but each recv listens for the tag of the
    # message travelling the *same* way it came from.
    write_mod(tmp_path, """
        def exchange(comm, t, lo, hi):
            comm.send(lo, t.left, 1)
            comm.send(hi, t.right, 2)
            a = comm.recv(t.left, 1)
            b = comm.recv(t.right, 2)
            return a, b
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR010", "RPR010"]
    assert "crossed halo directions" in result.findings[0].message


def test_canonical_exchange_is_clean(tmp_path):
    write_mod(tmp_path, """
        def exchange(comm, t, lo, hi):
            comm.send(lo, t.left, 1)
            comm.send(hi, t.right, 2)
            a = comm.recv(t.left, 2)
            b = comm.recv(t.right, 1)
            return a, b
    """)
    assert codes(run(tmp_path)) == []


def test_tags_balanced_across_helpers(tmp_path):
    # The send and its matching recv live in different helpers of one
    # exchange; RPR010 merges summaries across the local call graph.
    write_mod(tmp_path, """
        def _post(comm, t, lo, hi):
            comm.send(lo, t.left, 1)
            comm.send(hi, t.right, 2)

        def exchange(comm, t, lo, hi):
            _post(comm, t, lo, hi)
            a = comm.recv(t.left, 2)
            b = comm.recv(t.right, 1)
            return a, b
    """)
    assert codes(run(tmp_path)) == []


def test_symbolic_module_const_tags_resolve(tmp_path):
    write_mod(tmp_path, """
        TAG_L, TAG_R = 7, 8

        def exchange(comm, t, lo, hi):
            comm.send(lo, t.left, TAG_L)
            comm.send(hi, t.right, TAG_R)
            a = comm.recv(t.left, 8)
            b = comm.recv(t.right, TAG_L)
            return a, b
    """)
    assert codes(run(tmp_path)) == []


def test_master_worker_pattern_is_clean(tmp_path):
    write_mod(tmp_path, """
        def f(comm, obj):
            if comm.rank == 0:
                comm.send(obj, 1, 7)
                return None
            return comm.recv(0, 7)
    """)
    assert codes(run(tmp_path)) == []


# -- RPR011: non-blocking buffer aliasing --------------------------------------


def test_mutation_before_wait_flagged(tmp_path):
    write_mod(tmp_path, """
        def f(comm, a, dest):
            req = comm.isend(a[0, :], dest, 7)
            a[0, :] = 0.0
            req.wait()
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR011"]
    assert "mutated before the matching wait()" in result.findings[0].message


def test_staging_copy_is_clean(tmp_path):
    write_mod(tmp_path, """
        import numpy as np

        def f(comm, a, dest):
            req = comm.isend(np.ascontiguousarray(a[0, :]), dest, 7)
            a[0, :] = 0.0
            req.wait()
    """)
    assert codes(run(tmp_path)) == []


def test_dropped_request_flagged(tmp_path):
    write_mod(tmp_path, """
        def f(comm, source):
            req = comm.irecv(source, 9)
            return None
    """)
    assert codes(run(tmp_path)) == ["RPR011"]


def test_overwritten_request_flagged(tmp_path):
    write_mod(tmp_path, """
        def f(comm, a, dest):
            req = comm.isend(a[0, :], dest, 3)
            req = comm.isend(a[1, :], dest, 4)
            req.wait()
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR011"]
    assert "overwritten without wait()" in result.findings[0].message


def test_escaping_request_is_clean(tmp_path):
    # The begin/end split-phase idiom: handles escape into a dict the
    # caller completes later.
    write_mod(tmp_path, """
        def begin(comm, source, pending):
            pending["rx"] = comm.irecv(source, 9)
            return pending
    """)
    assert codes(run(tmp_path)) == []


def test_mutation_after_wait_is_clean(tmp_path):
    write_mod(tmp_path, """
        def f(comm, a, dest):
            req = comm.isend(a[0, :], dest, 7)
            req.wait()
            a[0, :] = 0.0
    """)
    assert codes(run(tmp_path)) == []


# -- scoping: exemption and exclusion globs ------------------------------------


def test_comm_substrate_is_exempt(tmp_path):
    d = tmp_path / "comm"
    d.mkdir()
    (d / "impl.py").write_text(textwrap.dedent("""
        def route(comm, x):
            if comm.rank == 0:
                return comm.allreduce(x)
            return 0.0
    """))
    assert codes(run(tmp_path)) == []
    # The same file outside comm/ is flagged.
    (tmp_path / "other.py").write_text((d / "impl.py").read_text())
    assert codes(run(tmp_path)) == ["RPR009"]


def test_fixture_exclusion_glob(tmp_path):
    d = tmp_path / "fixtures"
    d.mkdir()
    (d / "bad.py").write_text(textwrap.dedent("""
        def f(comm, x):
            if comm.rank == 0:
                return comm.allreduce(x)
            return 0.0
    """))
    assert codes(run(tmp_path)) == []
    cfg = AnalysisConfig(root=tmp_path, exclude=())
    assert codes(analyze_paths([tmp_path], cfg)) == ["RPR009"]


# -- mutation fixtures vs golden report ----------------------------------------


def test_mutation_fixtures_match_golden():
    cfg = AnalysisConfig(root=REPO_ROOT, exclude=())
    result = analyze_paths([FIXTURES], cfg)
    key = lambda d: (d["path"], d["line"], d["code"])  # noqa: E731
    got = sorted(
        ({"code": f.code, "path": f.path, "line": f.line, "symbol": f.symbol,
          "message": f.message}
         for f in result.findings), key=key)
    golden = sorted(json.loads((FIXTURES / "golden.json").read_text()),
                    key=key)
    assert got == golden


def test_every_spmd_rule_fires_in_fixtures():
    cfg = AnalysisConfig(root=REPO_ROOT, exclude=())
    found = {f.code for f in analyze_paths([FIXTURES], cfg).findings}
    assert {"RPR009", "RPR010", "RPR011"} <= found


def test_real_halo_modules_are_clean():
    src = REPO_ROOT / "src" / "repro"
    cfg = AnalysisConfig(root=REPO_ROOT)
    result = analyze_paths(
        [src / "mesh" / "halo.py", src / "mesh" / "halo3d.py"], cfg,
        rule_filter=lambda r: r.code in {"RPR009", "RPR010", "RPR011"})
    assert result.findings == []


# -- satellite: RPR004 walker covers nested and async defs ---------------------


def _solver(tmp_path: Path, source: str) -> Path:
    d = tmp_path / "solvers"
    d.mkdir(exist_ok=True)
    path = d / "mod.py"
    path.write_text(textwrap.dedent(source))
    return path


def test_rpr004_sees_nested_function(tmp_path):
    _solver(tmp_path, """
        import numpy as np

        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            def step():
                for _ in range(3):
                    w = np.zeros(4)
            it = 0
            while it < max_iters:
                op.apply(b, b)
                op.dots([(b, b)])
                it += 1
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR004"]
    assert result.findings[0].symbol == "my_solve.step"


def test_rpr004_sees_async_def(tmp_path):
    _solver(tmp_path, """
        import numpy as np

        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            it = 0
            while it < max_iters:
                op.apply(b, b)
                op.dots([(b, b)])
                it += 1

        async def drain(op):
            async for chunk in op.stream():
                buf = np.empty(8)
    """)
    result = run(tmp_path)
    assert codes(result) == ["RPR004"]
    assert result.findings[0].symbol == "drain"


def test_rpr004_nested_loop_not_double_reported(tmp_path):
    # The allocation sits in a closure's loop that is also reachable from
    # the enclosing function's walk — exactly one finding must emerge.
    _solver(tmp_path, """
        import numpy as np

        COMM_CONTRACT = {"solver": "my", "halo_exchanges_per_iter": 1,
                         "allreduces_per_iter": 2, "halo_depth": 1}

        def my_solve(op, b, max_iters=10):
            it = 0
            while it < max_iters:
                def inner():
                    for _ in range(2):
                        w = np.zeros(4)
                op.apply(b, b)
                op.dots([(b, b)])
                it += 1
    """)
    assert codes(run(tmp_path)) == ["RPR004"]


# -- satellite: --update-baseline workflow -------------------------------------


def test_update_baseline_roundtrip(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(textwrap.dedent("""
        def f(comm, x):
            if comm.rank == 0:
                return comm.allreduce(x)
            return 0.0
    """))
    baseline = tmp_path / "analysis-baseline.json"

    # First update records the debt and reports it as added.
    rc = cli_main(["--root", str(tmp_path), str(tmp_path),
                   "--update-baseline"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "+1 added" in out and "-0 removed" in out
    first = baseline.read_bytes()

    # With the baseline in place the gate passes.
    assert cli_main(["--root", str(tmp_path), str(tmp_path)]) == 0
    capsys.readouterr()

    # Rewriting an unchanged tree is byte-identical (deterministic).
    rc = cli_main(["--root", str(tmp_path), str(tmp_path),
                   "--update-baseline"])
    assert rc == 0
    assert "+0 added" in capsys.readouterr().out
    assert baseline.read_bytes() == first

    # Fixing the bug then updating retires the entry.
    (tmp_path / "mod.py").write_text("def f():\n    return 0\n")
    rc = cli_main(["--root", str(tmp_path), str(tmp_path),
                   "--update-baseline"])
    assert rc == 0
    assert "-1 removed" in capsys.readouterr().out
    assert json.loads(baseline.read_text())["findings"] == []


def test_list_rules_includes_spmd_codes(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR009", "RPR010", "RPR011"):
        assert code in out
