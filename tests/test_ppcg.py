"""Unit tests: CPPCG (the paper's solver)."""

import numpy as np
import pytest

from repro.mesh import Field, Grid2D
from repro.solvers import (
    EigenBounds,
    cg_solve,
    ppcg_solve,
)
from repro.utils import ConfigurationError, EventLog

from tests.helpers import (
    crooked_pipe_system,
    random_spd_faces,
    reference_solution,
    serial_operator,
)


class TestConvergence:
    @pytest.mark.parametrize("inner", [4, 10, 20])
    def test_matches_direct_solve(self, inner):
        g, kx, ky, bg = crooked_pipe_system(32)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-12, inner_steps=inner)
        assert result.converged
        assert np.allclose(result.x.interior, x_ref,
                           atol=1e-8 * np.abs(x_ref).max())

    def test_matrix_powers_same_answer(self):
        g, kx, ky, bg = crooked_pipe_system(32)

        def solve(depth):
            op = serial_operator(g, kx, ky, halo=depth)
            b = Field.from_global(op.tile, depth, bg)
            return ppcg_solve(op, b, eps=1e-12, inner_steps=10,
                              halo_depth=depth)

        r1, r4 = solve(1), solve(4)
        assert r1.iterations == r4.iterations  # identical iterates
        assert np.allclose(r1.x.interior, r4.x.interior, atol=1e-12)

    def test_random_system(self, rng):
        n = 24
        kx, ky = random_spd_faces(rng, n, n, scale=10.0)
        bg = rng.standard_normal((n, n))
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(Grid2D(n, n), kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-12, inner_steps=8)
        assert np.allclose(result.x.interior, x_ref, atol=1e-8)

    def test_warmup_convergence_short_circuits(self):
        g, kx, ky, bg = crooked_pipe_system(8)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-6, warmup_iters=500)
        assert result.converged
        assert result.iterations == 0
        assert result.warmup_iterations > 0

    def test_diagonal_inner_preconditioner(self):
        g, kx, ky, bg = crooked_pipe_system(24)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-11,
                            inner_preconditioner="diagonal")
        assert result.converged
        assert np.allclose(result.x.interior, x_ref, atol=1e-6)

    def test_block_jacobi_inner_depth1(self):
        g, kx, ky, bg = crooked_pipe_system(24)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-11,
                            inner_preconditioner="block_jacobi")
        assert result.converged

    def test_explicit_bounds(self, rng):
        from repro.solvers import StencilOperator2D
        n = 16
        kx, ky = random_spd_faces(rng, n, n)
        A = StencilOperator2D.assemble_sparse(kx, ky).toarray()
        eig = np.linalg.eigvalsh(A)
        bounds = EigenBounds(eig[0], eig[-1] * 1.001)
        op = serial_operator(Grid2D(n, n), kx, ky)
        b = Field.from_global(op.tile, 1, rng.standard_normal((n, n)))
        result = ppcg_solve(op, b, eps=1e-10, bounds=bounds, warmup_iters=3)
        assert result.converged
        assert result.eigen_bounds == (bounds.lam_min, bounds.lam_max)


class TestCommunicationAvoidance:
    def test_fewer_dot_products_than_cg(self):
        """The headline claim: CPPCG needs far fewer global reductions."""
        from repro.comm import InstrumentedComm, SerialComm
        from repro.mesh import decompose
        from repro.solvers import StencilOperator2D

        g, kx, ky, bg = crooked_pipe_system(48)

        def count(solver):
            log = EventLog()
            comm = InstrumentedComm(SerialComm(), log)
            tile = decompose(g, 1)[0]
            op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
            b = Field.from_global(tile, 1, bg)
            result = solver(op, b)
            assert result.converged
            return log.count_kind("allreduce")

        cg_dots = count(lambda op, b: cg_solve(op, b, eps=1e-10))
        ppcg_dots = count(lambda op, b: ppcg_solve(op, b, eps=1e-10,
                                                   inner_steps=10))
        assert ppcg_dots < cg_dots / 2

    def test_same_matvec_order_as_cg(self):
        """O'Leary: polynomial preconditioning cannot cut total matvecs."""
        g, kx, ky, bg = crooked_pipe_system(48)
        op1 = serial_operator(g, kx, ky)
        b1 = Field.from_global(op1.tile, 1, bg)
        cg = cg_solve(op1, b1, eps=1e-10)
        op2 = serial_operator(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        pp = ppcg_solve(op2, b2, eps=1e-10, inner_steps=10)
        cg_matvecs = op1.events.count("matvec")
        pp_matvecs = op2.events.count("matvec")
        # within a small factor of each other (not an order better)
        assert 0.3 < pp_matvecs / cg_matvecs < 3.0

    def test_outer_iterations_shrink_with_inner_steps(self):
        g, kx, ky, bg = crooked_pipe_system(48)

        def outer(m):
            op = serial_operator(g, kx, ky)
            b = Field.from_global(op.tile, 1, bg)
            return ppcg_solve(op, b, eps=1e-10, inner_steps=m).iterations

        o2, o8, o20 = outer(2), outer(8), outer(20)
        assert o20 < o8 < o2

    def test_inner_iteration_accounting(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-10, inner_steps=7)
        # one preconditioner application per outer iteration, plus the
        # initial application before the loop
        assert result.inner_iterations == 7 * (result.iterations + 1)


class TestValidation:
    def test_halo_depth_exceeds_field(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky, halo=2)
        b = Field.from_global(op.tile, 2, bg)
        with pytest.raises(ConfigurationError, match="halo"):
            ppcg_solve(op, b, halo_depth=4)

    def test_block_jacobi_with_matrix_powers(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky, halo=4)
        b = Field.from_global(op.tile, 4, bg)
        with pytest.raises(ConfigurationError, match="block Jacobi"):
            ppcg_solve(op, b, halo_depth=4,
                       inner_preconditioner="block_jacobi")

    def test_history_spans_both_phases(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-10, warmup_iters=10)
        assert len(result.history) == (result.warmup_iterations
                                       + result.iterations + 1)
