"""Profiles: analytic per-iteration shapes validated against real solves.

The performance model's credibility rests on these tests: the halo and
reduction counts it charges per iteration must be exactly what the
instrumented solvers emit.
"""

import math

import numpy as np
import pytest

from repro.comm import InstrumentedComm, SerialComm, launch_spmd
from repro.mesh import Field, Grid2D, decompose
from repro.perfmodel.profiles import (
    HaloSpec,
    SolverConfig,
    build_profile,
    warmup_profile,
)
from repro.solvers import StencilOperator2D, cg_solve, ppcg_solve
from repro.utils import ConfigurationError, EventLog

from tests.helpers import crooked_pipe_system


class TestSolverConfig:
    def test_labels_match_figure_legends(self):
        assert SolverConfig("cg").label == "CG - 1"
        assert SolverConfig("ppcg", halo_depth=16).label == "PPCG - 16"
        assert SolverConfig("mgcg").label == "BoomerAMG*"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SolverConfig("gmres")
        with pytest.raises(ConfigurationError):
            SolverConfig("ppcg", halo_depth=0)


class TestProfileShapes:
    def test_cg_profile(self):
        p = build_profile(SolverConfig("cg"))
        assert p.allreduces == 2.0
        assert p.halos == (HaloSpec(depth=1, fields=1, count=1.0),)
        assert p.matvecs == 1

    def test_ppcg_profile_matvecs(self):
        p = build_profile(SolverConfig("ppcg", inner_steps=10, halo_depth=4))
        assert p.matvecs == 11  # 1 outer + 10 inner
        assert p.allreduces == 2.0

    def test_ppcg_halo_blocks(self):
        p = build_profile(SolverConfig("ppcg", inner_steps=12, halo_depth=4))
        inner = [h for h in p.halos if h.depth == 4]
        assert sum(h.count for h in inner) == math.ceil(12 / 4)

    def test_ppcg_extension_schedule(self):
        p = build_profile(SolverConfig("ppcg", inner_steps=6, halo_depth=3))
        exts = [s.ext for s in p.stages if s.kernels == 1
                and s.bytes_per_cell == 32.0]
        # outer matvec at ext 0, then blocks [2,1,0,2,1,0]
        assert exts == [0, 2, 1, 0, 2, 1, 0]

    def test_warmup_profile_is_cg(self):
        assert warmup_profile() == build_profile(SolverConfig("cg"))


def _instrumented_solve(solver_fn, options_halo, size=4, n=32):
    """Run a solve on an instrumented world; return rank-0 log + result."""
    g, kx, ky, bg = crooked_pipe_system(n)

    def rank_main(comm):
        log = EventLog()
        comm = InstrumentedComm(comm, log)
        tile = decompose(g, comm.size)[comm.rank]
        op = StencilOperator2D.from_global_faces(tile, options_halo, kx, ky,
                                                 comm, events=log)
        b = Field.from_global(tile, options_halo, bg)
        result = solver_fn(op, b)
        return log, result

    out = launch_spmd(rank_main, size)
    return out[0]


class TestProfilesMatchInstrumentedRuns:
    def test_cg_halo_and_allreduce_counts(self):
        log, result = _instrumented_solve(
            lambda op, b: cg_solve(op, b, eps=1e-10), options_halo=1)
        profile = build_profile(SolverConfig("cg"))
        iters = result.iterations
        # +1: the initial residual matvec / setup reduction
        assert log.count("halo_exchange", 1) == \
            profile.halos[0].count * iters + 1
        assert log.count_kind("allreduce") == profile.allreduces * iters + 1

    @pytest.mark.parametrize("inner,depth", [(10, 1), (10, 4), (12, 8)])
    def test_ppcg_halo_counts(self, inner, depth):
        warmup = 15
        log, result = _instrumented_solve(
            lambda op, b: ppcg_solve(op, b, eps=1e-10, inner_steps=inner,
                                     halo_depth=depth, warmup_iters=warmup),
            options_halo=depth)
        assert result.converged and result.iterations > 0
        profile = build_profile(
            SolverConfig("ppcg", inner_steps=inner, halo_depth=depth))
        deep = [h for h in profile.halos if h.depth == depth and depth > 1]
        if depth > 1:
            expected_deep = sum(h.count for h in deep) \
                * (result.iterations + 1)  # +1: initial apply
            assert log.count("halo_exchange", depth) == expected_deep
        # outer allreduces: 2 per outer + 2 per warm-up + setup extras
        n_allreduce = log.count_kind("allreduce")
        expected = (2 * result.iterations + 2 * result.warmup_iterations)
        assert abs(n_allreduce - expected) <= 3

    def test_ppcg_matvec_cells_include_redundancy(self):
        """Measured matvec cells exceed interior-only by the extension work."""
        depth, inner = 4, 8
        log1, res1 = _instrumented_solve(
            lambda op, b: ppcg_solve(op, b, eps=1e-10, inner_steps=inner,
                                     halo_depth=1, warmup_iters=10),
            options_halo=1)
        logd, resd = _instrumented_solve(
            lambda op, b: ppcg_solve(op, b, eps=1e-10, inner_steps=inner,
                                     halo_depth=depth, warmup_iters=10),
            options_halo=depth)
        assert res1.iterations == resd.iterations  # identical algebra
        assert logd.total("matvec", "cells") > log1.total("matvec", "cells")
