"""Unit tests: communicators (serial, threaded, instrumented, spmd)."""

import numpy as np
import pytest

from repro.comm import (
    InstrumentedComm,
    SerialComm,
    ThreadWorld,
    launch_spmd,
)
from repro.utils import CommunicationError, EventLog


class TestSerialComm:
    def test_identity_collectives(self):
        c = SerialComm()
        assert c.rank == 0 and c.size == 1
        assert c.allreduce(5.0) == 5.0
        assert c.allreduce(3.0, op="max") == 3.0
        assert c.bcast("x") == "x"
        assert c.gather(7) == [7]
        assert c.allgather(7) == [7]
        c.barrier()

    def test_allgather_isolates(self):
        c = SerialComm()
        a = np.ones(3)
        out = c.allgather(a)[0]
        out[0] = 99
        assert a[0] == 1.0

    def test_p2p_raises(self):
        c = SerialComm()
        with pytest.raises(CommunicationError):
            c.send(1, dest=0)
        with pytest.raises(CommunicationError):
            c.recv(source=0)

    def test_bad_root(self):
        with pytest.raises(CommunicationError):
            SerialComm().bcast("x", root=1)

    def test_unknown_reduce_op(self):
        with pytest.raises(CommunicationError):
            SerialComm().allreduce(1.0, op="median")


class TestThreadComm:
    def test_send_recv_pairs(self):
        def rank_main(comm):
            peer = 1 - comm.rank
            comm.send(f"from-{comm.rank}", dest=peer, tag=5)
            return comm.recv(source=peer, tag=5)

        out = launch_spmd(rank_main, 2)
        assert out == ["from-1", "from-0"]

    def test_messages_fifo_per_tag(self):
        def rank_main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=9)
                return None
            return [comm.recv(source=0, tag=9) for _ in range(5)]

        out = launch_spmd(rank_main, 2)
        assert out[1] == [0, 1, 2, 3, 4]

    def test_tags_do_not_cross(self):
        def rank_main(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            b = comm.recv(source=0, tag=2)
            a = comm.recv(source=0, tag=1)
            return (a, b)

        assert launch_spmd(rank_main, 2)[1] == ("a", "b")

    def test_send_copies_arrays(self):
        def rank_main(comm):
            if comm.rank == 0:
                a = np.ones(4)
                comm.send(a, dest=1)
                a[...] = -1  # mutate after send
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0)

        out = launch_spmd(rank_main, 2)
        assert np.all(out[1] == 1.0)

    @pytest.mark.parametrize("size", [2, 3, 5])
    def test_allreduce_sum_deterministic(self, size):
        def rank_main(comm):
            return comm.allreduce(float(comm.rank + 1))

        out = launch_spmd(rank_main, size)
        expect = sum(range(1, size + 1))
        assert all(v == expect for v in out)

    def test_allreduce_ops(self):
        def rank_main(comm):
            v = float(comm.rank + 1)
            return (comm.allreduce(v, "max"), comm.allreduce(v, "min"),
                    comm.allreduce(v, "prod"))

        out = launch_spmd(rank_main, 3)
        assert all(o == (3.0, 1.0, 6.0) for o in out)

    def test_allreduce_arrays(self):
        def rank_main(comm):
            return comm.allreduce(np.array([comm.rank, 1.0]))

        out = launch_spmd(rank_main, 4)
        for v in out:
            assert np.array_equal(v, [6.0, 4.0])

    def test_bcast(self):
        def rank_main(comm):
            data = {"k": [1, 2]} if comm.rank == 1 else None
            got = comm.bcast(data, root=1)
            got["k"].append(comm.rank)  # isolation: no cross-rank bleed
            return got["k"][:2]

        out = launch_spmd(rank_main, 3)
        assert all(v == [1, 2] for v in out)

    def test_gather(self):
        def rank_main(comm):
            return comm.gather(comm.rank * 10, root=2)

        out = launch_spmd(rank_main, 4)
        assert out[2] == [0, 10, 20, 30]
        assert out[0] is None and out[3] is None

    def test_allgather(self):
        def rank_main(comm):
            return comm.allgather(comm.rank)

        out = launch_spmd(rank_main, 3)
        assert all(v == [0, 1, 2] for v in out)

    def test_repeated_collectives_no_slot_clobber(self):
        def rank_main(comm):
            vals = [comm.allreduce(float(i * (comm.rank + 1)))
                    for i in range(20)]
            return vals

        out = launch_spmd(rank_main, 3)
        expect = [float(i * 6) for i in range(20)]
        assert all(v == expect for v in out)

    def test_self_send_rejected(self):
        def rank_main(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicationError):
                    comm.send(1, dest=0)
            comm.barrier()
            return True

        assert all(launch_spmd(rank_main, 2))

    def test_bad_peer_rejected(self):
        def rank_main(comm):
            with pytest.raises(CommunicationError):
                comm.recv(source=5)
            comm.barrier()
            return True

        assert all(launch_spmd(rank_main, 2))

    def test_world_invalid_size(self):
        with pytest.raises(CommunicationError):
            ThreadWorld(0)

    def test_world_invalid_rank(self):
        with pytest.raises(CommunicationError):
            ThreadWorld(2).comm(2)


class TestFailurePropagation:
    def test_exception_aborts_world(self):
        def rank_main(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            # rank 0 would block forever without the abort
            return comm.recv(source=1, tag=0)

        with pytest.raises(ValueError, match=r"\[rank 1\] rank 1 exploded"):
            launch_spmd(rank_main, 2)

    def test_exception_during_collective(self):
        def rank_main(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            # Deliberate RPR009 divergence: this test proves the world
            # aborts blocked collectives instead of deadlocking.
            return comm.allreduce(1.0)  # repro: ignore[RPR009]

        with pytest.raises(RuntimeError, match="boom"):
            launch_spmd(rank_main, 3)

    def test_rank_args(self):
        def rank_main(comm, base, mult):
            return base + mult * comm.rank

        out = launch_spmd(rank_main, 3, rank_args=[(10, 2)] * 3)
        assert out == [10, 12, 14]

    def test_rank_args_length_mismatch(self):
        with pytest.raises(CommunicationError):
            launch_spmd(lambda c: None, 2, rank_args=[()])

    def test_size_one_runs_inline_serial(self):
        out = launch_spmd(lambda c: type(c).__name__, 1)
        assert out == ["SerialComm"]


class TestInstrumentedComm:
    def test_counts_p2p(self):
        def rank_main(comm):
            log = EventLog()
            ic = InstrumentedComm(comm, log)
            peer = 1 - ic.rank
            ic.send(np.zeros(10), dest=peer, tag=3)
            ic.recv(source=peer, tag=3)
            return log

        logs = launch_spmd(rank_main, 2)
        for log in logs:
            assert log.count("p2p_send", 3) == 1
            assert log.count("p2p_recv", 3) == 1
            assert log.total("p2p_send", "bytes", key=3) == 80

    def test_counts_collectives(self):
        def rank_main(comm):
            ic = InstrumentedComm(comm)
            ic.allreduce(1.0)
            ic.allreduce(np.zeros(2), op="max")
            ic.bcast("x", root=0)
            ic.gather(1)
            ic.allgather(1)
            ic.barrier()
            return ic.events

        logs = launch_spmd(rank_main, 2)
        for log in logs:
            assert log.count("allreduce", "sum") == 1
            assert log.count("allreduce", "max") == 1
            assert log.count("bcast") == 1
            assert log.count("gather") == 1
            assert log.count("allgather") == 1
            assert log.count("barrier") == 1

    def test_transparent_results(self):
        def rank_main(comm):
            ic = InstrumentedComm(comm)
            return ic.allreduce(float(ic.rank))

        assert launch_spmd(rank_main, 3) == [3.0, 3.0, 3.0]

    def test_serial_wrapping(self):
        ic = InstrumentedComm(SerialComm())
        assert ic.allreduce(2.0) == 2.0
        assert ic.rank == 0 and ic.size == 1
        assert ic.events.count("allreduce", "sum") == 1
