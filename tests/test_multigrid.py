"""Unit tests: the geometric-multigrid baseline (BoomerAMG stand-in)."""

import numpy as np
import pytest

from repro.mesh import Field, Grid2D
from repro.multigrid import (
    MultigridHierarchy,
    MultigridPreconditioner,
    build_hierarchy,
    level_matvec,
    mgcg_solve,
    multigrid_solve,
    prolong_constant,
    restrict_full_weighting,
)
from repro.multigrid.levels import Level, coarsen_level
from repro.multigrid.smoothers import jacobi_smooth
from repro.solvers import StencilOperator2D, cg_solve
from repro.utils import ConfigurationError

from tests.helpers import (
    crooked_pipe_system,
    random_spd_faces,
    reference_solution,
    serial_operator,
)


class TestLevels:
    def test_level_matvec_matches_sparse(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        A = StencilOperator2D.assemble_sparse(kx, ky)
        level = Level(kx=kx, ky=ky)
        x = rng.standard_normal((8, 8))
        assert np.allclose(level_matvec(level, x).ravel(), A @ x.ravel())

    def test_hierarchy_depth(self, rng):
        kx, ky = random_spd_faces(rng, 64, 64)
        levels = build_hierarchy(kx, ky, min_size=4)
        assert [lv.shape for lv in levels] == [
            (64, 64), (32, 32), (16, 16), (8, 8), (4, 4)]

    def test_hierarchy_stops_at_odd(self, rng):
        kx, ky = random_spd_faces(rng, 24, 24)
        levels = build_hierarchy(kx, ky, min_size=2)
        # 24 -> 12 -> 6 -> 3 (odd, stop)
        assert levels[-1].shape == (3, 3)

    def test_coarsen_odd_raises(self, rng):
        kx, ky = random_spd_faces(rng, 5, 6)
        with pytest.raises(ConfigurationError):
            coarsen_level(Level(kx=kx, ky=ky))

    def test_coarse_operator_preserves_constants(self, rng):
        """Galerkin coarsening keeps A_c * 1 = 1 (insulated boundaries)."""
        kx, ky = random_spd_faces(rng, 16, 16)
        coarse = coarsen_level(Level(kx=kx, ky=ky))
        ones = np.ones(coarse.shape)
        assert np.allclose(level_matvec(coarse, ones), 1.0, atol=1e-12)

    def test_coarse_faces_zero_on_boundary(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        coarse = coarsen_level(Level(kx=kx, ky=ky))
        assert np.all(coarse.kx[:, 0] == 0) and np.all(coarse.kx[:, -1] == 0)
        assert np.all(coarse.ky[0, :] == 0) and np.all(coarse.ky[-1, :] == 0)


class TestTransfers:
    def test_restrict_prolong_adjoint(self, rng):
        """<R u, v>_c * 4 == <u, P v>_f : the transpose pair property."""
        u = rng.standard_normal((8, 8))
        v = rng.standard_normal((4, 4))
        lhs = np.sum(restrict_full_weighting(u) * v)
        rhs = np.sum(u * prolong_constant(v)) / 4.0
        assert lhs == pytest.approx(rhs)

    def test_restrict_constant(self):
        assert np.allclose(restrict_full_weighting(np.full((6, 6), 3.0)), 3.0)

    def test_prolong_constant_values(self):
        c = np.array([[1.0, 2.0]])
        f = prolong_constant(c)
        assert f.shape == (2, 4)
        assert np.array_equal(f, [[1, 1, 2, 2], [1, 1, 2, 2]])

    def test_restrict_odd_raises(self):
        with pytest.raises(ConfigurationError):
            restrict_full_weighting(np.zeros((5, 4)))


class TestSmoother:
    def test_jacobi_smooth_reduces_residual(self, rng):
        kx, ky = random_spd_faces(rng, 16, 16)
        level = Level(kx=kx, ky=ky)
        b = rng.standard_normal((16, 16))
        u = np.zeros_like(b)
        r0 = np.linalg.norm(b - level_matvec(level, u))
        jacobi_smooth(level, u, b, sweeps=5)
        r1 = np.linalg.norm(b - level_matvec(level, u))
        assert r1 < r0

    def test_invalid_omega(self, rng):
        kx, ky = random_spd_faces(rng, 4, 4)
        with pytest.raises(ConfigurationError):
            jacobi_smooth(Level(kx=kx, ky=ky), np.zeros((4, 4)),
                          np.zeros((4, 4)), omega=1.5)


class TestVCycle:
    def test_cycle_contracts_error(self, rng):
        g, kx, ky, bg = crooked_pipe_system(32)
        h = MultigridHierarchy.build(kx, ky)
        x_ref = reference_solution(kx, ky, bg)
        x = np.zeros_like(bg)
        errs = []
        for _ in range(6):
            from repro.multigrid.levels import level_matvec as mv
            r = bg - mv(h.levels[0], x)
            x += h.cycle(r)
            errs.append(np.linalg.norm(x - x_ref))
        # geometric-ish convergence of the error
        assert errs[-1] < errs[0] * 0.2

    def test_coarse_solve_exact(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        h = MultigridHierarchy.build(kx, ky, min_size=4)
        b = rng.standard_normal(h.levels[-1].shape)
        x = h.coarse_solve(b)
        assert np.allclose(level_matvec(h.levels[-1], x), b, atol=1e-10)

    def test_single_level_is_direct(self, rng):
        kx, ky = random_spd_faces(rng, 6, 6)
        h = MultigridHierarchy.build(kx, ky, min_size=6)
        assert h.n_levels == 1
        b = rng.standard_normal((6, 6))
        x = h.cycle(b)
        assert np.allclose(level_matvec(h.levels[0], x), b, atol=1e-10)


class TestMGCG:
    def test_converges_fast(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = mgcg_solve(op, b, eps=1e-11)
        assert result.converged
        assert np.allclose(result.x.interior, x_ref, atol=1e-7)
        assert result.n_levels >= 3

    def test_far_fewer_iterations_than_cg(self):
        """The baseline's low-node-count advantage: tiny iteration counts."""
        g, kx, ky, bg = crooked_pipe_system(48)
        op1 = serial_operator(g, kx, ky)
        b1 = Field.from_global(op1.tile, 1, bg)
        plain = cg_solve(op1, b1, eps=1e-10)
        op2 = serial_operator(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        mg = mgcg_solve(op2, b2, eps=1e-10)
        assert mg.iterations < plain.iterations / 4

    def test_iterations_nearly_mesh_independent(self):
        its = []
        for n in (16, 32, 64):
            g, kx, ky, bg = crooked_pipe_system(n)
            op = serial_operator(g, kx, ky)
            b = Field.from_global(op.tile, 1, bg)
            its.append(mgcg_solve(op, b, eps=1e-10).iterations)
        assert its[-1] <= its[0] * 3  # vs ~4x growth for plain CG

    def test_distributed_rejected(self):
        """MG-CG is the serial baseline; distributed cost is modelled."""
        from repro.comm import launch_spmd
        from repro.mesh import decompose
        g, kx, ky, bg = crooked_pipe_system(16)

        def rank_main(comm):
            tile = decompose(g, comm.size)[comm.rank]
            op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
            b = Field.from_global(tile, 1, bg)
            with pytest.raises(ConfigurationError, match="serial"):
                mgcg_solve(op, b)
            return True

        assert all(launch_spmd(rank_main, 2))

    def test_preconditioner_spd(self, rng):
        """The V-cycle preconditioner must be symmetric for CG validity."""
        n = 8
        kx, ky = random_spd_faces(rng, n, n)
        op = serial_operator(Grid2D(n, n), kx, ky)
        M = MultigridPreconditioner(op)
        cells = n * n
        mat = np.zeros((cells, cells))
        r, z = op.new_field(), op.new_field()
        for col in range(cells):
            e = np.zeros(cells)
            e[col] = 1.0
            r.interior[...] = e.reshape(n, n)
            M.apply(r, z)
            mat[:, col] = z.interior.ravel()
        assert np.allclose(mat, mat.T, atol=1e-10)
        assert np.linalg.eigvalsh(0.5 * (mat + mat.T)).min() > 0


class TestStandaloneMG:
    def test_multigrid_solve(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = multigrid_solve(op, b, eps=1e-10)
        assert result.converged
        assert result.solver == "multigrid"
        assert np.allclose(result.x.interior, x_ref, atol=1e-6)
