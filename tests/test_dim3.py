"""Unit tests: the 3D (7-point) operator and serial solvers."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.mesh import Grid3D
from repro.physics import face_coefficients_3d
from repro.solvers.dim3 import (
    StencilOperator3D,
    cg_solve_3d,
    jacobi_solve_3d,
)
from repro.utils import ConfigurationError


def random_op(rng, nz=4, ny=5, nx=6):
    kappa = rng.uniform(0.2, 5.0, size=(nz, ny, nx))
    kx, ky, kz = face_coefficients_3d(kappa, 0.7, 0.5, 0.3)
    return StencilOperator3D(kx=kx, ky=ky, kz=kz)


class TestOperator3D:
    def test_matvec_matches_sparse(self, rng):
        op = random_op(rng)
        A = op.to_sparse()
        u = rng.standard_normal(op.shape)
        assert np.allclose(op.apply(u).ravel(), A @ u.ravel(), atol=1e-12)

    def test_symmetric_spd(self, rng):
        op = random_op(rng, 3, 3, 3)
        A = op.to_sparse().toarray()
        assert np.allclose(A, A.T)
        assert np.linalg.eigvalsh(A).min() >= 1.0 - 1e-10

    def test_constant_preserved(self, rng):
        op = random_op(rng)
        out = op.apply(np.ones(op.shape))
        assert np.allclose(out, 1.0, atol=1e-12)

    def test_diagonal_matches_sparse(self, rng):
        op = random_op(rng)
        A = op.to_sparse()
        assert np.allclose(op.diagonal().ravel(), A.diagonal())

    def test_shape_validation(self, rng):
        op = random_op(rng)
        with pytest.raises(ConfigurationError):
            op.apply(np.zeros((2, 2, 2)))

    def test_inconsistent_faces_rejected(self):
        with pytest.raises(ConfigurationError):
            StencilOperator3D(kx=np.zeros((2, 2, 3)),
                              ky=np.zeros((2, 3, 2)),
                              kz=np.zeros((4, 2, 2)))


class TestSolvers3D:
    def test_cg_matches_direct(self, rng):
        op = random_op(rng, 4, 4, 4)
        b = rng.standard_normal(op.shape)
        x_ref = spla.spsolve(op.to_sparse().tocsc(), b.ravel()).reshape(op.shape)
        x, iters, rel = cg_solve_3d(op, b, eps=1e-12)
        assert rel <= 1e-12
        assert np.allclose(x, x_ref, atol=1e-9)
        assert 0 < iters <= op.n_cells

    def test_cg_zero_rhs(self, rng):
        op = random_op(rng)
        x, iters, rel = cg_solve_3d(op, np.zeros(op.shape))
        assert iters == 0 and rel == 0.0

    def test_cg_does_not_mutate_x0(self, rng):
        op = random_op(rng)
        b = rng.standard_normal(op.shape)
        x0 = np.ones(op.shape)
        cg_solve_3d(op, b, x0=x0, eps=1e-8)
        assert np.all(x0 == 1.0)

    def test_jacobi_matches_cg(self, rng):
        op = random_op(rng, 3, 4, 3)
        b = rng.standard_normal(op.shape)
        x_cg, _, _ = cg_solve_3d(op, b, eps=1e-12)
        x_j, iters, rel = jacobi_solve_3d(op, b, eps=1e-10)
        assert rel <= 1e-10
        assert np.allclose(x_j, x_cg, atol=1e-7)

    def test_heat_conservation_3d(self, rng):
        """Insulated box: one implicit step conserves total energy."""
        grid = Grid3D(6, 6, 6)
        kappa = rng.uniform(0.5, 2.0, size=grid.shape)
        rx = 0.1 / grid.dx ** 2
        kx, ky, kz = face_coefficients_3d(kappa, rx, rx, rx)
        op = StencilOperator3D(kx=kx, ky=ky, kz=kz)
        u0 = rng.uniform(0.0, 5.0, size=grid.shape)
        u1, _, _ = cg_solve_3d(op, u0, eps=1e-12)
        assert u1.sum() == pytest.approx(u0.sum(), rel=1e-10)
