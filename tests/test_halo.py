"""Unit tests: halo exchange (depths, corners, reflection)."""

import numpy as np
import pytest

from repro.comm import SerialComm, launch_spmd
from repro.mesh import Field, Grid2D, HaloExchanger, decompose
from repro.mesh.halo import reflect_boundaries
from repro.utils import CommunicationError, EventLog


def exchange_and_check(size, depth, halo, nx=16, ny=12, factors=None):
    """Exchange depth-`depth` halos and verify every filled ghost cell."""
    g = Grid2D(nx, ny)
    glob = np.arange(nx * ny, dtype=float).reshape(ny, nx)

    def rank_main(comm):
        t = decompose(g, comm.size, factors=factors)[comm.rank]
        f = Field.from_global(t, halo, glob)
        HaloExchanger(comm).exchange(f, depth=depth)
        ext = {s: (depth if n is not None else 0)
               for s, n in t.neighbors.items()}
        rows, cols = f.region(ext)
        expect = glob[t.y0 - ext["down"]:t.y1 + ext["up"],
                      t.x0 - ext["left"]:t.x1 + ext["right"]]
        assert np.array_equal(f.data[rows, cols], expect), \
            f"rank {comm.rank} mismatch"
        return True

    assert all(launch_spmd(rank_main, size))


class TestExchange:
    @pytest.mark.parametrize("size", [2, 3, 4, 6])
    def test_depth1(self, size):
        exchange_and_check(size, depth=1, halo=1)

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_deep_halos_with_corners(self, depth):
        exchange_and_check(4, depth=depth, halo=4, factors=(2, 2))

    def test_depth_smaller_than_halo(self):
        exchange_and_check(4, depth=2, halo=5, factors=(2, 2))

    def test_nine_rank_center_tile(self):
        exchange_and_check(9, depth=2, halo=2, nx=18, ny=18, factors=(3, 3))

    def test_serial_noop(self):
        g = Grid2D(8, 8)
        t = decompose(g, 1)[0]
        f = Field.from_global(t, 2, np.ones((8, 8)))
        HaloExchanger(SerialComm()).exchange(f, depth=2)
        assert np.all(f.interior == 1.0)

    def test_depth_exceeding_halo_raises(self):
        g = Grid2D(8, 8)
        t = decompose(g, 1)[0]
        f = Field(t, halo=1)
        with pytest.raises(CommunicationError):
            HaloExchanger(SerialComm()).exchange(f, depth=2)

    def test_multi_field_exchange_records_one_event(self):
        g = Grid2D(8, 8)

        def rank_main(comm):
            t = decompose(g, comm.size)[comm.rank]
            f1 = Field.from_global(t, 2, np.ones((8, 8)))
            f2 = Field.from_global(t, 2, np.full((8, 8), 2.0))
            log = EventLog()
            HaloExchanger(comm, events=log).exchange([f1, f2], depth=2)
            return log

        logs = launch_spmd(rank_main, 2)
        for log in logs:
            assert log.count("halo_exchange", 2) == 1
            assert log.total("halo_exchange", "bytes", key=2) > 0

    def test_empty_field_list_noop(self):
        HaloExchanger(SerialComm()).exchange([], depth=1)

    def test_bytes_accounting_scales_with_depth(self):
        g = Grid2D(16, 16)

        def rank_main(comm, depth):
            t = decompose(g, comm.size)[comm.rank]
            f = Field.from_global(t, 4, np.ones((16, 16)))
            log = EventLog()
            HaloExchanger(comm, events=log).exchange(f, depth=depth)
            return log.total("halo_exchange", "bytes", key=depth)

        b1 = launch_spmd(rank_main, 2, rank_args=[(1,), (1,)])[0]
        b4 = launch_spmd(rank_main, 2, rank_args=[(4,), (4,)])[0]
        assert b4 >= 3.9 * b1  # ~4x payload at 4x depth


class TestReflectBoundaries:
    def test_serial_reflection_mirrors_interior(self):
        g = Grid2D(6, 4)
        glob = np.arange(24.0).reshape(4, 6)
        t = decompose(g, 1)[0]
        f = Field.from_global(t, 2, glob)
        reflect_boundaries(f)
        h = f.halo
        # left halo mirrors the first columns
        assert np.array_equal(f.data[h:h + 4, h - 1], glob[:, 0])
        assert np.array_equal(f.data[h:h + 4, h - 2], glob[:, 1])
        # right halo mirrors the last columns
        assert np.array_equal(f.data[h:h + 4, h + 6], glob[:, -1])
        # bottom halo mirrors the first rows
        assert np.array_equal(f.data[h - 1, h:h + 6], glob[0, :])
        # top halo mirrors the last rows
        assert np.array_equal(f.data[h + 4, h:h + 6], glob[-1, :])

    def test_reflection_only_on_physical_sides(self):
        g = Grid2D(8, 8)

        def rank_main(comm):
            t = decompose(g, comm.size, factors=(2, 1))[comm.rank]
            f = Field.from_global(t, 1, np.arange(64.0).reshape(8, 8))
            HaloExchanger(comm).exchange(f, depth=1)
            before = f.data.copy()
            reflect_boundaries(f, depth=1)
            h = f.halo
            if t.left is not None:
                # rank-interior side untouched by reflection
                assert np.array_equal(f.data[h:h + t.ny, h - 1],
                                      before[h:h + t.ny, h - 1])
            return True

        assert all(launch_spmd(rank_main, 2))

    def test_depth_exceeding_halo_raises(self):
        t = decompose(Grid2D(4, 4), 1)[0]
        f = Field(t, halo=1)
        with pytest.raises(CommunicationError):
            reflect_boundaries(f, depth=2)
