"""Unit tests: the (preconditioned) CG solver."""

import numpy as np
import pytest

from repro.mesh import Field, Grid2D
from repro.solvers import (
    DiagonalPreconditioner,
    StencilOperator2D,
    cg_solve,
)
from repro.utils import ConvergenceError

from tests.helpers import (
    crooked_pipe_system,
    random_spd_faces,
    reference_solution,
    serial_operator,
)


class TestConvergence:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_matches_direct_solve(self, n):
        g, kx, ky, bg = crooked_pipe_system(n)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-12)
        assert result.converged
        assert np.allclose(result.x.interior, x_ref,
                           atol=1e-9 * np.abs(x_ref).max())

    def test_random_spd_system(self, rng):
        n = 20
        kx, ky = random_spd_faces(rng, n, n, scale=5.0)
        bg = rng.standard_normal((n, n))
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(Grid2D(n, n), kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-12)
        assert np.allclose(result.x.interior, x_ref, atol=1e-8)

    def test_exact_after_n_iterations(self, rng):
        """Finite termination: CG is exact in <= n_cells iterations."""
        kx, ky = random_spd_faces(rng, 4, 4)
        bg = rng.standard_normal((4, 4))
        op = serial_operator(Grid2D(4, 4), kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-13, max_iters=16)
        assert result.converged

    def test_zero_rhs_converges_immediately(self, rng):
        kx, ky = random_spd_faces(rng, 6, 6)
        op = serial_operator(Grid2D(6, 6), kx, ky)
        b = op.new_field()
        result = cg_solve(op, b)
        assert result.converged and result.iterations == 0

    def test_initial_guess_exact(self):
        g, kx, ky, bg = crooked_pipe_system(12)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        x0 = Field.from_global(op.tile, 1, x_ref)
        # The tolerance is relative to the initial residual of *this call*;
        # anchor it to ||b|| so an exact guess terminates immediately.
        bnorm = float(np.linalg.norm(bg))
        result = cg_solve(op, b, x0, eps=1e-8, reference_norm=bnorm)
        assert result.iterations == 0
        assert result.converged

    def test_warm_start_does_not_mutate_x0(self):
        g, kx, ky, bg = crooked_pipe_system(12)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        x0 = op.new_field()
        x0.interior[...] = 3.0
        cg_solve(op, b, x0, eps=1e-8)
        assert np.all(x0.interior == 3.0)


class TestDiagnostics:
    def test_history_monotone_overall(self):
        g, kx, ky, bg = crooked_pipe_system(24)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-10)
        assert len(result.history) == result.iterations + 1
        assert result.history[-1] < result.history[0] * 1e-9

    def test_coefficients_recorded(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-10)
        assert len(result.alphas) == result.iterations
        assert len(result.betas) == result.iterations
        assert all(a > 0 for a in result.alphas)
        assert all(bb >= 0 for bb in result.betas)

    def test_relative_residual_and_summary(self):
        g, kx, ky, bg = crooked_pipe_system(12)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-10)
        assert result.relative_residual <= 1e-10
        assert "cg" in result.summary()
        assert "converged" in result.summary()

    def test_unconverged_result(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-12, max_iters=3)
        assert not result.converged
        assert result.iterations == 3

    def test_raise_on_stall(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        with pytest.raises(ConvergenceError, match="did not converge"):
            cg_solve(op, b, eps=1e-12, max_iters=3, raise_on_stall=True)

    def test_reference_norm_override(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        loose = cg_solve(op, b, eps=1e-4)
        # Same eps but a 1e6x larger reference makes it trivially converged.
        op2 = serial_operator(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        easy = cg_solve(op2, b2, eps=1e-4,
                        reference_norm=loose.initial_residual_norm * 1e6)
        assert easy.iterations < loose.iterations


class TestCommunicationPattern:
    def test_allreduce_count_two_per_iteration(self):
        """CG must fuse its dots: 2 allreduces per iteration (+1 setup)."""
        from repro.comm import InstrumentedComm, SerialComm
        from repro.utils import EventLog

        g, kx, ky, bg = crooked_pipe_system(16)
        from repro.mesh import decompose
        log = EventLog()
        comm = InstrumentedComm(SerialComm(), log)
        tile = decompose(g, 1)[0]
        op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
        b = Field.from_global(tile, 1, bg)
        result = cg_solve(op, b, eps=1e-10)
        n_allreduce = log.count_kind("allreduce")
        assert n_allreduce == 2 * result.iterations + 1

    def test_preconditioned_same_allreduce_count(self):
        from repro.comm import InstrumentedComm, SerialComm
        from repro.mesh import decompose
        from repro.utils import EventLog

        g, kx, ky, bg = crooked_pipe_system(16)
        log = EventLog()
        comm = InstrumentedComm(SerialComm(), log)
        tile = decompose(g, 1)[0]
        op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
        b = Field.from_global(tile, 1, bg)
        result = cg_solve(op, b, eps=1e-10,
                          preconditioner=DiagonalPreconditioner(op))
        assert log.count_kind("allreduce") == 2 * result.iterations + 1

    def test_halo_exchanges_one_per_iteration(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-10)
        # serial: exchange events still recorded (no-ops on the wire)
        assert op.events.count("halo_exchange", 1) == result.iterations + 1
