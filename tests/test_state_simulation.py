"""Integration: state construction and the time-stepping driver."""

import numpy as np
import pytest

from repro.comm import SerialComm, launch_spmd
from repro.mesh import Field, Grid2D, HaloExchanger, decompose
from repro.physics import (
    Conductivity,
    Simulation,
    crooked_pipe,
    global_initial_state,
    hot_square,
    run_simulation,
    uniform_problem,
)
from repro.physics.state import build_coefficient_fields, build_fields
from repro.solvers import SolverOptions
from repro.utils import ConvergenceError


class TestGlobalInitialState:
    def test_u_is_density_times_energy(self):
        g = Grid2D(32, 32)
        density, energy, u = global_initial_state(g, crooked_pipe())
        assert np.allclose(u, density * energy)

    def test_shapes(self):
        g = Grid2D(16, 8)
        density, energy, u = global_initial_state(g, uniform_problem())
        assert density.shape == (8, 16)


class TestBuildFields:
    def test_rank_slices(self):
        g = Grid2D(16, 16)
        density, energy, u = global_initial_state(g, hot_square())
        tile = decompose(g, 4)[1]
        fields = build_fields(tile, 2, density, energy)
        assert np.array_equal(fields["density"].interior,
                              density[tile.global_slices])
        assert np.allclose(fields["u"].interior,
                           (density * energy)[tile.global_slices])


class TestCoefficientFields:
    def test_matches_global_face_coefficients(self):
        """Rank-local K construction == global construction, all ranks."""
        from repro.physics import cell_conductivity, face_coefficients

        g = Grid2D(24, 24)
        density, energy, _ = global_initial_state(g, crooked_pipe())
        rx = ry = 0.9
        kappa = cell_conductivity(density)
        kxg, kyg = face_coefficients(kappa, rx, ry)

        def rank_main(comm):
            tile = decompose(g, comm.size)[comm.rank]
            fields = build_fields(tile, 2, density, energy)
            ex = HaloExchanger(comm)
            kx, ky = build_coefficient_fields(fields["density"], rx, ry, ex)
            h = kx.halo
            got_kx = kx.data[h:h + tile.ny, h:h + tile.nx + 1]
            want_kx = kxg[tile.y0:tile.y1, tile.x0:tile.x1 + 1]
            assert np.allclose(got_kx, want_kx, rtol=1e-12), comm.rank
            got_ky = ky.data[h:h + tile.ny + 1, h:h + tile.nx]
            want_ky = kyg[tile.y0:tile.y1 + 1, tile.x0:tile.x1]
            assert np.allclose(got_ky, want_ky, rtol=1e-12), comm.rank
            return True

        for size in (1, 4, 6):
            assert all(launch_spmd(rank_main, size))

    def test_arithmetic_mean_option(self):
        g = Grid2D(8, 8)
        density, energy, _ = global_initial_state(g, uniform_problem(2.0))
        tile = decompose(g, 1)[0]
        fields = build_fields(tile, 1, density, energy)
        ex = HaloExchanger(SerialComm())
        kx, ky = build_coefficient_fields(fields["density"], 1.0, 1.0, ex,
                                          model=Conductivity.DENSITY,
                                          mean="arithmetic")
        h = kx.halo
        assert np.allclose(kx.data[h:h + 8, h + 1:h + 8], 2.0)

    def test_bad_mean_rejected(self):
        g = Grid2D(4, 4)
        density, energy, _ = global_initial_state(g, uniform_problem())
        tile = decompose(g, 1)[0]
        fields = build_fields(tile, 1, density, energy)
        with pytest.raises(ValueError):
            build_coefficient_fields(fields["density"], 1.0, 1.0,
                                     HaloExchanger(SerialComm()),
                                     mean="quadratic")


class TestSimulation:
    def test_heat_conservation(self):
        """Insulated domain: the mean temperature is invariant."""
        report = run_simulation(Grid2D(24, 24), crooked_pipe(),
                                SolverOptions(solver="cg", eps=1e-12),
                                n_steps=4)
        means = [s.mean_temperature for s in report.steps]
        assert np.allclose(means, means[0], rtol=1e-9)

    def test_heat_spreads(self):
        """Maximum temperature decreases as heat diffuses."""
        report = run_simulation(Grid2D(24, 24), hot_square(),
                                SolverOptions(solver="cg", eps=1e-11),
                                dt=0.5, n_steps=3)
        assert report.temperature.max() < 10.0  # initial hot square at 10
        assert report.temperature.min() > 0.0

    def test_distributed_equals_serial_over_steps(self):
        opts = SolverOptions(solver="ppcg", eps=1e-12, ppcg_inner_steps=8,
                             halo_depth=2)
        r1 = run_simulation(Grid2D(24, 24), crooked_pipe(), opts, n_steps=3,
                            nranks=1)
        r4 = run_simulation(Grid2D(24, 24), crooked_pipe(), opts, n_steps=3,
                            nranks=4)
        assert np.abs(r1.temperature - r4.temperature).max() < 1e-9

    def test_report_contents(self):
        report = run_simulation(Grid2D(16, 16), crooked_pipe(),
                                SolverOptions(solver="cg", eps=1e-10),
                                n_steps=2)
        assert report.n_steps == 2
        assert report.steps[0].step == 1
        assert report.steps[1].time == pytest.approx(0.08)
        assert report.total_iterations > 0
        assert report.temperature.shape == (16, 16)
        assert report.events.count_kind("halo_exchange") > 0
        assert report.events.count_kind("allreduce") > 0

    def test_gather_temperature_optional(self):
        report = run_simulation(Grid2D(8, 8), crooked_pipe(),
                                SolverOptions(solver="cg", eps=1e-8),
                                n_steps=1, gather_temperature=False)
        assert report.temperature is None

    def test_nonconvergence_raises(self):
        with pytest.raises(ConvergenceError):
            run_simulation(Grid2D(32, 32), crooked_pipe(),
                           SolverOptions(solver="cg", eps=1e-12, max_iters=2),
                           n_steps=1)

    def test_simulation_object_api(self):
        sim = Simulation(SerialComm(), Grid2D(16, 16), crooked_pipe(),
                         SolverOptions(solver="cg", eps=1e-10))
        s1 = sim.step()
        assert s1.step == 1 and sim.time == pytest.approx(0.04)
        stats = sim.run(2)
        assert sim.step_index == 3
        assert stats[-1].step == 3
        temp = sim.gather_temperature()
        assert temp.shape == (16, 16)
        assert sim.mean_temperature() == pytest.approx(temp.mean())

    def test_cold_start_option(self):
        r = run_simulation(Grid2D(16, 16), crooked_pipe(),
                           SolverOptions(solver="cg", eps=1e-10),
                           n_steps=1, warm_start=False)
        assert r.steps[0].converged
