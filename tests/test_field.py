"""Unit tests: halo-padded fields."""

import numpy as np
import pytest

from repro.mesh import Field, Grid2D, decompose
from repro.utils import ConfigurationError


def tile_1rank(nx=8, ny=6):
    return decompose(Grid2D(nx, ny), 1)[0]


class TestFieldConstruction:
    def test_allocates_padded_zeros(self):
        f = Field(tile_1rank(), halo=2)
        assert f.data.shape == (6 + 4, 8 + 4)
        assert np.all(f.data == 0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            Field(tile_1rank(), halo=2, data=np.zeros((6, 8)))

    def test_rejects_nonpositive_halo(self):
        with pytest.raises(ConfigurationError):
            Field(tile_1rank(), halo=0)

    def test_from_global(self):
        g = Grid2D(8, 6)
        glob = np.arange(48.0).reshape(6, 8)
        t = decompose(g, 4)[2]
        f = Field.from_global(t, 1, glob)
        assert np.array_equal(f.interior, glob[t.global_slices])

    def test_like_and_copy(self):
        f = Field(tile_1rank(), halo=3)
        f.interior[...] = 7.0
        g = Field.like(f)
        assert g.halo == 3 and np.all(g.data == 0)
        c = f.copy()
        c.interior[...] = 1.0
        assert np.all(f.interior == 7.0)  # deep copy


class TestViews:
    def test_interior_is_view(self):
        f = Field(tile_1rank(), halo=1)
        f.interior[...] = 5.0
        assert f.data[1:-1, 1:-1].sum() == 5.0 * 48
        assert f.data[0, :].sum() == 0

    def test_interior_setter_augmented(self):
        f = Field(tile_1rank(), halo=1)
        f.interior += 2.0
        f.interior *= 3.0
        assert np.all(f.interior == 6.0)

    def test_region_uniform_int(self):
        g = Grid2D(8, 8)
        t = decompose(g, 4, factors=(2, 2))[0]  # bottom-left tile
        f = Field(t, halo=2)
        rows, cols = f.region(2)
        # no left/down neighbours -> no extension on those sides
        assert rows == slice(2, 2 + t.ny + 2)
        assert cols == slice(2, 2 + t.nx + 2)

    def test_region_dict(self):
        t = decompose(Grid2D(9, 9), 9, factors=(3, 3))[4]  # center
        f = Field(t, halo=2)
        rows, cols = f.region({"left": 1, "right": 2, "down": 0, "up": 2})
        assert rows == slice(2, 2 + t.ny + 2)
        assert cols == slice(1, 2 + t.nx + 2)

    def test_region_exceeding_halo_raises(self):
        t = decompose(Grid2D(9, 9), 9, factors=(3, 3))[4]
        f = Field(t, halo=2)
        with pytest.raises(ConfigurationError):
            f.region(3)

    def test_extended_shape(self):
        t = decompose(Grid2D(9, 9), 9, factors=(3, 3))[4]
        f = Field(t, halo=2)
        assert f.extended(2).shape == (t.ny + 4, t.nx + 4)


class TestReductionsAndMutation:
    def test_local_dot_and_norm(self):
        f = Field(tile_1rank(4, 4), halo=1)
        g = Field.like(f)
        f.interior[...] = 2.0
        g.interior[...] = 3.0
        assert f.local_dot(g) == pytest.approx(2 * 3 * 16)
        assert f.local_norm2() == pytest.approx(4 * 16)
        assert f.local_sum() == pytest.approx(32)

    def test_halo_excluded_from_reductions(self):
        f = Field(tile_1rank(4, 4), halo=2)
        f.data[...] = 1.0
        assert f.local_sum() == pytest.approx(16)

    def test_fill_and_zero_halos(self):
        f = Field(tile_1rank(4, 4), halo=1)
        f.fill(3.0)
        assert np.all(f.data == 3.0)
        f.zero_halos()
        assert np.all(f.interior == 3.0)
        assert f.data.sum() == pytest.approx(3.0 * 16)
