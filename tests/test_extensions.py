"""Tests for the §VII future-work extensions: fused CG, deflation,
adaptive PPCG, and field summaries."""

import numpy as np
import pytest

from repro.comm import InstrumentedComm, SerialComm, launch_spmd
from repro.mesh import Field, Grid2D, decompose
from repro.solvers import (
    EigenBounds,
    SolverOptions,
    StencilOperator2D,
    cg_fused_solve,
    cg_solve,
    deflated_cg_solve,
    ppcg_solve,
    solve_linear,
)
from repro.solvers.deflation import DeflationSpace
from repro.utils import ConfigurationError, ConvergenceError, EventLog

from tests.helpers import (
    crooked_pipe_system,
    distributed_solve,
    random_spd_faces,
    reference_solution,
    serial_operator,
)


class TestFusedCG:
    def test_matches_reference(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_fused_solve(op, b, eps=1e-12)
        assert result.converged
        assert np.allclose(result.x.interior, x_ref,
                           atol=1e-8 * np.abs(x_ref).max())

    def test_same_iterates_as_classic_cg(self):
        g, kx, ky, bg = crooked_pipe_system(48)
        op1 = serial_operator(g, kx, ky)
        b1 = Field.from_global(op1.tile, 1, bg)
        classic = cg_solve(op1, b1, eps=1e-10)
        op2 = serial_operator(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        fused = cg_fused_solve(op2, b2, eps=1e-10)
        # mathematically identical; round-off may shift by an iteration
        assert abs(fused.iterations - classic.iterations) <= 2
        hist = min(len(classic.history), len(fused.history))
        assert np.allclose(classic.history[:hist], fused.history[:hist],
                           rtol=1e-6)

    def test_one_allreduce_per_iteration(self):
        """The whole point: a single global reduction per iteration."""
        g, kx, ky, bg = crooked_pipe_system(24)
        log = EventLog()
        comm = InstrumentedComm(SerialComm(), log)
        tile = decompose(g, 1)[0]
        op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
        b = Field.from_global(tile, 1, bg)
        result = cg_fused_solve(op, b, eps=1e-10)
        assert log.count_kind("allreduce") == result.iterations + 1

    def test_with_preconditioner(self):
        from repro.solvers import BlockJacobiPreconditioner
        g, kx, ky, bg = crooked_pipe_system(24)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_fused_solve(op, b, eps=1e-11,
                                preconditioner=BlockJacobiPreconditioner(op))
        assert result.converged
        assert np.allclose(result.x.interior, x_ref, atol=1e-7)

    @pytest.mark.parametrize("size", [2, 4])
    def test_distributed_matches_serial(self, size):
        g, kx, ky, bg = crooked_pipe_system(32)
        x_ref = reference_solution(kx, ky, bg)
        options = SolverOptions(solver="cg_fused", eps=1e-11)
        x, result = distributed_solve(g, kx, ky, bg, options, size)
        assert result.converged
        assert np.abs(x - x_ref).max() <= 1e-7 * np.abs(x_ref).max()

    def test_zero_rhs(self):
        g, kx, ky, _ = crooked_pipe_system(8)
        op = serial_operator(g, kx, ky)
        result = cg_fused_solve(op, op.new_field())
        assert result.converged and result.iterations == 0

    def test_driver_dispatch(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = solve_linear(op, b, options=SolverOptions(
            solver="cg_fused", eps=1e-10))
        assert result.solver == "cg_fused" and result.converged


class TestDeflation:
    def test_matches_reference(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = deflated_cg_solve(op, b, eps=1e-11, blocks=(4, 4))
        assert result.converged
        assert result.deflation_dim == 16
        assert np.allclose(result.x.interior, x_ref,
                           atol=1e-8 * np.abs(x_ref).max())

    def test_reduces_iterations_on_stiff_system(self):
        """Deflation removes the low modes that dominate at large dt."""
        g, kx, ky, bg = crooked_pipe_system(48, dt=10.0)
        op1 = serial_operator(g, kx, ky)
        b1 = Field.from_global(op1.tile, 1, bg)
        plain = cg_solve(op1, b1, eps=1e-10)
        op2 = serial_operator(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        deflated = deflated_cg_solve(op2, b2, eps=1e-10, blocks=(8, 8))
        assert deflated.converged
        assert deflated.iterations < 0.75 * plain.iterations

    def test_more_blocks_fewer_iterations(self):
        g, kx, ky, bg = crooked_pipe_system(48, dt=10.0)

        def iters(blocks):
            op = serial_operator(g, kx, ky)
            b = Field.from_global(op.tile, 1, bg)
            return deflated_cg_solve(op, b, eps=1e-10,
                                     blocks=blocks).iterations

        assert iters((8, 8)) < iters((4, 4)) <= iters((2, 2)) + 5

    @pytest.mark.parametrize("size", [2, 4, 6])
    def test_distributed_matches_serial(self, size):
        g, kx, ky, bg = crooked_pipe_system(32, dt=5.0)
        x_ref = reference_solution(kx, ky, bg)
        options = SolverOptions(solver="dcg", eps=1e-11,
                                deflation_blocks=(4, 4))
        x, result = distributed_solve(g, kx, ky, bg, options, size)
        assert result.converged
        assert np.abs(x - x_ref).max() <= 1e-7 * np.abs(x_ref).max()

    def test_with_local_preconditioner(self):
        g, kx, ky, bg = crooked_pipe_system(32, dt=5.0)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = deflated_cg_solve(op, b, eps=1e-11, blocks=(4, 4),
                                   preconditioner="block_jacobi")
        assert result.converged
        assert np.allclose(result.x.interior, x_ref, atol=1e-7)

    def test_projector_annihilates_deflation_space(self, rng):
        """P A W = 0: the defining property of the deflation projector."""
        n = 16
        kx, ky = random_spd_faces(rng, n, n)
        op = serial_operator(Grid2D(n, n), kx, ky)
        space = DeflationSpace(op, (n, n), blocks=(2, 2))
        w_field = op.new_field()
        aw = op.new_field()
        for j in range(space.k):
            w_field.data.fill(0.0)
            w_field.interior[...] = (space.block_id == j)
            op.apply(w_field, aw)
            space.project(aw)
            assert np.abs(aw.interior).max() < 1e-10

    def test_blocks_exceeding_mesh_rejected(self):
        g, kx, ky, bg = crooked_pipe_system(8)
        op = serial_operator(g, kx, ky)
        with pytest.raises(ConfigurationError):
            DeflationSpace(op, (8, 8), blocks=(16, 16))

    def test_wt_counts_cells(self, rng):
        n = 12
        kx, ky = random_spd_faces(rng, n, n)
        op = serial_operator(Grid2D(n, n), kx, ky)
        space = DeflationSpace(op, (n, n), blocks=(3, 3))
        ones = op.new_field()
        ones.interior[...] = 1.0
        sums = space.wt(ones)
        assert np.allclose(sums, (n * n) / 9)


class TestAdaptivePPCG:
    def bad_bounds(self):
        # grossly underestimated lam_max -> Chebyshev polynomial diverges
        return EigenBounds(1.0, 1.5)

    def test_nonadaptive_fails_with_bad_bounds(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        with pytest.raises(ConvergenceError):
            result = ppcg_solve(op, b, eps=1e-10, bounds=self.bad_bounds(),
                                max_iters=50, warmup_iters=3)
            # either breakdown raises or the solve stalls
            if not result.converged:
                raise ConvergenceError("stalled")

    def test_adaptive_recovers_from_bad_bounds(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-10, bounds=self.bad_bounds(),
                            warmup_iters=15, adaptive=True)
        assert result.converged
        assert result.restarts >= 1
        assert np.allclose(result.x.interior, x_ref,
                           atol=1e-6 * np.abs(x_ref).max())

    def test_adaptive_noop_on_good_bounds(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = ppcg_solve(op, b, eps=1e-10, adaptive=True)
        assert result.converged
        assert result.restarts == 0

    def test_driver_passes_adaptive(self):
        g, kx, ky, bg = crooked_pipe_system(24)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = solve_linear(op, b, options=SolverOptions(
            solver="ppcg", eps=1e-10, adaptive=True))
        assert result.converged


class TestFieldSummary:
    def test_values_match_numpy(self):
        from repro.physics import Simulation, crooked_pipe
        from repro.physics.simulation import Simulation as Sim
        sim = Sim(SerialComm(), Grid2D(24, 24), crooked_pipe(),
                  SolverOptions(solver="cg", eps=1e-10))
        s = sim.summary()
        cell_v = sim.grid.dx * sim.grid.dy
        density = sim.fields["density"].interior
        u = sim.u.interior
        assert s.volume == pytest.approx(24 * 24 * cell_v)
        assert s.mass == pytest.approx(density.sum() * cell_v)
        assert s.internal_energy == pytest.approx(u.sum() * cell_v)
        assert s.mean_temperature == pytest.approx(u.mean())
        assert s.max_temperature == pytest.approx(u.max())
        assert s.min_temperature == pytest.approx(u.min())

    def test_energy_conserved_across_steps(self):
        from repro.physics import crooked_pipe
        from repro.physics.simulation import Simulation as Sim
        sim = Sim(SerialComm(), Grid2D(24, 24), crooked_pipe(),
                  SolverOptions(solver="ppcg", eps=1e-12))
        before = sim.summary()
        sim.run(3)
        after = sim.summary()
        assert after.internal_energy == pytest.approx(
            before.internal_energy, rel=1e-9)
        assert after.mass == pytest.approx(before.mass)
        assert after.max_temperature < before.max_temperature  # diffusion

    def test_distributed_summary_matches_serial(self):
        from repro.physics import crooked_pipe
        from repro.physics.simulation import Simulation as Sim

        def rank_main(comm):
            sim = Sim(comm, Grid2D(24, 24), crooked_pipe(),
                      SolverOptions(solver="cg", eps=1e-11))
            sim.step()
            return sim.summary()

        serial = launch_spmd(rank_main, 1)[0]
        for s in launch_spmd(rank_main, 4):
            assert s.internal_energy == pytest.approx(
                serial.internal_energy, rel=1e-10)
            assert s.max_temperature == pytest.approx(
                serial.max_temperature, rel=1e-10)


class TestDeckExtensions:
    def test_extension_solver_flags(self):
        from repro.physics import parse_deck_text
        deck = parse_deck_text(
            "*tea\nstate 1 density=1 energy=1\nuse_cg_fused\n*endtea")
        assert deck.solver == "cg_fused"
        deck = parse_deck_text(
            "*tea\nstate 1 density=1 energy=1\nuse_dpcg\n*endtea")
        assert deck.solver == "dcg"

    def test_options_labels(self):
        assert SolverOptions(solver="cg_fused").label() == "CG-F - 1"
        assert SolverOptions(solver="dcg").label() == "DCG - 1"

    def test_invalid_deflation_blocks(self):
        with pytest.raises(ConfigurationError):
            SolverOptions(solver="dcg", deflation_blocks=(0, 4))
