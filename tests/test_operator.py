"""Unit tests: the matrix-free stencil operator vs explicit assembly."""

import numpy as np
import pytest

from repro.comm import SerialComm, launch_spmd
from repro.mesh import Field, Grid2D, decompose
from repro.solvers import StencilOperator2D, embed_global
from repro.utils import ConfigurationError

from tests.helpers import crooked_pipe_system, random_spd_faces, serial_operator


class TestEmbedGlobal:
    def test_interior_window(self):
        local = np.zeros((6, 6))
        glob = np.arange(16.0).reshape(4, 4)
        embed_global(local, glob, y_off=-1, x_off=-1)
        assert np.array_equal(local[1:5, 1:5], glob)
        assert local[0].sum() == 0

    def test_clipped_window(self):
        local = np.zeros((4, 4))
        glob = np.arange(4.0).reshape(2, 2)
        embed_global(local, glob, y_off=1, x_off=1)
        # only global row/col 1 lands in local [0,0]
        assert local[0, 0] == glob[1, 1]
        assert local[1:].sum() == 0

    def test_disjoint_noop(self):
        local = np.zeros((3, 3))
        embed_global(local, np.ones((2, 2)), y_off=10, x_off=10)
        assert local.sum() == 0


class TestMatvecAgainstSparse:
    @pytest.mark.parametrize("n", [5, 8, 16])
    def test_serial_matches_assembly(self, rng, n):
        kx, ky = random_spd_faces(rng, n, n)
        A = StencilOperator2D.assemble_sparse(kx, ky)
        g = Grid2D(n, n)
        op = serial_operator(g, kx, ky)
        x = rng.standard_normal((n, n))
        p = Field.from_global(op.tile, 1, x)
        w = op.new_field()
        op.apply(p, w)
        assert np.allclose(w.interior.ravel(), A @ x.ravel(), atol=1e-12)

    def test_crooked_pipe_coefficients(self):
        g, kx, ky, b = crooked_pipe_system(16)
        A = StencilOperator2D.assemble_sparse(kx, ky)
        op = serial_operator(g, kx, ky)
        p = Field.from_global(op.tile, 1, b)
        w = op.new_field()
        op.apply(p, w)
        assert np.allclose(w.interior.ravel(), A @ b.ravel(), rtol=1e-12)

    def test_sparse_matrix_is_symmetric(self, rng):
        kx, ky = random_spd_faces(rng, 7, 9)
        A = StencilOperator2D.assemble_sparse(kx, ky)
        assert abs(A - A.T).max() < 1e-14

    def test_sparse_matrix_is_spd(self, rng):
        kx, ky = random_spd_faces(rng, 6, 6)
        A = StencilOperator2D.assemble_sparse(kx, ky).toarray()
        eig = np.linalg.eigvalsh(A)
        assert eig.min() >= 1.0 - 1e-10  # lam_min = 1 (constant nullspace of D)

    def test_constant_vector_eigenvalue_one(self, rng):
        """A * 1 = 1: insulated boundaries conserve constants."""
        kx, ky = random_spd_faces(rng, 8, 8)
        g = Grid2D(8, 8)
        op = serial_operator(g, kx, ky)
        p = Field.from_global(op.tile, 1, np.ones((8, 8)))
        w = op.new_field()
        op.apply(p, w)
        assert np.allclose(w.interior, 1.0, atol=1e-13)


class TestExtendedBounds:
    def test_extended_matches_global_matvec(self, rng):
        """Extended-bounds local matvec equals the global matvec restricted."""
        n = 16
        kx, ky = random_spd_faces(rng, n, n)
        A = StencilOperator2D.assemble_sparse(kx, ky)
        g = Grid2D(n, n)
        x = rng.standard_normal((n, n))
        expect = (A @ x.ravel()).reshape(n, n)

        def rank_main(comm):
            tile = decompose(g, comm.size, factors=(2, 2))[comm.rank]
            op = StencilOperator2D.from_global_faces(tile, 3, kx, ky, comm)
            p = Field.from_global(tile, 3, x)
            op.exchanger.exchange(p, depth=3)
            w = op.new_field()
            op.apply_noexchange(p, w, ext=2)
            ext = tile.extension(2)
            rows, cols = p.region(ext)
            got = w.data[rows, cols]
            want = expect[tile.y0 - ext["down"]:tile.y1 + ext["up"],
                          tile.x0 - ext["left"]:tile.x1 + ext["right"]]
            assert np.allclose(got, want, atol=1e-12)
            return True

        assert all(launch_spmd(rank_main, 4))

    def test_extension_beyond_halo_rejected(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        op = serial_operator(Grid2D(8, 8), kx, ky, halo=2)
        p, w = op.new_field(), op.new_field()
        with pytest.raises(ConfigurationError):
            op.apply_noexchange(p, w, ext=2)  # needs halo >= 3

    def test_matvec_event_cells(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        op = serial_operator(Grid2D(8, 8), kx, ky)
        p, w = op.new_field(), op.new_field()
        op.apply(p, w)
        assert op.events.total("matvec", "cells") == 64


class TestReductions:
    def test_dot_matches_numpy(self, rng):
        kx, ky = random_spd_faces(rng, 6, 6)
        op = serial_operator(Grid2D(6, 6), kx, ky)
        a = Field.from_global(op.tile, 1, rng.standard_normal((6, 6)))
        b = Field.from_global(op.tile, 1, rng.standard_normal((6, 6)))
        assert op.dot(a, b) == pytest.approx(
            float(np.sum(a.interior * b.interior)))

    def test_dots_fused(self, rng):
        kx, ky = random_spd_faces(rng, 6, 6)
        op = serial_operator(Grid2D(6, 6), kx, ky)
        a = Field.from_global(op.tile, 1, rng.standard_normal((6, 6)))
        d1, d2 = op.dots([(a, a), (a, a)])
        assert d1 == pytest.approx(d2)

    def test_distributed_dot_equals_serial(self, rng):
        n = 12
        kx, ky = random_spd_faces(rng, n, n)
        g = Grid2D(n, n)
        x = rng.standard_normal((n, n))
        serial = float(np.sum(x * x))

        def rank_main(comm):
            tile = decompose(g, comm.size)[comm.rank]
            op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
            a = Field.from_global(tile, 1, x)
            return op.dot(a, a)

        for v in launch_spmd(rank_main, 4):
            assert v == pytest.approx(serial, rel=1e-12)

    def test_residual(self, rng):
        g, kx, ky, bg = crooked_pipe_system(8)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        x = op.new_field()  # zero
        r = op.new_field()
        op.residual(b, x, out=r)
        assert np.allclose(r.interior, b.interior)

    def test_diagonal_positive_and_dominant(self):
        g, kx, ky, _ = crooked_pipe_system(12)
        op = serial_operator(g, kx, ky)
        d = op.diagonal()
        assert np.all(d >= 1.0)


class TestConstruction:
    def test_mismatched_kx_ky_halo(self, rng):
        g = Grid2D(8, 8)
        t = decompose(g, 1)[0]
        kx, ky = random_spd_faces(rng, 8, 8)
        f1 = Field(t, 1)
        f2 = Field(t, 2)
        with pytest.raises(ConfigurationError):
            StencilOperator2D(kx=f1, ky=f2, comm=SerialComm())
