"""Unit tests: network and node models."""

import math

import pytest

from repro.perfmodel import LinkModel, NetworkModel, Topology
from repro.perfmodel.machines import MACHINES, PIZ_DAINT, SPRUCE, TITAN, NodeModel
from repro.utils import ConfigurationError


class TestLinkModel:
    def test_time_formula(self):
        link = LinkModel(latency=1e-6, bandwidth=1e9)
        assert link.time(0) == pytest.approx(1e-6)
        assert link.time(1e6) == pytest.approx(1e-6 + 1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkModel(latency=0, bandwidth=1e9)
        with pytest.raises(ConfigurationError):
            LinkModel(latency=1e-6, bandwidth=0)
        with pytest.raises(ConfigurationError):
            LinkModel(1e-6, 1e9).time(-1)


class TestTopology:
    def test_single_node_no_hops(self):
        for t in Topology:
            assert t.average_hops(1) == 0.0

    def test_torus_grows_cube_root(self):
        h64 = Topology.TORUS_3D.average_hops(64)
        h4096 = Topology.TORUS_3D.average_hops(4096)
        assert h4096 / h64 == pytest.approx(4.0)  # (4096/64)^(1/3)

    def test_dragonfly_constant(self):
        assert Topology.DRAGONFLY.average_hops(16) == \
            Topology.DRAGONFLY.average_hops(8192)

    def test_fat_tree_logarithmic(self):
        assert Topology.FAT_TREE.average_hops(1024) == pytest.approx(10.0)

    def test_gemini_worse_than_aries_at_scale(self):
        """The paper's Titan-vs-Piz-Daint mechanism."""
        t = TITAN.network.effective_latency(2048)
        p = PIZ_DAINT.network.effective_latency(2048)
        assert t > 1.5 * p


class TestAllreduce:
    def test_single_rank_free(self):
        assert TITAN.network.allreduce_time(1, 1) == 0.0

    def test_logarithmic_growth(self):
        net = PIZ_DAINT.network
        t64 = net.allreduce_time(64, 64)
        t4096 = net.allreduce_time(4096, 2048)
        # log2: 6 stages vs 12 -> about 2x (hops constant on dragonfly)
        assert 1.5 < t4096 / t64 < 3.0

    def test_intra_node_stages_cheaper(self):
        net = SPRUCE.network
        flat = net.allreduce_time(ranks=1024 * 20, nodes=1024)
        hybrid = net.allreduce_time(ranks=1024 * 2, nodes=1024)
        assert flat > hybrid          # more stages
        assert flat < hybrid * 3.0    # but the extra stages are intra-node

    def test_monotone_in_nodes(self):
        net = TITAN.network
        times = [net.allreduce_time(n, n) for n in (2, 16, 128, 1024, 8192)]
        assert all(a < b for a, b in zip(times, times[1:]))


class TestNodeModel:
    def test_kernel_time_bandwidth_bound(self):
        node = NodeModel(name="x", dram_bandwidth=100e9,
                         launch_overhead=1e-5)
        t = node.kernel_time(100e9, working_set=1e12)
        assert t == pytest.approx(1.0 + 1e-5)

    def test_cache_transition(self):
        node = SPRUCE.node
        big = node.effective_bandwidth(1e12)      # DRAM regime
        small = node.effective_bandwidth(1e3)     # cache resident
        assert big == node.dram_bandwidth
        assert small > 3 * big

    def test_no_cache_model_on_gpu(self):
        assert TITAN.node.effective_bandwidth(1.0) == TITAN.node.dram_bandwidth

    def test_gpu_has_staging_overhead(self):
        assert TITAN.node.exchange_staging > 0
        assert SPRUCE.node.exchange_staging == 0.0


class TestRegistry:
    def test_paper_machines_present(self):
        assert set(MACHINES) == {"Titan", "Piz Daint", "Spruce"}

    def test_table1_node_counts(self):
        assert TITAN.max_nodes == 8192
        assert PIZ_DAINT.max_nodes == 2048
        assert SPRUCE.max_nodes == 1024

    def test_topologies_match_table1(self):
        assert TITAN.network.topology is Topology.TORUS_3D      # Gemini
        assert PIZ_DAINT.network.topology is Topology.DRAGONFLY  # Aries
        assert SPRUCE.network.topology is Topology.FAT_TREE      # ICE-X

    def test_gpu_machines_one_rank_per_node(self):
        assert TITAN.default_ranks_per_node == 1
        assert PIZ_DAINT.default_ranks_per_node == 1
        assert SPRUCE.default_ranks_per_node == 2  # hybrid: per NUMA domain

    def test_with_time_scale(self):
        m = TITAN.with_time_scale(2.0)
        assert m.time_scale == 2.0
        assert m.name == TITAN.name
