"""Tests: non-blocking point-to-point and split-phase halo exchange."""

import numpy as np
import pytest

from repro.comm import SerialComm, launch_spmd
from repro.comm.base import CompletedRequest
from repro.mesh import Field, Grid2D, HaloExchanger, decompose
from repro.utils import CommunicationError, EventLog


class TestRequests:
    def test_isend_completes_immediately(self):
        def rank_main(comm):
            peer = 1 - comm.rank
            req = comm.isend(comm.rank * 10, dest=peer, tag=7)
            assert req.test()
            req.wait()
            return comm.recv(source=peer, tag=7)

        assert launch_spmd(rank_main, 2) == [10, 0]

    def test_irecv_wait(self):
        def rank_main(comm):
            peer = 1 - comm.rank
            req = comm.irecv(source=peer, tag=9)
            comm.send(f"msg-{comm.rank}", dest=peer, tag=9)
            return req.wait()

        assert launch_spmd(rank_main, 2) == ["msg-1", "msg-0"]

    def test_irecv_test_polls_without_blocking(self):
        def rank_main(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=4)
                first = req.test()  # nothing sent yet (rank 1 is barriered)
                comm.barrier()      # rank 1 sends before this barrier
                comm.barrier()
                while not req.test():
                    pass
                return (first, req.wait())
            comm.send("late", dest=0, tag=4)
            comm.barrier()
            comm.barrier()
            return None

        out = launch_spmd(rank_main, 2)
        first, value = out[0]
        assert value == "late"

    def test_wait_idempotent(self):
        def rank_main(comm):
            peer = 1 - comm.rank
            comm.send([1, 2], dest=peer, tag=2)
            req = comm.irecv(source=peer, tag=2)
            a = req.wait()
            b = req.wait()
            return a is b

        assert all(launch_spmd(rank_main, 2))

    def test_completed_request(self):
        r = CompletedRequest("x")
        assert r.test() and r.wait() == "x"

    def test_serial_irecv_raises(self):
        with pytest.raises(CommunicationError):
            SerialComm().irecv(source=0)


class TestSplitPhaseExchange:
    def test_matches_blocking_exchange(self):
        g = Grid2D(16, 12)
        glob = np.arange(16.0 * 12).reshape(12, 16)

        def rank_main(comm):
            t = decompose(g, comm.size)[comm.rank]
            f_block = Field.from_global(t, 2, glob)
            f_split = Field.from_global(t, 2, glob)
            ex = HaloExchanger(comm)
            ex.exchange(f_block, depth=2)
            pending = ex.begin_exchange(f_split, depth=2)
            # interior work may proceed here while x-halos are in flight
            interior_sum = f_split.interior.sum()
            ex.end_exchange(pending)
            assert interior_sum == f_split.interior.sum()
            assert np.array_equal(f_block.data, f_split.data)
            return True

        for size in (2, 4, 6):
            assert all(launch_spmd(rank_main, size))

    def test_events_recorded_once(self):
        g = Grid2D(8, 8)

        def rank_main(comm):
            t = decompose(g, comm.size)[comm.rank]
            f = Field.from_global(t, 1, np.ones((8, 8)))
            log = EventLog()
            ex = HaloExchanger(comm, events=log)
            ex.end_exchange(ex.begin_exchange(f, depth=1))
            return log

        log = launch_spmd(rank_main, 4)[0]
        assert log.count("halo_exchange", 1) == 1

    def test_depth_guard(self):
        g = Grid2D(8, 8)
        t = decompose(g, 1)[0]
        f = Field(t, 1)
        ex = HaloExchanger(SerialComm())
        with pytest.raises(CommunicationError):
            ex.begin_exchange(f, depth=3)

    def test_multi_field_split(self):
        g = Grid2D(12, 12)
        glob = np.arange(144.0).reshape(12, 12)

        def rank_main(comm):
            t = decompose(g, comm.size)[comm.rank]
            f1 = Field.from_global(t, 2, glob)
            f2 = Field.from_global(t, 2, 2 * glob)
            ex = HaloExchanger(comm)
            ex.end_exchange(ex.begin_exchange([f1, f2], depth=2))
            ref1 = Field.from_global(t, 2, glob)
            ref2 = Field.from_global(t, 2, 2 * glob)
            HaloExchanger(comm).exchange([ref1, ref2], depth=2)
            assert np.array_equal(f1.data, ref1.data)
            assert np.array_equal(f2.data, ref2.data)
            return True

        assert all(launch_spmd(rank_main, 4))
