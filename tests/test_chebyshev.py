"""Unit tests: Chebyshev iteration — solver, preconditioner, matrix powers."""

import numpy as np
import pytest

from repro.mesh import Field, Grid2D
from repro.solvers import (
    ChebyshevPreconditioner,
    EigenBounds,
    chebyshev_epsilon,
    chebyshev_solve,
    estimate_eigenvalues,
    cg_solve,
)
from repro.solvers.chebyshev import ChebyshevIteration
from repro.solvers.preconditioners import (
    BlockJacobiPreconditioner,
    DiagonalPreconditioner,
    make_local_preconditioner,
)
from repro.utils import ConfigurationError, EventLog

from tests.helpers import (
    crooked_pipe_system,
    random_spd_faces,
    reference_solution,
    serial_operator,
)


def true_bounds(kx, ky, widen=1.001):
    from repro.solvers import StencilOperator2D
    A = StencilOperator2D.assemble_sparse(kx, ky).toarray()
    eig = np.linalg.eigvalsh(A)
    return EigenBounds(eig[0] / widen, eig[-1] * widen)


class TestChebyshevIteration:
    def test_residual_decays_at_polynomial_rate(self, rng):
        """||r_m|| <= 2 eps_m ||r_0|| for the Chebyshev error polynomial."""
        n = 16
        kx, ky = random_spd_faces(rng, n, n)
        bounds = true_bounds(kx, ky)
        op = serial_operator(Grid2D(n, n), kx, ky)
        bg = rng.standard_normal((n, n))
        rr = Field.from_global(op.tile, 1, bg)
        x = op.new_field()
        it = ChebyshevIteration(op, rr, x, bounds)
        r0 = np.linalg.norm(bg)
        for m in (5, 10, 20):
            it.run(m - it.steps_done)
            rm = np.linalg.norm(rr.interior)
            assert rm <= 2.0 * chebyshev_epsilon(m, bounds) * r0 * 5.0

    def test_maintained_residual_is_true_residual(self, rng):
        n = 12
        kx, ky = random_spd_faces(rng, n, n)
        bounds = true_bounds(kx, ky)
        op = serial_operator(Grid2D(n, n), kx, ky)
        bg = rng.standard_normal((n, n))
        b = Field.from_global(op.tile, 1, bg)
        rr = b.copy()
        x = op.new_field()
        ChebyshevIteration(op, rr, x, bounds).run(15)
        check = op.new_field()
        op.residual(b, x, out=check)
        assert np.allclose(check.interior, rr.interior, atol=1e-10)

    def test_solves_toward_solution(self, rng):
        n = 12
        kx, ky = random_spd_faces(rng, n, n)
        bounds = true_bounds(kx, ky)
        bg = rng.standard_normal((n, n))
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(Grid2D(n, n), kx, ky)
        rr = Field.from_global(op.tile, 1, bg)
        x = op.new_field()
        ChebyshevIteration(op, rr, x, bounds).run(120)
        assert np.allclose(x.interior, x_ref, atol=1e-6)

    def test_equal_bounds_rejected(self, rng):
        kx, ky = random_spd_faces(rng, 6, 6)
        op = serial_operator(Grid2D(6, 6), kx, ky)
        with pytest.raises(ConfigurationError):
            ChebyshevIteration(op, op.new_field(), op.new_field(),
                               EigenBounds(2.0, 2.0))

    def test_halo_depth_exceeds_field_halo(self, rng):
        kx, ky = random_spd_faces(rng, 6, 6)
        op = serial_operator(Grid2D(6, 6), kx, ky, halo=2)
        with pytest.raises(ConfigurationError):
            ChebyshevIteration(op, op.new_field(), op.new_field(),
                               EigenBounds(1.0, 4.0), halo_depth=3)

    def test_block_jacobi_with_matrix_powers_rejected(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        op = serial_operator(Grid2D(8, 8), kx, ky, halo=4)
        with pytest.raises(ConfigurationError, match="block Jacobi"):
            ChebyshevIteration(op, op.new_field(), op.new_field(),
                               EigenBounds(1.0, 4.0), halo_depth=4,
                               local_precond=BlockJacobiPreconditioner(op))

    def test_block_jacobi_inner_converges(self, rng):
        n = 12
        kx, ky = random_spd_faces(rng, n, n)
        # bounds must be of M^-1 A; estimate from a preconditioned CG run
        op = serial_operator(Grid2D(n, n), kx, ky)
        bg = rng.standard_normal((n, n))
        b = Field.from_global(op.tile, 1, bg)
        M = BlockJacobiPreconditioner(op)
        warm = cg_solve(op, b, max_iters=30, eps=1e-14, preconditioner=M)
        bounds = estimate_eigenvalues(warm.alphas, warm.betas)
        rr = Field.from_global(op.tile, 1, bg)
        x = op.new_field()
        it = ChebyshevIteration(op, rr, x, bounds, local_precond=M)
        it.run(80)
        x_ref = reference_solution(kx, ky, bg)
        assert np.allclose(x.interior, x_ref, atol=1e-5)


class TestMatrixPowersEquivalence:
    @pytest.mark.parametrize("depth", [2, 3, 4])
    def test_deep_halo_matches_depth1_serial(self, rng, depth):
        """Matrix powers is an exact reorganisation: same iterates."""
        n = 16
        kx, ky = random_spd_faces(rng, n, n)
        bounds = true_bounds(kx, ky)
        bg = rng.standard_normal((n, n))

        def run(d):
            op = serial_operator(Grid2D(n, n), kx, ky, halo=max(d, 1))
            rr = Field.from_global(op.tile, max(d, 1), bg)
            x = op.new_field()
            ChebyshevIteration(op, rr, x, bounds, halo_depth=d).run(9)
            return x.interior.copy()

        assert np.allclose(run(1), run(depth), atol=1e-13)

    @pytest.mark.parametrize("size,depth", [(2, 2), (4, 3), (4, 4), (6, 2)])
    def test_deep_halo_matches_depth1_distributed(self, rng, size, depth):
        n = 24
        kx, ky = random_spd_faces(rng, n, n)
        bounds = true_bounds(kx, ky)
        bg = rng.standard_normal((n, n))
        from repro.comm import launch_spmd
        from repro.mesh import decompose
        from repro.solvers import StencilOperator2D

        def run(d):
            def rank_main(comm):
                tile = decompose(Grid2D(n, n), comm.size)[comm.rank]
                op = StencilOperator2D.from_global_faces(tile, d, kx, ky, comm)
                rr = Field.from_global(tile, d, bg)
                x = op.new_field()
                ChebyshevIteration(op, rr, x, bounds, halo_depth=d).run(10)
                return tile, x.interior.copy()

            out = launch_spmd(rank_main, size)
            full = np.zeros((n, n))
            for tile, xi in out:
                full[tile.global_slices] = xi
            return full

        assert np.allclose(run(1), run(depth), atol=1e-12)

    def test_exchange_counts_drop_with_depth(self, rng):
        """ceil(m/n) exchanges instead of m: the communication saving."""
        n = 24
        kx, ky = random_spd_faces(rng, n, n)
        bounds = true_bounds(kx, ky)
        from repro.comm import launch_spmd
        from repro.mesh import decompose
        from repro.solvers import StencilOperator2D

        def count(d, steps=12):
            def rank_main(comm):
                tile = decompose(Grid2D(n, n), comm.size)[comm.rank]
                log = EventLog()
                op = StencilOperator2D.from_global_faces(tile, d, kx, ky,
                                                         comm, events=log)
                rr = Field.from_global(tile, d, np.ones((n, n)))
                x = op.new_field()
                ChebyshevIteration(op, rr, x, bounds, halo_depth=d).run(steps)
                return log.count("halo_exchange", d)

            return launch_spmd(rank_main, 4)[0]

        assert count(1) == 12
        assert count(4) == 3
        assert count(8) == 2  # ceil(12/8)

    def test_redundant_cells_grow_with_depth(self, rng):
        n = 24
        kx, ky = random_spd_faces(rng, n, n)
        bounds = true_bounds(kx, ky)
        from repro.comm import launch_spmd
        from repro.mesh import decompose
        from repro.solvers import StencilOperator2D

        def cells(d, steps=8):
            def rank_main(comm):
                tile = decompose(Grid2D(n, n), comm.size,
                                 factors=(2, 2))[comm.rank]
                log = EventLog()
                op = StencilOperator2D.from_global_faces(tile, d, kx, ky,
                                                         comm, events=log)
                rr = Field.from_global(tile, d, np.ones((n, n)))
                x = op.new_field()
                ChebyshevIteration(op, rr, x, bounds, halo_depth=d).run(steps)
                return log.total("matvec", "cells")

            return launch_spmd(rank_main, 4)[0]

        assert cells(4) > cells(1)  # extended bounds -> redundant work


class TestChebyshevPreconditioner:
    def test_is_linear_and_spd(self, rng):
        """M^-1 must be a fixed SPD linear operator for PCG validity."""
        n = 8
        kx, ky = random_spd_faces(rng, n, n)
        bounds = true_bounds(kx, ky)
        op = serial_operator(Grid2D(n, n), kx, ky)
        M = ChebyshevPreconditioner(op, bounds, steps=4)
        cells = n * n
        mat = np.zeros((cells, cells))
        r, z = op.new_field(), op.new_field()
        for col in range(cells):
            e = np.zeros(cells)
            e[col] = 1.0
            r.interior[...] = e.reshape(n, n)
            M.apply(r, z)
            mat[:, col] = z.interior.ravel()
        assert np.allclose(mat, mat.T, atol=1e-12)
        eig = np.linalg.eigvalsh(0.5 * (mat + mat.T))
        assert eig.min() > 0

    def test_application_counts(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        bounds = true_bounds(kx, ky)
        op = serial_operator(Grid2D(8, 8), kx, ky)
        M = ChebyshevPreconditioner(op, bounds, steps=6)
        r, z = op.new_field(), op.new_field()
        r.interior[...] = 1.0
        M.apply(r, z)
        M.apply(r, z)
        assert M.applications == 2
        assert M.inner_steps == 6


class TestChebyshevSolve:
    def test_converges_to_reference(self):
        g, kx, ky, bg = crooked_pipe_system(24)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = chebyshev_solve(op, b, eps=1e-10)
        assert result.converged
        assert np.allclose(result.x.interior, x_ref,
                           atol=1e-6 * np.abs(x_ref).max())
        assert result.eigen_bounds is not None
        assert result.warmup_iterations > 0

    def test_no_dots_between_checks(self):
        from repro.comm import InstrumentedComm, SerialComm
        from repro.mesh import decompose
        from repro.solvers import StencilOperator2D

        g, kx, ky, bg = crooked_pipe_system(24)
        log = EventLog()
        comm = InstrumentedComm(SerialComm(), log)
        tile = decompose(g, 1)[0]
        op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
        b = Field.from_global(tile, 1, bg)
        result = chebyshev_solve(op, b, eps=1e-10, check_interval=10)
        # warm-up pays 2/iter; the Chebyshev phase only pays per check
        checks = int(np.ceil(result.iterations / 10))
        expected_max = 2 * result.warmup_iterations + 1 + checks + 1
        assert log.count_kind("allreduce") <= expected_max

    def test_warmup_convergence_short_circuits(self):
        g, kx, ky, bg = crooked_pipe_system(8)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = chebyshev_solve(op, b, eps=1e-6, warmup_iters=200)
        assert result.converged
        assert result.iterations == 0  # all work in warm-up

    def test_explicit_bounds_skip_estimation(self, rng):
        kx, ky = random_spd_faces(rng, 12, 12)
        bounds = true_bounds(kx, ky)
        op = serial_operator(Grid2D(12, 12), kx, ky)
        b = Field.from_global(op.tile, 1, rng.standard_normal((12, 12)))
        result = chebyshev_solve(op, b, eps=1e-10, bounds=bounds,
                                 warmup_iters=2)
        assert result.converged
        assert result.eigen_bounds == (bounds.lam_min, bounds.lam_max)
