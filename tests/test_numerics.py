"""Unit tests: repro.numerics — precision, breakdown, replacement, refinement."""

import math

import numpy as np
import pytest

from repro.mesh import Field, Grid2D
from repro.numerics import (
    BreakdownError,
    BreakdownGuard,
    ResidualReplacer,
    cast_field,
    cast_operator,
    inner_tolerance,
    resolve_dtype,
    unit_roundoff,
)
from repro.solvers import EigenBounds, SolverOptions, cg_solve, solve_linear
from repro.solvers.dim3 import StencilOperator3D, cg_solve_3d
from repro.solvers.jacobi import jacobi_solve
from repro.solvers.ppcg import ppcg_solve
from repro.utils import ConvergenceError
from repro.utils.errors import ConfigurationError

from tests.helpers import (
    crooked_pipe_jump_system,
    crooked_pipe_system,
    distributed_solve,
    serial_operator,
)


def pipe_problem(n=16):
    g, kx, ky, bg = crooked_pipe_system(n)
    op = serial_operator(g, kx, ky)
    b = Field.from_global(op.tile, 1, bg)
    return op, b


def indefinite_problem(n=6):
    """An operator with negative face coefficients: A is not SPD.

    The right-hand side must carry high-frequency content — a constant
    vector only sees the identity part of the stencil and ``<p, Ap>``
    stays positive.
    """
    g = Grid2D(n, n)
    kx = np.zeros((n, n + 1))
    ky = np.zeros((n + 1, n))
    kx[:, 1:n] = -5.0
    ky[1:n, :] = -5.0
    op = serial_operator(g, kx, ky)
    rng = np.random.default_rng(42)
    b = Field.from_global(op.tile, 1, rng.standard_normal((n, n)))
    return op, b


class TestPrecisionHelpers:
    def test_resolve_dtype(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype("float64") == np.float64

    def test_resolve_dtype_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            resolve_dtype("int32")

    def test_unit_roundoff(self):
        assert unit_roundoff("float64") == np.finfo(np.float64).eps / 2
        assert unit_roundoff("float32") == np.finfo(np.float32).eps / 2
        assert unit_roundoff("float32") > unit_roundoff("float64")

    def test_inner_tolerance_floor(self):
        u32 = unit_roundoff("float32")
        # A target far below float32 resolution is clamped to sqrt(u).
        assert inner_tolerance("float32", 1e-12) == pytest.approx(
            math.sqrt(u32))
        # An achievable target is passed through.
        assert inner_tolerance("float32", 1e-2) == 1e-2

    def test_cast_field_dtype_and_values(self):
        op, b = pipe_problem(8)
        b32 = cast_field(b, "float32")
        assert b32.data.dtype == np.float32
        np.testing.assert_allclose(
            b32.interior, b.interior.astype(np.float32))

    def test_cast_field_noop_at_same_dtype(self):
        op, b = pipe_problem(8)
        assert cast_field(b, "float64") is b

    def test_cast_operator_casts_everything(self):
        op, b = pipe_problem(8)
        op32 = cast_operator(op, "float32")
        assert op32.dtype == np.float32
        assert op32.kx.data.dtype == np.float32
        assert op32.ky.data.dtype == np.float32
        # The cast operator shares the original's event log so
        # communication accounting stays in one place.
        assert op32.events is op.events

    def test_field_allocation_respects_dtype(self):
        op, b = pipe_problem(8)
        b32 = cast_field(b, "float32")
        assert Field.like(b32).data.dtype == np.float32


class TestBreakdownGuard:
    def test_curvature_nan_raises(self):
        # The satellite regression: NaN <= 0 is False, so an unguarded
        # ``pw <= 0`` check lets a poisoned reduction slip through.
        guard = BreakdownGuard(solver="cg")
        with pytest.raises(BreakdownError, match="non-finite") as exc:
            guard.curvature(float("nan"), iteration=7)
        assert exc.value.solver == "cg"
        assert exc.value.iteration == 7
        assert exc.value.quantity == "pAp"
        assert math.isnan(exc.value.value)

    def test_curvature_negative_raises(self):
        guard = BreakdownGuard(solver="cg")
        with pytest.raises(BreakdownError, match="not SPD") as exc:
            guard.curvature(-1.5, iteration=3)
        assert exc.value.value == -1.5

    def test_curvature_positive_passes(self):
        BreakdownGuard(solver="cg").curvature(1e-30, iteration=0)

    def test_coefficient_nonfinite_always_fatal(self):
        guard = BreakdownGuard(solver="ppcg")
        with pytest.raises(BreakdownError, match="non-finite"):
            guard.coefficient("beta", float("inf"), iteration=2)

    def test_coefficient_sign_only_strict(self):
        # Transiently negative beta is routine for Chebyshev-preconditioned
        # CG, so the sign check is opt-in.
        BreakdownGuard(solver="ppcg").coefficient("beta", -0.1, iteration=2)
        strict = BreakdownGuard(solver="cg", strict=True)
        with pytest.raises(BreakdownError, match="conjugacy"):
            strict.coefficient("beta", -0.1, iteration=2)

    def test_residual_nonfinite_raises(self):
        guard = BreakdownGuard(solver="jacobi")
        with pytest.raises(BreakdownError, match="non-finite"):
            guard.residual(float("nan"), iteration=1)

    def test_residual_stagnation_window(self):
        guard = BreakdownGuard(solver="cg", stagnation_window=3)
        for it, norm in enumerate([1.0, 0.9999, 0.9998]):
            guard.residual(norm, iteration=it)
        with pytest.raises(BreakdownError, match="stagnated") as exc:
            guard.residual(0.9997, iteration=3)
        assert exc.value.quantity == "residual_norm"

    def test_residual_progress_resets_window(self):
        guard = BreakdownGuard(solver="cg", stagnation_window=3)
        for it, norm in enumerate([1.0, 0.5, 0.25, 0.125, 0.0625]):
            guard.residual(norm, iteration=it)

    def test_reset_clears_window(self):
        guard = BreakdownGuard(solver="cg", stagnation_window=2)
        guard.residual(1.0, iteration=0)
        guard.residual(1.0, iteration=1)
        guard.reset()
        guard.residual(1.0, iteration=2)  # would raise without the reset

    def test_breakdown_is_convergence_error(self):
        assert issubclass(BreakdownError, ConvergenceError)


class TestSolverBreakdowns:
    def test_cg_indefinite_operator(self):
        op, b = indefinite_problem()
        with pytest.raises(BreakdownError) as exc:
            cg_solve(op, b, eps=1e-10, max_iters=50)
        assert exc.value.quantity == "pAp"
        assert exc.value.value <= 0.0

    def test_cg_fused_indefinite_operator(self):
        from repro.solvers.cg_fused import cg_fused_solve
        op, b = indefinite_problem()
        with pytest.raises(BreakdownError) as exc:
            cg_fused_solve(op, b, eps=1e-10, max_iters=50)
        assert exc.value.quantity == "pAp"

    def test_jacobi_raises_on_nan_instead_of_spinning(self):
        # A NaN face coefficient poisons the sweep at iteration 1; the
        # guard converts a silent 10k-iteration burn into a loud error.
        g, kx, ky, bg = crooked_pipe_system(16)
        kx = kx.copy()
        kx[8, 8] = np.nan
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        with pytest.raises(BreakdownError) as exc:
            jacobi_solve(op, b, eps=1e-10, max_iters=500)
        assert exc.value.solver == "jacobi"
        assert exc.value.iteration <= 2

    def test_chebyshev_stagnation_under_bad_bounds(self):
        g, kx, ky, bg = crooked_pipe_jump_system(16, 1e8)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        with pytest.raises(BreakdownError, match="stagnated"):
            solve_linear(op, b, options=SolverOptions(
                solver="chebyshev", eps=1e-10, max_iters=2000,
                eigen_warmup_iters=4, eigen_safety=(1.0, 1.0),
                stagnation_window=5))

    def test_cg3d_breakdown(self):
        # Satellite: exercise the dim3 breakdown raise with negative faces.
        n = 4
        kx = np.zeros((n, n, n + 1))
        ky = np.zeros((n, n + 1, n))
        kz = np.zeros((n + 1, n, n))
        kx[:, :, 1:n] = -4.0
        ky[:, 1:n, :] = -4.0
        kz[1:n, :, :] = -4.0
        op = StencilOperator3D(kx=kx, ky=ky, kz=kz)
        b = np.random.default_rng(42).standard_normal((n, n, n))
        with pytest.raises(BreakdownError) as exc:
            cg_solve_3d(op, b, eps=1e-10, max_iters=50)
        assert exc.value.solver == "cg3d"
        assert exc.value.quantity == "pAp"
        assert exc.value.value <= 0.0


class TestPpcgRestartAndFallback:
    """Breakdown-driven restart/degrade paths (verified recipes).

    With deliberately bogus eigenvalue bounds the Chebyshev inner phase
    makes no progress; the stagnation window raises a BreakdownError
    inside the outer loop, which the adaptive machinery turns into a
    restart, a fallback to plain CG, or a structured raise.
    """

    EPS = 1e-8

    @pytest.fixture(scope="class")
    def system(self):
        g, kx, ky, bg = crooked_pipe_jump_system(16, 1e8)
        op = serial_operator(g, kx, ky, halo=4)
        b = Field.from_global(op.tile, 4, bg)
        return op, b

    def run(self, system, **kw):
        op, b = system
        bad = EigenBounds(lam_min=0.5, lam_max=0.6)
        return ppcg_solve(op, b, eps=self.EPS, max_iters=400,
                          inner_steps=9, halo_depth=4, bounds=bad,
                          stagnation_window=15, **kw)

    def test_fallback_to_plain_cg(self, system):
        result = self.run(system, adaptive=True, max_restarts=0,
                          degrade=True)
        assert result.converged
        assert result.degraded
        assert "fell back to plain CG" in result.degraded_reason
        assert "breakdown persists" in result.degraded_reason

    def test_breakdown_raises_without_degrade(self, system):
        with pytest.raises(BreakdownError, match="stagnated"):
            self.run(system, adaptive=True, max_restarts=0, degrade=False)

    def test_restart_recovers(self, system):
        result = self.run(system, adaptive=True, max_restarts=2,
                          degrade=True)
        assert result.converged
        assert result.restarts >= 1
        assert not result.degraded

    def test_nonadaptive_degrades_immediately(self, system):
        result = self.run(system, adaptive=False, degrade=True)
        assert result.converged
        assert result.degraded
        assert "broke down" in result.degraded_reason


class TestMixedPrecision:
    def test_float32_solve_stays_float32(self):
        op, b = pipe_problem(8)
        result = cg_solve(cast_operator(op, "float32"),
                          cast_field(b, "float32"), eps=1e-4)
        assert result.converged
        assert result.x.data.dtype == np.float32

    def test_driver_promotes_back_to_b_dtype(self):
        op, b = pipe_problem(8)
        result = solve_linear(op, b, options=SolverOptions(
            solver="cg", eps=1e-4, dtype="float32"))
        assert result.converged
        assert result.x.data.dtype == np.float64

    def test_float32_halo_traffic_halves(self):
        # Satellite: mesh/operator allocations follow the working dtype,
        # so halo exchange moves exactly half the bytes in float32.
        g, kx, ky, bg = crooked_pipe_system(16)
        totals = {}
        for dtype in ("float64", "float32"):
            options = SolverOptions(solver="cg", eps=1e-30, max_iters=5,
                                    dtype=dtype)
            _, result = distributed_solve(g, kx, ky, bg, options, size=2)
            totals[dtype] = result.events.total("halo_exchange", "bytes")
        assert totals["float64"] > 0
        assert totals["float32"] == totals["float64"] // 2


class TestIterativeRefinement:
    def test_float32_refinement_reaches_float64_tolerance(self):
        op, b = pipe_problem(16)
        options = SolverOptions(solver="cg", eps=1e-10, dtype="float32",
                                refine=True, max_iters=400)
        result = solve_linear(op, b, options=options)
        assert result.converged
        assert result.true_residual_norm is not None
        assert result.true_relative_residual <= 1e-10
        assert result.diagnosis.refinement_steps >= 1
        assert not result.diagnosis.escalated
        assert result.diagnosis.final_dtype == "float32"
        # And the answer matches a straight float64 solve.
        ref = solve_linear(op, b, options=SolverOptions(
            solver="cg", eps=1e-10))
        np.testing.assert_allclose(result.x.interior, ref.x.interior,
                                   rtol=1e-6, atol=1e-12)

    def test_refinement_is_deterministic(self):
        op, b = pipe_problem(16)
        options = SolverOptions(solver="cg", eps=1e-10, dtype="float32",
                                refine=True, max_iters=400)
        a = solve_linear(op, b, options=options)
        c = solve_linear(op, b, options=options)
        assert np.array_equal(a.x.data, c.x.data)
        assert a.iterations == c.iterations

    @pytest.mark.slow
    def test_hopeless_float32_escalates_with_diagnosis(self):
        # kappa ~ 8e6 puts u32 * kappa ~ 0.47 over the hopeless
        # threshold: refinement cannot contract, so the driver escalates
        # to float64 and says why.
        g, kx, ky, bg = crooked_pipe_jump_system(16, 1e10, dt=50.0)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        options = SolverOptions(solver="cg", eps=1e-8, dtype="float32",
                                refine=True, max_iters=2000)
        result = solve_linear(op, b, options=options)
        assert result.converged
        assert result.diagnosis.escalated
        assert result.diagnosis.final_dtype == "float64"
        assert "hopeless" in result.diagnosis.reason
        assert result.diagnosis.kappa_estimate > 1e6


class TestResidualReplacement:
    def test_drift_bound_uses_sqrt_u_floor(self):
        rep = ResidualReplacer(interval=10, dtype="float64")
        u = unit_roundoff("float64")
        # kappa = 1: the derived bound 100*u is below the sqrt(u) floor.
        assert rep.drift_bound(1.0) == pytest.approx(math.sqrt(u))

    def test_drift_bound_explicit_tolerance_wins(self):
        rep = ResidualReplacer(interval=10, dtype="float64",
                               tolerance=1e-3)
        assert rep.drift_bound(2.0) == pytest.approx(2e-3)

    def test_observe_records_splice(self):
        rep = ResidualReplacer(interval=10, dtype="float32")
        bound = rep.drift_bound(1.0)
        assert not rep.observe(bound / 2, 1.0, iteration=10)
        assert rep.observe(bound * 2, 1.0, iteration=20)
        assert rep.stats.checks == 2
        assert rep.stats.splices == 1
        assert rep.stats.max_drift == pytest.approx(bound * 2)

    def test_adaptive_interval_shrinks_with_condition(self):
        rep = ResidualReplacer(interval=100, dtype="float32",
                               adaptive=True)
        # Lanczos coefficients spanning five orders of magnitude: the
        # condition estimate drives the cadence toward 1/sqrt(u * kappa).
        rep.update_condition([1.0, 1e-5, 1.0], [0.5, 0.5, 0.5])
        assert rep.kappa > 1e3
        assert rep.current < 100
        assert rep.current >= 4  # MIN_INTERVAL floor

    def test_update_condition_from_solve_coefficients(self):
        op, b = pipe_problem(16)
        probe = cg_solve(op, b, eps=1e-10)
        rep = ResidualReplacer(interval=100, dtype="float32",
                               adaptive=True)
        rep.update_condition(probe.alphas, probe.betas)
        assert rep.kappa > 1.0

    def test_float32_false_convergence_is_caught(self):
        # Unprotected float32 at eps=1e-8: the recurrence claims
        # convergence while the true residual sits ~26x over tolerance.
        op, b = pipe_problem(16)
        eps = 1e-8
        lying = solve_linear(op, b, options=SolverOptions(
            solver="cg", eps=eps, dtype="float32", max_iters=300,
            true_residual=True))
        assert lying.converged
        assert lying.true_relative_residual > 10 * eps

        # With replacement on, every convergence claim is verified
        # against a freshly recomputed true residual: no false positive.
        op2, b2 = pipe_problem(16)
        honest = solve_linear(op2, b2, options=SolverOptions(
            solver="cg", eps=eps, dtype="float32", max_iters=300,
            replace_interval=10, replace_adaptive=True,
            true_residual=True))
        assert honest.replacement.splices > 0
        if honest.converged:
            assert honest.true_relative_residual <= 10 * eps

    def test_replacement_traffic_is_rerouted(self):
        # Splice-free replacement checks must not change the iteration
        # stream, and their allreduces land under the replacement event
        # kind so first-attempt COMM_CONTRACT counts stay exact.
        g, kx, ky, bg = crooked_pipe_system(16)
        options_plain = SolverOptions(solver="cg", eps=1e-10)
        # replace_tolerance=1.0 makes the splice bound the residual scale
        # itself, so the checks are splice-free by construction and the
        # iteration stream is bit-identical to the plain run.
        options_rep = SolverOptions(solver="cg", eps=1e-10,
                                    replace_interval=10,
                                    replace_tolerance=1.0)
        _, plain = distributed_solve(g, kx, ky, bg, options_plain, size=2)
        _, rep = distributed_solve(g, kx, ky, bg, options_rep, size=2)
        assert rep.replacement.splices == 0
        assert rep.replacement.checks > 0
        assert rep.iterations == plain.iterations
        assert rep.residual_norm == plain.residual_norm
        # First-attempt counts match the plain run exactly; the true
        # residual recomputes (matvec + halo exchange per check) are
        # all under the replacement kind.
        for kind in ("matvec", "halo_exchange"):
            assert (rep.events.count_kind(kind)
                    == plain.events.count_kind(kind))
            assert (rep.events.replacement_count(kind)
                    == rep.replacement.checks)

    def test_true_residual_in_summary(self):
        op, b = pipe_problem(8)
        result = solve_linear(op, b, options=SolverOptions(
            solver="cg", eps=1e-10, true_residual=True))
        assert result.true_residual_norm is not None
        assert "(true" in result.summary()


class TestDeckAndCli:
    def test_deck_parses_numerics_settings(self):
        from repro.physics.deck import parse_deck_text
        deck = parse_deck_text(
            "*tea\n"
            "state 1 density=1.0 energy=1.0\n"
            "tl_working_dtype=float32\n"
            "tl_replace_interval=25\n"
            "tl_enable_refinement\n"
            "tl_check_true_residual\n"
            "*endtea\n")
        assert deck.tl_working_dtype == "float32"
        assert deck.tl_replace_interval == 25
        assert deck.tl_enable_refinement
        assert deck.tl_check_true_residual

    def test_deck_rejects_unknown_dtype(self):
        from repro.physics.deck import parse_deck_text
        with pytest.raises(ConfigurationError, match="tl_working_dtype"):
            parse_deck_text("*tea\ntl_working_dtype=float16\n*endtea\n")

    def test_deck_defaults(self):
        from repro.physics.deck import parse_deck_text
        deck = parse_deck_text("*tea\nstate 1 density=1.0 energy=1.0\n*endtea\n")
        assert deck.tl_working_dtype == "float64"
        assert deck.tl_replace_interval == 0
        assert not deck.tl_enable_refinement
        assert not deck.tl_check_true_residual

    @pytest.mark.slow
    def test_cli_tealeaf_prints_true_residual(self, tmp_path, capsys):
        from repro.cli.main import main
        deck = tmp_path / "tea.in"
        deck.write_text(
            "*tea\n"
            "state 1 density=100.0 energy=0.0001\n"
            "state 2 density=0.1 energy=25.0 geometry=rectangle "
            "xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0\n"
            "x_cells=12\ny_cells=12\n"
            "initial_timestep=0.04\nend_time=0.08\n"
            "use_cg\ntl_eps=1e-8\n"
            "tl_check_true_residual\n"
            "*endtea\n", encoding="utf-8")
        rc = main(["tealeaf", "--deck", str(deck)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "true=" in out
