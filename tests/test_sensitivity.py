"""Tests: the machine-knob sensitivity analysis."""

import pytest

from repro.perfmodel import SPRUCE, TITAN, SolverConfig
from repro.perfmodel.sensitivity import (
    KNOBS,
    scaled_machine,
    sensitivities,
    sweep_knob,
)
from repro.utils import ConfigurationError

CG = SolverConfig("cg")
PPCG16 = SolverConfig("ppcg", inner_steps=10, halo_depth=16)


class TestScaledMachine:
    def test_identity_factor(self):
        m = scaled_machine(TITAN, "network_latency", 1.0)
        assert m.network.inter_node.latency == \
            TITAN.network.inter_node.latency

    def test_each_knob_scales_its_target(self):
        m = scaled_machine(TITAN, "network_latency", 2.0)
        assert m.network.inter_node.latency == pytest.approx(
            2 * TITAN.network.inter_node.latency)
        m = scaled_machine(TITAN, "network_bandwidth", 2.0)
        assert m.network.inter_node.bandwidth == pytest.approx(
            2 * TITAN.network.inter_node.bandwidth)
        m = scaled_machine(TITAN, "node_bandwidth", 0.5)
        assert m.node.dram_bandwidth == pytest.approx(
            0.5 * TITAN.node.dram_bandwidth)
        m = scaled_machine(TITAN, "launch_overhead", 3.0)
        assert m.node.launch_overhead == pytest.approx(
            3 * TITAN.node.launch_overhead)

    def test_originals_untouched(self):
        before = TITAN.network.inter_node.latency
        scaled_machine(TITAN, "network_latency", 10.0)
        assert TITAN.network.inter_node.latency == before

    def test_unknown_knob(self):
        with pytest.raises(ConfigurationError):
            scaled_machine(TITAN, "cooling", 2.0)

    def test_bad_factor(self):
        with pytest.raises(ConfigurationError):
            scaled_machine(TITAN, "network_latency", 0.0)


class TestSweeps:
    def test_latency_sweep_monotone(self):
        pts = sweep_knob(TITAN, CG, "network_latency", (0.5, 1.0, 2.0, 4.0),
                         nodes=2048, outer_iters=8000)
        secs = [p.seconds for p in pts]
        assert all(a <= b for a, b in zip(secs, secs[1:]))

    def test_bandwidth_sweep_monotone_decreasing(self):
        pts = sweep_knob(TITAN, CG, "node_bandwidth", (0.5, 1.0, 2.0),
                         nodes=4, outer_iters=8000)
        secs = [p.seconds for p in pts]
        assert all(a >= b for a, b in zip(secs, secs[1:]))


class TestBindingConstraints:
    """The analysis must recover the paper's strong-scaling diagnoses."""

    def test_cg_at_scale_is_latency_bound_on_titan(self):
        s = sensitivities(TITAN, CG, nodes=8192, outer_iters=8556.0)
        assert s["network_latency"] > s["node_bandwidth"]
        assert s["network_latency"] > s["network_bandwidth"]

    def test_cppcg_at_scale_is_launch_bound_on_titan(self):
        """CPPCG removed the reductions; the kernel-launch floor remains."""
        s = sensitivities(TITAN, PPCG16, nodes=8192, outer_iters=934.0)
        assert s["launch_overhead"] == max(s.values())

    def test_cppcg_less_latency_sensitive_than_cg(self):
        s_cg = sensitivities(TITAN, CG, nodes=8192, outer_iters=8556.0)
        s_pp = sensitivities(TITAN, PPCG16, nodes=8192, outer_iters=934.0)
        assert s_pp["network_latency"] < s_cg["network_latency"]

    def test_single_node_is_bandwidth_bound(self):
        s = sensitivities(TITAN, CG, nodes=1, outer_iters=8556.0)
        assert s["node_bandwidth"] == max(s.values())
        assert s["network_latency"] == pytest.approx(1.0)

    def test_spruce_midrange_bandwidth_bound(self):
        s = sensitivities(SPRUCE, CG, nodes=16, outer_iters=8556.0,
                          ranks_per_node=20)
        assert s["node_bandwidth"] > 1.5

    def test_all_knobs_covered(self):
        s = sensitivities(TITAN, CG, nodes=64, outer_iters=1000.0)
        assert set(s) == set(KNOBS)
        assert all(v >= 0.99 for v in s.values())
