"""Unit tests: Lanczos eigenvalue estimation and the paper's Eqs. 4-7."""

import numpy as np
import pytest

from repro.mesh import Field
from repro.solvers import (
    EigenBounds,
    StencilOperator2D,
    cg_solve,
    chebyshev_epsilon,
    estimate_eigenvalues,
    iteration_bounds,
    lanczos_tridiagonal,
)
from repro.utils import ConfigurationError

from tests.helpers import crooked_pipe_system, random_spd_faces, serial_operator
from repro.mesh import Grid2D


class TestEigenBounds:
    def test_derived_quantities(self):
        b = EigenBounds(1.0, 9.0)
        assert b.condition_number == 9.0
        assert b.theta == 5.0
        assert b.delta == 4.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            EigenBounds(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            EigenBounds(2.0, 1.0)


class TestLanczos:
    def test_single_iteration(self):
        diag, off = lanczos_tridiagonal([0.5], [])
        assert diag.tolist() == [2.0]
        assert off.size == 0

    def test_shapes(self):
        diag, off = lanczos_tridiagonal([0.5, 0.25, 0.2], [0.1, 0.2, 0.3])
        assert len(diag) == 3 and len(off) == 2

    def test_known_values(self):
        diag, off = lanczos_tridiagonal([1.0, 0.5], [0.25])
        assert diag[0] == pytest.approx(1.0)
        assert diag[1] == pytest.approx(2.0 + 0.25)
        assert off[0] == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            lanczos_tridiagonal([], [])
        with pytest.raises(ConfigurationError):
            lanczos_tridiagonal([1.0, 1.0], [])  # not enough betas
        with pytest.raises(ConfigurationError):
            lanczos_tridiagonal([-1.0], [])


class TestEstimateFromRealCG:
    def test_bounds_bracket_true_spectrum(self, rng):
        n = 16
        kx, ky = random_spd_faces(rng, n, n)
        A = StencilOperator2D.assemble_sparse(kx, ky).toarray()
        true = np.linalg.eigvalsh(A)
        op = serial_operator(Grid2D(n, n), kx, ky)
        b = Field.from_global(op.tile, 1, rng.standard_normal((n, n)))
        result = cg_solve(op, b, max_iters=40, eps=1e-14)
        bounds = estimate_eigenvalues(result.alphas, result.betas)
        # Safety-widened Ritz values must bracket the spectrum closely.
        assert bounds.lam_min <= true[0] * 1.02
        assert bounds.lam_max >= true[-1] * 0.98

    def test_ritz_interior_without_safety(self, rng):
        n = 12
        kx, ky = random_spd_faces(rng, n, n)
        A = StencilOperator2D.assemble_sparse(kx, ky).toarray()
        true = np.linalg.eigvalsh(A)
        op = serial_operator(Grid2D(n, n), kx, ky)
        b = Field.from_global(op.tile, 1, rng.standard_normal((n, n)))
        result = cg_solve(op, b, max_iters=30, eps=1e-14)
        bounds = estimate_eigenvalues(result.alphas, result.betas,
                                      safety=(1.0, 1.0))
        assert bounds.lam_min >= true[0] - 1e-8
        assert bounds.lam_max <= true[-1] + 1e-8

    def test_crooked_pipe_condition_number(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, max_iters=30, eps=1e-14)
        bounds = estimate_eigenvalues(result.alphas, result.betas)
        assert bounds.lam_min == pytest.approx(1.0, rel=0.1)
        assert bounds.condition_number > 10

    def test_invalid_safety(self):
        with pytest.raises(ConfigurationError):
            estimate_eigenvalues([1.0], [], safety=(1.2, 1.05))


class TestChebyshevEpsilon:
    def test_degree_zero(self):
        assert chebyshev_epsilon(0, EigenBounds(1.0, 10.0)) == 1.0

    def test_monotone_decreasing_in_degree(self):
        b = EigenBounds(1.0, 100.0)
        eps = [chebyshev_epsilon(m, b) for m in range(0, 30, 3)]
        assert all(a > c for a, c in zip(eps, eps[1:]))

    def test_tight_spectrum_damps_fast(self):
        assert chebyshev_epsilon(5, EigenBounds(1.0, 2.0)) < 1e-3

    def test_equal_bounds(self):
        assert chebyshev_epsilon(3, EigenBounds(2.0, 2.0)) == 0.0

    def test_negative_degree(self):
        with pytest.raises(ConfigurationError):
            chebyshev_epsilon(-1, EigenBounds(1.0, 2.0))


class TestIterationBounds:
    def test_dot_reduction_grows_with_inner_steps(self):
        b = EigenBounds(1.0, 1000.0)
        r = [iteration_bounds(b, m).dot_reduction for m in (1, 5, 10, 20)]
        assert all(x < y for x, y in zip(r, r[1:]))

    def test_kappa_pcg_less_than_kappa_cg(self):
        b = EigenBounds(1.0, 500.0)
        ib = iteration_bounds(b, 10)
        assert ib.kappa_pcg < ib.kappa_cg
        assert ib.k_outer < ib.k_total

    def test_matches_paper_formulas(self):
        b = EigenBounds(1.0, 100.0)
        ib = iteration_bounds(b, 4, tolerance=1e-6)
        eps_m = chebyshev_epsilon(4, b)
        assert ib.kappa_pcg == pytest.approx((1 + eps_m) / (1 - eps_m))
        assert ib.k_total == pytest.approx(
            0.5 * np.sqrt(100.0) * np.log(2e6))

    def test_predicts_real_outer_iteration_drop(self):
        """The Eq. 6/7 ratio should approximate the measured CG/PPCG ratio."""
        from repro.solvers import ppcg_solve
        g, kx, ky, bg = crooked_pipe_system(48)
        op_cg = serial_operator(g, kx, ky)
        b1 = Field.from_global(op_cg.tile, 1, bg)
        cg = cg_solve(op_cg, b1, eps=1e-10)
        op_pp = serial_operator(g, kx, ky, halo=1)
        b2 = Field.from_global(op_pp.tile, 1, bg)
        pp = ppcg_solve(op_pp, b2, eps=1e-10, inner_steps=10)
        bounds = EigenBounds(*pp.eigen_bounds)
        predicted = iteration_bounds(bounds, 10, tolerance=1e-10)
        measured_ratio = cg.iterations / max(pp.iterations, 1)
        # same order of magnitude (bounds are worst-case, measured is better)
        assert predicted.dot_reduction == pytest.approx(measured_ratio,
                                                        rel=0.9)
        assert measured_ratio > 3

    def test_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            iteration_bounds(EigenBounds(1.0, 2.0), 3, tolerance=2.0)
