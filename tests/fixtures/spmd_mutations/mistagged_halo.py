"""Seeded RPR010 mutations: send/recv tag and peer mismatches.

Each function mimics the shape of a halo-exchange helper; the bugs are
the classic transcription slips a 3D generalisation introduces.
"""

TAG_L, TAG_R = 11, 12


def mistagged_exchange(comm, t, lo, hi):
    # BUG: the rightward message goes out tagged TAG_R but both receives
    # listen on TAG_L — tag 12 is sent and never received.
    comm.send(lo, t.left, TAG_L)
    comm.send(hi, t.right, TAG_R)
    a = comm.recv(t.left, TAG_L)
    b = comm.recv(t.right, TAG_L)
    return a, b


def swapped_direction(comm, t, lo, hi):
    # BUG: tags balance as sets, but the receive from the left neighbour
    # uses the tag of the message travelling *leftward* — the two
    # directions are crossed and matched pairs deadlock.
    comm.send(lo, t.left, TAG_L)
    comm.send(hi, t.right, TAG_R)
    a = comm.recv(t.left, TAG_L)
    b = comm.recv(t.right, TAG_R)
    return a, b


def one_sided(comm, t, lo, hi):
    # BUG: both receives name the left neighbour — nothing is ever
    # received from the right.
    comm.send(lo, t.left, TAG_L)
    comm.send(hi, t.right, TAG_R)
    a = comm.recv(t.left, TAG_R)
    b = comm.recv(t.left, TAG_R)
    return a, b


def clean_exchange(comm, t, lo, hi):
    # CLEAN: the canonical pattern — the message sent toward the right
    # (TAG_R) is the one received from the left, and vice versa.
    comm.send(lo, t.left, TAG_L)
    comm.send(hi, t.right, TAG_R)
    a = comm.recv(t.left, TAG_R)
    b = comm.recv(t.right, TAG_L)
    return a, b


def clean_master_worker(comm, obj):
    # CLEAN: rank-guarded one-directional p2p is the master/worker
    # idiom, not a halo transcription slip — RPR010 skips it.
    if comm.rank == 0:
        comm.send(obj, 1, 7)
        return None
    return comm.recv(0, 7)
