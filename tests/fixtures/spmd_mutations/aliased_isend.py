"""Seeded RPR011 mutations: non-blocking buffer aliasing and dropped
requests."""

import numpy as np


def mutate_before_wait(comm, a, dest):
    # BUG: the posted view aliases row 0, which is overwritten before
    # the matching wait — the receiver may observe either value.
    req = comm.isend(a[0, :], dest, 7)
    a[0, :] = 0.0
    req.wait()


def dropped_request(comm, source):
    # BUG: the receive is posted and never completed — the matching
    # message is silently dropped.
    req = comm.irecv(source, 9)
    return None


def escaping_request(comm, source, pending):
    # CLEAN: the handle escapes into a caller-owned structure (the
    # begin/end split-phase idiom) — completion happens elsewhere.
    pending["rx"] = comm.irecv(source, 9)
    return pending


def overwritten_request(comm, a, dest):
    # BUG: the first request handle is overwritten while still pending.
    req = comm.isend(a[0, :], dest, 3)
    req = comm.isend(a[1, :], dest, 4)
    req.wait()


def forgotten_send(comm, a, dest):
    # BUG: the request handle is dropped on the floor.
    req = comm.isend(a, dest, 5)
    return None


def clean_overlap(comm, a, dest, source):
    # CLEAN: a staging copy decouples the posted buffer from the live
    # array, and both requests complete.
    req = comm.isend(np.ascontiguousarray(a[0, :]), dest, 7)
    rx = comm.irecv(source, 7)
    a[0, :] = 0.0
    req.wait()
    return rx.wait()
