"""Seeded RPR009 mutations: rank-divergent collectives.

Deliberately buggy rank programs checked in as rule test vectors — the
analyzer's default ``exclude`` glob keeps them out of production runs;
``tests/test_spmd_rules.py`` analyzes them explicitly and compares the
findings against ``golden.json``.
"""

import numpy as np


def _norm(comm, x):
    # Helper issuing a collective: RPR009 must see through this call.
    return comm.allreduce(float(np.dot(x, x)))


def guarded_allreduce(comm, x):
    # BUG: only rank 0 enters the reduction — every other rank never
    # posts it and the world deadlocks.
    if comm.rank == 0:
        return comm.allreduce(float(x.sum()))
    return 0.0


def guarded_via_helper(comm, x):
    # BUG: same divergence, but the collective hides inside a local
    # helper and the guard uses a rank-tainted local.
    me = comm.rank
    if me == 0:
        return _norm(comm, x)
    return 0.0


def early_exit(comm, x):
    # BUG: rank 0 returns before the barrier the other ranks wait at.
    if comm.rank == 0:
        return x
    comm.barrier()
    return x


def rank_bound_loop(comm, x):
    # BUG: each rank iterates a different count, so the reduction is
    # posted a different number of times per rank.
    total = 0.0
    for _ in range(comm.rank + 1):
        total += comm.allreduce(float(x.sum()))
    return total


def symmetric_bcast(comm, payload):
    # CLEAN: both branches issue the same collective sequence — the
    # classic root-switched bcast idiom must not be flagged.
    if comm.rank == 0:
        return comm.bcast(payload)
    return comm.bcast(None)


def symmetric_early_exit(comm, x):
    # CLEAN: the early-exit branch issues exactly the collective
    # sequence the fall-through path will.
    if comm.rank == 0:
        comm.barrier()
        return x
    comm.barrier()
    return x
