"""Unit tests: diagonal and block-Jacobi preconditioners."""

import numpy as np
import pytest
import scipy.linalg

from repro.mesh import Field, Grid2D, decompose
from repro.solvers import (
    BlockJacobiPreconditioner,
    DiagonalPreconditioner,
    IdentityPreconditioner,
    StencilOperator2D,
    cg_solve,
    make_local_preconditioner,
)
from repro.utils import ConfigurationError

from tests.helpers import crooked_pipe_system, random_spd_faces, serial_operator


class TestIdentity:
    def test_copies_interior(self, rng):
        kx, ky = random_spd_faces(rng, 6, 6)
        op = serial_operator(Grid2D(6, 6), kx, ky)
        r = Field.from_global(op.tile, 1, rng.standard_normal((6, 6)))
        z = op.new_field()
        IdentityPreconditioner(op).apply(r, z)
        assert np.array_equal(z.interior, r.interior)


class TestDiagonal:
    def test_apply_divides_by_diagonal(self, rng):
        kx, ky = random_spd_faces(rng, 6, 8)
        op = serial_operator(Grid2D(8, 6), kx, ky)
        r = Field.from_global(op.tile, 1, rng.standard_normal((6, 8)))
        z = op.new_field()
        DiagonalPreconditioner(op).apply(r, z)
        assert np.allclose(z.interior, r.interior / op.diagonal())

    def test_apply_region_extended(self, rng):
        """Padded diagonal application matches on extended bounds."""
        n = 12
        kx, ky = random_spd_faces(rng, n, n)
        g = Grid2D(n, n)
        from repro.comm import launch_spmd

        def rank_main(comm):
            tile = decompose(g, comm.size, factors=(2, 2))[comm.rank]
            op = StencilOperator2D.from_global_faces(tile, 2, kx, ky, comm)
            M = DiagonalPreconditioner(op)
            r = Field.from_global(tile, 2, np.ones((n, n)))
            op.exchanger.exchange(r, depth=2)
            z = op.new_field()
            rows, cols = region = r.region(1)
            M.apply_region(r, z, region)
            # Extended region values = 1/diag there; verify a ghost column
            # against the diagonal computed from the global assembly.
            A = StencilOperator2D.assemble_sparse(kx, ky)
            diag = np.asarray(A.diagonal()).reshape(n, n)
            ext = tile.extension(1)
            want = 1.0 / diag[tile.y0 - ext["down"]:tile.y1 + ext["up"],
                              tile.x0 - ext["left"]:tile.x1 + ext["right"]]
            assert np.allclose(z.data[rows, cols], want)
            return True

        assert all(launch_spmd(rank_main, 4))


def explicit_block_jacobi(kx, ky, strip=4):
    """Dense reference: invert each 4x1-strip tridiagonal block."""
    ny, nx = ky.shape[1], kx.shape[0]  # careful: shapes (ny, nx+1), (ny+1, nx)
    ny = kx.shape[0]
    nx = ky.shape[1]
    diag = (1.0 + kx[:, :-1] + kx[:, 1:] + ky[:-1, :] + ky[1:, :])

    def solve(r):
        z = np.zeros_like(r)
        for j in range(nx):
            k = 0
            while k < ny:
                L = min(strip, ny - k)
                block = np.zeros((L, L))
                for i in range(L):
                    block[i, i] = diag[k + i, j]
                    if i + 1 < L:
                        c = -ky[k + i + 1, j]
                        block[i, i + 1] = c
                        block[i + 1, i] = c
                z[k:k + L, j] = np.linalg.solve(block, r[k:k + L, j])
                k += L
        return z

    return solve


class TestBlockJacobi:
    @pytest.mark.parametrize("ny", [8, 10, 11, 13])  # remainders 0,2,3,1
    def test_matches_explicit_block_inverse(self, rng, ny):
        nx = 6
        kx, ky = random_spd_faces(rng, ny, nx)
        op = serial_operator(Grid2D(nx, ny), kx, ky)
        M = BlockJacobiPreconditioner(op)
        r_arr = rng.standard_normal((ny, nx))
        r = Field.from_global(op.tile, 1, r_arr)
        z = op.new_field()
        M.apply(r, z)
        want = explicit_block_jacobi(kx, ky)(r_arr)
        assert np.allclose(z.interior, want, atol=1e-12)

    def test_strip_one_equals_diagonal(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        op = serial_operator(Grid2D(8, 8), kx, ky)
        M1 = BlockJacobiPreconditioner(op, strip=1)
        Md = DiagonalPreconditioner(op)
        r = Field.from_global(op.tile, 1, rng.standard_normal((8, 8)))
        z1, zd = op.new_field(), op.new_field()
        M1.apply(r, z1)
        Md.apply(r, zd)
        assert np.allclose(z1.interior, zd.interior)

    def test_reduces_condition_number_about_40_percent(self):
        """Paper §IV-C1: block Jacobi cuts kappa by ~40% on this problem."""
        g, kx, ky, _ = crooked_pipe_system(24)
        A = StencilOperator2D.assemble_sparse(kx, ky).toarray()
        kappa_plain = np.linalg.cond(A)
        M_solve = explicit_block_jacobi(kx, ky)
        n = 24 * 24
        Minv = np.zeros((n, n))
        eye = np.eye(24 * 24)
        for col in range(n):
            Minv[:, col] = M_solve(eye[:, col].reshape(24, 24)).ravel()
        # similarity-transformed spectrum of M^-1 A
        eig = np.sort(np.real(np.linalg.eigvals(Minv @ A)))
        kappa_prec = eig[-1] / eig[0]
        reduction = 1.0 - kappa_prec / kappa_plain
        assert 0.2 < reduction < 0.7

    def test_reduces_cg_iterations(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op1 = serial_operator(g, kx, ky)
        b1 = Field.from_global(op1.tile, 1, bg)
        plain = cg_solve(op1, b1, eps=1e-10)
        op2 = serial_operator(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        prec = cg_solve(op2, b2, eps=1e-10,
                        preconditioner=BlockJacobiPreconditioner(op2))
        assert prec.converged and plain.converged
        assert prec.iterations < plain.iterations

    def test_is_communication_free(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        op = serial_operator(Grid2D(8, 8), kx, ky)
        M = BlockJacobiPreconditioner(op)
        assert M.communication_free

    def test_invalid_strip(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        op = serial_operator(Grid2D(8, 8), kx, ky)
        with pytest.raises(ConfigurationError):
            BlockJacobiPreconditioner(op, strip=0)


class TestFactory:
    def test_names(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        op = serial_operator(Grid2D(8, 8), kx, ky)
        assert isinstance(make_local_preconditioner(op, "none"),
                          IdentityPreconditioner)
        assert isinstance(make_local_preconditioner(op, None),
                          IdentityPreconditioner)
        assert isinstance(make_local_preconditioner(op, "diagonal"),
                          DiagonalPreconditioner)
        assert isinstance(make_local_preconditioner(op, "block_jacobi"),
                          BlockJacobiPreconditioner)

    def test_unknown(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        op = serial_operator(Grid2D(8, 8), kx, ky)
        with pytest.raises(ConfigurationError):
            make_local_preconditioner(op, "ilu")
