"""Unit tests: problem specifications and region painting."""

import numpy as np
import pytest

from repro.mesh import Grid2D
from repro.physics import ProblemSpec, RegionSpec, crooked_pipe, hot_square, uniform_problem
from repro.utils import ConfigurationError


class TestRegionSpec:
    def test_background_mask_everywhere(self):
        m = RegionSpec(1.0, 1.0).mask(Grid2D(4, 4))
        assert m.all()

    def test_rectangle_mask_cell_centres(self):
        g = Grid2D(10, 10)  # dx=1, centres at 0.5..9.5
        r = RegionSpec(1.0, 1.0, "rectangle", (2.0, 5.0, 0.0, 10.0))
        m = r.mask(g)
        assert m[:, 2].all() and m[:, 4].all()
        assert not m[:, 1].any() and not m[:, 5].any()

    def test_circle_mask(self):
        g = Grid2D(10, 10)
        r = RegionSpec(1.0, 1.0, "circle", (5.0, 5.0, 2.0))
        m = r.mask(g)
        assert m[5, 5] and m[5, 3]
        assert not m[0, 0]

    def test_point_mask_single_cell(self):
        g = Grid2D(10, 10)
        r = RegionSpec(1.0, 1.0, "point", (3.7, 8.2))
        m = r.mask(g)
        assert m.sum() == 1
        assert m[8, 3]

    def test_point_clamped_to_grid(self):
        g = Grid2D(4, 4)
        m = RegionSpec(1.0, 1.0, "point", (10.0, 10.0)).mask(g)
        assert m[3, 3]

    def test_wrong_bounds_count(self):
        with pytest.raises(ConfigurationError):
            RegionSpec(1.0, 1.0, "rectangle", (0.0, 1.0))
        with pytest.raises(ConfigurationError):
            RegionSpec(1.0, 1.0, "circle", (0.0, 1.0))

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            RegionSpec(1.0, 1.0, "triangle", ())

    def test_nonpositive_density_energy(self):
        with pytest.raises(ConfigurationError):
            RegionSpec(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            RegionSpec(1.0, -1.0)


class TestProblemSpec:
    def test_later_regions_overwrite(self):
        spec = ProblemSpec(regions=(
            RegionSpec(1.0, 1.0),
            RegionSpec(5.0, 2.0, "rectangle", (0.0, 5.0, 0.0, 10.0)),
        ))
        density, energy = spec.paint(Grid2D(10, 10))
        assert np.all(density[:, :5] == 5.0)
        assert np.all(density[:, 5:] == 1.0)
        assert np.all(energy[:, :5] == 2.0)

    def test_first_must_be_background(self):
        with pytest.raises(ConfigurationError):
            ProblemSpec(regions=(
                RegionSpec(1.0, 1.0, "rectangle", (0, 1, 0, 1)),))

    def test_needs_regions(self):
        with pytest.raises(ConfigurationError):
            ProblemSpec(regions=())


class TestCannedProblems:
    def test_crooked_pipe_structure(self):
        spec = crooked_pipe()
        density, energy = spec.paint(Grid2D(100, 100))
        # dense background, low-density pipe
        assert density.max() == 100.0
        assert density.min() == pytest.approx(0.1)
        # the pipe spans the domain: low density at entry and exit rows
        assert density[15, 0] == pytest.approx(0.1)   # y~1.5, x~0 entry
        assert density[75, 99] == pytest.approx(0.1)  # y~7.5, x~10 exit
        # hot source in the first segment only
        assert energy[15, 5] == pytest.approx(25.0)
        assert energy[15, 30] == pytest.approx(0.1)

    def test_crooked_pipe_is_connected(self):
        density, _ = crooked_pipe().paint(Grid2D(200, 200))
        pipe = density < 1.0
        # flood fill from the entry cell; must reach the exit
        from collections import deque

        seen = np.zeros_like(pipe)
        q = deque([(30, 0)])  # a pipe cell on the left edge
        assert pipe[30, 0]
        seen[30, 0] = True
        while q:
            k, j = q.popleft()
            for dk, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                kk, jj = k + dk, j + dj
                if (0 <= kk < 200 and 0 <= jj < 200 and pipe[kk, jj]
                        and not seen[kk, jj]):
                    seen[kk, jj] = True
                    q.append((kk, jj))
        assert seen[150, 199]  # exit cell (y=7.5, x right edge)

    def test_uniform(self):
        density, energy = uniform_problem(2.0, 3.0).paint(Grid2D(4, 4))
        assert np.all(density == 2.0) and np.all(energy == 3.0)

    def test_hot_square(self):
        density, energy = hot_square().paint(Grid2D(10, 10))
        assert energy[5, 5] == 10.0
        assert energy[0, 0] == pytest.approx(0.01)
