"""Unit tests: Grid2D / Grid3D geometry."""

import numpy as np
import pytest

from repro.mesh import Grid2D, Grid3D
from repro.utils import ConfigurationError


class TestGrid2D:
    def test_spacing_default_extent(self):
        g = Grid2D(100, 50)
        assert g.dx == pytest.approx(0.1)
        assert g.dy == pytest.approx(0.2)
        assert g.shape == (50, 100)
        assert g.n_cells == 5000

    def test_custom_extent(self):
        g = Grid2D(10, 10, extent=(-1.0, 1.0, 0.0, 4.0))
        assert g.dx == pytest.approx(0.2)
        assert g.dy == pytest.approx(0.4)

    def test_cell_centers(self):
        g = Grid2D(4, 2)
        X, Y = g.cell_centers()
        assert X.shape == (2, 4)
        assert X[0, 0] == pytest.approx(1.25)
        assert X[0, -1] == pytest.approx(8.75)
        assert Y[0, 0] == pytest.approx(2.5)
        assert Y[-1, 0] == pytest.approx(7.5)

    def test_refined_and_coarsened(self):
        g = Grid2D(8, 8)
        assert g.refined(2).nx == 16
        assert g.coarsened(2).nx == 4
        assert g.refined(2).extent == g.extent

    def test_coarsen_indivisible_raises(self):
        with pytest.raises(ConfigurationError):
            Grid2D(9, 8).coarsened(2)

    @pytest.mark.parametrize("nx,ny", [(0, 4), (4, 0), (-1, 4)])
    def test_invalid_sizes(self, nx, ny):
        with pytest.raises(ConfigurationError):
            Grid2D(nx, ny)

    def test_degenerate_extent_raises(self):
        with pytest.raises(ConfigurationError):
            Grid2D(4, 4, extent=(0.0, 0.0, 0.0, 1.0))

    def test_frozen(self):
        g = Grid2D(4, 4)
        with pytest.raises(AttributeError):
            g.nx = 8


class TestGrid3D:
    def test_spacing_and_shape(self):
        g = Grid3D(10, 20, 40)
        assert g.shape == (40, 20, 10)
        assert g.dx == pytest.approx(1.0)
        assert g.dy == pytest.approx(0.5)
        assert g.dz == pytest.approx(0.25)
        assert g.n_cells == 8000

    def test_cell_centers_shapes(self):
        g = Grid3D(3, 4, 5)
        X, Y, Z = g.cell_centers()
        assert X.shape == (5, 4, 3)
        assert np.all(np.diff(X[0, 0]) > 0)
        assert np.all(np.diff(Z[:, 0, 0]) > 0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            Grid3D(0, 1, 1)
        with pytest.raises(ConfigurationError):
            Grid3D(2, 2, 2, extent=(0, 1, 0, 1, 1, 1))
