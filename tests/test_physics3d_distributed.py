"""Tests: 3D rank-local coefficients and the distributed 3D driver."""

import numpy as np
import pytest

from repro.comm import launch_spmd
from repro.mesh import Field3D, Grid3D, HaloExchanger3D, decompose3d
from repro.mesh.halo3d import reflect_boundaries_3d
from repro.physics import face_coefficients_3d
from repro.physics.conduction import cell_conductivity
from repro.physics.simulation3d import (
    Simulation3D,
    crooked_duct_3d,
    run_simulation_3d_distributed,
)
from repro.physics.state3d import build_coefficient_fields_3d, build_fields_3d
from repro.utils import CommunicationError, ConfigurationError

pytestmark = pytest.mark.distributed


def density_energy(grid, regions):
    density = np.empty(grid.shape)
    energy = np.empty(grid.shape)
    for region in regions:
        m = region.mask(grid)
        density[m] = region.density
        energy[m] = region.energy
    return density, energy


class TestReflect3D:
    def test_serial_mirrors_all_faces(self):
        g = Grid3D(4, 4, 4)
        rng = np.random.default_rng(0)
        glob = rng.standard_normal(g.shape)
        t = decompose3d(g, 1)[0]
        f = Field3D.from_global(t, 2, glob)
        reflect_boundaries_3d(f)
        h = f.halo
        assert np.array_equal(f.data[h:h + 4, h:h + 4, h - 1],
                              glob[:, :, 0])
        assert np.array_equal(f.data[h:h + 4, h:h + 4, h + 4],
                              glob[:, :, -1])
        assert np.array_equal(f.data[h - 1, h:h + 4, h:h + 4],
                              glob[0, :, :])
        assert np.array_equal(f.data[h + 4, h:h + 4, h:h + 4],
                              glob[-1, :, :])

    def test_depth_guard(self):
        t = decompose3d(Grid3D(4, 4, 4), 1)[0]
        with pytest.raises(CommunicationError):
            reflect_boundaries_3d(Field3D(t, 1), depth=2)


class TestCoefficients3D:
    def test_matches_global_construction(self):
        """Rank-local K build == global face_coefficients_3d, all ranks."""
        g = Grid3D(12, 12, 12)
        density_g, energy_g = density_energy(g, crooked_duct_3d())
        rx, ry, rz = 0.9, 0.8, 0.7
        kappa = cell_conductivity(density_g)
        kxg, kyg, kzg = face_coefficients_3d(kappa, rx, ry, rz)

        def rank_main(comm):
            tile = decompose3d(g, comm.size)[comm.rank]
            fields = build_fields_3d(tile, 2, density_g, energy_g)
            ex = HaloExchanger3D(comm)
            kx, ky, kz = build_coefficient_fields_3d(
                fields["density"], rx, ry, rz, ex)
            h = kx.halo
            got = kx.data[h:h + tile.nz, h:h + tile.ny, h:h + tile.nx + 1]
            want = kxg[tile.z0:tile.z1, tile.y0:tile.y1,
                       tile.x0:tile.x1 + 1]
            assert np.allclose(got, want, rtol=1e-12), comm.rank
            got = kz.data[h:h + tile.nz + 1, h:h + tile.ny, h:h + tile.nx]
            want = kzg[tile.z0:tile.z1 + 1, tile.y0:tile.y1,
                       tile.x0:tile.x1]
            assert np.allclose(got, want, rtol=1e-12), comm.rank
            return True

        for size in (1, 4, 8):
            assert all(launch_spmd(rank_main, size))

    def test_bad_mean(self):
        g = Grid3D(4, 4, 4)
        density_g, energy_g = density_energy(g, crooked_duct_3d())
        tile = decompose3d(g, 1)[0]
        fields = build_fields_3d(tile, 1, density_g, energy_g)
        from repro.comm import SerialComm
        with pytest.raises(ConfigurationError):
            build_coefficient_fields_3d(fields["density"], 1, 1, 1,
                                        HaloExchanger3D(SerialComm()),
                                        mean="median")


class TestDistributedSimulation3D:
    @pytest.fixture(scope="class")
    def serial_ref(self):
        sim = Simulation3D(Grid3D(12, 12, 12), crooked_duct_3d(),
                           dt=0.04, eps=1e-11)
        sim.run(2)
        return sim.u

    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_cg_matches_serial(self, serial_ref, nranks):
        out = run_simulation_3d_distributed(
            Grid3D(12, 12, 12), crooked_duct_3d(), n_steps=2,
            nranks=nranks, eps=1e-11, solver="cg")
        assert np.abs(out["temperature"] - serial_ref).max() < 1e-10

    def test_ppcg_with_matrix_powers(self, serial_ref):
        out = run_simulation_3d_distributed(
            Grid3D(12, 12, 12), crooked_duct_3d(), n_steps=2,
            nranks=8, eps=1e-11, solver="ppcg", halo_depth=2,
            inner_steps=8)
        assert np.abs(out["temperature"] - serial_ref).max() < 1e-10

    def test_energy_conserved(self):
        g = Grid3D(10, 10, 10)
        density_g, energy_g = density_energy(g, crooked_duct_3d())
        u0 = density_g * energy_g
        out = run_simulation_3d_distributed(
            g, crooked_duct_3d(), n_steps=3, nranks=4, eps=1e-12)
        assert out["temperature"].sum() == pytest.approx(u0.sum(), rel=1e-9)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulation_3d_distributed(
                Grid3D(8, 8, 8), crooked_duct_3d(), solver="jacobi")
