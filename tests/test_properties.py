"""Property-based tests (hypothesis) on core invariants.

These cover the algebraic properties the solvers rely on, over randomly
generated coefficient fields, decompositions and parameters — not just the
handful of examples in the unit tests.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm import SerialComm, launch_spmd
from repro.mesh import Field, Grid2D, HaloExchanger, choose_factors, decompose
from repro.physics import face_coefficients
from repro.physics.deck import CROOKED_PIPE_DECK, parse_deck_text
from repro.solvers import StencilOperator2D, chebyshev_epsilon
from repro.solvers.eigen import EigenBounds

from tests.helpers import serial_operator

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def faces_strategy(max_n=12):
    """(ny, nx, kx, ky) with positive interior faces, zero boundaries."""

    @st.composite
    def build(draw):
        ny = draw(st.integers(2, max_n))
        nx = draw(st.integers(2, max_n))
        seed = draw(st.integers(0, 2 ** 31 - 1))
        rng = np.random.default_rng(seed)
        scale = draw(st.floats(0.05, 20.0))
        kx = np.zeros((ny, nx + 1))
        ky = np.zeros((ny + 1, nx))
        kx[:, 1:nx] = scale * rng.uniform(0.05, 3.0, size=(ny, nx - 1))
        ky[1:ny, :] = scale * rng.uniform(0.05, 3.0, size=(ny - 1, nx))
        return ny, nx, kx, ky, seed

    return build()


class TestOperatorProperties:
    @given(faces_strategy())
    @settings(max_examples=30, **COMMON)
    def test_operator_symmetry(self, system):
        """<Au, v> == <u, Av> for the matrix-free operator."""
        ny, nx, kx, ky, seed = system
        rng = np.random.default_rng(seed + 1)
        op = serial_operator(Grid2D(nx, ny), kx, ky)
        u = Field.from_global(op.tile, 1, rng.standard_normal((ny, nx)))
        v = Field.from_global(op.tile, 1, rng.standard_normal((ny, nx)))
        Au, Av = op.new_field(), op.new_field()
        op.apply(u, Au)
        op.apply(v, Av)
        lhs = float(np.sum(Au.interior * v.interior))
        rhs = float(np.sum(u.interior * Av.interior))
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-10)

    @given(faces_strategy())
    @settings(max_examples=30, **COMMON)
    def test_operator_positive_definite(self, system):
        """<Au, u> >= <u, u>: A = I + (PSD) for any positive coefficients."""
        ny, nx, kx, ky, seed = system
        rng = np.random.default_rng(seed + 2)
        op = serial_operator(Grid2D(nx, ny), kx, ky)
        u = Field.from_global(op.tile, 1, rng.standard_normal((ny, nx)))
        Au = op.new_field()
        op.apply(u, Au)
        uAu = float(np.sum(Au.interior * u.interior))
        uu = float(np.sum(u.interior ** 2))
        assert uAu >= uu * (1 - 1e-10)

    @given(faces_strategy())
    @settings(max_examples=30, **COMMON)
    def test_constant_invariance(self, system):
        ny, nx, kx, ky, _ = system
        op = serial_operator(Grid2D(nx, ny), kx, ky)
        u = Field.from_global(op.tile, 1, np.full((ny, nx), 3.7))
        Au = op.new_field()
        op.apply(u, Au)
        assert np.allclose(Au.interior, 3.7, atol=1e-11)

    @given(faces_strategy())
    @settings(max_examples=20, **COMMON)
    def test_matvec_matches_sparse_assembly(self, system):
        ny, nx, kx, ky, seed = system
        rng = np.random.default_rng(seed + 3)
        A = StencilOperator2D.assemble_sparse(kx, ky)
        op = serial_operator(Grid2D(nx, ny), kx, ky)
        x = rng.standard_normal((ny, nx))
        p = Field.from_global(op.tile, 1, x)
        w = op.new_field()
        op.apply(p, w)
        assert np.allclose(w.interior.ravel(), A @ x.ravel(),
                           rtol=1e-10, atol=1e-10)


class TestHaloProperties:
    @given(
        nx=st.integers(6, 24),
        ny=st.integers(6, 24),
        depth=st.integers(1, 3),
        nranks=st.sampled_from([2, 3, 4, 6]),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    @settings(max_examples=20, **COMMON)
    def test_exchange_reproduces_global_windows(self, nx, ny, depth,
                                                nranks, seed):
        g = Grid2D(nx, ny)
        tiles = decompose(g, nranks)
        if min(t.nx for t in tiles) < depth or min(t.ny for t in tiles) < depth:
            return  # tiles thinner than the halo: out of scope
        rng = np.random.default_rng(seed)
        glob = rng.standard_normal((ny, nx))

        def rank_main(comm):
            t = decompose(g, comm.size)[comm.rank]
            f = Field.from_global(t, depth, glob)
            HaloExchanger(comm).exchange(f, depth=depth)
            ext = t.extension(depth)
            rows, cols = f.region(ext)
            want = glob[t.y0 - ext["down"]:t.y1 + ext["up"],
                        t.x0 - ext["left"]:t.x1 + ext["right"]]
            assert np.array_equal(f.data[rows, cols], want)
            return True

        assert all(launch_spmd(rank_main, nranks))

    @given(nranks=st.integers(1, 64), nx=st.integers(64, 512),
           ny=st.integers(64, 512))
    @settings(max_examples=40, **COMMON)
    def test_choose_factors_valid_and_optimal_enough(self, nranks, nx, ny):
        px, py = choose_factors(nranks, nx, ny)
        assert px * py == nranks
        cut = (px - 1) * ny + (py - 1) * nx
        # no factorisation is strictly better
        for qx in range(1, nranks + 1):
            if nranks % qx:
                continue
            qy = nranks // qx
            assert cut <= (qx - 1) * ny + (qy - 1) * nx

    @given(nranks=st.integers(1, 48), nx=st.integers(8, 64),
           ny=st.integers(8, 64))
    @settings(max_examples=40, **COMMON)
    def test_decomposition_partitions(self, nranks, nx, ny):
        g = Grid2D(nx, ny)
        px, py = choose_factors(nranks, nx, ny)
        if px > nx or py > ny:
            return
        tiles = decompose(g, nranks)
        total = sum(t.n_cells for t in tiles)
        assert total == nx * ny
        # neighbour symmetry: my right neighbour's left neighbour is me
        for t in tiles:
            if t.right is not None:
                assert tiles[t.right].left == t.rank
            if t.up is not None:
                assert tiles[t.up].down == t.rank


class TestChebyshevProperties:
    @given(lam_min=st.floats(0.1, 10.0), width=st.floats(0.01, 1000.0),
           m=st.integers(1, 40))
    @settings(max_examples=60, **COMMON)
    def test_epsilon_in_unit_interval(self, lam_min, width, m):
        b = EigenBounds(lam_min, lam_min + width)
        eps = chebyshev_epsilon(m, b)
        assert 0.0 < eps < 1.0

    @given(lam_min=st.floats(0.5, 5.0), kappa=st.floats(1.5, 1e4),
           m=st.integers(1, 20))
    @settings(max_examples=60, **COMMON)
    def test_epsilon_monotone_in_degree(self, lam_min, kappa, m):
        b = EigenBounds(lam_min, lam_min * kappa)
        assert chebyshev_epsilon(m + 1, b) < chebyshev_epsilon(m, b)

    @given(lam_min=st.floats(0.5, 5.0), kappa=st.floats(1.5, 1e4),
           m=st.integers(1, 30))
    @settings(max_examples=60, **COMMON)
    def test_epsilon_classic_bound(self, lam_min, kappa, m):
        """eps_m <= 2 q^m with q = (sqrt(k)-1)/(sqrt(k)+1)."""
        b = EigenBounds(lam_min, lam_min * kappa)
        q = (math.sqrt(kappa) - 1) / (math.sqrt(kappa) + 1)
        assert chebyshev_epsilon(m, b) <= 2 * q ** m + 1e-12


class TestConductionProperties:
    @given(
        seed=st.integers(0, 2 ** 31 - 1),
        ny=st.integers(2, 16),
        nx=st.integers(2, 16),
        mean=st.sampled_from(["harmonic", "arithmetic"]),
    )
    @settings(max_examples=40, **COMMON)
    def test_face_mean_between_cells(self, seed, ny, nx, mean):
        rng = np.random.default_rng(seed)
        kappa = rng.uniform(0.1, 10.0, (ny, nx))
        kx, ky = face_coefficients(kappa, 1.0, 1.0, mean=mean)
        lo = np.minimum(kappa[:, :-1], kappa[:, 1:])
        hi = np.maximum(kappa[:, :-1], kappa[:, 1:])
        inner = kx[:, 1:-1]
        assert np.all(inner >= lo - 1e-12)
        assert np.all(inner <= hi + 1e-12)

    @given(seed=st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, **COMMON)
    def test_symmetric_in_neighbours(self, seed):
        rng = np.random.default_rng(seed)
        kappa = rng.uniform(0.1, 10.0, (6, 6))
        kx, _ = face_coefficients(kappa, 1.0, 1.0)
        kx2, _ = face_coefficients(kappa[:, ::-1], 1.0, 1.0)
        assert np.allclose(kx, kx2[:, ::-1])


class TestDeckProperties:
    @given(
        n=st.integers(4, 256),
        eps_exp=st.integers(-15, -4),
        inner=st.integers(1, 40),
        solver=st.sampled_from(["use_cg", "use_ppcg", "use_jacobi",
                                "use_chebyshev"]),
    )
    @settings(max_examples=40, **COMMON)
    def test_parse_roundtrip(self, n, eps_exp, inner, solver):
        text = (f"*tea\nstate 1 density=1.0 energy=1.0\n"
                f"x_cells={n}\ny_cells={n}\n{solver}\n"
                f"tl_eps=1e{eps_exp}\ntl_ppcg_inner_steps={inner}\n*endtea")
        deck = parse_deck_text(text)
        assert deck.x_cells == n
        assert deck.tl_eps == pytest.approx(10.0 ** eps_exp)
        assert deck.tl_ppcg_inner_steps == inner
        assert deck.solver == solver.replace("use_", "")

    @given(n=st.integers(8, 1024))
    @settings(max_examples=20, **COMMON)
    def test_crooked_pipe_deck_scales(self, n):
        deck = parse_deck_text(CROOKED_PIPE_DECK.format(n=n))
        assert deck.grid.nx == n
        assert len(deck.states) == 5


class TestThomasProperty:
    @given(
        seed=st.integers(0, 2 ** 31 - 1),
        ny=st.integers(2, 24),
        nx=st.integers(2, 10),
    )
    @settings(max_examples=30, **COMMON)
    def test_block_jacobi_solves_its_blocks(self, seed, ny, nx):
        """M z = r restricted to each strip: verify A_strip z = r."""
        from repro.solvers import BlockJacobiPreconditioner
        rng = np.random.default_rng(seed)
        kx = np.zeros((ny, nx + 1))
        ky = np.zeros((ny + 1, nx))
        kx[:, 1:nx] = rng.uniform(0.1, 2.0, (ny, nx - 1))
        ky[1:ny, :] = rng.uniform(0.1, 2.0, (ny - 1, nx))
        op = serial_operator(Grid2D(nx, ny), kx, ky)
        M = BlockJacobiPreconditioner(op)
        r_arr = rng.standard_normal((ny, nx))
        r = Field.from_global(op.tile, 1, r_arr)
        z = op.new_field()
        M.apply(r, z)
        diag = (1.0 + kx[:, :-1] + kx[:, 1:] + ky[:-1, :] + ky[1:, :])
        zi = z.interior
        for j in range(nx):
            k = 0
            while k < ny:
                L = min(4, ny - k)
                for i in range(L):
                    val = diag[k + i, j] * zi[k + i, j]
                    if i > 0:
                        val -= ky[k + i, j] * zi[k + i - 1, j]
                    if i < L - 1:
                        val -= ky[k + i + 1, j] * zi[k + i + 1, j]
                    assert val == pytest.approx(r_arr[k + i, j],
                                                rel=1e-9, abs=1e-9)
                k += L
