"""Shared construction helpers for the test-suite.

These now live in the public :mod:`repro.testing` module (so downstream
users get the same scaffolding); this module re-exports them for the
test-suite's imports.
"""

from repro.testing import (  # noqa: F401
    crooked_pipe_jump_system,
    crooked_pipe_system,
    distributed_solve,
    random_spd_faces,
    reference_solution,
    serial_operator,
)

__all__ = [
    "crooked_pipe_jump_system",
    "crooked_pipe_system",
    "distributed_solve",
    "random_spd_faces",
    "reference_solution",
    "serial_operator",
]
