"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mesh import Field, Grid2D, Grid3D
from repro.solvers import cg_fused_solve, cg_solve
from repro.solvers.deflation import DeflationSpace

from tests.helpers import serial_operator

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def _random_system(seed, n, scale=1.0):
    rng = np.random.default_rng(seed)
    kx = np.zeros((n, n + 1))
    ky = np.zeros((n + 1, n))
    kx[:, 1:n] = scale * rng.uniform(0.05, 3.0, size=(n, n - 1))
    ky[1:n, :] = scale * rng.uniform(0.05, 3.0, size=(n - 1, n))
    b = rng.standard_normal((n, n))
    return kx, ky, b


class TestFusedCGProperties:
    @given(seed=st.integers(0, 2 ** 31 - 1), n=st.integers(4, 14),
           scale=st.floats(0.1, 10.0))
    @settings(max_examples=25, **COMMON)
    def test_agrees_with_classic_cg(self, seed, n, scale):
        kx, ky, bg = _random_system(seed, n, scale)
        op1 = serial_operator(Grid2D(n, n), kx, ky)
        b1 = Field.from_global(op1.tile, 1, bg)
        classic = cg_solve(op1, b1, eps=1e-11)
        op2 = serial_operator(Grid2D(n, n), kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        fused = cg_fused_solve(op2, b2, eps=1e-11)
        assert classic.converged and fused.converged
        assert np.allclose(classic.x.interior, fused.x.interior,
                           atol=1e-8, rtol=1e-7)

    @given(seed=st.integers(0, 2 ** 31 - 1), n=st.integers(4, 12))
    @settings(max_examples=15, **COMMON)
    def test_residual_history_decreasing_tail(self, seed, n):
        kx, ky, bg = _random_system(seed, n)
        op = serial_operator(Grid2D(n, n), kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = cg_fused_solve(op, b, eps=1e-10)
        assert result.history[-1] <= result.history[0]


class TestDeflationProperties:
    @given(seed=st.integers(0, 2 ** 31 - 1), n=st.sampled_from([8, 12, 16]),
           q=st.sampled_from([1, 2, 4]))
    @settings(max_examples=15, **COMMON)
    def test_projector_idempotent(self, seed, n, q):
        """P^2 = P on arbitrary vectors."""
        kx, ky, bg = _random_system(seed, n)
        op = serial_operator(Grid2D(n, n), kx, ky)
        space = DeflationSpace(op, (n, n), blocks=(q, q))
        v = Field.from_global(op.tile, 1, bg)
        space.project(v)
        once = v.interior.copy()
        space.project(v)
        assert np.allclose(v.interior, once, atol=1e-9)

    @given(seed=st.integers(0, 2 ** 31 - 1), n=st.sampled_from([8, 12]),
           q=st.sampled_from([2, 4]))
    @settings(max_examples=15, **COMMON)
    def test_coarse_residual_zero_after_projection(self, seed, n, q):
        """W^T (P v) = 0: projected vectors have no coarse component."""
        kx, ky, bg = _random_system(seed, n)
        op = serial_operator(Grid2D(n, n), kx, ky)
        space = DeflationSpace(op, (n, n), blocks=(q, q))
        v = Field.from_global(op.tile, 1, bg)
        space.project(v)
        assert np.abs(space.wt(v)).max() < 1e-8 * max(np.abs(bg).max(), 1.0)


class TestVTKProperties:
    @given(
        seed=st.integers(0, 2 ** 31 - 1),
        nx=st.integers(1, 10),
        ny=st.integers(1, 10),
        n_fields=st.integers(1, 3),
    )
    @settings(max_examples=20, **COMMON)
    def test_roundtrip_2d(self, tmp_path_factory, seed, nx, ny, n_fields):
        from repro.io.vtk import read_vtk, write_vtk
        rng = np.random.default_rng(seed)
        grid = Grid2D(nx, ny)
        fields = {f"f{i}": rng.standard_normal(grid.shape)
                  for i in range(n_fields)}
        path = tmp_path_factory.mktemp("vtk") / "f.vtk"
        write_vtk(path, grid, fields)
        shape, back = read_vtk(path)
        assert shape == grid.shape
        for name, arr in fields.items():
            assert np.allclose(back[name], arr, rtol=1e-9)

    @given(seed=st.integers(0, 2 ** 31 - 1),
           dims=st.tuples(st.integers(1, 5), st.integers(1, 5),
                          st.integers(2, 5)))
    @settings(max_examples=10, **COMMON)
    def test_roundtrip_3d(self, tmp_path_factory, seed, dims):
        from repro.io.vtk import read_vtk, write_vtk
        rng = np.random.default_rng(seed)
        nx, ny, nz = dims
        grid = Grid3D(nx, ny, nz)
        T = rng.standard_normal(grid.shape)
        path = tmp_path_factory.mktemp("vtk3") / "f.vtk"
        write_vtk(path, grid, {"T": T})
        shape, back = read_vtk(path)
        assert shape == grid.shape
        assert np.allclose(back["T"], T, rtol=1e-9)


class TestSensitivityProperties:
    @given(factor=st.floats(0.1, 10.0),
           knob=st.sampled_from(["network_latency", "network_bandwidth",
                                 "node_bandwidth", "launch_overhead"]))
    @settings(max_examples=30, **COMMON)
    def test_scaling_roundtrip(self, factor, knob):
        from repro.perfmodel import TITAN
        from repro.perfmodel.sensitivity import scaled_machine
        back = scaled_machine(scaled_machine(TITAN, knob, factor),
                              knob, 1.0 / factor)
        assert back.network.inter_node.latency == pytest.approx(
            TITAN.network.inter_node.latency)
        assert back.node.dram_bandwidth == pytest.approx(
            TITAN.node.dram_bandwidth)
        assert back.node.launch_overhead == pytest.approx(
            TITAN.node.launch_overhead)
