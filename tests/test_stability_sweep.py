"""Integration tests: the ill-conditioned stability battery and sweep."""

import pytest

from repro.harness import run_stability_sweep
from repro.harness.stability_sweep import render
from repro.observe import MetricsRegistry, record_stability_metrics
from repro.physics import STABILITY_JUMPS, crooked_pipe_jump, stability_battery

SMALL_CELLS = (("cg[depth=1]", "cg", 1), ("cppcg[depth=16]", "ppcg", 16))


@pytest.fixture(scope="module")
def sweep():
    return run_stability_sweep(n=16, jumps=(1e8,), cells=SMALL_CELLS)


class TestBattery:
    def test_jump_spans_orders(self):
        spec = crooked_pipe_jump(1e8)
        assert spec.name == "crooked_pipe[jump=1e+08]"
        densities = [r.density for r in spec.regions]
        assert max(densities) / min(densities) == pytest.approx(1e8)

    def test_jump_1e3_is_the_paper_benchmark(self):
        spec = crooked_pipe_jump(1e3)
        densities = sorted({r.density for r in spec.regions})
        assert densities == pytest.approx([0.1, 100.0])

    def test_battery_covers_the_ladder(self):
        specs = stability_battery()
        assert len(specs) == len(STABILITY_JUMPS)
        assert all(s.name.startswith("crooked_pipe[jump=") for s in specs)

    def test_jump_must_be_positive(self):
        from repro.utils.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            crooked_pipe_jump(0.0)


class TestStabilitySweep:
    def test_all_protected_cells_pass(self, sweep):
        assert sweep.all_protected_pass
        assert sweep.exit_code == 0

    def test_unprotected_float32_falsely_converges(self, sweep):
        # The headline failure mode: the float32 recurrence claims
        # convergence while the true residual misses tolerance by orders.
        assert sweep.false_convergences >= 2
        for solver, _, depth in SMALL_CELLS:
            cell = sweep.cell(solver, "float32", 1e8, protected=False)
            assert cell.false_convergence(sweep.eps)
            assert cell.drift_orders >= 1.0

    def test_float64_drift_is_negligible(self, sweep):
        for solver, _, depth in SMALL_CELLS:
            for protected in (False, True):
                cell = sweep.cell(solver, "float64", 1e8, protected)
                assert cell.converged
                assert abs(cell.drift_orders) < 0.1

    def test_protected_float32_recovers_truth(self, sweep):
        for solver, _, depth in SMALL_CELLS:
            cell = sweep.cell(solver, "float32", 1e8, protected=True)
            assert cell.converged
            assert cell.true_residual <= 10 * sweep.eps
            assert cell.refinement_steps >= 1
            assert "healthy" in cell.diagnosis or cell.escalated

    def test_as_dict_schema(self, sweep):
        d = sweep.as_dict()
        assert d["schema"] == "repro.stability_sweep/v1"
        assert d["n"] == 16
        assert len(d["cells"]) == 8
        cell = d["cells"][0]
        for key in ("solver", "dtype", "jump", "protected", "converged",
                    "true_residual", "drift_orders", "replacement_splices",
                    "refinement_steps", "escalated", "diagnosis"):
            assert key in cell

    def test_render_reports_lies(self, sweep):
        text = render(sweep)
        assert "stability sweep" in text
        assert "[LIE ]" in text
        assert "false convergences (unprotected): 2" in text

    def test_sweep_is_deterministic(self, sweep):
        again = run_stability_sweep(n=16, jumps=(1e8,), cells=SMALL_CELLS)
        assert again.as_dict() == sweep.as_dict()
        assert render(again) == render(sweep)

    def test_metrics_oracle_matches_cells(self, sweep):
        # Cross-check the sweep's own counters against an independent
        # MetricsRegistry filled by the observe exporter.
        registry = MetricsRegistry()
        cells = list(sweep.cells.values())
        for cell in cells:
            record_stability_metrics(registry, cell)
        snap = registry.snapshot()
        assert snap["counters"]["stability.iterations"] == sum(
            c.iterations for c in cells)
        assert snap["counters"]["stability.refinement_steps"] == sum(
            c.refinement_steps for c in cells)
        assert snap["counters"]["stability.replacement_checks"] == sum(
            c.replacement_checks for c in cells)
        assert snap["counters"]["stability.breakdowns"] == sum(
            1 for c in cells if c.breakdown)

    def test_main_exit_code(self):
        from repro.harness.stability_sweep import main
        rc = main(["--n", "12", "--jumps", "1e4", "--eps", "1e-6"])
        assert rc == 0


@pytest.mark.slow
class TestFullSweepAcceptance:
    """The PR's acceptance sweep at full size (n=24, jumps 1e4/1e8)."""

    @pytest.fixture(scope="class")
    def full(self):
        return run_stability_sweep()

    def test_protected_cells_all_pass(self, full):
        assert full.all_protected_pass

    def test_unprotected_drift_reaches_two_orders(self, full):
        worst = max(c.drift_orders for c in full.cells.values()
                    if not c.protected and c.dtype == "float32")
        assert worst >= 2.0

    def test_depth16_matches_depth1_under_protection(self, full):
        # Protected CPPCG at matrix-powers depth 16 meets the same
        # true-residual tolerance as depth-1 CG on every battery rung.
        for jump in full.jumps:
            for dtype in full.dtypes:
                deep = full.cell("cppcg[depth=16]", dtype, jump, True)
                shallow = full.cell("cg[depth=1]", dtype, jump, True)
                assert deep.passes(full.eps)
                assert shallow.passes(full.eps)
