"""Unit tests: input-deck parsing."""

import pytest

from repro.physics import Conductivity, parse_deck, parse_deck_text
from repro.physics.deck import CROOKED_PIPE_DECK, crooked_pipe_deck, deck_to_problem
from repro.utils import ConfigurationError

MINIMAL = """
*tea
state 1 density=1.0 energy=2.0
x_cells=32
y_cells=16
use_cg
*endtea
"""


class TestParseDeck:
    def test_minimal(self):
        deck = parse_deck_text(MINIMAL)
        assert deck.x_cells == 32 and deck.y_cells == 16
        assert deck.solver == "cg"
        assert len(deck.states) == 1
        assert deck.states[0].density == 1.0

    def test_defaults(self):
        deck = parse_deck_text("*tea\nstate 1 density=1 energy=1\n*endtea")
        assert deck.solver == "cg"
        assert deck.tl_eps == 1e-10
        assert deck.initial_timestep == 0.04
        assert deck.tl_coefficient is Conductivity.RECIP_DENSITY

    def test_crooked_pipe_template(self):
        deck = crooked_pipe_deck(128)
        assert deck.x_cells == 128
        assert deck.solver == "ppcg"
        assert len(deck.states) == 5
        problem = deck_to_problem(deck)
        assert problem.regions[1].geometry == "rectangle"
        assert problem.regions[1].energy == 25.0

    def test_grid_and_steps_properties(self):
        deck = crooked_pipe_deck(64)
        assert deck.grid.nx == 64
        assert deck.n_steps == 375  # 15.0 / 0.04

    def test_comments_and_blank_lines(self):
        deck = parse_deck_text(
            "*tea\n! a comment\n# another\n\nstate 1 density=1 energy=1\n"
            "x_cells=8 ! trailing\n*endtea")
        assert deck.x_cells == 8

    def test_without_tea_wrapper(self):
        deck = parse_deck_text("state 1 density=1 energy=1\nx_cells=9")
        assert deck.x_cells == 9

    def test_content_outside_block_ignored(self):
        deck = parse_deck_text(
            "x_cells=99\n*tea\nstate 1 density=1 energy=1\nx_cells=7\n*endtea")
        assert deck.x_cells == 7

    @pytest.mark.parametrize("flag,solver", [
        ("use_jacobi", "jacobi"), ("tl_use_cg", "cg"),
        ("use_chebyshev", "chebyshev"), ("tl_use_ppcg", "ppcg"),
    ])
    def test_solver_flags(self, flag, solver):
        deck = parse_deck_text(f"*tea\nstate 1 density=1 energy=1\n{flag}\n*endtea")
        assert deck.solver == solver

    def test_preconditioner_names(self):
        deck = parse_deck_text(
            "*tea\nstate 1 density=1 energy=1\n"
            "tl_preconditioner_type=jac_block\n*endtea")
        assert deck.tl_preconditioner_type == "block_jacobi"

    def test_geometries(self):
        deck = parse_deck_text(
            "*tea\nstate 1 density=1 energy=1\n"
            "state 2 density=2 energy=2 geometry=circle xcentre=5 ycentre=5 radius=1\n"
            "state 3 density=3 energy=3 geometry=point xcentre=2 ycentre=2\n"
            "*endtea")
        assert deck.states[1].geometry == "circle"
        assert deck.states[2].geometry == "point"

    def test_parse_deck_file(self, tmp_path):
        p = tmp_path / "tea.in"
        p.write_text(CROOKED_PIPE_DECK.format(n=16))
        deck = parse_deck(p)
        assert deck.x_cells == 16


class TestParseErrors:
    def test_unknown_setting(self):
        with pytest.raises(ConfigurationError, match="unknown setting"):
            parse_deck_text("*tea\nnot_a_setting=1\n*endtea")

    def test_unknown_flag(self):
        with pytest.raises(ConfigurationError, match="unrecognised"):
            parse_deck_text("*tea\nuse_warp_drive\n*endtea")

    def test_bad_value(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            parse_deck_text("*tea\nx_cells=lots\n*endtea")

    def test_state_missing_density(self):
        with pytest.raises(ConfigurationError, match="missing"):
            parse_deck_text("*tea\nstate 1 energy=1\n*endtea")

    def test_state_missing_geometry(self):
        with pytest.raises(ConfigurationError, match="geometry"):
            parse_deck_text(
                "*tea\nstate 1 density=1 energy=1\n"
                "state 2 density=1 energy=1\n*endtea")

    def test_state_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown state keys"):
            parse_deck_text("*tea\nstate 1 density=1 energy=1 colour=red\n*endtea")

    def test_noncontiguous_state_indices(self):
        with pytest.raises(ConfigurationError, match="1..N"):
            parse_deck_text(
                "*tea\nstate 1 density=1 energy=1\n"
                "state 3 density=1 energy=1 geometry=rectangle "
                "xmin=0 xmax=1 ymin=0 ymax=1\n*endtea")

    def test_bad_preconditioner(self):
        with pytest.raises(ConfigurationError, match="preconditioner"):
            parse_deck_text("*tea\ntl_preconditioner_type=ilu\n*endtea")

    def test_bad_coefficient(self):
        with pytest.raises(ConfigurationError, match="tl_coefficient"):
            parse_deck_text("*tea\ntl_coefficient=quantum\n*endtea")

    def test_malformed_state_line(self):
        with pytest.raises(ConfigurationError, match="malformed state"):
            parse_deck_text("*tea\nstate one density=1 energy=1\n*endtea")

    def test_deck_without_states_cannot_build_problem(self):
        deck = parse_deck_text("*tea\nx_cells=8\n*endtea")
        with pytest.raises(ConfigurationError, match="no states"):
            deck_to_problem(deck)


class TestDeckFuzz:
    """Seeded deck fuzzing: every mutation either parses or raises a
    structured :class:`ConfigurationError` naming the offending line —
    never a raw ``ValueError``/``KeyError``/``TypeError``."""

    MUTATIONS = (
        "tl_made_up_knob=1",                # unknown tl_ key
        "tl_eps=warm",                      # wrong type
        "tl_max_iters=12.5",                # int key, float value
        "use_cg",                           # duplicate solver flag
        "tl_eps=1e-8",                      # duplicate setting
        "x_cells",                          # no '=' and not a flag
        "state 1 density=1 density=2 energy=1",   # duplicate state key
        "tl_checkpoint_interval=-3",        # negative interval
        "= = =",                            # token soup
        "tl_eps=",                          # empty value
    )

    def test_seeded_mutations_fail_structurally(self):
        import random

        base = CROOKED_PIPE_DECK.format(n=8).replace("use_ppcg", "use_cg")
        for seed in range(40):
            rng = random.Random(seed)
            lines = base.splitlines()
            for _ in range(rng.randint(1, 3)):
                pos = rng.randrange(1, len(lines) - 1)  # keep *tea/*endtea
                mutation = rng.choice(self.MUTATIONS)
                if rng.random() < 0.5:
                    lines.insert(pos, mutation)
                else:
                    lines[pos] = mutation
            text = "\n".join(lines) + "\n"
            try:
                parse_deck_text(text)
            except ConfigurationError as exc:
                assert "line " in str(exc), (seed, exc)
            # any non-ConfigurationError escapes to pytest as a failure

    def test_duplicate_setting_names_both_lines(self):
        with pytest.raises(ConfigurationError,
                           match=r"line 3: duplicate setting 'tl_eps'"):
            parse_deck_text("*tea\ntl_eps=1e-8\ntl_eps=1e-9\n*endtea")

    def test_unknown_tl_key_names_key_and_line(self):
        with pytest.raises(ConfigurationError,
                           match=r"line 2: unknown setting 'tl_flux'"):
            parse_deck_text("*tea\ntl_flux=3\n*endtea")

    def test_wrong_type_names_key_and_line(self):
        with pytest.raises(ConfigurationError,
                           match=r"line 2: bad value for tl_max_iters"):
            parse_deck_text("*tea\ntl_max_iters=several\n*endtea")
