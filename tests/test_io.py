"""Unit tests: tables, ASCII rendering, snapshots."""

import numpy as np
import pytest

from repro.io import (
    format_series_table,
    format_table,
    load_field_npy,
    render_heatmap,
    save_field_csv,
    save_field_npy,
)
from repro.utils import ConfigurationError


class TestTables:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["cg", 1.5], ["ppcg", 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.500" in text and "0.250" in text

    def test_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a"], [["x", "y"]])

    def test_series_table(self):
        text = format_series_table([1, 2], {"CG": [3.0, 1.5], "PPCG": [2.0, 0.9]})
        assert "Nodes" in text
        assert "CG" in text and "PPCG" in text
        assert "0.90" in text

    def test_series_table_handles_short_series(self):
        text = format_series_table([1, 2], {"CG": [3.0]})
        assert "-" in text.splitlines()[-1]


class TestHeatmap:
    def test_shape_and_characters(self):
        field = np.linspace(0, 1, 64 * 64).reshape(64, 64) + 0.01
        art = render_heatmap(field, width=32)
        lines = art.splitlines()
        assert all(len(line) == 32 for line in lines)
        assert 10 <= len(lines) <= 20  # ~ half aspect

    def test_hot_region_denser_glyphs(self):
        from repro.io.ascii_viz import DEFAULT_RAMP
        field = np.full((40, 40), 0.01)
        field[30:, :] = 10.0  # hot stripe on top (high y)
        art = render_heatmap(field, width=40).splitlines()
        # origin_lower: top rows of output = high y = hot = dense glyphs
        assert art[0][0] == DEFAULT_RAMP[-1]
        assert art[-1][0] == DEFAULT_RAMP[0]

    def test_origin_upper(self):
        from repro.io.ascii_viz import DEFAULT_RAMP
        field = np.full((40, 40), 0.01)
        field[30:, :] = 10.0
        art = render_heatmap(field, width=40, origin_lower=False).splitlines()
        assert art[-1][0] == DEFAULT_RAMP[-1]

    def test_constant_field(self):
        art = render_heatmap(np.ones((16, 16)), width=16)
        assert set("".join(art.splitlines())) == {" "}

    def test_linear_scale(self):
        field = np.arange(16.0).reshape(4, 4) + 1
        art = render_heatmap(field, width=4, log_scale=False)
        assert art  # renders without error

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_heatmap(np.zeros(4))
        with pytest.raises(ConfigurationError):
            render_heatmap(np.zeros((4, 4)), width=0)
        with pytest.raises(ConfigurationError):
            render_heatmap(np.zeros((4, 4)), ramp="x")


class TestSnapshots:
    def test_npy_roundtrip(self, tmp_path):
        field = np.random.default_rng(0).standard_normal((8, 8))
        path = save_field_npy(tmp_path / "field.npy", field)
        assert np.array_equal(load_field_npy(path), field)

    def test_npy_creates_directories(self, tmp_path):
        save_field_npy(tmp_path / "a" / "b" / "f.npy", np.ones((2, 2)))
        assert (tmp_path / "a" / "b" / "f.npy").exists()

    def test_csv_roundtrip(self, tmp_path):
        field = np.arange(12.0).reshape(3, 4)
        path = save_field_csv(tmp_path / "f.csv", field)
        back = np.loadtxt(path, delimiter=",")
        assert np.allclose(back, field)

    def test_csv_requires_2d(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_field_csv(tmp_path / "f.csv", np.zeros(4))
