"""Cancellation semantics: deadlines, cooperative aborts, quiescence.

The service's core safety claim: a deadline or client cancel aborts a
solve at an *iteration boundary*, rank-coherently — every rank raises at
the same iteration, no p2p message is left pending (the SPMD sanitizer's
quiescence check passes inside the rank), guard checkpoints taken before
the abort remain restorable, and an **inert** token is bit-transparent
(identical iterates, identical comm contract).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import SanitizerComm, SanitizerState, launch_spmd
from repro.mesh import Field, decompose
from repro.service import CancelToken, Cancelled, DeadlineExceeded, \
    ScheduledCancel
from repro.solvers import StencilOperator2D, cg_solve, chebyshev_solve, \
    jacobi_solve, ppcg_solve
from repro.testing import crooked_pipe_system, serial_operator


def _serial_system(n=16):
    grid, kxg, kyg, bg = crooked_pipe_system(n)
    op = serial_operator(grid, kxg, kyg)
    b = Field.from_global(op.tile, 1, bg)
    return op, b


# -- token unit semantics ------------------------------------------------------


class TestCancelToken:
    def test_inert_token_never_fires(self):
        token = CancelToken()
        for it in range(1000):
            token.check(it)
        token.poll()

    def test_deadline_budget_fires_at_exact_iteration(self):
        token = CancelToken(iteration_budget=5)
        for it in range(5):
            token.check(it)
        with pytest.raises(DeadlineExceeded) as exc:
            token.check(5)
        assert exc.value.iteration == 5

    def test_client_cancel_latches_one_boundary(self):
        """All observers of a cancel raise at the same iteration: the
        first check() after the request latches the boundary, and any
        check at an earlier iteration stays silent (a lagging rank
        reaches the boundary before raising)."""
        token = CancelToken()
        token.check(3)
        token.cancel("user abort")
        with pytest.raises(Cancelled):
            token.check(7)
        # Latched at 7: a rank still at iteration 6 passes...
        token.check(6)
        # ...and raises once it reaches the latched boundary.
        with pytest.raises(Cancelled) as exc:
            token.check(7)
        assert "user abort" in str(exc.value)

    def test_poll_fires_only_on_request_not_budget(self):
        token = CancelToken(iteration_budget=1)
        token.poll()  # budgets are iteration-coherent; poll ignores them
        token.cancel()
        with pytest.raises(Cancelled):
            token.poll()

    def test_cancel_is_idempotent_first_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"

    def test_scheduled_cancel_fires_at_iteration(self):
        token = CancelToken()
        sched = ScheduledCancel(token, cancel_at_iteration=4)
        for it in range(4):
            sched.check(it)
        with pytest.raises(Cancelled):
            sched.check(4)
        assert token.cancel_requested


# -- solver integration --------------------------------------------------------


class TestSolverCancellation:
    def test_cg_deadline_carries_iteration(self):
        op, b = _serial_system()
        with pytest.raises(DeadlineExceeded) as exc:
            cg_solve(op, b, eps=1e-12, max_iters=200,
                     cancel=CancelToken(iteration_budget=4))
        assert exc.value.iteration == 4

    @pytest.mark.parametrize("solve", [cg_solve, jacobi_solve])
    def test_scheduled_client_cancel_mid_solve(self, solve):
        op, b = _serial_system()
        token = CancelToken()
        with pytest.raises(Cancelled):
            solve(op, b, eps=1e-12, max_iters=500,
                  cancel=ScheduledCancel(token, cancel_at_iteration=3))

    def test_chebyshev_and_ppcg_respect_budgets(self):
        op, b = _serial_system()
        with pytest.raises(DeadlineExceeded):
            chebyshev_solve(op, b, eps=1e-14, max_iters=400, warmup_iters=8,
                            cancel=CancelToken(iteration_budget=12))
        with pytest.raises(DeadlineExceeded):
            ppcg_solve(op, b, eps=1e-14, max_iters=400, warmup_iters=4,
                       cancel=CancelToken(iteration_budget=6))

    def test_inert_token_is_bit_transparent(self):
        """The no-token and inert-token solves take identical paths."""
        op, b = _serial_system()
        plain = cg_solve(op, b, eps=1e-10, max_iters=200)
        tokened = cg_solve(op, b, eps=1e-10, max_iters=200,
                           cancel=CancelToken())
        assert tokened.iterations == plain.iterations
        assert np.array_equal(tokened.x.interior, plain.x.interior)

    def test_guard_checkpoint_rollback_intact_after_cancel(self):
        """A cancelled solve leaves the guard's last checkpoint intact
        and rollback-able (no half-saved state)."""
        from repro.resilience.guard import SolverGuard

        op, b = _serial_system()
        guard = SolverGuard(checkpoint_interval=2)
        with pytest.raises(DeadlineExceeded):
            cg_solve(op, b, eps=1e-12, max_iters=200, guard=guard,
                     cancel=CancelToken(iteration_budget=7))
        assert guard.checkpoints >= 3
        snap = guard.rollback("resume after cancel")
        assert 0 <= snap.iteration <= 6
        assert snap.scalars   # recurrence state rode along

    def test_cancelled_solve_resumable_from_durable_checkpoints(self, tmp_path):
        """End to end: cancel a checkpointing solve mid-flight, then
        resume from its durable shards and run to convergence."""
        from repro.resilience.faults import FaultPlan
        from repro.resilience.runner import run_resilient
        from repro.solvers import SolverOptions

        opts = SolverOptions(solver="cg", eps=1e-10, max_iters=200,
                             guard_interval=2)
        with pytest.raises(DeadlineExceeded):
            run_resilient(opts, FaultPlan.disabled(), n=16,
                          checkpoint_dir=tmp_path,
                          cancel=CancelToken(iteration_budget=7))
        report = run_resilient(opts, FaultPlan.disabled(), n=16,
                               checkpoint_dir=tmp_path, resume=True)
        assert report.converged


# -- rank coherence + quiescence (the no-wedged-barrier claim) -----------------


@pytest.mark.distributed
class TestRankCoherentCancellation:
    def test_deadline_aborts_all_ranks_same_iteration_quiescent(self):
        """Every rank raises at the same iteration boundary and the
        sanitizer's quiescence check passes inside each rank: no pending
        p2p, no half-exchanged halo, no rank still waiting in a
        collective."""
        size = 2
        n = 16
        state = SanitizerState(size)
        grid, kxg, kyg, bg = crooked_pipe_system(n)

        def rank_main(comm):
            c = SanitizerComm(comm, state=state)
            tile = decompose(grid, c.size)[c.rank]
            op = StencilOperator2D.from_global_faces(tile, 1, kxg, kyg, c)
            b = Field.from_global(tile, 1, bg)
            try:
                cg_solve(op, b, eps=1e-14, max_iters=200,
                         cancel=CancelToken(iteration_budget=5))
            except DeadlineExceeded as exc:
                c.check_quiescent()   # raises SanitizerError if p2p pending
                return ("deadline", exc.iteration)
            return ("converged", -1)

        out = launch_spmd(rank_main, size)
        assert out == [("deadline", 5)] * size

    def test_client_cancel_via_spmd_runner_surfaces_cancelled(self):
        """Through the full resilient runner, a scheduled client cancel
        surfaces as Cancelled (not as CommunicationError abort fallout)."""
        from repro.resilience.faults import FaultPlan
        from repro.resilience.runner import run_resilient
        from repro.solvers import SolverOptions

        token = CancelToken()
        with pytest.raises(Cancelled):
            run_resilient(SolverOptions(solver="cg", eps=1e-14,
                                        max_iters=200),
                          FaultPlan.disabled(), n=16, size=2,
                          cancel=ScheduledCancel(token, cancel_at_iteration=4))


# -- contract transparency -----------------------------------------------------


@pytest.mark.slow
def test_all_contracts_verify_with_inert_token():
    """Every shipped COMM_CONTRACT still verifies when an inert
    CancelToken rides along: the cancellation hook adds zero
    communication and never perturbs the iteration path."""
    from repro.analysis.verify import default_specs, verify_contracts

    specs = default_specs()
    assert len(specs) == 8
    # Re-point every cancel-aware solver at a tokened run (dcg keeps its
    # stock run: deflated CG has no cancellation hook).
    from repro.analysis.verify import EPS_NEVER
    from repro.solvers import cg_fused_solve

    token = CancelToken()
    by_name = {s.name: s for s in specs}
    by_name["cg"].run = lambda op, b, bounds, k, guard=None: cg_solve(
        op, b, eps=EPS_NEVER, max_iters=k, guard=guard, cancel=token)
    by_name["cg_fused"].run = \
        lambda op, b, bounds, k, guard=None: cg_fused_solve(
            op, b, eps=EPS_NEVER, max_iters=k, cancel=token)
    by_name["jacobi"].run = lambda op, b, bounds, k, guard=None: jacobi_solve(
        op, b, eps=EPS_NEVER, max_iters=k, cancel=token)
    by_name["chebyshev"].run = \
        lambda op, b, bounds, k, guard=None: chebyshev_solve(
            op, b, eps=EPS_NEVER, max_iters=k, warmup_iters=8,
            check_interval=10, bounds=bounds, guard=guard, cancel=token)
    by_name["chebyshev[depth=4]"].run = \
        lambda op, b, bounds, k, guard=None: chebyshev_solve(
            op, b, eps=EPS_NEVER, max_iters=k, warmup_iters=8,
            check_interval=10, halo_depth=4, bounds=bounds, guard=guard,
            cancel=token)
    by_name["ppcg"].run = lambda op, b, bounds, k, guard=None: ppcg_solve(
        op, b, eps=EPS_NEVER, max_iters=k, inner_steps=4, warmup_iters=8,
        bounds=bounds, guard=guard, cancel=token)
    by_name["ppcg[depth=4]"].run = \
        lambda op, b, bounds, k, guard=None: ppcg_solve(
            op, b, eps=EPS_NEVER, max_iters=k, inner_steps=8, halo_depth=4,
            warmup_iters=8, bounds=bounds, guard=guard, cancel=token)

    reports = verify_contracts(n=32, specs=specs)
    assert len(reports) == 8
    bad = [(r.name, r.measured_allreduces, r.measured_halos)
           for r in reports if not r.ok]
    assert not bad, bad
