"""Unit tests: iteration-count measurement and extrapolation."""

import pytest

from repro.perfmodel import (
    IterationModel,
    SolverConfig,
    fit_iteration_model,
    measure_iteration_counts,
)
from repro.utils import ConfigurationError

SIZES = (32, 48, 64)


class TestMeasurement:
    def test_cg_counts_grow_with_mesh(self):
        counts = measure_iteration_counts(SolverConfig("cg"), SIZES)
        vals = [counts[n] for n in SIZES]
        assert vals[0] < vals[1] < vals[2]

    def test_ppcg_counts_much_smaller(self):
        cg = measure_iteration_counts(SolverConfig("cg"), (48,))[48]
        pp = measure_iteration_counts(
            SolverConfig("ppcg", inner_steps=10), (48,))[48]
        assert pp < cg / 4

    def test_mgcg_counts_nearly_flat(self):
        counts = measure_iteration_counts(SolverConfig("mgcg"), SIZES)
        assert counts[64] <= counts[32] * 2.5

    def test_measurement_is_cached(self):
        import time
        config = SolverConfig("cg")
        measure_iteration_counts(config, (48,))
        t0 = time.perf_counter()
        measure_iteration_counts(config, (48,))
        assert time.perf_counter() - t0 < 0.05


class TestIterationModel:
    def test_linear_evaluation(self):
        m = IterationModel(a=10.0, b=2.0, measured=((1, 12),))
        assert m(100) == 210.0

    def test_floor_at_one(self):
        m = IterationModel(a=-100.0, b=0.001, measured=((1, 1),))
        assert m(10) == 1.0

    def test_log_form(self):
        import math
        m = IterationModel(a=1.0, b=2.0, measured=((1, 1),), form="log")
        assert m(math.e ** 3) == pytest.approx(7.0, rel=1e-6)

    def test_rejects_bad_mesh(self):
        m = IterationModel(a=1.0, b=1.0, measured=((1, 2),))
        with pytest.raises(ConfigurationError):
            m(0)


class TestFits:
    def test_cg_fit_is_linear_high_r2(self):
        """The sqrt(kappa) ~ N law: measured CG counts fit a line in N."""
        m = fit_iteration_model(SolverConfig("cg"), SIZES)
        assert m.form == "linear"
        assert m.r_squared > 0.99
        assert m.b > 0

    def test_ppcg_fit_smaller_slope(self):
        cg = fit_iteration_model(SolverConfig("cg"), SIZES)
        pp = fit_iteration_model(SolverConfig("ppcg", inner_steps=10), SIZES)
        assert pp.b < cg.b / 3

    def test_mgcg_fit_is_log(self):
        m = fit_iteration_model(SolverConfig("mgcg"), SIZES)
        assert m.form == "log"
        # extrapolation to 4000 stays within multigrid-plausible range
        assert m(4000) < 200

    def test_extrapolation_consistency(self):
        """Fit on small sizes predicts a held-out larger size well."""
        m = fit_iteration_model(SolverConfig("cg"), (32, 48, 64))
        measured = measure_iteration_counts(SolverConfig("cg"), (96,))[96]
        assert m(96) == pytest.approx(measured, rel=0.15)

    def test_single_point_fit(self):
        m = fit_iteration_model(SolverConfig("cg"), (48,))
        assert m.b == 0.0
        assert m(1000) == m(48)
