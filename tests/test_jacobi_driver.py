"""Unit tests: Jacobi solver, SolverOptions, and the dispatch driver."""

import numpy as np
import pytest

from repro.mesh import Field, Grid2D
from repro.solvers import SolverOptions, jacobi_solve, solve_linear
from repro.utils import ConfigurationError

from tests.helpers import (
    crooked_pipe_system,
    random_spd_faces,
    reference_solution,
    serial_operator,
)


class TestJacobi:
    def test_converges_to_reference(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        x_ref = reference_solution(kx, ky, bg)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = jacobi_solve(op, b, eps=1e-10, max_iters=100_000)
        assert result.converged
        assert np.allclose(result.x.interior, x_ref,
                           atol=1e-6 * np.abs(x_ref).max())

    def test_much_slower_than_cg(self):
        from repro.solvers import cg_solve
        g, kx, ky, bg = crooked_pipe_system(24)
        op1 = serial_operator(g, kx, ky)
        b1 = Field.from_global(op1.tile, 1, bg)
        jac = jacobi_solve(op1, b1, eps=1e-8, max_iters=200_000)
        op2 = serial_operator(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        cg = cg_solve(op2, b2, eps=1e-8)
        assert jac.iterations > 3 * cg.iterations

    def test_residual_monotone_tail(self):
        g, kx, ky, bg = crooked_pipe_system(12)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = jacobi_solve(op, b, eps=1e-8, max_iters=100_000)
        tail = result.history[-20:]
        assert all(a >= b_ for a, b_ in zip(tail, tail[1:]))

    def test_unconverged_reported(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = jacobi_solve(op, b, eps=1e-12, max_iters=5)
        assert not result.converged and result.iterations == 5


class TestSolverOptions:
    def test_defaults(self):
        opt = SolverOptions()
        assert opt.solver == "cg"
        assert opt.required_field_halo == 1

    def test_required_halo_tracks_matrix_powers(self):
        assert SolverOptions(solver="ppcg", halo_depth=8).required_field_halo == 8
        assert SolverOptions(solver="cg", halo_depth=8).required_field_halo == 1
        assert SolverOptions(solver="chebyshev",
                             halo_depth=4).required_field_halo == 4

    def test_labels(self):
        assert SolverOptions(solver="cg").label() == "CG - 1"
        assert SolverOptions(solver="ppcg", halo_depth=16).label() == "PPCG - 16"
        assert SolverOptions(solver="mgcg").label() == "MG-CG - 1"

    @pytest.mark.parametrize("bad", [
        dict(solver="sor"),
        dict(preconditioner="ilu"),
        dict(eps=0.0),
        dict(max_iters=0),
        dict(ppcg_inner_steps=-1),
        dict(halo_depth=0),
        dict(eigen_safety=(1.2, 1.1)),
        dict(solver="ppcg", preconditioner="block_jacobi", halo_depth=4),
    ])
    def test_invalid_options(self, bad):
        with pytest.raises(ConfigurationError):
            SolverOptions(**bad)

    def test_frozen(self):
        opt = SolverOptions()
        with pytest.raises(AttributeError):
            opt.solver = "ppcg"


class TestDriver:
    @pytest.mark.parametrize("solver", ["jacobi", "cg", "chebyshev", "ppcg",
                                        "mgcg"])
    def test_dispatch_converges(self, solver):
        g, kx, ky, bg = crooked_pipe_system(16)
        eps = 1e-8
        opts = SolverOptions(solver=solver, eps=eps,
                             max_iters=200_000 if solver == "jacobi" else 1000)
        op = serial_operator(g, kx, ky, halo=opts.required_field_halo)
        b = Field.from_global(op.tile, opts.required_field_halo, bg)
        result = solve_linear(op, b, options=opts)
        assert result.converged
        x_ref = reference_solution(kx, ky, bg)
        assert np.allclose(result.x.interior, x_ref,
                           atol=1e-4 * np.abs(x_ref).max())

    def test_default_options(self):
        g, kx, ky, bg = crooked_pipe_system(12)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        assert solve_linear(op, b).converged

    def test_halo_mismatch_rejected(self):
        g, kx, ky, bg = crooked_pipe_system(12)
        op = serial_operator(g, kx, ky, halo=1)
        b = Field.from_global(op.tile, 1, bg)
        with pytest.raises(ConfigurationError, match="halo"):
            solve_linear(op, b, options=SolverOptions(solver="ppcg",
                                                      halo_depth=4))

    def test_cg_with_preconditioner_options(self, rng):
        n = 16
        kx, ky = random_spd_faces(rng, n, n)
        bg = rng.standard_normal((n, n))
        for prec in ("none", "diagonal", "block_jacobi"):
            op = serial_operator(Grid2D(n, n), kx, ky)
            b = Field.from_global(op.tile, 1, bg)
            result = solve_linear(op, b, options=SolverOptions(
                solver="cg", preconditioner=prec, eps=1e-11))
            assert result.converged
