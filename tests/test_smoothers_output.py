"""Tests: Chebyshev smoother, divergence guards, periodic output."""

import numpy as np
import pytest

from repro.comm import SerialComm, launch_spmd
from repro.mesh import Field, Grid2D
from repro.multigrid import MultigridHierarchy, chebyshev_smooth, mgcg_solve
from repro.multigrid.levels import Level, level_matvec
from repro.physics import crooked_pipe
from repro.physics.simulation import Simulation
from repro.solvers import EigenBounds, SolverOptions, chebyshev_solve
from repro.utils import ConfigurationError, ConvergenceError

from tests.helpers import crooked_pipe_system, random_spd_faces, serial_operator


class TestChebyshevSmoother:
    def test_reduces_residual(self, rng):
        kx, ky = random_spd_faces(rng, 16, 16)
        level = Level(kx=kx, ky=ky)
        b = rng.standard_normal((16, 16))
        u = np.zeros_like(b)
        r0 = np.linalg.norm(b)
        chebyshev_smooth(level, u, b, sweeps=4)
        r1 = np.linalg.norm(b - level_matvec(level, u))
        assert r1 < r0

    def test_kills_high_frequencies_harder_than_jacobi(self, rng):
        """The smoother's job: damp oscillatory error fast."""
        from repro.multigrid.smoothers import jacobi_smooth
        n = 32
        kx, ky = random_spd_faces(rng, n, n, scale=3.0)
        level = Level(kx=kx, ky=ky)
        # checkerboard = highest-frequency mode
        j, k = np.meshgrid(np.arange(n), np.arange(n))
        err0 = ((-1.0) ** (j + k))
        b = np.zeros((n, n))

        def remaining(smooth):
            u = -err0.copy()  # error = -u when solution is 0
            smooth(level, u, b, sweeps=3)
            return np.linalg.norm(u)

        cheb = remaining(lambda lv, u, bb, sweeps: chebyshev_smooth(
            lv, u, bb, sweeps=sweeps))
        jac = remaining(lambda lv, u, bb, sweeps: jacobi_smooth(
            lv, u, bb, sweeps=sweeps))
        assert cheb < jac

    def test_mgcg_with_chebyshev_smoother(self):
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        result = mgcg_solve(op, b, eps=1e-10, smoother="chebyshev")
        assert result.converged
        # comparable iteration count to the Jacobi-smoothed cycle
        op2 = serial_operator(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        jac = mgcg_solve(op2, b2, eps=1e-10, smoother="jacobi")
        assert result.iterations <= 2 * jac.iterations

    def test_invalid_smoother_name(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        with pytest.raises(ConfigurationError):
            MultigridHierarchy.build(kx, ky, smoother="ilu")

    def test_invalid_fraction(self, rng):
        kx, ky = random_spd_faces(rng, 8, 8)
        with pytest.raises(ConfigurationError):
            chebyshev_smooth(Level(kx=kx, ky=ky), np.zeros((8, 8)),
                             np.zeros((8, 8)), smooth_fraction=0.5)


class TestDivergenceGuards:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_chebyshev_solver_raises_on_divergence(self):
        """lam_max grossly underestimated -> non-finite residual, loud error."""
        g, kx, ky, bg = crooked_pipe_system(32)
        op = serial_operator(g, kx, ky)
        b = Field.from_global(op.tile, 1, bg)
        with pytest.raises(ConvergenceError, match="non-finite|diverged"):
            chebyshev_solve(op, b, eps=1e-10, warmup_iters=3,
                            bounds=EigenBounds(1.0, 1.2), max_iters=2000)


class TestPeriodicOutput:
    def test_summary_frequency_attaches_summaries(self):
        sim = Simulation(SerialComm(), Grid2D(16, 16), crooked_pipe(),
                         SolverOptions(solver="cg", eps=1e-10))
        stats = sim.run(4, summary_frequency=2)
        assert stats[0].summary is None
        assert stats[1].summary is not None
        assert stats[3].summary is not None
        assert stats[1].summary.mass == pytest.approx(stats[3].summary.mass)

    def test_visit_frequency_writes_vtk(self, tmp_path):
        from repro.io.vtk import read_vtk
        sim = Simulation(SerialComm(), Grid2D(16, 16), crooked_pipe(),
                         SolverOptions(solver="cg", eps=1e-10))
        sim.run(3, visit_frequency=2, output_dir=tmp_path)
        written = sorted(p.name for p in tmp_path.glob("tea.*.vtk"))
        assert written == ["tea.2.vtk"]
        shape, fields = read_vtk(tmp_path / "tea.2.vtk")
        assert shape == (16, 16)
        assert set(fields) == {"temperature", "density"}

    def test_visit_dump_distributed_only_rank0_writes(self, tmp_path):
        def rank_main(comm):
            sim = Simulation(comm, Grid2D(16, 16), crooked_pipe(),
                             SolverOptions(solver="cg", eps=1e-10))
            sim.run(2, visit_frequency=2, output_dir=tmp_path)
            return True

        assert all(launch_spmd(rank_main, 4))
        files = list(tmp_path.glob("tea.*.vtk"))
        assert len(files) == 1

    def test_deck_frequencies_parsed(self):
        from repro.physics import parse_deck_text
        deck = parse_deck_text(
            "*tea\nstate 1 density=1 energy=1\n"
            "summary_frequency=10\nvisit_frequency=5\n*endtea")
        assert deck.summary_frequency == 10
        assert deck.visit_frequency == 5
