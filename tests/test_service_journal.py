"""Crash consistency of the solve service (journal + recovery + supervisor).

The load-bearing claims: the write-ahead journal round-trips and heals
torn tails (but never papers over sealed-segment rot), replay is
verify-or-append with exactly-once side effects (journaled solves are
never redone, a divergent re-run aborts), idempotency keys are served
from the durable result store across restarts, a mid-solve crash victim
resumes from its guard shards bit-identically, and a stuck dispatch is
cancelled and hedged by the supervisor.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.physics.deck import CROOKED_PIPE_DECK
from repro.service import (
    RecoveryWarning,
    ReplayIndex,
    RequestJournal,
    ResultStore,
    ServiceConfig,
    ServiceEngine,
    SolveRequest,
    SupervisedToken,
    WorkerStuck,
    deck_fingerprint,
    encode_record,
    scan_journal,
    solution_digest,
)
from repro.service.cancel import CancelToken, Cancelled
from repro.service.recovery import replay_error, synthesize_result
from repro.utils.errors import JournalError


def _rec(i, **kw):
    return {"type": "note", "request_id": f"req-{i:05d}", **kw}


# -- the write-ahead log -------------------------------------------------------


class TestJournalFraming:
    def test_append_reopen_round_trip(self, tmp_path):
        with RequestJournal(tmp_path / "wal") as j:
            for i in range(5):
                j.append(_rec(i, tenant="acme"))
            assert j.record_count == 5
        again = RequestJournal(tmp_path / "wal")
        assert again.records == [_rec(i, tenant="acme") for i in range(5)]
        assert again.warnings == []

    def test_canonical_encoding(self):
        a = encode_record({"b": 1, "a": 2})
        b = encode_record({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}'

    def test_unserializable_record_rejected(self, tmp_path):
        j = RequestJournal(tmp_path / "wal")
        with pytest.raises(JournalError, match="JSON"):
            j.append({"x": object()})

    def test_segment_roll_seals_and_continues(self, tmp_path):
        root = tmp_path / "wal"
        with RequestJournal(root, segment_records=3) as j:
            for i in range(8):
                j.append(_rec(i))
        assert sorted(p.name for p in root.glob("wal-*.log")) == \
            ["wal-000000.log", "wal-000001.log"]
        assert [p.name for p in root.glob("wal-*.open")] == \
            ["wal-000002.log".replace(".log", ".open")]
        again = RequestJournal(root, segment_records=3)
        assert again.record_count == 8

    def test_torn_tail_healed_on_reopen(self, tmp_path):
        root = tmp_path / "wal"
        with RequestJournal(root) as j:
            for i in range(3):
                j.append(_rec(i))
        active = next(root.glob("wal-*.open"))
        payload = encode_record(_rec(3))
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        with open(active, "ab") as fh:
            fh.write(frame[: len(frame) // 2])      # SIGKILL mid-frame
        healed = RequestJournal(root)
        assert healed.record_count == 3
        assert len(healed.warnings) == 1 and "torn" in healed.warnings[0]
        for i in range(3):
            healed.append(_rec(i))                  # re-offered: verified
        healed.append(_rec(3))                      # tail is writable again
        healed.close()
        records, warnings = scan_journal(root)
        assert records == [_rec(i) for i in range(4)] and warnings == []

    def test_sealed_corruption_is_fatal(self, tmp_path):
        root = tmp_path / "wal"
        with RequestJournal(root, segment_records=2) as j:
            for i in range(4):
                j.append(_rec(i))
        sealed = root / "wal-000000.log"
        data = bytearray(sealed.read_bytes())
        data[-1] ^= 0xFF                            # bit rot, CRC now wrong
        sealed.write_bytes(bytes(data))
        with pytest.raises(JournalError, match="sealed segment"):
            RequestJournal(root)
        with pytest.raises(JournalError, match="sealed segment"):
            scan_journal(root)

    def test_arm_kill_validation(self, tmp_path):
        j = RequestJournal(tmp_path / "wal")
        with pytest.raises(JournalError, match="kill mode"):
            j.arm_kill(5, "sideways")
        with pytest.raises(JournalError, match=">= 1"):
            j.arm_kill(0)


class TestVerifyOrAppend:
    def test_replay_verifies_then_appends(self, tmp_path):
        root = tmp_path / "wal"
        with RequestJournal(root) as j:
            j.append(_rec(0))
            j.append(_rec(1))
        again = RequestJournal(root)
        before = (root / "wal-000000.open").stat().st_size
        again.append(_rec(0))                       # verified, not written
        again.append(_rec(1))
        assert (root / "wal-000000.open").stat().st_size == before
        again.append(_rec(2))                       # past prefix: written
        assert (root / "wal-000000.open").stat().st_size > before
        assert again.record_count == 3

    def test_divergent_replay_aborts(self, tmp_path):
        root = tmp_path / "wal"
        with RequestJournal(root) as j:
            j.append(_rec(0, status="completed"))
        again = RequestJournal(root)
        with pytest.raises(JournalError, match="divergence at record 0"):
            again.append(_rec(0, status="failed"))

    def test_fast_forward_skips_verification(self, tmp_path):
        root = tmp_path / "wal"
        with RequestJournal(root) as j:
            j.append(_rec(0))
        again = RequestJournal(root)
        again.fast_forward()
        again.append(_rec(99))                      # append-only owner
        assert again.record_count == 2


# -- the recovery read side ----------------------------------------------------


class TestReplayIndex:
    RECORDS = [
        {"type": "accepted", "request_id": "r1", "key": "k"},
        {"type": "dispatched", "request_id": "r1", "attempt": 1},
        {"type": "attempt", "request_id": "r1", "attempt": 1, "kind": "ok"},
        {"type": "terminal", "request_id": "r1", "status": "completed",
         "key": "k", "digest": "d1"},
        {"type": "accepted", "request_id": "r2", "key": ""},
        {"type": "dispatched", "request_id": "r2", "attempt": 1},
    ]

    def test_indexing_and_in_flight(self):
        idx = ReplayIndex.from_records(self.RECORDS)
        assert idx.record_count == len(self.RECORDS)
        assert idx.admissions["r1"]["type"] == "accepted"
        assert idx.completed_by_key["k"]["digest"] == "d1"
        assert idx.in_flight() == [("r2", 1)]
        assert idx.resumable("r2", 1)
        assert not idx.resumable("r1", 1)           # attempt journaled
        assert not idx.resumable("r2", 2)           # never dispatched

    def test_first_completion_wins_per_key(self):
        records = self.RECORDS + [
            {"type": "terminal", "request_id": "r3", "status": "completed",
             "key": "k", "digest": "d3"}]
        idx = ReplayIndex.from_records(records)
        assert idx.completed_by_key["k"]["digest"] == "d1"


class TestResultStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        x = np.linspace(0.0, 1.0, 9)
        digest = store.save("r1", x)
        assert digest == solution_digest(x)
        assert np.array_equal(store.load("r1", digest), x)

    def test_missing_and_damaged_shards_degrade(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        with pytest.warns(RecoveryWarning, match="missing"):
            assert store.load("ghost", "d") is None
        digest = store.save("r1", np.ones(4))
        path = store.path_for("r1")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.warns(RecoveryWarning, match="unreadable"):
            assert store.load("r1", digest) is None
        store.save("r2", np.ones(4))
        with pytest.warns(RecoveryWarning, match="digest"):
            assert store.load("r2", "not-the-digest") is None


class TestSynthesis:
    def test_replay_error_mimics_original(self):
        err = replay_error("ConvergenceError", "diverged")
        assert type(err).__name__ == "ConvergenceError"
        assert str(err) == "diverged"
        assert replay_error("ConvergenceError", "x").__class__ is err.__class__

    def test_synthesize_ok_attempt(self):
        x = np.arange(3.0)
        result = synthesize_result(
            {"kind": "ok", "iterations": 17,
             "report": {"retries": 2, "degraded": False,
                        "virtual_time_s": 0.5},
             "bounds": [0.1, 3.9], "error_class": ""}, x=x)
        assert result.kind == "ok" and result.iterations == 17
        assert result.report.retries == 2
        assert result.report.result.eigen_bounds == (0.1, 3.9)
        assert result.report.x is x

    def test_synthesize_failed_attempt(self):
        result = synthesize_result(
            {"kind": "fatal", "iterations": 0, "report": None,
             "bounds": None, "error_class": "ConfigurationError",
             "error_message": "bad deck"})
        assert result.report is None
        assert result.error_class == "ConfigurationError"

    def test_deck_fingerprint_is_content_hash(self):
        assert deck_fingerprint("abc") == deck_fingerprint("abc")
        assert deck_fingerprint("abc") != deck_fingerprint("abd")
        assert len(deck_fingerprint("abc")) == 64


# -- engine crash/replay semantics ---------------------------------------------

CG_DECK = CROOKED_PIPE_DECK.format(n=12).replace("use_ppcg", "use_cg")
CKPT_DECK = CG_DECK.replace(
    "*endtea", "tl_checkpoint_interval=3\ntl_checkpoint_dir=auto\n*endtea")


def _requests(count, *, deck=CG_DECK, keys=()):
    # Serial arrivals (each solve finishes before the next lands) so any
    # record-stream prefix is a valid crash state for a shorter workload.
    return [SolveRequest(
        request_id=f"req-{i:03d}", tenant="acme", arrival_s=i * 0.5,
        deck_text=deck, n=12, max_attempts=2,
        idempotency_key=keys[i] if i < len(keys) else "")
        for i in range(count)]


def _engine(root, **kw):
    return ServiceEngine(
        ServiceConfig(workers=2, quota_rate=400.0, quota_burst=10.0, **kw),
        journal=RequestJournal(root / "wal"),
        results=ResultStore(root / "results"),
        checkpoint_root=root / "checkpoints")


class TestEngineReplay:
    def test_full_replay_is_byte_identical_and_solve_free(self, tmp_path):
        first = _engine(tmp_path)
        golden = first.run(_requests(3))
        first.journal.close()
        again = _engine(tmp_path)
        replayed = again.run(_requests(3))
        again.journal.close()
        assert [o.to_dict() for o in replayed] == \
            [o.to_dict() for o in golden]
        rec = again.recovery_summary()
        assert rec["replayed_attempts"] == 3        # nothing re-solved
        assert again.results.saves == 0             # no new side effects
        assert np.array_equal(replayed[0].x, golden[0].x)

    def test_partial_prefix_replays_then_runs_live(self, tmp_path):
        first = _engine(tmp_path)
        before = first.run(_requests(2))
        first.journal.close()
        again = _engine(tmp_path)
        outcomes = again.run(_requests(4))
        again.journal.close()
        assert [o.to_dict() for o in before] == \
            [o.to_dict() for o in outcomes[:2]]
        assert again.recovery_summary()["replayed_attempts"] == 2
        assert all(o.status == "completed" for o in outcomes)

    def test_idempotency_key_dedup_across_restart(self, tmp_path):
        first = _engine(tmp_path)
        first.run(_requests(1, keys=["golden"]))
        first.journal.close()
        again = _engine(tmp_path)
        outcomes = again.run(_requests(2, keys=["golden", "golden"]))
        again.journal.close()
        dup = outcomes[1]
        assert dup.status == "completed" and dup.deduplicated
        assert dup.attempts == 0                    # acknowledged, not solved
        assert np.array_equal(dup.x, outcomes[0].x)
        assert again.recovery_summary()["deduplicated"] == 1

    def test_damaged_result_store_resolves_with_digest_check(self, tmp_path):
        first = _engine(tmp_path)
        golden = first.run(_requests(1))
        first.journal.close()
        first.results.path_for("req-000").unlink()  # lose the durable shard
        again = _engine(tmp_path)
        with pytest.warns(RecoveryWarning, match="missing"):
            outcomes = again.run(_requests(1))
        again.journal.close()
        assert np.array_equal(outcomes[0].x, golden[0].x)

    def test_mid_solve_crash_resumes_from_guard_shards(self, tmp_path):
        golden_engine = _engine(tmp_path / "golden")
        golden = golden_engine.run(_requests(2, deck=CKPT_DECK))
        golden_engine.journal.close()
        records = golden_engine.journal.records
        # Crash state: everything up to (and including) req-001's
        # dispatch, nothing after — the classic in-flight victim.  Guard
        # shards and req-000's result shard survive from the golden tree.
        cut = next(i for i, r in enumerate(records)
                   if r["type"] == "dispatched"
                   and r["request_id"] == "req-001") + 1
        crashed_wal = RequestJournal(tmp_path / "golden" / "wal2")
        for rec in records[:cut]:
            crashed_wal.append(rec)
        crashed_wal.close()
        survivor = ServiceEngine(
            ServiceConfig(workers=2, quota_rate=400.0, quota_burst=10.0),
            journal=RequestJournal(tmp_path / "golden" / "wal2"),
            results=golden_engine.results,
            checkpoint_root=tmp_path / "golden" / "checkpoints")
        outcomes = survivor.run(_requests(2, deck=CKPT_DECK))
        survivor.journal.close()
        rec = survivor.recovery_summary()
        assert rec["resumed_requests"] == ["req-001"]
        assert [o.to_dict() for o in outcomes] == \
            [o.to_dict() for o in golden]           # resume is bit-identical
        assert np.array_equal(outcomes[1].x, golden[1].x)
        assert survivor.journal.records == records  # same history, no fork


# -- the dispatch supervisor ---------------------------------------------------


class TestSupervisedToken:
    def test_trip_raises_at_next_boundary(self):
        token = SupervisedToken(CancelToken())
        token.check(0)
        token.trip("watchdog fired")
        with pytest.raises(WorkerStuck, match="watchdog fired"):
            token.check(1)
        assert token.heartbeats == 2

    def test_iteration_allowance(self):
        token = SupervisedToken(CancelToken(), iteration_allowance=3)
        for i in range(3):
            token.check(i)
        with pytest.raises(WorkerStuck, match="allowance"):
            token.check(3)

    def test_worker_stuck_is_a_cancelled(self):
        assert issubclass(WorkerStuck, Cancelled)

    def test_inner_cancel_still_wins(self):
        inner = CancelToken()
        token = SupervisedToken(inner)
        inner.cancel("client gave up")
        token.trip("also stuck")
        with pytest.raises(Cancelled) as err:
            token.check(0)
        assert not isinstance(err.value, WorkerStuck)

    def test_engine_stuck_dispatch_hedged(self, tmp_path):
        # An absurdly small allowance declares every first dispatch
        # stuck; the engine must hedge and still classify terminally.
        engine = _engine(tmp_path, stuck_after_s=1e-9)
        outcomes = engine.run(_requests(1))
        engine.journal.close()
        assert outcomes[0].status == "failed"
        counters = engine.metrics.snapshot()["counters"]
        assert counters["service.stuck"] >= 1
        kinds = [r["kind"] for r in engine.journal.records
                 if r["type"] == "attempt"]
        assert kinds and all(k == "stuck" for k in kinds)
