"""Trace-invariant test suite for repro.observe.

Four families of guarantees:

- **invariants** — spans strictly nest (parent interval contains every
  child, sibling intervals do not overlap, child durations sum to at
  most the parent's), timestamps are monotonic per rank;
- **differential** — installing a tracer changes no solver result
  bit-for-bit;
- **determinism** — two identical virtual-clock runs serialize to
  byte-identical JSONL;
- **cross-checks** — per-iteration span counts reproduce the
  COMM_CONTRACT numbers for every shipped solver configuration, and
  retry re-issues stay out of first-attempt counts whichever side of
  the retry layer the tracing wrapper sits on.
"""

import gc
import itertools
import json
import tracemalloc

import numpy as np
import pytest

from repro.comm import EventWindow, InstrumentedComm, SerialComm
from repro.mesh import Field, decompose
from repro.observe import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    TracingComm,
    attach_tracer,
    chrome_trace,
    jsonl_lines,
    metrics_table,
    self_times,
    sort_spans,
    summary_table,
    traced_crooked_pipe,
    traced_solve,
    write_chrome_trace,
    write_jsonl,
)
from repro.observe.trace import tracer_of
from repro.resilience import (
    FaultPlan,
    FaultRule,
    FaultyComm,
    RetryingComm,
    VirtualClock,
)
from repro.solvers import SolverOptions, StencilOperator2D, cg_solve
from repro.testing import crooked_pipe_system
from repro.utils import EventLog


def _clock_factory(rank):
    return VirtualClock(tick=1e-6)


def make_op(n=16, halo=1, tracer=None, log=None):
    """Serial instrumented crooked-pipe operator + rhs, tracer attached."""
    grid, kxg, kyg, bg = crooked_pipe_system(n)
    log = log if log is not None else EventLog()
    comm = InstrumentedComm(SerialComm(), log, tracer=tracer)
    tile = decompose(grid, 1)[0]
    op = StencilOperator2D.from_global_faces(tile, halo, kxg, kyg, comm,
                                             events=log, tracer=tracer)
    b = Field.from_global(tile, halo, bg)
    return op, b, log


# -- invariant checker ---------------------------------------------------------


def check_invariants(spans):
    """Assert the structural trace invariants over finished spans."""
    assert spans, "no spans to check"
    by_rank = {}
    for s in spans:
        by_rank.setdefault(s.rank, []).append(s)
    for ss in by_rank.values():
        by_id = {s.span_id: s for s in ss}
        assert len(by_id) == len(ss), "duplicate span ids within a rank"
        children = {}
        for s in ss:
            assert s.t_end >= s.t_start
            if s.parent_id == -1:
                assert s.depth == 0
            else:
                parent = by_id[s.parent_id]
                assert s.depth == parent.depth + 1
                # parent interval contains the child's
                assert parent.t_start <= s.t_start
                assert s.t_end <= parent.t_end
                children.setdefault(s.parent_id, []).append(s)
        # creation order == clock order (monotonic timestamps per rank)
        ordered = sorted(ss, key=lambda s: s.span_id)
        for a, b in zip(ordered, ordered[1:]):
            assert a.t_start <= b.t_start
        for pid, kids in children.items():
            parent = by_id[pid]
            kids.sort(key=lambda s: s.span_id)
            # sibling intervals are disjoint and ordered
            for a, b in zip(kids, kids[1:]):
                assert a.t_end <= b.t_start
            assert sum(k.duration for k in kids) <= parent.duration + 1e-12


# -- tracer core ---------------------------------------------------------------


class TestTracer:
    def test_nesting_ids_depth(self):
        t = Tracer(clock=VirtualClock(tick=1.0))
        with t.span("a"):
            with t.span("b", "k"):
                pass
            with t.span("c"):
                pass
        spans = {s.name: s for s in t.finished()}
        a, b, c = spans["a"], spans["b"], spans["c"]
        assert (a.span_id, b.span_id, c.span_id) == (0, 1, 2)
        assert a.parent_id == -1 and a.depth == 0
        assert b.parent_id == a.span_id and b.depth == 1
        assert c.parent_id == a.span_id and c.depth == 1
        assert b.key == "k" and a.key is None
        check_invariants(t.finished())

    def test_finished_completion_order(self):
        t = Tracer(clock=VirtualClock(tick=1.0))
        with t.span("outer"):
            with t.span("inner"):
                pass
        names = [s.name for s in t.finished()]
        assert names == ["inner", "outer"]  # children complete first

    def test_ring_buffer_bound_and_dropped(self):
        t = Tracer(clock=VirtualClock(tick=1.0), capacity=4)
        for i in range(10):
            with t.span("s", i):
                pass
        assert len(t.finished()) == 4
        assert t.dropped == 6
        assert [s.key for s in t.finished()] == [6, 7, 8, 9]  # oldest gone

    def test_mismatched_exit_raises(self):
        t = Tracer(clock=VirtualClock(tick=1.0))
        outer = t.span("outer").__enter__()
        t.span("inner").__enter__()
        with pytest.raises(RuntimeError, match="strictly nest"):
            outer.__exit__(None, None, None)

    def test_exception_closes_span(self):
        t = Tracer(clock=VirtualClock(tick=1.0))
        with pytest.raises(ValueError):
            with t.span("body"):
                raise ValueError("boom")
        assert t.count("body") == 1
        assert t.active_depth == 0

    def test_clock_read_exactly_twice_per_span(self):
        reads = []

        def clock():
            reads.append(1)
            return float(len(reads))

        t = Tracer(clock=clock)
        with t.span("a"):
            with t.span("b"):
                pass
        assert len(reads) == 4  # 2 spans x (enter + exit)

    def test_counts_and_clear(self):
        t = Tracer(clock=VirtualClock(tick=1.0))
        for key in ("x", "x", "y"):
            with t.span("s", key):
                pass
        assert t.counts() == {"s": 3}
        assert t.count("s", key="x") == 2
        t.clear()
        assert t.finished() == [] and t.dropped == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_tracer_of_fallback(self):
        class Bare:
            pass

        assert tracer_of(Bare()) is NULL_TRACER
        t = Tracer()
        op = Bare()
        op.tracer = t
        assert tracer_of(op) is t


class TestNullTracer:
    def test_shared_singleton_span(self):
        a = NULL_TRACER.span("iteration", "cg")
        b = NULL_TRACER.span("other")
        assert a is b
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.finished() == ()
        assert isinstance(NULL_TRACER, NullTracer)

    def test_disabled_hot_path_zero_allocation(self):
        """The acceptance criterion: the disabled tracer adds no
        *per-iteration* allocations to a hot loop.  Measured as the
        tracemalloc growth difference between a 1k and an 11k iteration
        loop, so one-off interpreter bookkeeping cancels while any
        per-span allocation would show up 10000-fold."""
        tracer = NULL_TRACER

        def grown_over(iterations):
            loop = itertools.repeat(None, iterations)
            gc.collect()
            tracemalloc.start()
            base = tracemalloc.get_traced_memory()[0]
            for _ in loop:
                with tracer.span("iteration", "cg"):
                    pass
            grown = tracemalloc.get_traced_memory()[0] - base
            tracemalloc.stop()
            return grown

        # Warm every code path once so lazy setup is outside the windows.
        with tracer.span("iteration", "cg"):
            pass
        per_iteration = grown_over(11_000) - grown_over(1_000)
        assert per_iteration <= 0, \
            f"disabled span path allocated {per_iteration} bytes / 10k spans"


# -- metrics -------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        c.inc()
        c.inc(4)
        assert reg.counter("ops") is c and c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        reg.gauge("res").set(0.25)
        assert reg.gauge("res").value == 0.25

    def test_histogram_buckets_inclusive_upper_edges(self):
        reg = MetricsRegistry()
        h = reg.histogram("iters", bounds=(1, 10, 100))
        for v in (0, 1, 2, 10, 11, 1000):
            h.observe(v)
        assert h.bucket_counts == [2, 2, 1, 1]  # <=1, <=10, <=100, overflow
        assert h.count == 6 and h.total == 1024.0
        assert h.mean == pytest.approx(1024 / 6)

    def test_histogram_rebounds_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1, 2))
        reg.histogram("h")  # no bounds: reuse is fine
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("h", bounds=(1, 3))
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad", bounds=(2, 1))

    def test_snapshot_detached_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.histogram("h", bounds=(1,)).observe(5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["histograms"]["h"] == {
            "bounds": [1], "counts": [0, 1], "sum": 5.0, "count": 1}
        snap["counters"]["a"] = 99  # mutating the snapshot is inert
        assert reg.counter("a").value == 1
        assert len(reg) == 3
        json.dumps(snap)  # JSON-ready
        assert "histogram" in metrics_table(snap)


# -- traced solves: invariants, differential, determinism ----------------------


OPTIONS = {
    "cg": SolverOptions(solver="cg", eps=1e-8),
    "jacobi": SolverOptions(solver="jacobi", eps=1e-5, max_iters=2000),
    # warm-up CG must see enough of the crooked pipe's spectrum for the
    # Chebyshev bounds to hold at this contrast
    "chebyshev": SolverOptions(solver="chebyshev", eps=1e-8,
                               eigen_warmup_iters=20),
    "ppcg": SolverOptions(solver="ppcg", eps=1e-8, ppcg_inner_steps=4,
                          eigen_warmup_iters=8),
    "ppcg[depth=4]": SolverOptions(solver="ppcg", eps=1e-8,
                                   ppcg_inner_steps=8, halo_depth=4,
                                   eigen_warmup_iters=8),
}


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(OPTIONS))
def test_traced_solve_invariants(name):
    run = traced_crooked_pipe(16, OPTIONS[name],
                              clock_factory=_clock_factory)
    assert run.result.converged
    spans = run.spans
    check_invariants(spans)
    tracer = run.tracers[0]
    assert tracer.dropped == 0
    assert tracer.count("solve") == 1
    # every comm span nests under the solve span (depth > 0)
    for s in spans:
        if s.name in ("allreduce", "halo_exchange", "stencil"):
            assert s.depth > 0
    # span counts match the event log exactly
    assert tracer.count("allreduce") == run.events.count_kind("allreduce")
    assert tracer.count("halo_exchange") == \
        run.events.count_kind("halo_exchange")


@pytest.mark.slow
@pytest.mark.parametrize("size", [1, 4])
def test_traced_solve_multirank_per_rank_ids(size):
    run = traced_crooked_pipe(
        16, OPTIONS["cg"], size=size, clock_factory=_clock_factory)
    assert run.result.converged
    assert len(run.tracers) == size
    assert sorted(t.rank for t in run.tracers) == list(range(size))
    check_invariants(run.spans)
    for t in run.tracers:
        assert t.count("solve") == 1
        for s in t.finished():
            assert s.rank == t.rank


@pytest.mark.parametrize("name", ["cg", "ppcg"])
def test_tracing_changes_no_result_bits(name):
    """Differential: tracer on vs off -> bit-identical solver output."""
    opts = OPTIONS[name]

    def solve(tracer):
        from repro.solvers import solve_linear
        op, b, _ = make_op(n=16, halo=opts.required_field_halo,
                           tracer=tracer)
        return solve_linear(op, b, options=opts)

    plain = solve(None)
    traced = solve(Tracer(clock=VirtualClock(tick=1e-6)))
    assert traced.converged == plain.converged
    assert traced.iterations == plain.iterations
    assert traced.inner_iterations == plain.inner_iterations
    assert traced.residual_norm == plain.residual_norm  # bit-equal
    assert traced.history == plain.history
    np.testing.assert_array_equal(traced.x.data, plain.x.data)


def test_two_identical_runs_identical_jsonl():
    a = traced_crooked_pipe(12, OPTIONS["cg"], clock_factory=_clock_factory)
    b = traced_crooked_pipe(12, OPTIONS["cg"], clock_factory=_clock_factory)
    lines_a, lines_b = jsonl_lines(a.spans), jsonl_lines(b.spans)
    assert lines_a == lines_b
    assert len(lines_a) > 10


def test_simulation_step_spans(tmp_path):
    from repro.mesh import Grid2D
    from repro.physics import crooked_pipe
    from repro.physics.simulation import run_simulation

    tracers = {}

    def factory(rank):
        tracers[rank] = Tracer(clock=VirtualClock(tick=1e-6), rank=rank)
        return tracers[rank]

    report = run_simulation(Grid2D(12, 12), crooked_pipe(),
                            SolverOptions(solver="cg", eps=1e-8),
                            n_steps=2, tracer_factory=factory)
    assert report.n_steps == 2
    assert report.tracers == [tracers[0]]
    t = tracers[0]
    assert t.count("step") == 2
    assert t.count("solve") == 2
    check_invariants(t.finished())
    # step spans are the roots and solves nest under them
    spans = {s.span_id: s for s in t.finished()}
    for s in spans.values():
        if s.name == "solve":
            assert spans[s.parent_id].name == "step"


# -- COMM_CONTRACT cross-check -------------------------------------------------


def _span_measure(spec, n=32):
    """Replicate verify._measure, counting *spans* instead of events."""
    from repro.analysis.verify import _gershgorin_lam_max
    from repro.solvers.eigen import EigenBounds

    grid, kxg, kyg, bg = crooked_pipe_system(n)
    bounds = EigenBounds(1.0, _gershgorin_lam_max(kxg, kyg))

    def one_run(max_iters):
        tracer = Tracer(clock=VirtualClock(tick=1e-6))
        log = EventLog()
        comm = InstrumentedComm(SerialComm(), log, tracer=tracer)
        tile = decompose(grid, 1)[0]
        op = StencilOperator2D.from_global_faces(
            tile, spec.halo, kxg, kyg, comm, events=log, tracer=tracer)
        b = Field.from_global(tile, spec.halo, bg)
        result = spec.run(op, b, bounds, max_iters)
        return (tracer.count("allreduce"), tracer.count("halo_exchange"),
                result.iterations, tracer)

    ar1, halo1, it1, _ = one_run(spec.iters[0])
    ar2, halo2, it2, tracer = one_run(spec.iters[1])
    check_invariants(tracer.finished())
    d_iter = it2 - it1
    assert d_iter > 0
    return (ar2 - ar1) / d_iter, (halo2 - halo1) / d_iter


@pytest.mark.slow
def test_span_counts_match_comm_contracts():
    """Per-iteration span counts == COMM_CONTRACT for all 8 shipped
    solver configurations (same differencing as repro.analysis.verify)."""
    import importlib

    from repro.analysis.verify import default_specs

    specs = default_specs()
    assert len(specs) == 8
    for spec in specs:
        contract = importlib.import_module(spec.module).COMM_CONTRACT
        expected_ar, expected_halo = spec.expected(contract)
        measured_ar, measured_halo = _span_measure(spec)
        assert measured_ar == pytest.approx(expected_ar, abs=1e-9), spec.name
        assert measured_halo == pytest.approx(expected_halo, abs=1e-9), \
            spec.name


# -- retry exclusion, wrapper order independent (satellite) --------------------


def _faulty_cg(stack_order, seed=11, rate=0.05):
    """cg on a fault-injecting stack with tracing at ``stack_order``."""
    grid, kxg, kyg, bg = crooked_pipe_system(16)
    log = EventLog()
    tracer = Tracer(clock=VirtualClock(tick=1e-6))
    clock = VirtualClock()
    plan = FaultPlan(seed=seed, rules=(
        FaultRule(mode="error", probability=rate, ops=("allreduce",)),)) \
        if rate > 0 else FaultPlan.disabled()
    faulty = FaultyComm(SerialComm(), plan, events=log, clock=clock)
    retrying = RetryingComm(faulty, max_attempts=5, clock=clock, events=log)
    if stack_order == "instrument_outer":
        comm = InstrumentedComm(TracingComm(retrying, tracer), log)
    else:
        comm = TracingComm(InstrumentedComm(retrying, log), tracer)
    tile = decompose(grid, 1)[0]
    op = StencilOperator2D.from_global_faces(tile, 1, kxg, kyg, comm,
                                             events=log)
    b = Field.from_global(tile, 1, bg)
    with EventWindow(log) as w:
        result = cg_solve(op, b, eps=1e-300, max_iters=10)
    return w, result, tracer, retrying


@pytest.mark.parametrize("order", ["instrument_outer", "tracing_outer"])
def test_retries_excluded_from_first_attempt_counts(order):
    """RETRY_KIND re-issues never inflate contract counts, and inserting
    the tracing wrapper on either side of the instrument layer yields
    identical first-attempt numbers."""
    clean_w, clean_result, _, _ = _faulty_cg(order, rate=0.0)
    w, result, tracer, retrying = _faulty_cg(order)
    assert result.iterations == clean_result.iterations == 10
    assert retrying.retries > 0, "fault plan injected nothing"
    assert w.retry_count("allreduce") == retrying.retries
    assert clean_w.retry_count() == 0
    # first-attempt counts under faults == the fault-free control's
    assert w.count_kind("allreduce") == clean_w.count_kind("allreduce")
    assert w.count_kind("halo_exchange") == \
        clean_w.count_kind("halo_exchange")
    # the tracer sees the same logical operations as the event log
    assert tracer.count("allreduce") == w.count_kind("allreduce")


def test_wrapper_orders_agree():
    wa, ra, ta, _ = _faulty_cg("instrument_outer")
    wb, rb, tb, _ = _faulty_cg("tracing_outer")
    assert wa.count_kind("allreduce") == wb.count_kind("allreduce")
    assert wa.count_kind("halo_exchange") == wb.count_kind("halo_exchange")
    assert wa.retry_count() == wb.retry_count()
    assert ta.count("allreduce") == tb.count("allreduce")
    assert ra.history == rb.history  # same seed -> identical trajectory


def test_attach_tracer_installs_everywhere():
    op, b, _ = make_op(n=12)
    t = Tracer(clock=VirtualClock(tick=1e-6))
    assert attach_tracer(op, t) is t
    assert op.tracer is t and op.exchanger.tracer is t
    assert op.comm.tracer is t
    result = cg_solve(op, b, eps=1e-8)
    assert result.converged
    assert t.count("iteration") == result.iterations
    check_invariants(t.finished())


# -- exporters -----------------------------------------------------------------


def _sample_run():
    return traced_crooked_pipe(12, OPTIONS["cg"],
                               clock_factory=_clock_factory)


class TestExporters:
    def test_jsonl_valid_and_canonical(self, tmp_path):
        run = _sample_run()
        path = write_jsonl(run.spans, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert lines == jsonl_lines(run.spans)
        records = [json.loads(line) for line in lines]
        assert all(rec["t_end"] >= rec["t_start"] for rec in records)
        keys = [(r["rank"], r["t_start"], r["span_id"]) for r in records]
        assert keys == sorted(keys)

    def test_chrome_trace_structure(self, tmp_path):
        run = _sample_run()
        path = write_chrome_trace(run.spans, tmp_path / "t.chrome.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == len(run.spans)
        for ev in events:
            assert ev["ph"] == "X" and ev["cat"] == "repro"
            assert ev["dur"] >= 0 and ev["tid"] == 0
        names = {ev["name"] for ev in events}
        assert {"solve", "iteration", "allreduce"} <= names

    def test_self_times_bounded_by_duration(self):
        run = _sample_run()
        spans = run.spans
        exclusive = self_times(spans)
        for s in spans:
            assert 0.0 <= exclusive[s.span_id] <= s.duration + 1e-12

    def test_summary_table(self):
        run = _sample_run()
        text = summary_table(run.spans)
        assert "solve" in text and "iteration" in text
        assert summary_table([]) == "(no spans recorded)"

    def test_nonscalar_keys_serialized(self):
        t = Tracer(clock=VirtualClock(tick=1.0))
        with t.span("s", (1, 2)):
            pass
        (line,) = jsonl_lines(t.finished())
        assert json.loads(line)["key"] == "(1, 2)"


# -- metrics as resilience-sweep oracle (satellite) ----------------------------


@pytest.mark.slow
def test_resilience_sweep_schema_with_metrics_oracle():
    from repro.harness.resilience_sweep import SOLVERS, run_resilience_sweep
    from repro.observe import record_resilience_metrics

    solvers = SOLVERS[:1]  # cg only: keep the sweep short
    sweep = run_resilience_sweep(n=16, rates=(0.0, 0.01), solvers=solvers)
    doc = sweep.as_dict()
    assert doc["schema"] == "repro.resilience_sweep/v2"
    assert doc["solvers"] == ["cg"] and doc["rates"] == [0.0, 0.01]
    assert len(doc["cells"]) == 2
    json.dumps(doc)  # JSON-ready
    for cell in doc["cells"]:
        report = sweep.report(cell["solver"], cell["rate"])
        reg = MetricsRegistry()
        record_resilience_metrics(reg, report)
        snap = reg.snapshot()
        # the sweep's cell values and the metrics snapshot must agree
        assert cell["iterations"] == snap["counters"]["resilience.iterations"]
        assert cell["faults"] == snap["counters"]["resilience.faults"]
        assert cell["retries"] == snap["counters"]["resilience.retries"]
        assert cell["rollbacks"] == snap["counters"]["resilience.rollbacks"]
        assert cell["checkpoints"] == \
            snap["counters"]["resilience.checkpoints"]
        assert cell["recoveries"] == \
            snap["counters"]["resilience.recoveries"]
        assert cell["integrity_detections"] == \
            snap["counters"]["resilience.integrity_detections"]
        assert cell["integrity_repairs"] == \
            snap["counters"]["resilience.integrity_repairs"]
        assert cell["converged"] == \
            bool(snap["gauges"]["resilience.converged"])
        assert cell["degraded"] == bool(snap["gauges"]["resilience.degraded"])
        assert cell["virtual_time_s"] == \
            snap["gauges"]["resilience.virtual_time_s"]
        assert cell["relative_residual"] == \
            snap["gauges"]["resilience.relative_residual"]
    faulted = sweep.report("cg", 0.01)
    assert faulted.retries > 0  # the non-zero rate actually injected


def test_record_solve_metrics_schema():
    run = _sample_run()
    snap = run.metrics.snapshot()
    assert snap["counters"]["solve.iterations"] == run.result.iterations
    assert snap["counters"]["solve.allreduces"] == \
        run.events.count_kind("allreduce")
    assert snap["counters"]["solve.halo_exchanges"] == \
        run.events.count_kind("halo_exchange")
    assert snap["counters"]["solve.retries"] == 0
    assert snap["gauges"]["solve.converged"] == 1.0
    hist = snap["histograms"]["solve.iterations_hist"]
    assert hist["count"] == 1 and hist["sum"] == run.result.iterations


# -- Timer pluggable clock (satellite; see also tests/test_utils.py) -----------


def test_timer_shares_virtual_clock_with_tracer():
    from repro.utils.timing import Timer

    clock = VirtualClock(tick=0.5)
    tracer = Tracer(clock=clock)
    timer = Timer(clock=clock)
    with timer:
        with tracer.span("work"):
            pass
    (span,) = tracer.finished()
    assert span.duration == 0.5
    assert timer.elapsed == 1.5  # timer read + 2 span reads + timer read


# -- CLI -----------------------------------------------------------------------


@pytest.mark.slow
def test_cli_trace_cppcg_emits_valid_traces(tmp_path, capsys):
    from repro.cli.main import main
    from repro.physics.deck import CROOKED_PIPE_DECK

    deck = tmp_path / "tea.in"
    deck.write_text(CROOKED_PIPE_DECK.format(n=24))
    out = tmp_path / "trace"
    rc = main(["trace", "--deck", str(deck), "--solver", "cppcg",
               "--out", str(out), "--virtual-clock"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "converged" in text and "span" in text
    jsonl = (out / "trace.jsonl").read_text().splitlines()
    assert jsonl
    records = [json.loads(line) for line in jsonl]
    assert {"iteration", "cheby_step", "allreduce"} <= \
        {r["name"] for r in records}
    doc = json.loads((out / "trace.chrome.json").read_text())
    assert doc["traceEvents"]


# -- hygiene: the observe package passes the repo's own linter ----------------


def test_observe_package_is_lint_clean():
    from pathlib import Path

    from repro.analysis import analyze_paths

    pkg = Path(__file__).resolve().parents[1] / "src" / "repro" / "observe"
    result = analyze_paths([pkg])
    assert [f.code for f in result.findings] == []
