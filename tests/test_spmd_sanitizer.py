"""Tests for the runtime SPMD sanitizer (:mod:`repro.comm.sanitize`).

Every divergence scenario here would deadlock a plain MPI program; the
sanitizer must instead fail *fast* with a structured
:class:`SanitizerError` naming the offending call-sites.  The
transparency half proves the off-path cost is zero: a solve under the
sanitizer is bit-identical, event-count-identical and contract-exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import (
    InstrumentedComm,
    SanitizerComm,
    SanitizerError,
    SanitizerState,
    SerialComm,
    launch_spmd,
)

pytestmark = pytest.mark.distributed


def sanitized(comm, state, **kwargs):
    return SanitizerComm(comm, state=state, **kwargs)


# -- collective fingerprint cross-check ----------------------------------------


class TestCollectiveFingerprints:
    def test_matching_collectives_pass(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            total = c.allreduce(float(c.rank + 1))
            c.barrier()
            return total

        assert launch_spmd(rank_main, 2) == [3.0, 3.0]

    def test_divergent_kinds_fail_fast_naming_both_sites(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            if c.rank == 0:
                return c.allreduce(1.0)  # repro: ignore[RPR009]
            return c.bcast(None)  # repro: ignore[RPR009]

        with pytest.raises(SanitizerError) as exc:
            launch_spmd(rank_main, 2)
        msg = str(exc.value)
        assert "divergent collectives" in msg
        assert "allreduce" in msg and "bcast" in msg
        # Both offending call-sites are named with file:line provenance.
        assert msg.count("test_spmd_sanitizer.py") == 2

    def test_divergent_reduce_op_detected(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            op = "sum" if c.rank == 0 else "max"
            return c.allreduce(1.0, op)

        with pytest.raises(SanitizerError, match="op=sum"):
            launch_spmd(rank_main, 2)

    def test_divergent_payload_shape_detected(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            x = np.ones(4 if c.rank == 0 else 5)
            return c.allreduce(x)

        with pytest.raises(SanitizerError, match="divergent collectives"):
            launch_spmd(rank_main, 2)

    def test_root_switched_bcast_is_legal(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            payload = {"v": 42} if c.rank == 0 else None
            return c.bcast(payload)

        assert launch_spmd(rank_main, 2) == [{"v": 42}, {"v": 42}]

    def test_skipped_collective_trips_watchdog(self):
        state = SanitizerState(2, collective_timeout=1.0)

        def rank_main(comm):
            c = sanitized(comm, state)
            if c.rank == 1:
                return None  # never posts the barrier
            c.barrier()  # repro: ignore[RPR009]
            return None

        with pytest.raises(SanitizerError) as exc:
            launch_spmd(rank_main, 2)
        msg = str(exc.value)
        assert "deadlock watchdog" in msg
        assert "rank 0: in collective barrier" in msg
        assert "rank 1:" in msg


# -- p2p epoch tracking and deadlock enrichment --------------------------------


class TestPointToPoint:
    def test_matched_sends_and_recvs_pass(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            peer = 1 - c.rank
            c.send(np.full(3, float(c.rank)), peer, 5)
            got = c.recv(peer, 5)
            c.barrier()
            return float(got[0])

        assert launch_spmd(rank_main, 2) == [1.0, 0.0]
        state.check_quiescent()

    def test_write_epoch_race_names_both_sites(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state, p2p_timeout=2.0)
            if c.rank == 0:
                c.send(1.0, 1, 5)
                c.send(2.0, 1, 5)  # overlaps the undrained send above
                c.send(0.0, 1, 99)
                return None
            return c.recv(0, 99)  # never drains tag 5

        with pytest.raises(SanitizerError) as exc:
            launch_spmd(rank_main, 2)
        msg = str(exc.value)
        assert "write-epoch race" in msg
        assert "tag=5" in msg
        assert msg.count("test_spmd_sanitizer.py") == 2

    def test_same_site_resends_are_legal(self):
        # A loop re-sending from one call-site is pipelining, not a race.
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            if c.rank == 0:
                for i in range(4):
                    c.send(float(i), 1, 5)
                return None
            return [c.recv(0, 5) for _ in range(4)]

        assert launch_spmd(rank_main, 2)[1] == [0.0, 1.0, 2.0, 3.0]
        state.check_quiescent()

    def test_mistagged_recv_names_undelivered_send(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state, p2p_timeout=1.0)
            if c.rank == 1:
                c.send("hello", 0, 8)  # tagged 8 ...
                return None
            return c.recv(1, 7)  # ... awaited on 7

        with pytest.raises(SanitizerError) as exc:
            launch_spmd(rank_main, 2)
        msg = str(exc.value)
        assert "deadlock watchdog" in msg
        assert "from rank 1 on tag 8" in msg
        assert "still undelivered" in msg

    def test_crossed_messages_detected(self):
        # Two sends on one channel from one site, received in an order
        # whose payloads no longer match their stamps.
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            if c.rank == 0:
                for payload in (np.ones(3), 2.5):
                    c.send(payload, 1, 5)
                return None
            first = c.recv(0, 5)
            second = c.recv(0, 5)
            return first, second

        # FIFO mailboxes deliver in order here, so this passes — the
        # stamp check is exercised by the unit test below instead.
        out = launch_spmd(rank_main, 2)
        assert isinstance(out[1][0], np.ndarray)
        state.check_quiescent()

    def test_stamp_mismatch_unit(self):
        state = SanitizerState(1)
        state.record_send(0, 0, 5, np.ones(3), "a.py:1")
        with pytest.raises(SanitizerError, match="crossed message"):
            state.record_recv(0, 0, 5, 2.5, "a.py:2")

    def test_quiescence_check_reports_orphans(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            if c.rank == 0:
                c.send(1.0, 1, 3)  # never received
            c.barrier()
            return None

        launch_spmd(rank_main, 2)
        with pytest.raises(SanitizerError) as exc:
            state.check_quiescent()
        msg = str(exc.value)
        assert "orphaned" in msg
        assert "src=0 dst=1 tag=3" in msg

    def test_irecv_wait_completes_and_records(self):
        state = SanitizerState(2)

        def rank_main(comm):
            c = sanitized(comm, state)
            peer = 1 - c.rank
            req = c.irecv(peer, 9)
            c.send(f"msg-{c.rank}", peer, 9)
            return req.wait()

        assert launch_spmd(rank_main, 2) == ["msg-1", "msg-0"]
        state.check_quiescent()


# -- transparency --------------------------------------------------------------


class TestTransparency:
    @staticmethod
    def _solve(wrap):
        from repro.mesh import Field, decompose
        from repro.solvers import StencilOperator2D, cg_solve
        from repro.testing import crooked_pipe_system
        from repro.utils import EventLog

        grid, kxg, kyg, bg = crooked_pipe_system(16)
        log = EventLog()
        comm = InstrumentedComm(SerialComm(), log)
        if wrap:
            comm = SanitizerComm(comm)
        tile = decompose(grid, 1)[0]
        op = StencilOperator2D.from_global_faces(tile, 1, kxg, kyg, comm,
                                                 events=log)
        b = Field.from_global(tile, 1, bg)
        result = cg_solve(op, b, eps=1e-300, max_iters=12)
        counts = dict(log.as_dict())
        if wrap:
            comm.check_quiescent()
        return result, counts

    def test_sanitizer_is_bit_identical_and_event_silent(self):
        plain, plain_counts = self._solve(wrap=False)
        wrapped, wrapped_counts = self._solve(wrap=True)
        assert wrapped.iterations == plain.iterations
        assert np.array_equal(wrapped.x.data, plain.x.data)
        assert wrapped_counts == plain_counts

    def test_sanitizer_delegates_unknown_attributes(self):
        from repro.utils import EventLog

        log = EventLog()
        comm = SanitizerComm(InstrumentedComm(SerialComm(), log))
        assert comm.events is log

    def test_verify_contracts_sanitized_cg(self):
        from repro.analysis import verify_contracts

        reports = verify_contracts(n=24, names=["cg"], sanitize=True)
        assert len(reports) == 1
        assert reports[0].ok
        assert "sanitized" in reports[0].detail
        assert "residual replacement" in reports[0].detail

    def test_state_size_must_match_world(self):
        from repro.utils.errors import CommunicationError

        with pytest.raises(CommunicationError, match="sized for 3"):
            SanitizerComm(SerialComm(), state=SanitizerState(3))
