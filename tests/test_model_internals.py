"""White-box tests of predictor internals and remaining edge cases."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm import launch_spmd
from repro.mesh import Grid2D, decompose
from repro.perfmodel import TITAN, SPRUCE, SolverConfig
from repro.perfmodel.predict import (
    _Coster,
    _ext_cells,
    _neighbor_intra,
    _representative_tile,
    predict_solve_time,
)
from repro.solvers import StencilOperator2D, cg_solve
from repro.utils import ConvergenceError

from tests.helpers import crooked_pipe_system, serial_operator

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestPredictorInternals:
    def test_representative_tile_is_interior(self):
        g = Grid2D(4000, 4000)
        tile = _representative_tile(g, 64)
        assert tile.n_neighbors == 4  # interior: max communication load

    def test_representative_tile_small_worlds(self):
        g = Grid2D(100, 100)
        t1 = _representative_tile(g, 1)
        assert t1.n_neighbors == 0
        t2 = _representative_tile(g, 2)
        assert t2.n_neighbors == 1

    def test_ext_cells_formula(self):
        g = Grid2D(64, 64)
        tile = decompose(g, 16, factors=(4, 4))[5]  # interior tile
        assert _ext_cells(tile, 0) == tile.n_cells
        assert _ext_cells(tile, 2) == (tile.ny + 4) * (tile.nx + 4)
        corner = decompose(g, 16, factors=(4, 4))[0]
        assert _ext_cells(corner, 2) == (corner.ny + 2) * (corner.nx + 2)

    def test_neighbor_intra_classification(self):
        # 4x4 rank grid, 4 ranks per node: row-major rank -> node mapping
        g = Grid2D(64, 64)
        tile = decompose(g, 16, factors=(4, 4))[5]  # rank 5: cx=1, cy=1
        intra = _neighbor_intra(tile, ranks_per_node=4)
        # left neighbour is rank 4 (same node 1), right is 6 (node 1)
        assert intra["left"] and intra["right"]
        # up/down neighbours are ranks 1 and 9 (nodes 0 and 2)
        assert not intra["up"] and not intra["down"]

    def test_gpu_one_rank_per_node_all_inter(self):
        g = Grid2D(4000, 4000)
        tile = _representative_tile(g, 64)
        intra = _neighbor_intra(tile, ranks_per_node=1)
        assert not any(intra.values())

    def test_coster_halo_grows_with_depth_and_fields(self):
        g = Grid2D(4000, 4000)
        tile = _representative_tile(g, 64)
        c = _Coster(TITAN, tile, nodes=64, ranks=64, ranks_per_node=1)
        t1 = c.halo(1, 1)
        t8 = c.halo(8, 1)
        t8x2 = c.halo(8, 2)
        assert t1 < t8 < t8x2

    def test_predicted_time_str(self):
        p = predict_solve_time(TITAN, SolverConfig("cg"), 4000, 64,
                               outer_iters=100.0)
        assert "Titan" in str(p) and "nodes=64" in str(p)

    def test_ranks_per_node_default_from_machine(self):
        p = predict_solve_time(SPRUCE, SolverConfig("cg"), 4000, 4,
                               outer_iters=100.0)
        assert p.ranks == 8  # Spruce default: 2 ranks/node


class TestFailureInjection:
    def test_cg_breakdown_on_indefinite_operator(self):
        """Negative face coefficients make A indefinite: loud breakdown."""
        n = 8
        kx = np.zeros((n, n + 1))
        ky = np.zeros((n + 1, n))
        kx[:, 1:n] = -2.0  # destroys diagonal dominance and SPD-ness
        op = serial_operator(Grid2D(n, n), kx, ky)
        from repro.mesh import Field
        rng = np.random.default_rng(1)
        b = Field.from_global(op.tile, 1, rng.standard_normal((n, n)))
        with pytest.raises(ConvergenceError, match="breakdown"):
            cg_solve(op, b, eps=1e-10)

    def test_spmd_multiple_failures_report_lowest_rank(self):
        def rank_main(comm):
            raise ValueError(f"boom-{comm.rank}")

        with pytest.raises(ValueError, match=r"\[rank 0\] boom-0"):
            launch_spmd(rank_main, 3)

    def test_simulation_distributed_failure_propagates(self):
        from repro.physics import crooked_pipe, run_simulation
        from repro.solvers import SolverOptions
        with pytest.raises(ConvergenceError):
            run_simulation(Grid2D(32, 32), crooked_pipe(),
                           SolverOptions(solver="cg", eps=1e-13, max_iters=2),
                           n_steps=1, nranks=4)


class TestCommProperties:
    @given(size=st.integers(2, 6), seed=st.integers(0, 2 ** 31 - 1),
           op=st.sampled_from(["sum", "max", "min", "prod"]))
    @settings(max_examples=15, **COMMON)
    def test_allreduce_agrees_with_numpy(self, size, seed, op):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.5, 2.0, size)

        def rank_main(comm):
            return comm.allreduce(float(values[comm.rank]), op=op)

        out = launch_spmd(rank_main, size)
        expect = {"sum": np.sum, "max": np.max, "min": np.min,
                  "prod": np.prod}[op](values)
        for v in out:
            assert v == pytest.approx(expect, rel=1e-12)

    @given(size=st.integers(2, 5), rounds=st.integers(1, 8))
    @settings(max_examples=10, **COMMON)
    def test_interleaved_p2p_and_collectives(self, size, rounds):
        def rank_main(comm):
            acc = 0.0
            for i in range(rounds):
                peer = (comm.rank + 1) % comm.size
                src = (comm.rank - 1) % comm.size
                if peer != comm.rank:
                    comm.send(comm.rank + i, dest=peer, tag=i)
                    acc += comm.recv(source=src, tag=i)
                acc = comm.allreduce(acc)
            return acc

        out = launch_spmd(rank_main, size)
        assert len(set(out)) == 1  # all ranks agree

    @given(nranks=st.integers(1, 32), nx=st.integers(16, 128),
           ny=st.integers(16, 128), nz=st.integers(16, 128))
    @settings(max_examples=30, **COMMON)
    def test_choose_factors_3d_optimal(self, nranks, nx, ny, nz):
        from repro.mesh import choose_factors_3d
        px, py, pz = choose_factors_3d(nranks, nx, ny, nz)
        assert px * py * pz == nranks
        cut = (px - 1) * ny * nz + (py - 1) * nx * nz + (pz - 1) * nx * ny
        for qx in range(1, nranks + 1):
            if nranks % qx:
                continue
            for qy in range(1, nranks // qx + 1):
                if (nranks // qx) % qy:
                    continue
                qz = nranks // qx // qy
                alt = ((qx - 1) * ny * nz + (qy - 1) * nx * nz
                       + (qz - 1) * nx * ny)
                assert cut <= alt


class TestMiscEdges:
    def test_summary_reports_unconverged(self):
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky)
        from repro.mesh import Field
        b = Field.from_global(op.tile, 1, bg)
        result = cg_solve(op, b, eps=1e-13, max_iters=2)
        assert "NOT converged" in result.summary()

    def test_render_width_clamped_to_mesh(self):
        from repro.io import render_heatmap
        art = render_heatmap(np.ones((4, 4)) * 2.0, width=100)
        assert all(len(line) == 4 for line in art.splitlines())

    def test_deck_circle_missing_key(self):
        from repro.physics import parse_deck_text
        from repro.utils import ConfigurationError
        with pytest.raises(ConfigurationError):
            parse_deck_text(
                "*tea\nstate 1 density=1 energy=1\n"
                "state 2 density=1 energy=1 geometry=circle xcentre=1\n"
                "*endtea")

    def test_options_chebyshev_required_halo(self):
        from repro.solvers import SolverOptions
        assert SolverOptions(solver="chebyshev",
                             halo_depth=6).required_field_halo == 6
