"""Property-based tests for the 3D distributed structures."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm import SerialComm, launch_spmd
from repro.mesh import Field3D, Grid3D, HaloExchanger3D, decompose3d
from repro.physics import face_coefficients_3d
from repro.solvers import DistributedOperator3D
from repro.solvers.dim3 import StencilOperator3D

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def grids_3d(draw, max_n=10):
    nx = draw(st.integers(4, max_n))
    ny = draw(st.integers(4, max_n))
    nz = draw(st.integers(4, max_n))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    return nx, ny, nz, seed


class TestHalo3DProperties:
    @given(
        params=grids_3d(max_n=12),
        nranks=st.sampled_from([2, 4, 6, 8]),
        depth=st.integers(1, 2),
    )
    @settings(max_examples=12, **COMMON)
    def test_exchange_reproduces_global_windows(self, params, nranks, depth):
        nx, ny, nz, seed = params
        g = Grid3D(nx, ny, nz)
        tiles = decompose3d(g, nranks)
        if min(min(t.nx, t.ny, t.nz) for t in tiles) < depth:
            return
        rng = np.random.default_rng(seed)
        glob = rng.standard_normal(g.shape)

        def rank_main(comm):
            t = decompose3d(g, comm.size)[comm.rank]
            f = Field3D.from_global(t, depth, glob)
            HaloExchanger3D(comm).exchange(f, depth=depth)
            ext = t.extension(depth)
            want = glob[t.z0 - ext["back"]:t.z1 + ext["front"],
                        t.y0 - ext["down"]:t.y1 + ext["up"],
                        t.x0 - ext["left"]:t.x1 + ext["right"]]
            assert np.array_equal(f.data[f.region(ext)], want)
            return True

        assert all(launch_spmd(rank_main, nranks))


class TestOperator3DProperties:
    @given(params=grids_3d(max_n=8))
    @settings(max_examples=15, **COMMON)
    def test_symmetry_and_constant_invariance(self, params):
        nx, ny, nz, seed = params
        rng = np.random.default_rng(seed)
        g = Grid3D(nx, ny, nz)
        kappa = rng.uniform(0.1, 5.0, g.shape)
        kx, ky, kz = face_coefficients_3d(kappa, 0.7, 0.5, 0.3)
        t = decompose3d(g, 1)[0]
        op = DistributedOperator3D.from_global_faces(t, 1, kx, ky, kz,
                                                     SerialComm())
        u = Field3D.from_global(t, 1, rng.standard_normal(g.shape))
        v = Field3D.from_global(t, 1, rng.standard_normal(g.shape))
        Au, Av = op.new_field(), op.new_field()
        op.apply(u, Au)
        op.apply(v, Av)
        assert op.dot(Au, v) == pytest.approx(op.dot(u, Av),
                                              rel=1e-10, abs=1e-10)
        ones = Field3D.from_global(t, 1, np.ones(g.shape))
        Aones = op.new_field()
        op.apply(ones, Aones)
        assert np.allclose(Aones.interior, 1.0, atol=1e-12)

    @given(params=grids_3d(max_n=7))
    @settings(max_examples=10, **COMMON)
    def test_matvec_matches_sparse(self, params):
        nx, ny, nz, seed = params
        rng = np.random.default_rng(seed)
        g = Grid3D(nx, ny, nz)
        kappa = rng.uniform(0.1, 5.0, g.shape)
        kx, ky, kz = face_coefficients_3d(kappa, 0.7, 0.5, 0.3)
        A = StencilOperator3D(kx=kx, ky=ky, kz=kz).to_sparse()
        x = rng.standard_normal(g.shape)
        t = decompose3d(g, 1)[0]
        op = DistributedOperator3D.from_global_faces(t, 1, kx, ky, kz,
                                                     SerialComm())
        p = Field3D.from_global(t, 1, x)
        w = op.new_field()
        op.apply(p, w)
        assert np.allclose(w.interior.ravel(), A @ x.ravel(),
                           rtol=1e-10, atol=1e-10)

    @given(nranks=st.sampled_from([2, 4, 8]), params=grids_3d(max_n=10))
    @settings(max_examples=8, **COMMON)
    def test_distributed_dot_decomposition_invariant(self, nranks, params):
        nx, ny, nz, seed = params
        g = Grid3D(nx, ny, nz)
        if min(g.shape) < 2:
            return
        rng = np.random.default_rng(seed)
        glob = rng.standard_normal(g.shape)
        expect = float(np.sum(glob * glob))

        def rank_main(comm):
            t = decompose3d(g, comm.size)[comm.rank]
            f = Field3D.from_global(t, 1, glob)
            return comm.allreduce(f.local_dot(f))

        for v in launch_spmd(rank_main, nranks):
            assert v == pytest.approx(expect, rel=1e-12)
