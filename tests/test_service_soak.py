"""The service durability soak (``repro.harness.service_soak``).

The acceptance gates of the crash-consistent service: a campaign that is
SIGKILLed at seeded points (some mid journal frame) and restarted until
it completes must end byte-identical to an uninterrupted same-seed run —
outcomes, journal record stream and ledger — with zero lost
acknowledgements and zero duplicate solves for journaled idempotency
keys.  The journal-order audit and ledger plumbing get fast unit tests;
the kill/restart campaign itself is the slow end-to-end gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness import service_soak
from repro.service import STATUSES


class TestWorkload:
    def test_generation_is_seeded(self):
        a = service_soak.generate_soak_requests(5, 20)
        b = service_soak.generate_soak_requests(5, 20)
        assert a == b
        assert a != service_soak.generate_soak_requests(6, 20)

    def test_mix_covers_the_durability_surfaces(self):
        requests = service_soak.generate_soak_requests(424243, 30)
        assert any("tl_checkpoint_interval" in r.deck_text
                   for r in requests)          # mid-solve resumable
        assert any(r.chaos_trial >= 0 for r in requests)
        assert any(r.idempotency_key for r in requests)
        keys = [r.idempotency_key for r in requests if r.idempotency_key]
        assert len(set(keys)) < len(keys)      # keys actually repeat
        # ~5% poison decks (none land in the small pinned workload)
        bigger = service_soak.generate_soak_requests(424243, 200)
        assert any("tl_eps=-1" in r.deck_text for r in bigger)
        # Chaos never mixes with resumable checkpointing: fault-plan
        # injection is op-indexed and exact resume must not shift it.
        assert not any(r.chaos_trial >= 0
                       and "tl_checkpoint_interval" in r.deck_text
                       for r in bigger)


class TestJournalAudit:
    TERMINAL = {"type": "terminal", "request_id": "r1",
                "status": "completed", "key": "k", "digest": "d"}

    def test_lost_acknowledgement_detected(self):
        audit = service_soak._audit_journal([self.TERMINAL], {})
        assert any("lost acknowledged" in v for v in audit)

    def test_changed_acknowledgement_detected(self):
        outcomes = {"r1": {"request_id": "r1", "status": "failed"}}
        audit = service_soak._audit_journal([self.TERMINAL], outcomes)
        assert any("acknowledgement changed" in v for v in audit)

    def test_duplicate_solve_after_ack_detected(self):
        records = [
            self.TERMINAL,
            {"type": "accepted", "request_id": "r2", "key": "k"},
        ]
        outcomes = {"r1": {"request_id": "r1", "status": "completed"}}
        audit = service_soak._audit_journal(records, outcomes)
        assert any("re-admitted" in v for v in audit)

    def test_concurrent_bearers_before_ack_are_legal(self):
        records = [
            {"type": "accepted", "request_id": "r1", "key": "k"},
            {"type": "accepted", "request_id": "r2", "key": "k"},
            self.TERMINAL,
            {"type": "dedup", "request_id": "r3", "key": "k",
             "source": "r1"},
        ]
        outcomes = {"r1": {"request_id": "r1", "status": "completed"}}
        assert service_soak._audit_journal(records, outcomes) == []

    def test_dispatched_dedup_detected(self):
        records = [
            {"type": "dedup", "request_id": "r2", "key": "k",
             "source": "r1"},
            {"type": "dispatched", "request_id": "r2", "attempt": 1},
        ]
        audit = service_soak._audit_journal(records, {})
        assert any("dispatched anyway" in v for v in audit)


class TestLedgerIO:
    def test_naming_and_pinning(self, tmp_path):
        result = service_soak.ServiceSoakResult(
            seed=1, kill_seed=2, requests=3, config={})
        result.oracle = {"checked": 0, "skipped": 0, "violations": 0}
        path = service_soak.write_ledger(result, tmp_path)
        assert path.name == "SOAK_SERVICE_0.json"
        assert service_soak.next_ledger_path(tmp_path).name == \
            "SOAK_SERVICE_1.json"
        pinned = service_soak.write_ledger(result, tmp_path, index=10)
        assert pinned.name == "SOAK_SERVICE_10.json"
        data = json.loads(pinned.read_text())
        assert data["schema"] == service_soak.SCHEMA

    def test_ledger_excludes_runtime_recovery_stats(self):
        result = service_soak.ServiceSoakResult(
            seed=1, kill_seed=2, requests=0, config={},
            runtime={"kills": 7})
        assert "runtime" not in result.to_dict()
        assert "kills" not in json.dumps(result.to_dict())


@pytest.mark.slow
class TestKillRestartCampaign:
    """The end-to-end durability gate (real SIGKILLs, subprocess child)."""

    SEED = 424243
    KILL_SEED = 7
    COUNT = 14

    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        return service_soak.run_service_soak(
            self.SEED, self.COUNT, kill_seed=self.KILL_SEED,
            work_dir=tmp_path_factory.mktemp("soak"))

    def test_campaign_was_actually_killed(self, result):
        assert result.runtime["kills"] >= 1
        assert result.runtime["cycles"] == result.runtime["kills"] + 1

    def test_recovered_run_matches_golden(self, result):
        assert result.checks["outcomes_match_golden"]
        assert result.checks["journal_matches_golden"]
        assert result.checks["lost_acknowledged"] == 0
        assert result.checks["duplicate_solves"] == 0
        assert result.violations == [] and result.passed

    def test_oracle_checked_served_solutions(self, result):
        assert result.oracle["violations"] == 0
        assert result.oracle["checked"] > 0

    def test_every_outcome_classified(self, result):
        assert len(result.outcomes) == self.COUNT
        assert all(o["status"] in STATUSES for o in result.outcomes)

    def test_replay_skipped_journaled_work(self, result):
        assert result.runtime["recovery"]["replayed_attempts"] > 0

    def test_render_summarises(self, result):
        out = service_soak.render(result)
        assert "PASS" in out and "kills=" in out


@pytest.mark.slow
def test_committed_ledger_matches_regeneration(tmp_path):
    """The committed SOAK_SERVICE_10.json is exactly what its pinned
    seeds regenerate — crash-placement byte-invariance as a test gate."""
    pinned = Path(__file__).resolve().parents[1] / "SOAK_SERVICE_10.json"
    data = json.loads(pinned.read_text())
    fresh = service_soak.run_service_soak(
        data["seed"], data["requests"], kill_seed=data["kill_seed"],
        work_dir=tmp_path)
    assert fresh.to_json() + "\n" == pinned.read_text()
