"""Tests: the time-breakdown study (the quantitative knee story)."""

import pytest

from repro.harness.breakdown import CATEGORIES, run_breakdown
from repro.perfmodel import SPRUCE, TITAN, SolverConfig


class TestBreakdown:
    @pytest.fixture(scope="class")
    def cg(self):
        return run_breakdown(TITAN, SolverConfig("cg"))

    def test_categories_complete(self, cg):
        assert set(cg.seconds) == set(CATEGORIES)
        totals = cg.totals()
        assert all(t > 0 for t in totals)

    def test_shares_sum_to_one(self, cg):
        for n in cg.node_counts:
            assert sum(cg.share(c, n) for c in CATEGORIES) == \
                pytest.approx(1.0)

    def test_compute_dominates_small_scale(self, cg):
        assert cg.dominant(1) == "compute"
        assert cg.share("compute", 1) > 0.95

    def test_latency_dominates_at_scale(self, cg):
        """The knee mechanism: allreduce overtakes compute for CG."""
        assert cg.dominant(8192) == "allreduce"
        assert cg.share("allreduce", 8192) > cg.share("allreduce", 1)

    def test_cppcg_shifts_dominance_off_network(self):
        pp = run_breakdown(TITAN, SolverConfig("ppcg", inner_steps=10,
                                               halo_depth=16))
        cg = run_breakdown(TITAN, SolverConfig("cg"))
        assert pp.share("allreduce", 8192) < cg.share("allreduce", 8192)

    def test_mgcg_coarse_term_appears(self):
        amg = run_breakdown(SPRUCE, SolverConfig("mgcg"),
                            node_counts=[1, 64, 1024], ranks_per_node=20)
        assert amg.seconds["coarse"][0] > 0
        assert amg.seconds["setup"][0] > 0
        # coarse/gather share grows with scale
        assert amg.share("coarse", 1024) > amg.share("coarse", 1)

    def test_to_text_and_main(self, cg, capsys):
        text = cg.to_text()
        assert "compute_%" in text
        from repro.harness.breakdown import main
        out = main()
        assert "knee" in out
