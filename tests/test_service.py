"""Tests for the multi-tenant solve service (:mod:`repro.service`).

Covers the admission/backpressure parts (token buckets, bounded queue),
the circuit breaker state machine, the LRU setup cache (including
corruption-safe invalidation), the degradation ladder, the deterministic
engine's outcome classification, and the asyncio front-end.
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.physics.deck import CROOKED_PIPE_DECK
from repro.service import (
    CircuitBreaker,
    ServiceConfig,
    ServiceEngine,
    SetupCache,
    SolveRequest,
    SolveService,
    TokenBucket,
    WorkerGroup,
    degrade_for_pressure,
    fingerprint,
)
from repro.solvers import SolverOptions
from repro.solvers.driver import SolveSetup


def _deck(n=12, solver="use_cg", extra=""):
    text = CROOKED_PIPE_DECK.format(n=n).replace("use_ppcg", solver)
    if extra:
        text = text.replace("*endtea", extra + "\n*endtea")
    return text


# -- admission control ---------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)      # burst exhausted
        assert not bucket.try_acquire(0.05)     # half a token back: still no
        assert bucket.try_acquire(0.1)          # one token refilled
        assert bucket.granted == 3 and bucket.rejected == 2

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        for _ in range(3):
            assert bucket.try_acquire(1000.0)
        assert not bucket.try_acquire(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3, cooldown_s=1.0)
        for t in (0.0, 0.1, 0.2):
            assert b.allow(t)
            b.record_failure(t)
        assert b.state == "open" and b.opened == 1
        assert not b.allow(0.5)

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
        b.record_failure(0.0)
        b.record_success()
        b.record_failure(0.1)
        assert b.state == "closed"

    def test_half_open_probe_then_reclose(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        b.record_failure(0.0)
        assert b.state == "open"
        assert b.allow(1.5)                     # cooldown elapsed: probe
        assert b.state == "half_open"
        b.on_dispatch()
        assert not b.allow(1.6)                 # single probe in flight
        b.record_success()
        assert b.state == "closed" and b.reclosed == 1

    def test_failed_probe_reopens(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        b.record_failure(0.0)
        assert b.allow(1.5)
        b.on_dispatch()
        b.record_failure(1.6)
        assert b.state == "open" and b.opened == 2


# -- setup cache ---------------------------------------------------------------


class TestSetupCache:
    def _setup(self, lo=1.0, hi=5.0):
        from repro.solvers.eigen import EigenBounds
        return SolveSetup(bounds=EigenBounds(lo, hi))

    def test_hit_miss_and_lru_eviction(self):
        cache = SetupCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", self._setup())
        cache.put("b", self._setup())
        assert cache.get("a") is not None       # refreshes a's recency
        cache.put("c", self._setup())           # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3 and stats["misses"] == 2

    def test_corruption_detected_and_invalidated(self):
        """A cached entry mutated behind the cache's back fails its
        fingerprint check: the entry is dropped (a miss, counted as
        corruption), never served."""
        cache = SetupCache(max_entries=4)
        setup = self._setup()
        cache.put("k", setup)
        assert cache.get("k") is setup
        object.__setattr__(setup.bounds, "lam_max", 99.0)  # corrupt in place
        assert cache.get("k") is None
        assert cache.stats()["corruptions"] == 1
        assert cache.get("k") is None           # gone for good

    def test_invalidate(self):
        cache = SetupCache()
        cache.put("k", self._setup())
        cache.invalidate("k")
        assert cache.get("k") is None

    def test_fingerprint_distinguishes_values(self):
        assert fingerprint(self._setup()) != fingerprint(self._setup(hi=6.0))
        assert fingerprint(self._setup()) == fingerprint(self._setup())


# -- degradation ladder --------------------------------------------------------


class TestDegradeLadder:
    def test_depth_then_solver_then_backend(self):
        opts = SolverOptions(solver="ppcg", halo_depth=4,
                             kernel_backend="fused")
        d1, steps = degrade_for_pressure(opts, 1)
        assert steps == ["depth1"] and d1.halo_depth == 1
        assert d1.solver == "ppcg"
        d2, steps = degrade_for_pressure(opts, 2)
        assert steps == ["depth1", "cg"] and d2.solver == "cg"
        d3, steps = degrade_for_pressure(opts, 3)
        assert steps == ["depth1", "cg", "numpy"]
        assert d3.kernel_backend == "numpy"

    def test_rungs_skip_when_not_applicable(self):
        opts = SolverOptions(solver="cg")
        same, steps = degrade_for_pressure(opts, 3)
        assert steps == [] and same == opts

    def test_level_zero_is_identity(self):
        opts = SolverOptions(solver="ppcg", halo_depth=4)
        out, steps = degrade_for_pressure(opts, 0)
        assert out is opts and steps == []


# -- deterministic engine ------------------------------------------------------


def _req(i, deck, *, arrival=None, **kw):
    return SolveRequest(request_id=f"r{i:03d}", tenant=kw.pop("tenant", "t"),
                        arrival_s=arrival if arrival is not None else i * 0.1,
                        deck_text=deck, n=kw.pop("n", 12), **kw)


class TestServiceEngine:
    CFG = ServiceConfig(workers=2, group_size=1, max_queue=4,
                        quota_rate=100.0, quota_burst=50.0)

    def test_mixed_classification(self):
        reqs = [
            _req(0, _deck()),
            _req(1, _deck(), deadline_s=1e-5),          # too tight
            _req(2, _deck(), cancel_after_s=1e-4),      # client cancel
            _req(3, "*tea\nbogus=1\n*endtea\n"),        # poison
            _req(4, _deck()),
        ]
        outcomes = ServiceEngine(self.CFG).run(reqs)
        by_id = {o.request_id: o for o in outcomes}
        assert by_id["r000"].status == "completed"
        assert by_id["r001"].status == "deadline_exceeded"
        assert by_id["r002"].status == "cancelled"
        assert by_id["r003"].status == "failed"
        assert by_id["r003"].error_class == "ConfigurationError"
        assert by_id["r004"].status == "completed"
        assert by_id["r000"].iterations > 0
        assert by_id["r000"].x is not None

    def test_quota_sheds_heavy_hitter_only(self):
        cfg = dataclasses.replace(self.CFG, quota_rate=10.0, quota_burst=2.0)
        reqs = [_req(i, _deck(), tenant="hog", arrival=i * 1e-4)
                for i in range(5)]
        reqs.append(_req(9, _deck(), tenant="quiet", arrival=4e-4))
        outcomes = ServiceEngine(cfg).run(reqs)
        hog = [o for o in outcomes if o.tenant == "hog"]
        assert sum(o.status == "shed" for o in hog) == 3
        assert all(o.shed_reason == "quota"
                   for o in hog if o.status == "shed")
        (quiet,) = [o for o in outcomes if o.tenant == "quiet"]
        assert quiet.status == "completed"

    def test_queue_overflow_sheds(self):
        cfg = dataclasses.replace(self.CFG, max_queue=2, workers=1)
        reqs = [_req(i, _deck(n=16), arrival=i * 1e-6) for i in range(8)]
        outcomes = ServiceEngine(cfg).run(reqs)
        shed = [o for o in outcomes if o.status == "shed"]
        assert shed and all(o.shed_reason == "queue_full" for o in shed)
        assert any(o.status == "completed" for o in outcomes)

    def test_pressure_degrades_ppcg_and_marks_outcome(self):
        cfg = dataclasses.replace(self.CFG, workers=1, max_queue=6,
                                  degrade_low=0.25, degrade_high=0.5)
        deck = _deck(solver="use_ppcg", extra="tl_eigen_warmup_iters=8\n"
                     "tl_ppcg_halo_depth=4")
        reqs = [_req(i, deck, arrival=i * 1e-6) for i in range(6)]
        outcomes = ServiceEngine(cfg).run(reqs)
        degraded = [o for o in outcomes if o.status == "degraded"]
        assert degraded, [o.status for o in outcomes]
        assert any("depth1" in o.degrade_steps or "cg" in o.degrade_steps
                   for o in degraded)

    def test_degrade_disabled_never_ladders(self):
        cfg = dataclasses.replace(self.CFG, workers=1, max_queue=6,
                                  degrade_enabled=False,
                                  degrade_low=0.25, degrade_high=0.5)
        deck = _deck(solver="use_ppcg", extra="tl_eigen_warmup_iters=8\n"
                     "tl_ppcg_halo_depth=4")
        reqs = [_req(i, deck, arrival=i * 1e-6) for i in range(6)]
        outcomes = ServiceEngine(cfg).run(reqs)
        assert all(not o.degrade_steps for o in outcomes)

    def test_eigen_bounds_cached_across_requests(self):
        deck = _deck(solver="use_ppcg", extra="tl_eigen_warmup_iters=8")
        reqs = [_req(i, deck) for i in range(4)]
        engine = ServiceEngine(self.CFG)
        outcomes = engine.run(reqs)
        assert [o.cache_hit for o in sorted(outcomes,
                                            key=lambda o: o.request_id)] == \
            [False, True, True, True]
        stats = engine.cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 3

    def test_cache_disabled_never_hits(self):
        cfg = dataclasses.replace(self.CFG, cache_enabled=False)
        deck = _deck(solver="use_ppcg", extra="tl_eigen_warmup_iters=8")
        engine = ServiceEngine(cfg)
        outcomes = engine.run([_req(i, deck) for i in range(3)])
        assert all(not o.cache_hit for o in outcomes)

    def test_retryable_failure_redispatches_to_other_worker(self):
        """A retryable worker failure (crash / exhausted comm budget)
        re-dispatches with backoff, hedged away from the failed worker,
        and the retry completes."""
        from repro.service.worker import ExecutionResult
        from repro.utils.errors import CommunicationError

        engine = ServiceEngine(self.CFG)
        engine.workers[0].execute = \
            lambda *a, **kw: ExecutionResult(
                kind="retryable", error=CommunicationError("rank 1 died"))
        (outcome,) = engine.run([_req(0, _deck(), max_attempts=3)])
        assert outcome.status == "completed"
        assert outcome.attempts == 2
        assert outcome.worker == 1              # hedged off worker 0

    def test_retry_exhaustion_is_structured_failure(self):
        from repro.service.worker import ExecutionResult
        from repro.utils.errors import CommunicationError

        cfg = dataclasses.replace(self.CFG, workers=1)
        engine = ServiceEngine(cfg)
        engine.workers[0].execute = \
            lambda *a, **kw: ExecutionResult(
                kind="retryable", error=CommunicationError("rank 1 died"))
        (outcome,) = engine.run([_req(0, _deck(), max_attempts=2)])
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert outcome.error_class == "CommunicationError"

    def test_breaker_opens_after_repeated_worker_failures(self):
        from repro.service.worker import ExecutionResult
        from repro.utils.errors import CommunicationError

        cfg = dataclasses.replace(self.CFG, workers=2, breaker_threshold=2)
        engine = ServiceEngine(cfg)
        engine.workers[0].execute = \
            lambda *a, **kw: ExecutionResult(
                kind="retryable", error=CommunicationError("flaky"))
        outcomes = engine.run([_req(i, _deck(), max_attempts=3)
                               for i in range(6)])
        assert engine.workers[0].breaker.opened >= 1
        assert all(o.status == "completed" for o in outcomes)

    def test_same_seed_runs_identical(self):
        reqs = [_req(i, _deck(), chaos_trial=i if i % 3 == 0 else -1)
                for i in range(12)]
        a = [o.to_dict() for o in ServiceEngine(self.CFG).run(reqs)]
        b = [o.to_dict() for o in ServiceEngine(self.CFG).run(reqs)]
        assert a == b


# -- worker groups -------------------------------------------------------------


class TestWorkerGroup:
    def test_ok_execution_carries_report(self):
        worker = WorkerGroup(0)
        result = worker.execute(SolverOptions(solver="cg"), 12)
        assert result.kind == "ok" and result.report.converged
        assert result.iterations > 0

    def test_fatal_configuration_is_classified(self):
        worker = WorkerGroup(0)
        result = worker.execute(
            SolverOptions(solver="chebyshev", eigen_warmup_iters=2,
                          max_iters=3), 12)
        assert result.kind in ("fatal", "ok")   # tiny budget: honest fatal
        if result.kind == "fatal":
            assert result.error_class


# -- asyncio front-end ---------------------------------------------------------


class TestSolveServiceFront:
    def test_concurrent_mixed_outcomes(self):
        async def scenario():
            with SolveService(workers=2, quota_rate=100.0,
                              quota_burst=50.0) as svc:
                jobs = [svc.submit(_deck(), tenant="a", n=12)
                        for _ in range(3)]
                jobs.append(svc.submit(_deck(), tenant="a", n=12,
                                       deadline_s=1e-4))
                jobs.append(svc.submit("*tea\nbogus=1\n*endtea\n",
                                       tenant="a"))
                return await asyncio.gather(*jobs)

        outcomes = asyncio.run(scenario())
        statuses = [o.status for o in outcomes]
        assert statuses.count("completed") == 3
        assert statuses[3] == "deadline_exceeded"
        assert statuses[4] == "failed"
        assert outcomes[4].error_class == "ConfigurationError"

    def test_quota_shed_is_structured(self):
        async def scenario():
            with SolveService(workers=1, quota_rate=1.0,
                              quota_burst=1.0) as svc:
                first = await svc.submit(_deck(), tenant="t", n=12)
                second = await svc.submit(_deck(), tenant="t", n=12)
                return first, second

        first, second = asyncio.run(scenario())
        assert first.status in ("completed", "degraded")
        assert second.status == "shed" and second.shed_reason == "quota"


class TestBreakerHalfOpenRace:
    """Regression: two threads passing the half-open gate concurrently.

    Historically ``allow()`` then ``on_dispatch()`` was check-then-act,
    so two pool threads could both claim the single half-open probe and
    stampede a recovering worker.  ``on_dispatch(now)`` is now the
    atomic admit-and-claim; exactly one concurrent dispatcher may win.
    """

    def _half_open_breaker(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        b.record_failure(0.0)
        assert b.state == "open"
        return b

    def test_exactly_one_probe_under_contention(self):
        import threading

        for trial in range(20):
            b = self._half_open_breaker()
            nthreads = 8
            barrier = threading.Barrier(nthreads)
            wins = []

            def dispatcher():
                barrier.wait()          # maximize the collision window
                if b.on_dispatch(2.0):  # past cooldown: half-open
                    wins.append(threading.get_ident())

            threads = [threading.Thread(target=dispatcher)
                       for _ in range(nthreads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(wins) == 1, f"trial {trial}: {len(wins)} probes won"
            assert b.state == "half_open"

    def test_probe_slot_released_on_outcome(self):
        b = self._half_open_breaker()
        assert b.on_dispatch(2.0)
        assert not b.on_dispatch(2.0)       # slot held
        b.record_success()
        assert b.state == "closed" and b.reclosed == 1
        b2 = self._half_open_breaker()
        assert b2.on_dispatch(2.0)
        b2.record_failure(2.1)              # probe failed: re-open
        assert b2.state == "open" and b2.opened == 2
        assert not b2.on_dispatch(2.5)      # still cooling down

    def test_allow_is_a_pure_query(self):
        b = self._half_open_breaker()
        assert b.allow(2.0) and b.allow(2.0)    # no claim, repeatable
        assert b.on_dispatch()                  # legacy no-arg claim
        assert not b.allow(2.0)                 # probe now held
