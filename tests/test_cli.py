"""Integration tests: the command-line interface."""

import numpy as np
import pytest

from repro.cli.main import build_parser, main
from repro.physics.deck import CROOKED_PIPE_DECK


@pytest.fixture
def deck_file(tmp_path):
    p = tmp_path / "tea.in"
    p.write_text(CROOKED_PIPE_DECK.format(n=24))
    return p


class TestParser:
    def test_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "fig5"])
        assert args.name == "fig5"
        args = parser.parse_args(["tealeaf", "--deck", "x.in", "--ranks", "2"])
        assert args.ranks == 2

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTealeafCommand:
    def test_runs_deck(self, deck_file, capsys):
        rc = main(["tealeaf", "--deck", str(deck_file), "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "24x24 mesh" in out
        assert "step    2" in out

    def test_show_and_out(self, deck_file, tmp_path, capsys):
        out_npy = tmp_path / "T.npy"
        rc = main(["tealeaf", "--deck", str(deck_file), "--steps", "1",
                   "--show", "--width", "24", "--out", str(out_npy)])
        assert rc == 0
        field = np.load(out_npy)
        assert field.shape == (24, 24)

    def test_multirank(self, deck_file, capsys):
        rc = main(["tealeaf", "--deck", str(deck_file), "--steps", "1",
                   "--ranks", "2"])
        assert rc == 0
        assert "2 rank(s)" in capsys.readouterr().out


class TestFigureCommand:
    def test_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Titan" in out and "Spruce" in out

    def test_fig5(self, capsys):
        assert main(["figure", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "PPCG - 16" in out
        assert "8192" in out


class TestSolveCommand:
    def test_solve_deck(self, deck_file, capsys):
        rc = main(["solve", "--deck", str(deck_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "reductions=" in out

    def test_solver_override(self, deck_file, capsys):
        rc = main(["solve", "--deck", str(deck_file), "--solver", "cg",
                   "--ranks", "2"])
        assert rc == 0
        assert "cg: converged" in capsys.readouterr().out

    def test_halo_depth_override(self, deck_file, capsys):
        rc = main(["solve", "--deck", str(deck_file), "--solver", "ppcg",
                   "--halo-depth", "4"])
        assert rc == 0

    def test_vtk_output(self, deck_file, tmp_path, capsys):
        out_vtk = tmp_path / "state.vtk"
        rc = main(["tealeaf", "--deck", str(deck_file), "--steps", "1",
                   "--vtk", str(out_vtk)])
        assert rc == 0
        from repro.io.vtk import read_vtk
        shape, fields = read_vtk(out_vtk)
        assert shape == (24, 24)
        assert "density" in fields


class TestReportCommand:
    def test_writes_files(self, tmp_path, capsys):
        assert main(["report", "--out", str(tmp_path / "res")]) == 0
        out = capsys.readouterr().out
        assert "fig7.csv" in out
        assert (tmp_path / "res" / "fig5.csv").exists()
