"""Kernel-equivalence battery: every backend vs the ``numpy`` baseline.

The numerical policy under test (``docs/kernels.md``, ``repro.kernels.base``):

- **fp-order-preserving kernels** (``stencil_apply``, ``axpy``, the field
  updates of ``apply_axpy_dot``, ``pack_halo``/``unpack_halo``) must match
  the baseline **bit for bit** for every dtype, shape and halo depth;
- **reductions** (``dot``, ``norm``, the scalars of ``apply_dot`` /
  ``apply_axpy_dot``) may reassociate and must agree within the documented
  bound ``reduction_tolerance`` (= 64 * eps(dtype) * sum|a_i b_i|).

Both halves run differentially over a dtype x mesh-shape x halo-depth
grid — including 1-cell-wide tiles, non-square regions and a multi-block
shape large enough to force the fused backend through its cache-blocked
path — for every registered backend.  A full-solve differential then
proves ``kernel_backend="fused"`` reproduces the baseline's iteration
count and true relative residual for all eight COMM_CONTRACT solver
configurations.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.kernels import (
    DEFAULT_BACKEND,
    KNOWN_BACKENDS,
    available_backends,
    backend_status,
    get_backend,
    reduction_tolerance,
)
from repro.mesh import Field
from repro.solvers import SolverOptions, solve_linear
from repro.testing import crooked_pipe_system, serial_operator
from repro.utils.errors import ConfigurationError

BASELINE = get_backend("numpy")

#: Every registered non-baseline backend is tested; a backend that cannot
#: be imported (numba absent) is skipped by not appearing here.
OTHERS = [n for n in available_backends() if n != "numpy"]

#: Interior shapes: square, non-square both ways, 1-cell-wide tiles both
#: ways, and one shape whose working set exceeds the fused backend's
#: 1 MiB block budget (so the multi-block path is exercised, not just the
#: single-block fast path).
SHAPES = [(13, 7), (7, 13), (1, 9), (9, 1), (257, 129)]
HALOS = [1, 2, 3]
DTYPES = ["float32", "float64"]


def _system(shape, halo, dtype):
    """Random padded arrays (kx, ky, p, y) for one kernel-level case."""
    ny, nx = shape
    rng = np.random.default_rng(20170905 + 1000 * ny + 10 * nx + halo)
    dt = np.dtype(dtype)
    pad = (ny + 2 * halo, nx + 2 * halo)
    kx = rng.uniform(0.1, 2.0, size=pad).astype(dt)
    ky = rng.uniform(0.1, 2.0, size=pad).astype(dt)
    p = rng.standard_normal(pad).astype(dt)
    y = rng.standard_normal(pad).astype(dt)
    return kx, ky, p, y


def _bound_sets(shape, halo):
    """Loop-bound tuples to cover: the interior, and (when the halo is
    deep enough) the grown region a matrix-powers step computes."""
    ny, nx = shape
    bounds = [(halo, halo + ny, halo, halo + nx)]
    if halo > 1:
        ext = halo - 1
        bounds.append((halo - ext, halo + ny + ext,
                       halo - ext, halo + nx + ext))
    return bounds


def _grid_cases():
    for shape in SHAPES:
        for halo in HALOS:
            for dtype in DTYPES:
                yield pytest.param(shape, halo, dtype,
                                   id=f"{shape[0]}x{shape[1]}-h{halo}-{dtype}")


GRID = list(_grid_cases())


@pytest.mark.parametrize("backend", OTHERS)
@pytest.mark.parametrize("shape,halo,dtype", GRID)
class TestKernelGrid:
    """Differential battery over the dtype x shape x halo grid."""

    def test_stencil_apply_bitwise(self, shape, halo, dtype, backend):
        kx, ky, p, _ = _system(shape, halo, dtype)
        k = get_backend(backend)
        for r0, r1, c0, c1 in _bound_sets(shape, halo):
            ref = np.zeros_like(p)
            out = np.zeros_like(p)
            BASELINE.stencil_apply(kx, ky, p, ref, r0, r1, c0, c1)
            k.stencil_apply(kx, ky, p, out, r0, r1, c0, c1)
            assert out.dtype == ref.dtype
            assert np.array_equal(out, ref), \
                f"stencil_apply[{backend}] drifted from baseline bits"

    def test_apply_dot_field_bitwise_scalar_bounded(self, shape, halo,
                                                    dtype, backend):
        kx, ky, p, _ = _system(shape, halo, dtype)
        k = get_backend(backend)
        for r0, r1, c0, c1 in _bound_sets(shape, halo):
            ref = np.zeros_like(p)
            out = np.zeros_like(p)
            d_ref = BASELINE.apply_dot(kx, ky, p, ref, r0, r1, c0, c1)
            d = k.apply_dot(kx, ky, p, out, r0, r1, c0, c1)
            assert np.array_equal(out, ref)
            tol = reduction_tolerance(p[r0:r1, c0:c1], ref[r0:r1, c0:c1])
            assert abs(d - d_ref) <= tol, \
                f"apply_dot[{backend}] scalar outside the documented bound"

    def test_apply_axpy_dot_updates_bitwise_scalar_bounded(
            self, shape, halo, dtype, backend):
        kx, ky, p, y = _system(shape, halo, dtype)
        k = get_backend(backend)
        alpha = -1.0  # the Jacobi residual chain: y = b - A p
        for r0, r1, c0, c1 in _bound_sets(shape, halo):
            ref_out, ref_y = np.zeros_like(p), y.copy()
            out, yw = np.zeros_like(p), y.copy()
            d_ref = BASELINE.apply_axpy_dot(kx, ky, p, ref_out, ref_y,
                                            alpha, r0, r1, c0, c1)
            d = k.apply_axpy_dot(kx, ky, p, out, yw, alpha, r0, r1, c0, c1)
            assert np.array_equal(out, ref_out)
            assert np.array_equal(yw, ref_y), \
                f"apply_axpy_dot[{backend}] y-update drifted from baseline"
            yr = ref_y[r0:r1, c0:c1]
            assert abs(d - d_ref) <= reduction_tolerance(yr, yr)

    def test_dot_within_reduction_bound(self, shape, halo, dtype, backend):
        _, _, p, y = _system(shape, halo, dtype)
        ny, nx = shape
        a = p[halo:halo + ny, halo:halo + nx]
        b = y[halo:halo + ny, halo:halo + nx]
        d_ref = BASELINE.dot(a, b)
        d = get_backend(backend).dot(a, b)
        assert abs(d - d_ref) <= reduction_tolerance(a, b)

    def test_norm_within_reduction_bound(self, shape, halo, dtype, backend):
        _, _, p, _ = _system(shape, halo, dtype)
        ny, nx = shape
        a = p[halo:halo + ny, halo:halo + nx]
        n_ref = BASELINE.norm(a)
        n = get_backend(backend).norm(a)
        # norm = sqrt(<a,a>); compare the squares against the dot bound.
        assert abs(n * n - n_ref * n_ref) <= reduction_tolerance(a, a)

    def test_axpy_bitwise(self, shape, halo, dtype, backend):
        _, _, p, y = _system(shape, halo, dtype)
        ny, nx = shape
        x = p[halo:halo + ny, halo:halo + nx]
        for alpha in (0.75, -0.75, 1.0, -1.0):
            ref = y.copy()
            yw = y.copy()
            BASELINE.axpy(ref[halo:halo + ny, halo:halo + nx], alpha, x)
            get_backend(backend).axpy(
                yw[halo:halo + ny, halo:halo + nx], alpha, x)
            assert np.array_equal(yw, ref), \
                f"axpy[{backend}] alpha={alpha} drifted from baseline bits"

    def test_pack_unpack_halo_bitwise(self, shape, halo, dtype, backend):
        _, _, p, y = _system(shape, halo, dtype)
        ny, nx = shape
        k = get_backend(backend)
        # Every face a halo exchange packs: row bands and column bands.
        faces = [(slice(halo, 2 * halo), slice(halo, halo + nx)),
                 (slice(ny, ny + halo), slice(halo, halo + nx)),
                 (slice(halo, halo + ny), slice(halo, 2 * halo)),
                 (slice(halo, halo + ny), slice(nx, nx + halo))]
        for rows, cols in faces:
            ref = BASELINE.pack_halo(p, rows, cols)
            buf = k.pack_halo(p, rows, cols)
            assert buf.flags["C_CONTIGUOUS"]
            assert buf.dtype == ref.dtype
            assert np.array_equal(buf, ref)
            a_ref, a = y.copy(), y.copy()
            BASELINE.unpack_halo(a_ref, rows, cols, ref)
            k.unpack_halo(a, rows, cols, buf)
            assert np.array_equal(a, a_ref)


# -- full-solve differential: the eight COMM_CONTRACT configurations -----------

#: Mirrors ``repro.analysis.verify.default_specs`` — same solver family,
#: same matrix-powers depths, same deflation blocking.
SOLVE_CONFIGS = [
    ("cg", SolverOptions(solver="cg", eps=1e-8, max_iters=500)),
    ("cg_fused", SolverOptions(solver="cg_fused", eps=1e-8, max_iters=500)),
    ("jacobi", SolverOptions(solver="jacobi", eps=1e-8, max_iters=300)),
    ("chebyshev", SolverOptions(solver="chebyshev", eps=1e-8, max_iters=500,
                                eigen_warmup_iters=8, check_interval=10)),
    ("chebyshev-depth4", SolverOptions(solver="chebyshev", eps=1e-8,
                                       max_iters=500, eigen_warmup_iters=8,
                                       check_interval=10, halo_depth=4)),
    ("ppcg", SolverOptions(solver="ppcg", eps=1e-8, max_iters=200,
                           ppcg_inner_steps=4, eigen_warmup_iters=8)),
    ("ppcg-depth4", SolverOptions(solver="ppcg", eps=1e-8, max_iters=200,
                                  ppcg_inner_steps=8, halo_depth=4,
                                  eigen_warmup_iters=8)),
    ("dcg", SolverOptions(solver="dcg", eps=1e-8, max_iters=500,
                          deflation_blocks=(2, 2))),
]


@pytest.mark.parametrize("backend", OTHERS)
@pytest.mark.parametrize("label,opt", SOLVE_CONFIGS,
                         ids=[name for name, _ in SOLVE_CONFIGS])
def test_full_solve_differential(label, opt, backend):
    """Routed solves reproduce the baseline's convergence trajectory.

    Same iteration counts (outer and inner) and — measured through the
    backend-neutral true-residual referee — the same relative residual to
    well below the solve tolerance.
    """
    grid, kxg, kyg, bg = crooked_pipe_system(16)
    results = {}
    for name in ("numpy", backend):
        o = replace(opt, kernel_backend=name, true_residual=True)
        op = serial_operator(grid, kxg, kyg, halo=o.required_field_halo)
        b = Field.from_global(op.tile, op.halo, bg)
        results[name] = solve_linear(op, b, options=o)
    ref, alt = results["numpy"], results[backend]
    assert alt.converged == ref.converged
    assert alt.iterations == ref.iterations, \
        f"{label}[{backend}] changed the iteration count"
    assert alt.inner_iterations == ref.inner_iterations
    assert ref.true_relative_residual is not None
    assert alt.true_relative_residual == pytest.approx(
        ref.true_relative_residual, rel=1e-6, abs=1e-14)


# -- registry, options and deck plumbing ---------------------------------------


class TestRegistry:
    def test_known_and_available(self):
        assert DEFAULT_BACKEND == "numpy"
        assert set(available_backends()) <= set(KNOWN_BACKENDS)
        assert {"numpy", "fused"} <= set(available_backends())

    def test_backend_status_reports_every_known_backend(self):
        status = backend_status()
        assert set(status) == set(KNOWN_BACKENDS)
        assert status["numpy"] == "" and status["fused"] == ""
        for name in available_backends():
            assert status[name] == ""
            assert get_backend(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("cuda")

    @pytest.mark.skipif("numba" in available_backends(),
                        reason="numba installed in this environment")
    def test_unavailable_numba_raises_with_install_hint(self):
        status = backend_status()
        assert "numba" in status["numba"]
        with pytest.raises(ConfigurationError, match="numba"):
            get_backend("numba")

    def test_reduction_tolerance_scales_with_dtype(self):
        rng = np.random.default_rng(7)
        a64 = rng.standard_normal(1000)
        b64 = rng.standard_normal(1000)
        t32 = reduction_tolerance(a64.astype(np.float32),
                                  b64.astype(np.float32))
        t64 = reduction_tolerance(a64, b64)
        assert 0 < t64 < t32  # wider envelope in the coarser dtype


class TestOptionsAndDeck:
    def test_options_accept_known_backends(self):
        for name in KNOWN_BACKENDS:
            # Unavailable backends stay constructible: availability is
            # checked at solve time, not at options-validation time.
            assert SolverOptions(kernel_backend=name).kernel_backend == name

    def test_options_reject_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            SolverOptions(kernel_backend="cuda")

    def test_deck_key_roundtrip(self):
        from repro.physics.deck import parse_deck_text
        deck = parse_deck_text("tl_kernel_backend=fused")
        assert deck.tl_kernel_backend == "fused"
        assert parse_deck_text("").tl_kernel_backend == "numpy"

    def test_deck_key_rejects_unknown_backend(self):
        from repro.physics.deck import parse_deck_text
        with pytest.raises(ConfigurationError,
                           match="unknown tl_kernel_backend"):
            parse_deck_text("tl_kernel_backend=cuda")
