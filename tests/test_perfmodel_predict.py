"""Unit tests: the scaling predictor and its paper-shape properties."""

import numpy as np
import pytest

from repro.perfmodel import (
    PIZ_DAINT,
    SPRUCE,
    TITAN,
    SolverConfig,
    predict_scaling,
    predict_solve_time,
    scaling_efficiency,
)
from repro.perfmodel.efficiency import best_time, speedup
from repro.utils import ConfigurationError

MESH = 4000
CG_ITERS = 8500.0
PPCG_ITERS = 930.0
MG_ITERS = 50.0


def series(machine, config, nodes, iters, rpn=None):
    return [p.seconds for p in predict_scaling(
        machine, config, MESH, nodes, outer_iters=iters, n_steps=5,
        ranks_per_node=rpn)]


class TestBasicProperties:
    def test_breakdown_sums_to_total(self):
        p = predict_solve_time(TITAN, SolverConfig("cg"), MESH, 64,
                               outer_iters=CG_ITERS, n_steps=5)
        assert sum(p.breakdown.values()) == pytest.approx(p.seconds)

    def test_more_iterations_cost_more(self):
        a = predict_solve_time(TITAN, SolverConfig("cg"), MESH, 64,
                               outer_iters=1000).seconds
        b = predict_solve_time(TITAN, SolverConfig("cg"), MESH, 64,
                               outer_iters=2000).seconds
        assert b > 1.8 * a

    def test_n_steps_scales_linearly(self):
        one = predict_solve_time(TITAN, SolverConfig("cg"), MESH, 64,
                                 outer_iters=1000, n_steps=1).seconds
        five = predict_solve_time(TITAN, SolverConfig("cg"), MESH, 64,
                                  outer_iters=1000, n_steps=5).seconds
        assert five == pytest.approx(5 * one)

    def test_node_limit_enforced(self):
        with pytest.raises(ConfigurationError):
            predict_solve_time(PIZ_DAINT, SolverConfig("cg"), MESH, 4096,
                               outer_iters=100.0)

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            predict_solve_time(SPRUCE, SolverConfig("cg"), 16, 1024,
                               outer_iters=10.0, ranks_per_node=20)

    def test_time_scale_applied(self):
        base = TITAN.with_time_scale(1.0)
        doubled = TITAN.with_time_scale(2.0)
        a = predict_solve_time(base, SolverConfig("cg"), MESH, 64,
                               outer_iters=100.0).seconds
        b = predict_solve_time(doubled, SolverConfig("cg"), MESH, 64,
                               outer_iters=100.0).seconds
        assert b == pytest.approx(2 * a)


class TestPaperShapes:
    """The qualitative results of Figs. 5-8, asserted on the model."""

    def test_fig5_cg_plateaus_then_degrades(self):
        nodes = [2 ** i for i in range(14)]
        t = series(TITAN, SolverConfig("cg"), nodes, CG_ITERS)
        knee = nodes[int(np.argmin(t))]
        assert 256 <= knee <= 2048       # paper: ~1024
        assert t[-1] > min(t)            # adding nodes hurts past the knee

    def test_fig5_ppcg_beats_cg_at_scale(self):
        nodes = [1024, 4096, 8192]
        cg = series(TITAN, SolverConfig("cg"), nodes, CG_ITERS)
        pp = series(TITAN, SolverConfig("ppcg", 10, 16), nodes, PPCG_ITERS)
        assert all(p < c for p, c in zip(pp, cg))
        assert cg[-1] / pp[-1] > 2.0

    def test_fig5_deeper_halo_better_on_gpu(self):
        """Still improving at depth 16 on GPUs (paper §VI)."""
        t = {d: series(TITAN, SolverConfig("ppcg", 10, d), [8192],
                       PPCG_ITERS)[0]
             for d in (1, 4, 8, 16)}
        assert t[16] < t[8] < t[4] < t[1]

    def test_cpu_halo_depth_plateaus_by_8(self):
        """On CPUs the benefit plateaus ~8 (redundant work wins, §VI)."""
        t = {d: series(SPRUCE, SolverConfig("ppcg", 10, d), [512],
                       PPCG_ITERS, rpn=20)[0]
             for d in (1, 4, 8, 16)}
        assert t[16] > min(t[1], t[4], t[8])

    def test_fig6_pizdaint_faster_than_titan_at_2048(self):
        cfg = SolverConfig("ppcg", 10, 16)
        t = series(TITAN, cfg, [2048], PPCG_ITERS)[0]
        p = series(PIZ_DAINT, cfg, [2048], PPCG_ITERS)[0]
        assert 1.2 < t / p < 1.9   # paper: 47%

    def test_fig7_amg_fastest_at_low_nodes(self):
        nodes = [1, 2, 4, 8]
        amg = series(SPRUCE, SolverConfig("mgcg"), nodes, MG_ITERS, rpn=2)
        pp = series(SPRUCE, SolverConfig("ppcg", 10, 1), nodes, PPCG_ITERS,
                    rpn=2)
        assert all(a < p for a, p in zip(amg, pp))

    def test_fig7_amg_hybrid_peaks_early(self):
        nodes = [2 ** i for i in range(11)]
        amg = series(SPRUCE, SolverConfig("mgcg"), nodes, MG_ITERS, rpn=2)
        best = nodes[int(np.argmin(amg))]
        assert best <= 64                 # paper: 32
        assert amg[-1] > min(amg) * 1.5   # clearly degrades at 1024

    def test_fig7_cppcg_overtakes_and_keeps_scaling(self):
        nodes = [2 ** i for i in range(11)]
        amg = series(SPRUCE, SolverConfig("mgcg"), nodes, MG_ITERS, rpn=20)
        pp = series(SPRUCE, SolverConfig("ppcg", 10, 1), nodes, PPCG_ITERS,
                    rpn=20)
        crossover = next(n for n, a, p in zip(nodes, amg, pp) if p < a)
        assert 64 <= crossover <= 256     # paper: from 128 onwards
        assert nodes[int(np.argmin(pp))] >= 512  # paper: peaks at 512+

    def test_fig7_hybrid_close_to_flat_for_ppcg(self):
        nodes = [64, 256, 1024]
        hyb = series(SPRUCE, SolverConfig("ppcg", 10, 1), nodes, PPCG_ITERS,
                     rpn=2)
        flat = series(SPRUCE, SolverConfig("ppcg", 10, 1), nodes, PPCG_ITERS,
                      rpn=20)
        for h, f in zip(hyb, flat):
            assert 0.5 < h / f < 2.0      # "near identical performance"

    def test_fig8_spruce_superlinear_window(self):
        nodes = [2 ** i for i in range(11)]
        t = series(SPRUCE, SolverConfig("ppcg", 10, 1), nodes, PPCG_ITERS,
                   rpn=20)
        eff = scaling_efficiency(nodes, t)
        assert max(eff) > 1.5             # super-linear cache regime
        assert eff[nodes.index(512)] > 1.0  # sustained through 512

    def test_fig8_gpu_efficiency_decays_monotonically(self):
        nodes = [2 ** i for i in range(12)]
        t = series(PIZ_DAINT, SolverConfig("ppcg", 10, 16), nodes, PPCG_ITERS)
        eff = scaling_efficiency(nodes, t)
        assert all(a >= b for a, b in zip(eff, eff[1:]))


class TestAnchors:
    """Calibrated absolute values (EXPERIMENTS.md records these)."""

    def test_titan_ppcg16_at_8192(self):
        t = series(TITAN, SolverConfig("ppcg", 10, 16), [8192], PPCG_ITERS)[0]
        assert t == pytest.approx(4.26, rel=0.15)

    def test_pizdaint_ppcg16_at_2048(self):
        t = series(PIZ_DAINT, SolverConfig("ppcg", 10, 16), [2048],
                   PPCG_ITERS)[0]
        assert t == pytest.approx(2.79, rel=0.15)


class TestEfficiencyHelpers:
    def test_scaling_efficiency_identity(self):
        assert scaling_efficiency([1, 2, 4], [8.0, 4.0, 2.0]) == [1.0, 1.0, 1.0]

    def test_superlinear_detection(self):
        eff = scaling_efficiency([1, 2], [8.0, 3.0])
        assert eff[1] > 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            scaling_efficiency([1, 2], [1.0])
        with pytest.raises(ConfigurationError):
            scaling_efficiency([1], [0.0])

    def test_speedup(self):
        assert speedup([10.0, 5.0, 2.5]) == [1.0, 2.0, 4.0]
        with pytest.raises(ConfigurationError):
            speedup([])

    def test_best_time(self):
        pts = predict_scaling(TITAN, SolverConfig("cg"), MESH,
                              [64, 512, 4096], outer_iters=CG_ITERS)
        best = best_time({"CG - 1": pts})["CG - 1"]
        assert best.seconds == min(p.seconds for p in pts)
