"""Unit tests: conduction coefficients."""

import numpy as np
import pytest

from repro.physics import (
    Conductivity,
    cell_conductivity,
    face_coefficients,
    face_coefficients_3d,
)
from repro.utils import ConfigurationError


class TestCellConductivity:
    def test_density_model(self):
        rho = np.array([[2.0, 4.0]])
        assert np.array_equal(cell_conductivity(rho, Conductivity.DENSITY), rho)

    def test_recip_model(self):
        rho = np.array([[2.0, 4.0]])
        out = cell_conductivity(rho, Conductivity.RECIP_DENSITY)
        assert np.allclose(out, [[0.5, 0.25]])

    def test_string_model_names(self):
        rho = np.ones((2, 2))
        assert np.all(cell_conductivity(rho, "conductivity") == 1.0)
        assert np.all(cell_conductivity(rho, "recip_conductivity") == 1.0)

    def test_default_is_recip(self):
        rho = np.full((2, 2), 4.0)
        assert np.all(cell_conductivity(rho) == 0.25)

    def test_nonpositive_density_rejected(self):
        with pytest.raises(ValueError):
            cell_conductivity(np.array([[1.0, 0.0]]))

    def test_returns_copy(self):
        rho = np.ones((2, 2))
        out = cell_conductivity(rho, Conductivity.DENSITY)
        out[0, 0] = 9
        assert rho[0, 0] == 1.0


class TestFaceCoefficients:
    def test_shapes_and_zero_boundaries(self):
        kappa = np.ones((3, 5))
        kx, ky = face_coefficients(kappa, rx=2.0, ry=3.0)
        assert kx.shape == (3, 6)
        assert ky.shape == (4, 5)
        assert np.all(kx[:, 0] == 0) and np.all(kx[:, -1] == 0)
        assert np.all(ky[0, :] == 0) and np.all(ky[-1, :] == 0)

    def test_uniform_medium_values(self):
        kappa = np.full((4, 4), 2.0)
        kx, ky = face_coefficients(kappa, rx=0.5, ry=0.25)
        assert np.allclose(kx[:, 1:-1], 1.0)   # 0.5 * harmonic(2,2)=2
        assert np.allclose(ky[1:-1, :], 0.5)

    def test_harmonic_vs_arithmetic(self):
        kappa = np.array([[1.0, 4.0]])
        kxa, _ = face_coefficients(kappa, 1.0, 1.0, mean="arithmetic")
        kxh, _ = face_coefficients(kappa, 1.0, 1.0, mean="harmonic")
        assert kxa[0, 1] == pytest.approx(2.5)
        assert kxh[0, 1] == pytest.approx(1.6)  # 2*1*4/5
        assert kxh[0, 1] < kxa[0, 1]  # harmonic <= arithmetic

    def test_invalid_mean(self):
        with pytest.raises(ConfigurationError):
            face_coefficients(np.ones((2, 2)), 1.0, 1.0, mean="geometric")

    def test_invalid_r(self):
        with pytest.raises(ConfigurationError):
            face_coefficients(np.ones((2, 2)), 0.0, 1.0)

    def test_positive_everywhere_interior(self):
        rng = np.random.default_rng(0)
        kappa = rng.uniform(0.1, 10.0, (6, 6))
        kx, ky = face_coefficients(kappa, 1.0, 1.0)
        assert np.all(kx[:, 1:-1] > 0)
        assert np.all(ky[1:-1, :] > 0)


class TestFaceCoefficients3D:
    def test_shapes(self):
        kappa = np.ones((2, 3, 4))
        kx, ky, kz = face_coefficients_3d(kappa, 1.0, 1.0, 1.0)
        assert kx.shape == (2, 3, 5)
        assert ky.shape == (2, 4, 4)
        assert kz.shape == (3, 3, 4)

    def test_zero_boundary_faces(self):
        kappa = np.ones((3, 3, 3))
        kx, ky, kz = face_coefficients_3d(kappa, 1.0, 1.0, 1.0)
        assert np.all(kx[:, :, 0] == 0) and np.all(kx[:, :, -1] == 0)
        assert np.all(ky[:, 0, :] == 0) and np.all(ky[:, -1, :] == 0)
        assert np.all(kz[0] == 0) and np.all(kz[-1] == 0)

    def test_uniform_values_scaled(self):
        kappa = np.full((3, 3, 3), 3.0)
        kx, _, kz = face_coefficients_3d(kappa, 2.0, 1.0, 0.5)
        assert np.allclose(kx[:, :, 1:-1], 6.0)
        assert np.allclose(kz[1:-1], 1.5)
