"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20170905)  # CLUSTER'17 dates
