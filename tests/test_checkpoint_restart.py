"""Durable checkpoint/restart, rank-loss recovery and integrity-layer tests.

Covers the resilience v2 surface: atomic CRC-validated shards and
collectively committed checkpoint directories, kill-and-restart
bit-identity (with trace-invariant span counts under a virtual clock),
ULFM-style shrink/respawn recovery from fatal crash windows, the
checksummed-envelope communication layer, and the knobs that configure
them (SolverOptions and the deck dialect).
"""

import json

import numpy as np
import pytest

from repro.comm import RECOVERY_KIND, SerialComm, launch_spmd
from repro.observe import Tracer
from repro.physics.deck import parse_deck_text
from repro.physics.simulation import restart_simulation, run_simulation
from repro.resilience import (
    CHECKPOINT_SCHEMA,
    CheckpointWarning,
    ChecksumComm,
    CrashWindow,
    FaultPlan,
    FaultRule,
    SolverCheckpointStore,
    VirtualClock,
    build_resilient_comm,
    commit_checkpoint,
    latest_checkpoint,
    load_rank_checkpoint,
    load_shard,
    read_manifest,
    run_recoverable,
    run_resilient,
    validate_checkpoint,
    write_shard,
)
from repro.resilience.checkpoint import META_KEY
from repro.resilience.integrity import CHANNEL_OFFSET
from repro.solvers import SolverOptions
from repro.testing import crooked_pipe_system
from repro.utils import EventLog
from repro.utils.errors import (
    CheckpointError,
    ChecksumError,
    CommunicationError,
    ConfigurationError,
    TransientCommError,
)

CG_GUARDED = SolverOptions(solver="cg", eps=1e-10, max_iters=600,
                           guard_interval=5)


# -- shards and checkpoint directories ----------------------------------------


class TestShards:
    def test_roundtrip_arrays_and_scalars(self, tmp_path):
        path = tmp_path / "shard.npz"
        u = np.arange(12.0).reshape(3, 4)
        meta = write_shard(path, {"u": u},
                           {"time": 1.5, "it": np.int64(3)})
        assert meta["schema"] == CHECKPOINT_SCHEMA
        arrays, scalars = load_shard(path)
        assert np.array_equal(arrays["u"], u)
        assert scalars == {"time": 1.5, "it": 3}
        # atomic write leaves no temp files behind
        assert [f for f in path.parent.iterdir() if ".tmp" in f.name] == []

    def test_crc_detects_tampered_array(self, tmp_path):
        path = tmp_path / "shard.npz"
        write_shard(path, {"u": np.arange(6.0)}, {})
        with np.load(path, allow_pickle=False) as npz:
            meta = json.loads(str(npz[META_KEY]))
            u = npz["u"].copy()
        u[3] += 1e-9  # silent single-element corruption, valid zip
        np.savez(path, **{META_KEY: np.array(json.dumps(meta)), "u": u})
        with pytest.raises(CheckpointError, match="crc|CRC"):
            load_shard(path)

    def test_torn_file_rejected(self, tmp_path):
        path = tmp_path / "shard.npz"
        write_shard(path, {"u": np.arange(64.0)}, {})
        with open(path, "r+b") as fh:
            fh.truncate(100)
        with pytest.raises(CheckpointError):
            load_shard(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "not-a-shard.npz"
        np.savez(path, u=np.arange(3.0))
        with pytest.raises(CheckpointError):
            load_shard(path)


class TestCommitAndLatest:
    def test_commit_then_latest(self, tmp_path):
        comm = SerialComm()
        for step in (1, 2):
            commit_checkpoint(tmp_path, step, comm,
                             {"u": np.full((2, 2), float(step))},
                             {"time": 0.1 * step, "step_index": step},
                             config={"n_steps": 4})
        # an uncommitted pending directory must be invisible
        (tmp_path / ".pending-step-000009").mkdir()
        (tmp_path / "step-000007").mkdir()  # committed dir without manifest
        latest = latest_checkpoint(tmp_path)
        assert latest is not None and latest.name == "step-000002"
        manifest = read_manifest(latest)
        assert manifest["step"] == 2
        assert manifest["nranks"] == 1
        assert manifest["config"] == {"n_steps": 4}
        arrays, scalars, loaded_manifest = load_rank_checkpoint(latest, 0, 1)
        assert np.array_equal(arrays["u"], np.full((2, 2), 2.0))
        assert scalars["step_index"] == 2
        assert loaded_manifest["step"] == 2

    def test_empty_root_has_no_checkpoint(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "nowhere") is None

    def test_world_size_mismatch_rejected(self, tmp_path):
        commit_checkpoint(tmp_path, 1, SerialComm(),
                         {"u": np.zeros(2)}, {"time": 0.0})
        step_dir = latest_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="rank"):
            load_rank_checkpoint(step_dir, 0, 4)


class TestCheckpointLoadFuzz:
    """Seeded corruption of committed checkpoints: discovery must skip to
    the last valid step with a :class:`CheckpointWarning`, never leak a
    raw ``zipfile``/``KeyError``, and never serve damaged state."""

    def _commit(self, root, steps=3):
        for step in range(1, steps + 1):
            commit_checkpoint(root, step, SerialComm(),
                              {"u": np.full(6, float(step))},
                              {"time": 0.1 * step, "step_index": step})

    @staticmethod
    def _shards(step_dir):
        return sorted(step_dir.glob("shard-*.npz"))

    def _corrupt(self, rng, step_dir):
        """One seeded corruption; returns a description of what it did."""
        mode = rng.choice(["truncate", "bitflip", "drop_shard",
                           "garbage_manifest", "drop_manifest"])
        shard = rng.choice(self._shards(step_dir))
        if mode == "truncate":
            size = shard.stat().st_size
            with open(shard, "r+b") as fh:
                fh.truncate(rng.randrange(1, size))
        elif mode == "bitflip":
            data = bytearray(shard.read_bytes())
            data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            shard.write_bytes(bytes(data))
        elif mode == "drop_shard":
            shard.unlink()
        elif mode == "garbage_manifest":
            (step_dir / "manifest.json").write_text("{not json", "utf-8")
        else:
            (step_dir / "manifest.json").unlink()
        return mode

    def test_damaged_newest_degrades_to_previous_step(self, tmp_path):
        import random

        for seed in range(8):
            rng = random.Random(seed)
            root = tmp_path / f"seed-{seed}"
            self._commit(root)
            mode = self._corrupt(rng, root / "step-000003")
            if mode == "drop_manifest":
                # No manifest means "not a committed checkpoint": skipped
                # silently (same as a torn .pending commit), no warning.
                latest = latest_checkpoint(root)
            else:
                with pytest.warns(CheckpointWarning, match="step-000003"):
                    latest = latest_checkpoint(root)
            assert latest is not None and latest.name == "step-000002", mode
            arrays, _, _ = load_rank_checkpoint(latest, 0, 1)
            assert np.array_equal(arrays["u"], np.full(6, 2.0))

    def test_every_step_damaged_yields_none(self, tmp_path):
        import random

        rng = random.Random(99)
        self._commit(tmp_path, steps=2)
        for step in ("step-000001", "step-000002"):
            data = bytearray(self._shards(tmp_path / step)[0].read_bytes())
            data[rng.randrange(len(data))] ^= 0xFF
            (self._shards(tmp_path / step)[0]).write_bytes(bytes(data))
        with pytest.warns(CheckpointWarning):
            assert latest_checkpoint(tmp_path) is None

    def test_validate_checkpoint_never_leaks_raw_errors(self, tmp_path):
        import random

        for seed in range(12):
            rng = random.Random(1000 + seed)
            root = tmp_path / f"seed-{seed}"
            self._commit(root, steps=1)
            step_dir = root / "step-000001"
            self._corrupt(rng, step_dir)
            with pytest.raises(CheckpointError):
                validate_checkpoint(step_dir)


class TestSolverCheckpointStore:
    def test_roundtrip_and_missing(self, tmp_path):
        store = SolverCheckpointStore(tmp_path, rank=0)
        assert store.load() is None
        store.save(25, {"x": np.arange(4.0)}, {"res_norm": 1e-3})
        loaded = store.load()
        assert loaded is not None
        iteration, arrays, scalars = loaded
        assert iteration == 25
        assert np.array_equal(arrays["x"], np.arange(4.0))
        assert scalars["res_norm"] == 1e-3


# -- kill-and-restart ---------------------------------------------------------


def _tracer_factory(rank):
    return Tracer(clock=VirtualClock(tick=1e-6), rank=rank)


@pytest.mark.distributed
class TestKillAndRestart:
    def test_restart_is_bit_identical_with_invariant_spans(self, tmp_path):
        from repro.physics.deck import crooked_pipe_deck, deck_to_problem
        deck = crooked_pipe_deck(16)
        options = SolverOptions(solver="ppcg", eps=1e-10, max_iters=200,
                                ppcg_inner_steps=4, eigen_warmup_iters=10)
        kwargs = dict(dt=deck.initial_timestep, nranks=2,
                      conductivity=deck.tl_coefficient)
        problem = deck_to_problem(deck)

        full = run_simulation(deck.grid, problem, options, n_steps=4,
                              tracer_factory=_tracer_factory, **kwargs)

        # run half the steps with durable checkpointing, then "crash":
        # every in-memory object goes out of scope, only the disk survives
        interrupted = run_simulation(
            deck.grid, problem, options, n_steps=2,
            checkpoint_dir=tmp_path, checkpoint_interval=2, total_steps=4,
            tracer_factory=_tracer_factory, **kwargs)
        del problem, options, deck

        resumed = restart_simulation(tmp_path,
                                     tracer_factory=_tracer_factory)

        assert len(resumed.steps) == 2
        assert resumed.steps[-1].step == 4
        assert np.array_equal(full.temperature, resumed.temperature)

        # trace invariants: one solve span per step on every rank, and the
        # interrupted + resumed halves partition the uninterrupted run
        for rank in range(2):
            assert full.tracers[rank].count("solve") == 4
            assert interrupted.tracers[rank].count("solve") \
                + resumed.tracers[rank].count("solve") == 4
            # the durable commit and the restore are traced on every rank
            assert interrupted.tracers[rank].count(
                "checkpoint", "simulation") == 1
            assert resumed.tracers[rank].count("recover", "simulation") == 1

        # checkpoint traffic (commit barriers/gathers) is bookkept under
        # RECOVERY_KIND, not as first-attempt solver communication
        assert interrupted.events.count_kind(RECOVERY_KIND) > 0

    def test_restart_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no committed checkpoint"):
            restart_simulation(tmp_path)

    def test_restart_after_finish_raises(self, tmp_path):
        from repro.physics.deck import crooked_pipe_deck, deck_to_problem
        deck = crooked_pipe_deck(12)
        run_simulation(deck.grid, deck_to_problem(deck),
                       SolverOptions(solver="cg"), dt=deck.initial_timestep,
                       n_steps=2, nranks=1, checkpoint_dir=tmp_path,
                       checkpoint_interval=2)
        with pytest.raises(CheckpointError, match="nothing left"):
            restart_simulation(tmp_path)


# -- rank-loss recovery -------------------------------------------------------


#: Crash window longer than the retry budget: rank 1 dies for 10 straight
#: operation slots starting at op 40 — every retry lands inside the window,
#: so the attempt escalates to CommunicationError and recovery must respawn.
FATAL_PLAN = FaultPlan(seed=3, crashes=(
    CrashWindow(rank=1, start=40, length=10),))


@pytest.mark.distributed
class TestRankLossRecovery:
    def test_fatal_window_triggers_respawn_and_converges(self, tmp_path):
        report = run_recoverable(CG_GUARDED, FATAL_PLAN, n=24, size=2,
                                 checkpoint_dir=tmp_path, max_attempts=5)
        assert report.converged
        assert report.recoveries == 1
        (event,) = report.recovery_events
        assert event.failed_rank == 1
        assert event.window_start == 40
        assert report.resumed_iteration >= 0  # respawn resumed from a shard

    def test_recovery_budget_spent_reraises(self, tmp_path):
        with pytest.raises(CommunicationError):
            run_recoverable(CG_GUARDED, FATAL_PLAN, n=24, size=2,
                            checkpoint_dir=tmp_path, max_attempts=5,
                            max_recoveries=0)

    def test_survivable_window_needs_no_recovery(self, tmp_path):
        plan = FaultPlan(seed=3, crashes=(
            CrashWindow(rank=1, start=40, length=2),))
        report = run_recoverable(CG_GUARDED, plan, n=24, size=2,
                                 checkpoint_dir=tmp_path, max_attempts=5)
        assert report.converged and report.recoveries == 0


# -- integrity layer ----------------------------------------------------------


class _MailboxComm:
    """Single-rank loopback transport with per-tag FIFO mailboxes."""

    rank = 0
    size = 1

    def __init__(self):
        self.boxes = {}

    def send(self, obj, dest, tag=0):
        self.boxes.setdefault(tag, []).append(obj)

    def recv(self, source, tag=0, timeout=None):
        return self.boxes[tag].pop(0)

    def allreduce(self, value, op="sum"):
        return value

    def bcast(self, obj, root=0):
        return obj

    def gather(self, obj, root=0):
        return [obj]

    def allgather(self, obj):
        return [obj]

    def barrier(self):
        pass


class _CorruptingMailbox(_MailboxComm):
    """Deterministically corrupts frames on chosen copy channels."""

    def __init__(self, bad_channels):
        super().__init__()
        self.bad_channels = bad_channels  # k -> corrupt copy k

    def send(self, obj, dest, tag=0):
        if tag // CHANNEL_OFFSET in self.bad_channels \
                and isinstance(obj, np.ndarray):
            obj = obj.copy()
            obj[-2] += 1.0  # flip a data element; the CRC no longer matches
        super().send(obj, dest, tag)


class TestChecksumComm:
    def test_clean_p2p_roundtrip(self):
        comm = ChecksumComm(_MailboxComm())
        payload = np.arange(6.0).reshape(2, 3)
        comm.send(payload, 0, tag=5)
        out = comm.recv(0, tag=5)
        assert np.array_equal(out, payload)
        assert comm.detections == 0 and comm.repairs == 0

    def test_corrupted_copy_repaired_by_redundancy(self):
        log = EventLog()
        comm = ChecksumComm(_CorruptingMailbox({0}), events=log)
        payload = np.arange(6.0)
        comm.send(payload, 0, tag=5)
        out = comm.recv(0, tag=5)
        assert np.array_equal(out, payload)  # copy 1 outvoted the bad copy 0
        assert comm.detections == 1 and comm.repairs == 1
        assert log.count("integrity", "detect") == 1
        assert log.count("integrity", "repair") == 1

    def test_all_copies_corrupted_raises_retryable(self):
        comm = ChecksumComm(_CorruptingMailbox({0, 1}))
        comm.send(np.arange(6.0), 0, tag=5)
        with pytest.raises(ChecksumError) as excinfo:
            comm.recv(0, tag=5)
        assert isinstance(excinfo.value, TransientCommError)

    def test_scalar_and_raw_payloads_roundtrip(self):
        comm = ChecksumComm(_MailboxComm())
        comm.send(2.5, 0, tag=1)
        comm.send(("meta", 7), 0, tag=1)  # not framable: raw sentinel
        assert comm.recv(0, tag=1) == 2.5
        assert comm.recv(0, tag=1) == ("meta", 7)

    def test_sequences_stay_aligned_across_repairs(self):
        comm = ChecksumComm(_CorruptingMailbox({0}))
        for i in range(3):
            comm.send(np.full(4, float(i)), 0, tag=2)
            assert np.array_equal(comm.recv(0, tag=2), np.full(4, float(i)))
        assert comm.repairs == 3

    def test_corrupted_allreduce_detected_and_retried(self):
        log = EventLog()
        plan = FaultPlan(seed=11, rules=(
            FaultRule(mode="corrupt_nan", probability=0.8,
                      ops=("allreduce",)),))
        stack = build_resilient_comm(SerialComm(), plan, events=log,
                                     integrity=True)
        out = stack.comm.allreduce(np.arange(8.0))
        assert np.array_equal(out, np.arange(8.0))  # corruption never escaped
        assert stack.checksum.detections >= 1
        # the instrument layer still counted one logical collective; the
        # re-issues live under the retry kind
        assert log.count_kind("allreduce") == 1
        from repro.comm import RETRY_KIND
        assert log.count_kind(RETRY_KIND) >= 1

    def test_without_checksums_corruption_is_silent(self):
        plan = FaultPlan(seed=11, rules=(
            FaultRule(mode="corrupt_nan", probability=0.8,
                      ops=("allreduce",)),))
        stack = build_resilient_comm(SerialComm(), plan)
        out = stack.comm.allreduce(np.arange(8.0))
        assert np.isnan(out).any()  # the motivating failure mode

    def test_copies_validated(self):
        with pytest.raises(ValueError):
            ChecksumComm(_MailboxComm(), copies=0)


@pytest.mark.distributed
class TestIntegrityAcrossRanks:
    def test_checksummed_halo_exchange_matches_plain(self):
        """A 2-rank guarded CG through the full integrity stack converges
        to the same iterate as the plain stack (checksums are transparent)."""
        plain = run_resilient(CG_GUARDED, FaultPlan.disabled(), n=24, size=2)
        checked = run_resilient(CG_GUARDED, FaultPlan.disabled(), n=24,
                                size=2, integrity=True)
        assert plain.converged and checked.converged
        assert plain.iterations == checked.iterations
        assert checked.integrity_detections == 0


# -- contract transparency (acceptance criterion) -----------------------------


@pytest.mark.slow
def test_all_contracts_verify_under_integrity_stack():
    from repro.analysis.verify import verify_contracts
    reports = verify_contracts(n=24, integrity=True)
    assert len(reports) == 8
    bad = [r.name for r in reports if not r.ok]
    assert bad == [], f"contract drift under checksummed stack: {bad}"


# -- configuration knobs ------------------------------------------------------


class TestOptionsValidation:
    def test_checkpoint_interval_requires_dir(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            SolverOptions(checkpoint_interval=5)

    def test_recovery_requires_cadence(self):
        with pytest.raises(ConfigurationError, match="recovery"):
            SolverOptions(recovery=True, checkpoint_dir="/tmp/x")

    def test_recovery_requires_dir(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            SolverOptions(recovery=True, guard_interval=5)

    def test_consistent_recovery_config_accepted(self):
        opt = SolverOptions(recovery=True, guard_interval=5,
                            checkpoint_dir="/tmp/x", integrity=True,
                            abft_interval=10)
        assert opt.recovery and opt.integrity

    def test_negative_abft_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            SolverOptions(abft_interval=-1)


class TestDeckKnobs:
    def test_checkpoint_and_abft_keys(self):
        deck = parse_deck_text(
            "tl_checkpoint_interval=5\n"
            "tl_checkpoint_dir=results/ck\n"
            "tl_abft_interval=20\n")
        assert deck.tl_checkpoint_interval == 5
        assert deck.tl_checkpoint_dir == "results/ck"
        assert deck.tl_abft_interval == 20

    def test_bare_resilience_flags(self):
        deck = parse_deck_text("tl_enable_recovery\ntl_enable_checksums\n")
        assert deck.tl_enable_recovery and deck.tl_enable_checksums
        assert not parse_deck_text("x_cells=4\n").tl_enable_recovery

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_deck_text("tl_checkpoint_interval=five\n")


# -- sweep v2 and ABFT --------------------------------------------------------


class TestSweepV2:
    def test_exit_code_and_recovery_cells(self):
        from repro.harness.resilience_sweep import (
            SOLVERS,
            run_resilience_sweep,
        )
        sweep = run_resilience_sweep(n=16, rates=(0.0,), solvers=SOLVERS[:1])
        doc = sweep.as_dict()
        assert doc["schema"] == "repro.resilience_sweep/v2"
        (cell,) = doc["cells"]
        assert cell["recoveries"] == 0
        assert cell["integrity_detections"] == 0
        assert sweep.all_converged and sweep.exit_code == 0

    def test_nonconverged_cell_fails_the_sweep(self):
        from types import SimpleNamespace

        from repro.harness.resilience_sweep import ResilienceSweepResult
        result = ResilienceSweepResult(n=16, seed=7, rates=(0.0,),
                                       solvers=("cg",))
        result.reports[("cg", 0.0)] = SimpleNamespace(converged=False)
        assert not result.all_converged
        assert result.exit_code == 1


class TestAbftReplay:
    def test_abft_clean_run_unchanged(self):
        """The residual replay never fires on an uncorrupted solve."""
        base = run_resilient(CG_GUARDED, FaultPlan.disabled(), n=24)
        opts = SolverOptions(solver="cg", eps=1e-10, max_iters=600,
                             guard_interval=5, abft_interval=10)
        checked = run_resilient(opts, FaultPlan.disabled(), n=24)
        assert checked.converged
        assert checked.iterations == base.iterations
        assert checked.rollbacks == 0

    def test_abft_interval_threads_through_driver(self):
        from tests.helpers import crooked_pipe_system as cps  # noqa: F401
        from repro.mesh import Field
        from repro.solvers import solve_linear
        from repro.testing import serial_operator
        g, kx, ky, bg = crooked_pipe_system(16)
        op = serial_operator(g, kx, ky, halo=1)
        b = Field.from_global(op.tile, 1, bg)
        opts = SolverOptions(solver="cg", abft_interval=5)
        result = solve_linear(op, b, options=opts)
        assert result.converged


# -- CLI ----------------------------------------------------------------------


DECK = """\
*tea
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0
x_cells=12
y_cells=12
initial_timestep=0.04
end_time=0.16
use_cg
*endtea
"""


@pytest.mark.slow
class TestRestartCli:
    def test_checkpoint_run_then_cli_restart(self, tmp_path, capsys):
        from repro.cli.main import main
        deck = tmp_path / "tea.in"
        deck.write_text(DECK)
        ck = tmp_path / "ck"
        rc = main(["tealeaf", "--deck", str(deck), "--steps", "4",
                   "--checkpoint-dir", str(ck), "--checkpoint-interval", "2"])
        assert rc == 0
        # crash after step 2: the step-4 checkpoint never happened
        import shutil
        shutil.rmtree(ck / "step-000004")
        rc = main(["restart", "--from", str(ck)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 step(s) resumed" in out

    def test_restart_without_checkpoint_is_an_error(self, tmp_path, capsys):
        from repro.cli.main import main
        rc = main(["restart", "--from", str(tmp_path)])
        assert rc == 2
        assert "no committed checkpoint" in capsys.readouterr().err

    def test_interval_without_dir_is_an_error(self, tmp_path, capsys):
        from repro.cli.main import main
        deck = tmp_path / "tea.in"
        deck.write_text(DECK)
        rc = main(["tealeaf", "--deck", str(deck),
                   "--checkpoint-interval", "2"])
        assert rc == 2
        assert "checkpoint-dir" in capsys.readouterr().err


# -- snapshot atomicity (satellite) -------------------------------------------


class TestSnapshots:
    def test_npy_roundtrip_atomic(self, tmp_path):
        from repro.io.snapshots import load_field_npy, save_field_npy
        field = np.arange(6.0).reshape(2, 3)
        path = save_field_npy(tmp_path / "t", field)
        assert path.suffix == ".npy"
        assert np.array_equal(load_field_npy(path), field)
        assert [f for f in tmp_path.iterdir() if ".tmp" in f.name] == []

    def test_torn_npy_rejected(self, tmp_path):
        from repro.io.snapshots import load_field_npy, save_field_npy
        path = save_field_npy(tmp_path / "t", np.arange(64.0))
        with open(path, "r+b") as fh:
            fh.truncate(32)
        with pytest.raises(CheckpointError):
            load_field_npy(path)

    def test_require_finite(self, tmp_path):
        from repro.io.snapshots import load_field_npy, save_field_npy
        path = save_field_npy(tmp_path / "t", np.array([1.0, np.nan]))
        assert np.isnan(load_field_npy(path)[1])  # lenient by default
        with pytest.raises(CheckpointError, match="non-finite"):
            load_field_npy(path, require_finite=True)

    def test_csv_atomic(self, tmp_path):
        from repro.io.snapshots import save_field_csv
        path = save_field_csv(tmp_path / "t.csv", np.arange(6.0).reshape(2, 3))
        assert np.allclose(np.loadtxt(path, delimiter=","),
                           np.arange(6.0).reshape(2, 3))
        assert [f for f in tmp_path.iterdir() if ".tmp" in f.name] == []
