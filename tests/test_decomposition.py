"""Unit tests: rectangular decomposition and neighbour topology."""

import pytest

from repro.mesh import Grid2D, choose_factors, decompose, tile_for_rank
from repro.utils import DecompositionError


class TestChooseFactors:
    def test_square_mesh_square_ranks(self):
        assert choose_factors(4, 100, 100) == (2, 2)
        assert choose_factors(16, 100, 100) == (4, 4)

    def test_elongated_mesh_prefers_matching_split(self):
        # Wide mesh: cut fewer columns (large px) to minimise perimeter.
        px, py = choose_factors(4, 1000, 10)
        assert px == 4 and py == 1
        px, py = choose_factors(4, 10, 1000)
        assert px == 1 and py == 4

    def test_prime_rank_count(self):
        assert choose_factors(7, 100, 100) in ((7, 1), (1, 7))

    def test_one_rank(self):
        assert choose_factors(1, 8, 8) == (1, 1)

    def test_invalid(self):
        with pytest.raises(DecompositionError):
            choose_factors(0, 8, 8)


class TestDecompose:
    def test_partition_covers_grid_exactly(self):
        g = Grid2D(17, 13)
        for nranks in (1, 2, 3, 4, 6, 12):
            tiles = decompose(g, nranks)
            assert len(tiles) == nranks
            seen = set()
            for t in tiles:
                for k in range(t.y0, t.y1):
                    for j in range(t.x0, t.x1):
                        assert (k, j) not in seen
                        seen.add((k, j))
            assert len(seen) == g.n_cells

    def test_rank_ordering_row_major(self):
        tiles = decompose(Grid2D(8, 8), 4, factors=(2, 2))
        assert [t.rank for t in tiles] == [0, 1, 2, 3]
        assert (tiles[1].cx, tiles[1].cy) == (1, 0)
        assert (tiles[2].cx, tiles[2].cy) == (0, 1)

    def test_neighbors(self):
        tiles = decompose(Grid2D(9, 9), 9, factors=(3, 3))
        center = tiles[4]
        assert center.left == 3
        assert center.right == 5
        assert center.down == 1
        assert center.up == 7
        assert center.n_neighbors == 4
        corner = tiles[0]
        assert corner.left is None
        assert corner.down is None
        assert corner.right == 1
        assert corner.up == 3
        assert corner.n_neighbors == 2

    def test_uneven_split_sizes(self):
        tiles = decompose(Grid2D(10, 1), 3, factors=(3, 1))
        assert [t.nx for t in tiles] == [4, 3, 3]
        assert all(t.ny == 1 for t in tiles)

    def test_explicit_factors_mismatch(self):
        with pytest.raises(DecompositionError):
            decompose(Grid2D(8, 8), 4, factors=(3, 2))

    def test_too_many_ranks(self):
        with pytest.raises(DecompositionError):
            decompose(Grid2D(2, 2), 8)

    def test_global_slices(self):
        import numpy as np
        g = Grid2D(8, 6)
        arr = np.arange(48).reshape(6, 8)
        tiles = decompose(g, 4)
        parts = [arr[t.global_slices] for t in tiles]
        assert sum(p.size for p in parts) == 48

    def test_extension_clips_at_boundaries(self):
        tiles = decompose(Grid2D(9, 9), 9, factors=(3, 3))
        assert tiles[4].extension(3) == {"left": 3, "right": 3,
                                         "down": 3, "up": 3}
        assert tiles[0].extension(3) == {"left": 0, "right": 3,
                                         "down": 0, "up": 3}


class TestTileForRank:
    def test_matches_decompose(self):
        g = Grid2D(12, 12)
        tiles = decompose(g, 6)
        for r in range(6):
            assert tile_for_rank(g, 6, r) == tiles[r]

    def test_out_of_range(self):
        with pytest.raises(DecompositionError):
            tile_for_rank(Grid2D(8, 8), 4, 4)
        with pytest.raises(DecompositionError):
            tile_for_rank(Grid2D(8, 8), 4, -1)
