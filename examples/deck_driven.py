"""Deck-driven runs: the TeaLeaf ``tea.in`` workflow.

Writes a benchmark input deck, parses it, runs the simulation on a
multi-rank in-process world, and — as a bonus — solves a 3D (7-point)
problem with the serial 3D path the paper mentions in §II.

Run:  python examples/deck_driven.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Grid3D
from repro.physics import face_coefficients_3d, parse_deck
from repro.physics.deck import CROOKED_PIPE_DECK, deck_to_problem
from repro.physics.simulation import run_simulation
from repro.solvers import SolverOptions
from repro.solvers.dim3 import StencilOperator3D, cg_solve_3d


def run_deck() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        deck_path = Path(tmp) / "tea.in"
        deck_path.write_text(CROOKED_PIPE_DECK.format(n=48))
        deck = parse_deck(deck_path)

    options = SolverOptions(
        solver=deck.solver,
        eps=deck.tl_eps,
        max_iters=deck.tl_max_iters,
        ppcg_inner_steps=deck.tl_ppcg_inner_steps,
    )
    print(f"deck: {deck.x_cells}x{deck.y_cells}, solver={deck.solver}, "
          f"dt={deck.initial_timestep}, {len(deck.states)} states")
    report = run_simulation(deck.grid, deck_to_problem(deck), options,
                            dt=deck.initial_timestep, n_steps=5, nranks=4)
    for s in report.steps:
        print(f"  step {s.step} t={s.time:.2f}: {s.iterations} outer "
              f"+ {s.inner_iterations} inner, mean T={s.mean_temperature:.6f}")


def run_3d() -> None:
    print("\n3D (7-point) serial solve:")
    grid = Grid3D(24, 24, 24)
    rng = np.random.default_rng(42)
    kappa = np.where(rng.random(grid.shape) < 0.2, 10.0, 0.01)
    rx = 0.04 / grid.dx ** 2
    kx, ky, kz = face_coefficients_3d(kappa, rx, rx, rx)
    op = StencilOperator3D(kx=kx, ky=ky, kz=kz)
    u0 = np.full(grid.shape, 0.01)
    u0[10:14, 10:14, 10:14] = 25.0
    u1, iters, rel = cg_solve_3d(op, u0, eps=1e-10)
    print(f"  {grid.nx}^3 mesh: CG converged in {iters} iterations "
          f"(relative residual {rel:.2e})")
    print(f"  heat conserved: {u0.sum():.6f} -> {u1.sum():.6f}")


if __name__ == "__main__":
    run_deck()
    run_3d()
