"""Deterministic fault injection and self-healing solves.

Walks the repro.resilience subsystem end to end:

1. a CG solve through the resilient stack with transient wire faults and
   a corrupted allreduce — retried and rolled back to the fault-free
   answer, deterministically (same seed => same fault log, same iteration
   count);
2. graceful degradation — CPPCG handed unusable spectrum bounds falls
   back to plain CG instead of failing;
3. a crashed rank in a 4-rank SPMD world — survivable when the crash
   window is shorter than the retry budget;
4. step-level checkpoint/restart of the full mini-app time loop.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.comm import launch_spmd
from repro.mesh import Field, decompose
from repro.physics import crooked_pipe
from repro.mesh.grid import Grid2D
from repro.physics.simulation import Simulation
from repro.resilience import (
    CrashWindow,
    FaultPlan,
    FaultRule,
    build_resilient_comm,
    run_resilient,
)
from repro.solvers import SolverOptions, StencilOperator2D, solve_linear
from repro.utils.errors import ConvergenceError


def demo_transient_faults():
    print("1) CG through 2% transient faults + corrupted reductions")
    plan = FaultPlan(seed=7, rules=(
        FaultRule(mode="error", probability=0.02,
                  ops=("send", "recv", "allreduce")),
        FaultRule(mode="corrupt_nan", probability=0.02, ops=("allreduce",)),
    ))
    options = SolverOptions(solver="cg", eps=1e-10, max_iters=600,
                            guard_interval=5)
    clean = run_resilient(options, FaultPlan.disabled(), n=24)
    faulty = run_resilient(options, plan, n=24)
    rerun = run_resilient(options, plan, n=24)
    print(f"   fault-free: {clean.summary()}")
    print(f"   injected  : {faulty.summary()}")
    for ev in faulty.fault_events:
        print(f"     {ev}")
    same = (faulty.fault_events == rerun.fault_events
            and faulty.iterations == rerun.iterations)
    print(f"   deterministic rerun identical: {same}")


def demo_degradation():
    print("\n2) CPPCG degrading to plain CG on unusable spectrum bounds")
    from repro.solvers import EigenBounds, ppcg_solve
    from repro.testing import crooked_pipe_system
    from repro.comm import SerialComm

    grid, kxg, kyg, bg = crooked_pipe_system(32)
    tile = decompose(grid, 1)[0]
    op = StencilOperator2D.from_global_faces(tile, 1, kxg, kyg, SerialComm())
    b = Field.from_global(tile, 1, bg)
    # Degenerate spectrum estimate: passes EigenBounds validation but a
    # zero-width ellipse is unusable for the Chebyshev preconditioner.
    bad = EigenBounds(1.0, 1.0)
    result = ppcg_solve(op, b, eps=1e-10, bounds=bad, warmup_iters=10,
                        degrade=True)
    print(f"   converged={result.converged} in {result.iterations} iters; "
          f"degraded={result.degraded} ({result.degraded_reason})")


def demo_crash_window():
    print("\n3) rank 1 unresponsive for 3 ops in a 4-rank world")
    plan = FaultPlan(seed=3, crashes=(CrashWindow(rank=1, start=40, length=3),))
    options = SolverOptions(solver="cg", eps=1e-10, max_iters=600,
                            guard_interval=5)
    report = run_resilient(options, plan, n=24, size=4)
    crashed = [ev for ev in report.fault_events if ev.rule == -1]
    print(f"   {report.summary()}")
    print(f"   crash events (all on rank 1): "
          f"{[(ev.rank, ev.op) for ev in crashed]}")


def demo_step_retry():
    print("\n4) mini-app time loop: checkpoint every step, retry failures")
    from repro.comm import SerialComm

    grid = Grid2D(24, 24)
    options = SolverOptions(solver="cg", eps=1e-10, max_iters=400)
    sim = Simulation(SerialComm(), grid, crooked_pipe(), options)
    step = sim.step
    armed = [True]

    def flaky_step():
        if sim.step_index == 1 and armed[0]:
            armed[0] = False
            raise ConvergenceError("injected step failure")
        return step()

    sim.step = flaky_step
    stats = sim.run(3, checkpoint_interval=1, max_step_retries=2)
    print(f"   completed {len(stats)} steps despite one injected failure; "
          f"final mean temperature {stats[-1].mean_temperature:.6f}")


if __name__ == "__main__":
    demo_transient_faults()
    demo_degradation()
    demo_crash_window()
    demo_step_retry()
