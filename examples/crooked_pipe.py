"""The paper's benchmark: heat racing down the crooked pipe (Fig. 3).

Runs the crooked-pipe problem to t = 15 with CPPCG on a decomposed
4-rank world (in-process SPMD), renders the temperature field as an ASCII
heat map, and reports per-step solver statistics.

Run:  python examples/crooked_pipe.py [mesh_n]
"""

import sys

from repro import Grid2D, SolverOptions, crooked_pipe, run_simulation
from repro.io import render_heatmap


def main(mesh_n: int = 64) -> None:
    dt, end_time = 0.04, 15.0
    n_steps = round(end_time / dt)
    options = SolverOptions(solver="ppcg", eps=1e-8, ppcg_inner_steps=10,
                            halo_depth=4)

    print(f"crooked pipe: {mesh_n}x{mesh_n} mesh, {n_steps} steps of "
          f"dt={dt} on 4 SPMD ranks, solver {options.label()}")
    report = run_simulation(Grid2D(mesh_n, mesh_n), crooked_pipe(), options,
                            dt=dt, n_steps=n_steps, nranks=4)

    total_outer = sum(s.iterations for s in report.steps)
    total_inner = sum(s.inner_iterations for s in report.steps)
    print(f"total: {total_outer} outer + {total_inner} inner iterations "
          f"across {report.n_steps} steps")
    print(f"mean temperature (conserved): "
          f"{report.final_mean_temperature:.6f}\n")

    print(render_heatmap(report.temperature, width=72))
    T = report.temperature
    print(f"\ntemperature range: [{T.min():.4g}, {T.max():.4g}] — "
          "denser glyphs are hotter; note the heat confined to the pipe.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
