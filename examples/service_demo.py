"""The multi-tenant solve service end to end (repro.service).

Walks both faces of the service:

1. the asyncio front-end — concurrent deck submissions on real time,
   with a wall-clock deadline firing a cooperative cancel, a poison deck
   failing structurally, and a quota shed;
2. cooperative cancellation semantics — a deadline aborts a solve at an
   iteration boundary carrying the exact iteration it fired at, and an
   inert token is bit-transparent;
3. the deterministic virtual-clock engine — a mixed 40-request workload
   under a seeded chaos storm, every request ending in a classified
   terminal status, eigen-bound setups served from the LRU cache;
4. overload-graceful degradation — a saturated queue ladders deep
   matrix-powers CPPCG down before shedding;
5. crash consistency — a journaled engine is killed mid-campaign, a
   fresh engine replays the write-ahead log (acknowledged solves are
   never redone), and a resubmitted idempotency key is served from the
   durable result store across the restart.

Run:  python examples/service_demo.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.physics.deck import CROOKED_PIPE_DECK
from repro.service import (
    CancelToken,
    DeadlineExceeded,
    RequestJournal,
    ResultStore,
    STATUSES,
    ServiceConfig,
    ServiceEngine,
    SolveRequest,
    SolveService,
)
from repro.solvers import cg_solve
from repro.testing import crooked_pipe_system, serial_operator
from repro.mesh import Field

CG_DECK = CROOKED_PIPE_DECK.format(n=12).replace("use_ppcg", "use_cg")
PPCG_DECK = CROOKED_PIPE_DECK.format(n=12).replace(
    "*endtea", "tl_eigen_warmup_iters=8\ntl_ppcg_halo_depth=4\n*endtea")


def demo_front_end():
    print("1) asyncio front-end: mixed concurrent outcomes")

    async def scenario():
        with SolveService(workers=2, quota_rate=50.0, quota_burst=5.0) as svc:
            jobs = [svc.submit(CG_DECK, tenant="acme", n=12)
                    for _ in range(3)]
            jobs.append(svc.submit(CG_DECK, tenant="acme", n=12,
                                   deadline_s=1e-4))
            jobs.append(svc.submit("*tea\nbogus=1\n*endtea\n",
                                   tenant="acme"))
            jobs.append(svc.submit(CG_DECK, tenant="acme", n=12))
            return await asyncio.gather(*jobs)

    outcomes = asyncio.run(scenario())
    for o in outcomes:
        extra = f" [{o.error_class}]" if o.error_class else ""
        print(f"   {o.request_id} {o.status:<17} "
              f"{o.latency_s * 1e3:7.1f} ms{extra}")
    assert sum(o.status == "completed" for o in outcomes) == 3
    assert outcomes[3].status == "deadline_exceeded"
    assert outcomes[4].status == "failed"
    assert outcomes[5].status == "shed" and outcomes[5].shed_reason == "quota"


def demo_cooperative_cancel():
    print("2) cooperative cancellation at iteration boundaries")
    grid, kxg, kyg, bg = crooked_pipe_system(16)
    op = serial_operator(grid, kxg, kyg)
    b = Field.from_global(op.tile, 1, bg)
    try:
        cg_solve(op, b, eps=1e-12, max_iters=200,
                 cancel=CancelToken(iteration_budget=5))
    except DeadlineExceeded as exc:
        print(f"   deadline fired at iteration {exc.iteration} "
              f"(budget 5): {type(exc).__name__}")
        assert exc.iteration == 5
    plain = cg_solve(op, b, eps=1e-10, max_iters=200)
    tokened = cg_solve(op, b, eps=1e-10, max_iters=200, cancel=CancelToken())
    assert tokened.iterations == plain.iterations
    print(f"   inert token is bit-transparent "
          f"({plain.iterations} iterations either way)")


def demo_deterministic_engine():
    print("3) virtual-clock engine: 40 mixed requests, chaos on")
    requests = []
    for i in range(40):
        deck = PPCG_DECK if i % 3 == 0 else CG_DECK
        requests.append(SolveRequest(
            request_id=f"req-{i:03d}", tenant=("acme", "beta")[i % 2],
            arrival_s=i * 4e-4, deck_text=deck, n=12,
            deadline_s=2e-4 if i % 11 == 5 else None,
            cancel_after_s=1e-4 if i % 13 == 7 else None,
            chaos_trial=i if i % 5 == 0 else -1, max_attempts=3))
    engine = ServiceEngine(ServiceConfig(workers=2, max_queue=6,
                                         quota_rate=400.0, quota_burst=10.0))
    outcomes = engine.run(requests)
    counts = {s: sum(o.status == s for o in outcomes) for s in STATUSES}
    print("   " + " ".join(f"{s}={c}" for s, c in counts.items() if c))
    stats = engine.cache.stats()
    print(f"   eigen-bound cache: {stats['hits']} hits / "
          f"{stats['misses']} misses")
    assert all(o.status in STATUSES for o in outcomes)
    assert stats["hits"] > 0
    return engine


def demo_degradation():
    print("4) overload degradation: deep CPPCG ladders down under pressure")
    requests = [SolveRequest(request_id=f"req-{i:03d}", tenant="acme",
                             arrival_s=i * 1e-6, deck_text=PPCG_DECK, n=12,
                             max_attempts=2)
                for i in range(6)]
    engine = ServiceEngine(ServiceConfig(
        workers=1, max_queue=6, quota_rate=400.0, quota_burst=10.0,
        degrade_low=0.25, degrade_high=0.5))
    outcomes = engine.run(requests)
    degraded = [o for o in outcomes if o.status == "degraded"]
    for o in degraded[:3]:
        print(f"   {o.request_id}: {o.solver} via {o.degrade_steps}")
    assert degraded, [o.status for o in outcomes]


def demo_crash_recovery():
    print("5) crash consistency: journal replay + exactly-once keys")
    import numpy as np

    def make_requests():
        # Arrivals spaced far apart so each solve finishes before the
        # next arrives — the journaled prefix is then independent of how
        # many requests the run was given.
        return [SolveRequest(
            request_id=f"req-{i:03d}", tenant="acme",
            arrival_s=i * 0.5, deck_text=CG_DECK, n=12,
            idempotency_key="golden" if i in (1, 5) else "",
            max_attempts=2) for i in range(6)]

    with tempfile.TemporaryDirectory() as td:
        root = Path(td)

        def engine():
            return ServiceEngine(
                ServiceConfig(workers=2, quota_rate=400.0,
                              quota_burst=10.0),
                journal=RequestJournal(root / "wal"),
                results=ResultStore(root / "results"))

        # "Crash" after four requests: the journal keeps their full
        # lifecycle (the soak harness crashes for real — a SIGKILL mid
        # journal frame; see `make service-soak`).
        crashed = engine()
        before = crashed.run(make_requests()[:4])
        crashed.journal.close()

        survivor = engine()
        outcomes = survivor.run(make_requests())
        survivor.journal.close()
        rec = survivor.recovery_summary()
        print(f"   restarted engine replayed {rec['replayed_attempts']} "
              f"journaled solves, ran the rest live")
        assert rec["replayed_attempts"] == 4        # nothing re-solved
        assert [o.to_dict() for o in before] == \
               [o.to_dict() for o in outcomes[:4]]  # acks unchanged
        dedup = outcomes[5]
        print(f"   {dedup.request_id} reused idempotency key 'golden': "
              f"status={dedup.status} deduplicated={dedup.deduplicated}")
        assert dedup.deduplicated and dedup.status == "completed"
        assert np.array_equal(dedup.x, outcomes[1].x)   # served from store


def main():
    demo_front_end()
    demo_cooperative_cancel()
    demo_deterministic_engine()
    demo_degradation()
    demo_crash_recovery()
    print("service demo: all stages passed")


if __name__ == "__main__":
    main()
