"""Strong-scaling study: regenerate the paper's Figs. 5-8 from the model.

Measures iteration counts with real solves at small meshes, extrapolates to
the paper's 4000x4000, and evaluates the calibrated Titan / Piz Daint /
Spruce machine models across node counts — printing each figure as a table
with the paper's anchor values alongside.

Run:  python examples/scaling_study.py
"""

from repro.harness import run_fig5, run_fig6, run_fig7, run_fig8


def main() -> None:
    fig5 = run_fig5()
    print(fig5.to_text())
    print(f"-> PPCG-16 at 8192 nodes: {fig5.value('PPCG - 16', 8192):.2f} s "
          "(paper: 4.26 s)\n")

    fig6 = run_fig6()
    print(fig6.to_text())
    t = fig5.value("PPCG - 16", 2048)
    p = fig6.value("PPCG - 16", 2048)
    print(f"-> at 2048 nodes: Titan {t:.2f} s vs Piz Daint {p:.2f} s "
          f"= {t / p:.2f}x (paper: 4.09 vs 2.79 = 1.47x)\n")

    fig7 = run_fig7()
    print(fig7.to_text())
    amg_best = min(fig7.best("BoomerAMG (Hybrid)")[1],
                   fig7.best("BoomerAMG (MPI)")[1])
    print(f"-> best baseline time {amg_best:.2f} s at "
          f"{fig7.best('BoomerAMG (Hybrid)')[0]} nodes; CPPCG keeps scaling "
          f"to {fig7.best('PPCG - 1 (MPI)')[0]} nodes\n")

    fig8 = run_fig8()
    print(fig8.to_text(value_fmt="{:.3f}"))
    print("-> Spruce above 1.0 = super-linear (cache effect); "
          "Piz Daint above Titan = Aries vs Gemini.")


if __name__ == "__main__":
    main()
