"""Beyond CPPCG: the paper's §VII roadmap, implemented.

Demonstrates the follow-on communication-avoiding techniques the paper
sketches as future work, on real instrumented solves plus the machine
model:

1. single-reduction (Chronopoulos-Gear) CG — "multiple dot products
   combined into a single communication step";
2. deflated CG (Frank & Vuik, the paper's ref [27]) — removing low-energy
   modes via subdomain deflation;
3. adaptive CPPCG — restarting with re-estimated eigenvalue bounds when
   the polynomial misbehaves (the §VIII robustness question);
4. the hybrid domain-decomposition + agglomeration multigrid;
5. what-if sensitivity analysis of future machines.

Run:  python examples/communication_avoiding.py
"""

import numpy as np

from repro import Grid2D, SolverOptions, crooked_pipe
from repro.comm import InstrumentedComm, SerialComm, launch_spmd
from repro.mesh import Field, decompose
from repro.physics import cell_conductivity, face_coefficients, global_initial_state
from repro.solvers import (
    EigenBounds,
    StencilOperator2D,
    cg_fused_solve,
    cg_solve,
    deflated_cg_solve,
    ppcg_solve,
)
from repro.utils import EventLog


def build(n, dt=0.04):
    grid = Grid2D(n, n)
    density, _, u0 = global_initial_state(grid, crooked_pipe())
    kappa = cell_conductivity(density)
    kx, ky = face_coefficients(kappa, dt / grid.dx ** 2, dt / grid.dy ** 2)
    return grid, kx, ky, u0


def instrumented_op(grid, kx, ky, halo=1):
    log = EventLog()
    comm = InstrumentedComm(SerialComm(), log)
    tile = decompose(grid, 1)[0]
    op = StencilOperator2D.from_global_faces(tile, halo, kx, ky, comm,
                                             events=log)
    return op, log


def demo_fused_cg():
    print("1) single-reduction CG (Chronopoulos-Gear)")
    grid, kx, ky, u0 = build(96)
    for name, solver in (("classic", cg_solve), ("fused", cg_fused_solve)):
        op, log = instrumented_op(grid, kx, ky)
        b = Field.from_global(op.tile, 1, u0)
        result = solver(op, b, eps=1e-9)
        print(f"   {name:8s}: {result.iterations:4d} iterations, "
              f"{log.count_kind('allreduce'):4d} global reductions")


def demo_deflation():
    print("\n2) deflated CG on increasingly stiff steps (dt sweep)")
    for dt in (0.04, 10.0, 50.0):
        grid, kx, ky, u0 = build(48, dt=dt)
        op, _ = instrumented_op(grid, kx, ky)
        b = Field.from_global(op.tile, 1, u0)
        plain = cg_solve(op, b, eps=1e-9).iterations
        op2, _ = instrumented_op(grid, kx, ky)
        b2 = Field.from_global(op2.tile, 1, u0)
        defl = deflated_cg_solve(op2, b2, eps=1e-9, blocks=(8, 8)).iterations
        print(f"   dt={dt:6.2f}: CG {plain:5d} -> deflated (8x8) {defl:5d} "
              f"iterations ({plain / defl:.2f}x)")


def demo_adaptive():
    print("\n3) adaptive CPPCG recovering from bad eigenvalue bounds")
    grid, kx, ky, u0 = build(48)
    bad = EigenBounds(1.0, 1.5)  # lam_max grossly underestimated
    op, _ = instrumented_op(grid, kx, ky)
    b = Field.from_global(op.tile, 1, u0)
    result = ppcg_solve(op, b, eps=1e-9, bounds=bad, warmup_iters=15,
                        adaptive=True)
    print(f"   converged={result.converged} after {result.restarts} "
          f"restart(s); final bounds "
          f"[{result.eigen_bounds[0]:.2f}, {result.eigen_bounds[1]:.2f}]")


def demo_hybrid_mg():
    print("\n4) hybrid DD + agglomeration multigrid (4 SPMD ranks)")
    from repro.multigrid.distributed import dmgcg_solve
    grid, kx, ky, u0 = build(64)

    def rank_main(comm):
        tile = decompose(grid, comm.size)[comm.rank]
        op = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
        b = Field.from_global(tile, 1, u0)
        return dmgcg_solve(op, b, eps=1e-10)

    result = launch_spmd(rank_main, 4)[0]
    print(f"   {result.iterations} outer iterations over "
          f"{result.n_levels} levels (decomposed + agglomerated coarse)")


def demo_sensitivity():
    print("\n5) what binds at 8192 Titan nodes? (2x degradation per knob)")
    from repro.perfmodel import TITAN, SolverConfig
    from repro.perfmodel.sensitivity import sensitivities
    for label, config, iters in (
        ("CG-1", SolverConfig("cg"), 8556.0),
        ("PPCG-16", SolverConfig("ppcg", inner_steps=10, halo_depth=16),
         934.0),
    ):
        s = sensitivities(TITAN, config, nodes=8192, outer_iters=iters)
        ranked = sorted(s.items(), key=lambda kv: -kv[1])
        pretty = ", ".join(f"{k}={v:.2f}x" for k, v in ranked)
        print(f"   {label:8s}: {pretty}")


if __name__ == "__main__":
    demo_fused_cg()
    demo_deflation()
    demo_adaptive()
    demo_hybrid_mg()
    demo_sensitivity()
