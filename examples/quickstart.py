"""Quickstart: one implicit heat-conduction step, three ways.

Builds the TeaLeaf operator for a small crooked-pipe problem and solves
``A u_new = u_old`` with CG, CPPCG and MG-CG, printing what each paid.

Run:  python examples/quickstart.py
"""

from repro import (
    Grid2D,
    SolverOptions,
    crooked_pipe,
    run_simulation,
)


def main() -> None:
    grid = Grid2D(64, 64)
    problem = crooked_pipe()

    print(f"Crooked pipe on a {grid.nx}x{grid.ny} mesh "
          f"(dx = {grid.dx:.3f}), one implicit step, dt = 0.04\n")

    for options in (
        SolverOptions(solver="cg", eps=1e-10),
        SolverOptions(solver="ppcg", eps=1e-10, ppcg_inner_steps=10),
        SolverOptions(solver="mgcg", eps=1e-10),
    ):
        report = run_simulation(grid, problem, options, n_steps=1)
        step = report.steps[0]
        dots = report.events.count_kind("allreduce")
        print(f"{options.label():>10s}: {step.iterations:4d} outer "
              f"+ {step.inner_iterations:4d} inner iterations "
              f"(+{step.warmup_iterations} warm-up), "
              f"{dots:4d} global reductions, "
              f"residual {step.residual_norm:.2e}")

    print("\nSame answer, very different communication bills — "
          "that is the paper's design space.")


if __name__ == "__main__":
    main()
