"""Design-space exploration: the full solver menu on one hard step.

Reproduces the paper's qualitative comparison with *real* instrumented
solves: iterations, matvecs, global reductions and halo traffic for every
solver/preconditioner combination, printed as a table.

Run:  python examples/solver_comparison.py [mesh_n]
"""

import sys

from repro import Grid2D, SolverOptions, crooked_pipe
from repro.comm import InstrumentedComm, SerialComm
from repro.io import format_table
from repro.mesh import Field, decompose
from repro.physics import cell_conductivity, face_coefficients, global_initial_state
from repro.solvers import StencilOperator2D, solve_linear
from repro.utils import EventLog


def crooked_pipe_system(n: int, dt: float = 0.04):
    """Global arrays of the crooked-pipe first implicit step."""
    grid = Grid2D(n, n)
    density, _, u0 = global_initial_state(grid, crooked_pipe())
    kappa = cell_conductivity(density)
    kxg, kyg = face_coefficients(kappa, dt / grid.dx ** 2, dt / grid.dy ** 2)
    return grid, kxg, kyg, u0

CASES = [
    ("Jacobi", SolverOptions(solver="jacobi", eps=1e-8, max_iters=500_000)),
    ("CG", SolverOptions(solver="cg", eps=1e-8)),
    ("CG + diag", SolverOptions(solver="cg", eps=1e-8,
                                preconditioner="diagonal")),
    ("CG + block", SolverOptions(solver="cg", eps=1e-8,
                                 preconditioner="block_jacobi")),
    ("Chebyshev", SolverOptions(solver="chebyshev", eps=1e-8)),
    ("CPPCG m=5", SolverOptions(solver="ppcg", eps=1e-8,
                                ppcg_inner_steps=5)),
    ("CPPCG m=10", SolverOptions(solver="ppcg", eps=1e-8,
                                 ppcg_inner_steps=10)),
    ("CPPCG m=10 d=8", SolverOptions(solver="ppcg", eps=1e-8,
                                     ppcg_inner_steps=10, halo_depth=8)),
    ("MG-CG", SolverOptions(solver="mgcg", eps=1e-8)),
]


def main(mesh_n: int = 96) -> None:
    grid, kxg, kyg, bg = crooked_pipe_system(mesh_n)
    rows = []
    for name, options in CASES:
        log = EventLog()
        comm = InstrumentedComm(SerialComm(), log)
        tile = decompose(grid, 1)[0]
        op = StencilOperator2D.from_global_faces(
            tile, options.required_field_halo, kxg, kyg, comm, events=log)
        b = Field.from_global(tile, options.required_field_halo, bg)
        result = solve_linear(op, b, options=options)
        rows.append([
            name,
            result.iterations,
            result.inner_iterations,
            result.warmup_iterations,
            log.count("matvec"),
            log.count_kind("allreduce"),
            log.count_kind("halo_exchange"),
            "yes" if result.converged else "NO",
        ])
    print(f"crooked-pipe first step, {mesh_n}x{mesh_n}, eps = 1e-8\n")
    print(format_table(
        ["solver", "outer", "inner", "warmup", "matvecs",
         "reductions", "exchanges", "converged"], rows))
    print("\nReading guide: CPPCG trades matvecs for reductions — the "
          "communication-avoiding bet that wins at scale (Figs. 5-7).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
