"""Fig. 4: convergence of average temperature as the mesh is refined.

The paper runs the crooked pipe to t = 15 at increasing mesh sizes and shows
the domain-averaged temperature flattening out — 4000x4000 is where extra
resolution stops being "scientifically interesting", which justifies the
strong-scaling (rather than weak-scaling) study.

We reproduce the sweep at reduced cost by using a larger implicit step (the
implicit solver is unconditionally stable, so only temporal accuracy — not
the converged-in-mesh trend — is affected; the bench asserts the trend).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.grid import Grid2D
from repro.physics.problems import crooked_pipe
from repro.physics.simulation import run_simulation
from repro.solvers.options import SolverOptions

END_TIME = 15.0
#: Bench step size (paper: 0.04; see module docstring for the substitution).
BENCH_DT = 0.6
DEFAULT_SIZES = (16, 24, 32, 48, 64, 96)


@dataclass
class Fig4Result:
    mesh_sizes: list[int]
    mean_temperatures: list[float]
    dt: float
    end_time: float

    def deltas(self) -> list[float]:
        """Successive |change| in mean temperature (should shrink)."""
        t = self.mean_temperatures
        return [abs(b - a) for a, b in zip(t, t[1:])]


def run_fig4(mesh_sizes: tuple[int, ...] = DEFAULT_SIZES, *,
             dt: float = BENCH_DT, end_time: float = END_TIME,
             eps: float = 1e-8) -> Fig4Result:
    """Mean temperature at ``end_time`` for each mesh size."""
    n_steps = max(1, round(end_time / dt))
    options = SolverOptions(solver="ppcg", eps=eps, ppcg_inner_steps=10)
    means = []
    for n in mesh_sizes:
        report = run_simulation(
            Grid2D(n, n), crooked_pipe(), options,
            dt=dt, n_steps=n_steps, nranks=1, gather_temperature=False)
        means.append(report.final_mean_temperature)
    return Fig4Result(mesh_sizes=list(mesh_sizes), mean_temperatures=means,
                      dt=dt, end_time=end_time)


def main() -> str:
    result = run_fig4()
    lines = [f"== Fig. 4: mean temperature at t={result.end_time} vs mesh "
             f"size (dt={result.dt}) =="]
    for n, t in zip(result.mesh_sizes, result.mean_temperatures):
        lines.append(f"  {n:5d}^2 : {t:.6f}")
    deltas = result.deltas()
    lines.append("  successive deltas: "
                 + " ".join(f"{d:.2e}" for d in deltas))
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
