"""Pinned kernel + whole-solver microbenchmark suite (the perf ledger).

Every "faster" claim in this repository is measured here, not asserted.
The suite times

- each :mod:`repro.kernels` kernel per **backend x dtype x grid size**
  (cells/s and the modelled bytes moved), and
- whole solver configurations per backend at a pinned mesh size and
  iteration count,

and writes a ``BENCH_<n>.json`` ledger (schema ``repro.bench/v1``,
``sort_keys`` JSON).  Invoked as ``repro bench`` / ``make bench``; the CI
``bench`` job uploads the ledger artifact.

Determinism contract (held by ``tests/test_bench.py``): every non-timing
field — schema, configuration, case list and ordering, cell counts,
modelled bytes, solver iteration counts — is byte-identical across two
same-config runs.  Wall-clock measurements are machine noise by nature,
so they are isolated under each case's ``"timing"`` sub-dict, which
:func:`static_view` strips.

Timing methodology: ``time.perf_counter`` (monotonic, independent of the
resilience stack's virtual clocks), ``warmup`` untimed calls to settle
caches/allocator, then ``repeats`` timed calls with the **minimum**
reported (the standard best-case estimator for cache-resident
microbenchmarks; all samples are kept in the ledger).  Solver cases pin
their iteration count by running with an unreachable tolerance, so every
backend executes the identical iteration sequence.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

import numpy as np

from repro.kernels import (
    KERNEL_STREAMS,
    available_backends,
    backend_status,
    get_backend,
)

SCHEMA = "repro.bench/v1"

_LEDGER_RE = re.compile(r"BENCH_(\d+)\.json$")

#: Kernel-suite grid sizes (cells = n*n).  The large grid exceeds L2 by a
#: wide margin so cache blocking has something to win.
GRIDS = (256, 512)
QUICK_GRIDS = (96,)

DTYPES = ("float32", "float64")

#: Whole-solver cases: (solver name, pinned outer iterations).
SOLVER_CASES = (
    ("cg", 30),
    ("cg_fused", 30),
    ("jacobi", 60),
    ("ppcg", 8),
)
SOLVER_N = 96
#: Unreachably small tolerance: the solve always runs its full iteration
#: budget, so the executed sequence is identical for every backend.
EPS_NEVER = 1e-30


def _time_calls(fn, warmup: int, repeats: int) -> list[float]:
    """Wall times of ``repeats`` calls after ``warmup`` untimed ones."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return samples


def _timing(samples: list[float], cells: int, nbytes: int) -> dict:
    best = min(samples)
    return {
        "wall_s_min": best,
        "wall_s_all": samples,
        "cells_per_s": cells / best if best > 0 else 0.0,
        "gb_per_s": nbytes / best / 1e9 if best > 0 else 0.0,
    }


def _kernel_system(n: int, dtype: str, halo: int = 1):
    """Deterministic padded arrays for the kernel-level cases."""
    rng = np.random.default_rng(20170905)
    dt = np.dtype(dtype)
    kx = np.zeros((n + 2 * halo, n + 2 * halo + 1), dtype=dt)
    ky = np.zeros((n + 2 * halo + 1, n + 2 * halo), dtype=dt)
    kx[halo:halo + n, halo + 1:halo + n] = rng.uniform(
        0.1, 2.0, size=(n, n - 1))
    ky[halo + 1:halo + n, halo:halo + n] = rng.uniform(
        0.1, 2.0, size=(n - 1, n))
    p = rng.standard_normal((n + 2 * halo, n + 2 * halo)).astype(dt)
    y = rng.standard_normal((n + 2 * halo, n + 2 * halo)).astype(dt)
    bounds = (halo, halo + n, halo, halo + n)
    return kx, ky, p, y, bounds


def _bench_kernels(backends, grids, dtypes, warmup, repeats) -> list[dict]:
    cases = []
    for n in grids:
        for dtype in dtypes:
            kx, ky, p, y, (r0, r1, c0, c1) = _kernel_system(n, dtype)
            cells = n * n
            itemsize = np.dtype(dtype).itemsize
            for name in backends:
                k = get_backend(name)
                out = np.zeros_like(p)
                ywork = y.copy()
                a_int = p[r0:r1, c0:c1]
                b_int = y[r0:r1, c0:c1]

                def reset_y():
                    ywork[...] = y

                kernel_calls = {
                    "stencil_apply": lambda: k.stencil_apply(
                        kx, ky, p, out, r0, r1, c0, c1),
                    "apply_dot": lambda: k.apply_dot(
                        kx, ky, p, out, r0, r1, c0, c1),
                    # stencil + axpy + dot chain: the Kronbichler-style
                    # fusion target.  y is reset outside the timed region
                    # would skew; instead alpha=0 keeps y bounded while
                    # streaming the identical traffic.
                    "apply_axpy_dot": lambda: k.apply_axpy_dot(
                        kx, ky, p, out, ywork, 0.0, r0, r1, c0, c1),
                    "dot": lambda: k.dot(a_int, b_int),
                    "axpy": lambda: k.axpy(ywork[r0:r1, c0:c1], 0.0, a_int),
                    "pack_halo": lambda: k.pack_halo(
                        p, slice(r0, r1), slice(c0, c0 + 1)),
                }
                for kernel, fn in kernel_calls.items():
                    reset_y()
                    kcells = (r1 - r0) if kernel == "pack_halo" else cells
                    nbytes = KERNEL_STREAMS[kernel] * kcells * itemsize
                    samples = _time_calls(fn, warmup, repeats)
                    cases.append({
                        "kind": "kernel",
                        "kernel": kernel,
                        "backend": name,
                        "dtype": dtype,
                        "n": n,
                        "cells": kcells,
                        "streams": KERNEL_STREAMS[kernel],
                        "bytes_moved": nbytes,
                        "timing": _timing(samples, kcells, nbytes),
                    })
    return cases


def _bench_solvers(backends, n, warmup, repeats) -> list[dict]:
    from repro.solvers import SolverOptions, solve_linear
    from repro.testing import crooked_pipe_system, serial_operator

    cases = []
    grid, kxg, kyg, bg = crooked_pipe_system(n)
    for solver, iters in SOLVER_CASES:
        for name in backends:
            opt = SolverOptions(solver=solver, eps=EPS_NEVER, max_iters=iters,
                                kernel_backend=name)
            op = serial_operator(grid, kxg, kyg,
                                 halo=opt.required_field_halo)
            from repro.mesh import Field
            b = Field.from_global(op.tile, opt.required_field_halo, bg)

            def run():
                return solve_linear(op, b, options=opt)

            result = run()  # deterministic fields come from this run
            samples = _time_calls(run, warmup, repeats)
            best = min(samples)
            total_cells = n * n * max(1, result.iterations)
            cases.append({
                "kind": "solver",
                "solver": solver,
                "backend": name,
                "dtype": "float64",
                "n": n,
                "iterations": result.iterations,
                "inner_iterations": result.inner_iterations,
                "converged": result.converged,
                "timing": {
                    "wall_s_min": best,
                    "wall_s_all": samples,
                    "iters_per_s": (max(1, result.iterations) / best
                                    if best > 0 else 0.0),
                    "cells_per_s": total_cells / best if best > 0 else 0.0,
                },
            })
    return cases


def run_bench(*, repeats: int = 5, warmup: int = 2, quick: bool = False,
              backends=None, grids=None, dtypes=None,
              solver_n: int = SOLVER_N, solver_repeats: int | None = None,
              ) -> dict:
    """Run the pinned suite and return the ledger dict."""
    if backends is None:
        backends = list(available_backends())
    grids = list(grids if grids is not None
                 else (QUICK_GRIDS if quick else GRIDS))
    dtypes = list(dtypes if dtypes is not None else DTYPES)
    if solver_repeats is None:
        solver_repeats = min(3, repeats)
    kernel_cases = _bench_kernels(backends, grids, dtypes, warmup, repeats)
    solver_cases = _bench_solvers(backends, solver_n, 1, solver_repeats)
    return {
        "schema": SCHEMA,
        "config": {
            "repeats": repeats,
            "warmup": warmup,
            "quick": quick,
            "grids": grids,
            "dtypes": dtypes,
            "backends": list(backends),
            "solver_n": solver_n,
            "solver_repeats": solver_repeats,
            "solver_cases": [list(c) for c in SOLVER_CASES],
            "eps": EPS_NEVER,
        },
        "backend_status": backend_status(),
        "cases": kernel_cases + solver_cases,
    }


def static_view(ledger: dict) -> dict:
    """The ledger with every ``"timing"`` sub-dict removed.

    What remains is the deterministic skeleton two same-config runs must
    agree on byte for byte.
    """
    def strip(obj):
        if isinstance(obj, dict):
            return {k: strip(v) for k, v in obj.items() if k != "timing"}
        if isinstance(obj, list):
            return [strip(v) for v in obj]
        return obj
    return strip(ledger)


def to_json(ledger: dict) -> str:
    return json.dumps(ledger, indent=2, sort_keys=True)


def next_ledger_path(out_dir: Path) -> Path:
    """The first unused ``BENCH_<n>.json`` path under ``out_dir``."""
    out_dir = Path(out_dir)
    taken = [int(m.group(1)) for p in out_dir.glob("BENCH_*.json")
             if (m := _LEDGER_RE.match(p.name))]
    return out_dir / f"BENCH_{max(taken, default=-1) + 1}.json"


def write_ledger(ledger: dict, out_dir: Path, index: int = 0) -> Path:
    """Persist as ``BENCH_<index>.json`` (0: next free slot)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = (out_dir / f"BENCH_{index}.json" if index
            else next_ledger_path(out_dir))
    path.write_text(to_json(ledger) + "\n", encoding="utf-8")
    return path


def render(ledger: dict) -> str:
    """Human-readable ledger table (kernel section groups by grid)."""
    lines = [f"== bench: schema={ledger['schema']} "
             f"backends={','.join(ledger['config']['backends'])} =="]
    lines.append(f"  {'case':<34} {'dtype':<8} {'n':>5} "
                 f"{'wall_ms':>9} {'Mcells/s':>9} {'GB/s':>6}")
    for c in ledger["cases"]:
        label = (f"{c['kernel']}[{c['backend']}]" if c["kind"] == "kernel"
                 else f"solve:{c['solver']}[{c['backend']}]")
        t = c["timing"]
        gbs = t.get("gb_per_s", 0.0)
        lines.append(
            f"  {label:<34} {c['dtype']:<8} {c['n']:>5} "
            f"{t['wall_s_min'] * 1e3:>9.3f} "
            f"{t['cells_per_s'] / 1e6:>9.2f} {gbs:>6.2f}")
    return "\n".join(lines)


def fused_speedups(ledger: dict, kernel: str = "apply_axpy_dot") -> dict:
    """Measured fused-over-numpy cells/s ratios per (dtype, n)."""
    rates: dict = {}
    for c in ledger["cases"]:
        if c["kind"] == "kernel" and c["kernel"] == kernel:
            rates.setdefault((c["dtype"], c["n"]), {})[c["backend"]] = \
                c["timing"]["cells_per_s"]
    return {f"{dtype}/n={n}": r["fused"] / r["numpy"]
            for (dtype, n), r in sorted(rates.items())
            if "fused" in r and "numpy" in r and r["numpy"] > 0}


def case_key(case: dict) -> tuple:
    """Identity of a case across ledgers (timing-independent fields)."""
    return (case["kind"], case.get("kernel") or case.get("solver"),
            case["backend"], case["dtype"], case["n"])


def compare_ledgers(old: dict, new: dict,
                    threshold: float = 1.25) -> dict:
    """Diff two ledgers' best wall times; flag regressions over threshold.

    A case regresses when ``new_wall_s_min > old_wall_s_min * threshold``
    (the default tolerates 25% machine noise — raise it on shared CI
    runners).  Cases present in only one ledger are reported but do not
    fail the comparison; a changed case *list* is a suite change, not a
    perf regression.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    old_cases = {case_key(c): c for c in old["cases"]}
    new_cases = {case_key(c): c for c in new["cases"]}
    rows = []
    regressions = []
    for key in sorted(old_cases.keys() & new_cases.keys()):
        t_old = old_cases[key]["timing"]["wall_s_min"]
        t_new = new_cases[key]["timing"]["wall_s_min"]
        ratio = (t_new / t_old) if t_old > 0 else float("inf")
        row = {"key": list(key), "old_wall_s": t_old, "new_wall_s": t_new,
               "ratio": ratio, "regressed": ratio > threshold}
        rows.append(row)
        if row["regressed"]:
            regressions.append(row)
    return {
        "threshold": threshold,
        "compared": len(rows),
        "only_old": sorted(map(list, old_cases.keys() - new_cases.keys())),
        "only_new": sorted(map(list, new_cases.keys() - old_cases.keys())),
        "rows": rows,
        "regressions": regressions,
        "passed": not regressions,
    }


def render_comparison(report: dict) -> str:
    """Human-readable regression table."""
    lines = [f"== bench compare: {report['compared']} cases, "
             f"threshold {report['threshold']:.2f}x =="]
    lines.append(f"  {'case':<44} {'old_ms':>9} {'new_ms':>9} {'ratio':>7}")
    for row in report["rows"]:
        kind, name, backend, dtype, n = row["key"]
        label = f"{name}[{backend}] {dtype} n={n}"
        mark = "  REGRESSED" if row["regressed"] else ""
        lines.append(
            f"  {label:<44} {row['old_wall_s'] * 1e3:>9.3f} "
            f"{row['new_wall_s'] * 1e3:>9.3f} {row['ratio']:>6.2f}x{mark}")
    for key in report["only_old"]:
        lines.append(f"  only in old ledger: {key}")
    for key in report["only_new"]:
        lines.append(f"  only in new ledger: {key}")
    lines.append(f"  {'PASS' if report['passed'] else 'FAIL'}: "
                 f"{len(report['regressions'])} regression(s)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="pinned kernel + solver microbenchmarks -> BENCH_<n>.json")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two existing ledgers instead of "
                             "running the suite; exits 1 on regression")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="wall-time ratio above which a compared case "
                             "counts as a regression (default 1.25)")
    parser.add_argument("--out", default="results/bench")
    parser.add_argument("--pr", type=int, default=0,
                        help="ledger index (0: next free slot)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--quick", action="store_true",
                        help="smallest grid only (CI smoke)")
    parser.add_argument("--backends", default="",
                        help="comma-separated subset (default: all available)")
    args = parser.parse_args(argv)

    if args.compare:
        old_path, new_path = args.compare
        old = json.loads(Path(old_path).read_text(encoding="utf-8"))
        new = json.loads(Path(new_path).read_text(encoding="utf-8"))
        report = compare_ledgers(old, new, threshold=args.threshold)
        print(render_comparison(report))
        return 0 if report["passed"] else 1

    backends = ([s for s in args.backends.split(",") if s]
                if args.backends else None)
    ledger = run_bench(repeats=args.repeats, warmup=args.warmup,
                       quick=args.quick, backends=backends)
    path = write_ledger(ledger, Path(args.out), index=args.pr)
    print(render(ledger))
    for label, ratio in fused_speedups(ledger).items():
        print(f"  fused/numpy apply_axpy_dot {label}: {ratio:.2f}x")
    print(f"ledger written to {path}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
