"""Fig. 7: MPI and hybrid strong scaling on Spruce (1-1024 CPU nodes).

Lines: BoomerAMG* (our MG-CG baseline), CG-1 and PPCG-1, each in hybrid
(one rank per NUMA domain, threads inside) and flat-MPI (one rank per
core) placement.  Only halo depth 1 — matching the paper ("Due to
available time constraints on Spruce, only the results for a halo depth
of 1 were gathered").
"""

from __future__ import annotations

from repro.harness.common import (
    BENCH_MESH,
    BENCH_STEPS,
    FigureSeries,
    iteration_model_for,
    spruce_node_counts,
)
from repro.perfmodel.machines import SPRUCE
from repro.perfmodel.predict import predict_scaling
from repro.perfmodel.profiles import SolverConfig

#: (legend label, config, ranks per node) in the paper's ordering.
SPRUCE_LINES = (
    ("BoomerAMG (Hybrid)", SolverConfig("mgcg"), 2),
    ("CG - 1 (Hybrid)", SolverConfig("cg"), 2),
    ("PPCG - 1 (Hybrid)", SolverConfig("ppcg", inner_steps=10, halo_depth=1), 2),
    ("BoomerAMG (MPI)", SolverConfig("mgcg"), 20),
    ("CG - 1 (MPI)", SolverConfig("cg"), 20),
    ("PPCG - 1 (MPI)", SolverConfig("ppcg", inner_steps=10, halo_depth=1), 20),
)


def run_fig7(mesh_n: int = BENCH_MESH,
             n_steps: int = BENCH_STEPS) -> FigureSeries:
    nodes = spruce_node_counts()
    fig = FigureSeries(name="Fig. 7: MPI and Hybrid strong scaling on Spruce",
                       node_counts=nodes,
                       meta={"machine": SPRUCE.name, "mesh_n": mesh_n,
                             "n_steps": n_steps})
    for label, config, rpn in SPRUCE_LINES:
        iters = iteration_model_for(config)(mesh_n)
        pts = predict_scaling(SPRUCE, config, mesh_n, nodes,
                              outer_iters=iters, n_steps=n_steps,
                              ranks_per_node=rpn)
        fig.add(label, [p.seconds for p in pts])
    return fig


def main() -> str:
    fig = run_fig7()
    text = fig.to_text()
    amg_best_nodes, amg_best = min(
        (fig.best("BoomerAMG (Hybrid)"), fig.best("BoomerAMG (MPI)")),
        key=lambda t: t[1])
    ppcg_512 = min(fig.value("PPCG - 1 (Hybrid)", 512),
                   fig.value("PPCG - 1 (MPI)", 512))
    amg_512 = min(fig.value("BoomerAMG (Hybrid)", 512),
                  fig.value("BoomerAMG (MPI)", 512))
    text += (f"\nBoomerAMG* peaks at {amg_best_nodes} nodes "
             f"({amg_best:.2f} s; paper: peaks at 32). "
             f"At 512 nodes CPPCG is {amg_512 / ppcg_512:.1f}x the best "
             f"baseline (paper: ~2x).")
    print(text)
    return text


if __name__ == "__main__":
    main()
