"""Resilience study: fault rate x solver through the injection stack.

Sweeps the transient-fault probability over the solver family on the small
crooked-pipe benchmark, every run through the canonical resilient stack
(:func:`~repro.resilience.runner.build_resilient_comm`) with the solver
guard enabled — answering "how much injected communication failure can each
solver absorb before it stops converging, and at what iteration cost?".

Faults are drawn deterministically from the plan seed, so the whole sweep
is reproducible: rerunning with the same seed yields identical fault logs,
retry counts and iteration counts (``tests/test_resilience.py`` holds the
regression).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience import FaultPlan, FaultRule, ResilienceReport, run_resilient
from repro.solvers import SolverOptions

#: Per-operation transient fault probabilities swept (0 = fault-free control).
RATES = (0.0, 0.005, 0.01, 0.02)

#: Solver configurations studied; all run with the guard checkpointing every
#: 5 iterations and graceful degradation on.
SOLVERS = (
    ("cg", SolverOptions(solver="cg", eps=1e-10, max_iters=600,
                         guard_interval=5)),
    ("ppcg", SolverOptions(solver="ppcg", eps=1e-10, max_iters=200,
                           ppcg_inner_steps=4, eigen_warmup_iters=10,
                           guard_interval=5, degrade=True)),
    ("cppcg[depth=4]", SolverOptions(solver="ppcg", eps=1e-10, max_iters=200,
                                     ppcg_inner_steps=8, halo_depth=4,
                                     eigen_warmup_iters=10,
                                     guard_interval=5, degrade=True)),
    ("chebyshev", SolverOptions(solver="chebyshev", eps=1e-10, max_iters=600,
                                eigen_warmup_iters=10,
                                guard_interval=5, degrade=True)),
)


def fault_plan(rate: float, seed: int) -> FaultPlan:
    """The sweep's fault mix at one probability.

    Transient errors on every op class at ``rate``, plus corrupted
    allreduce payloads (NaN) at ``rate / 2`` — the mix the acceptance
    criteria exercise: retried wire faults *and* guard-recovered bad
    reductions.
    """
    if rate <= 0.0:
        return FaultPlan.disabled()
    return FaultPlan(seed=seed, rules=(
        FaultRule(mode="error", probability=rate,
                  ops=("send", "recv", "allreduce")),
        FaultRule(mode="corrupt_nan", probability=rate / 2,
                  ops=("allreduce",)),
    ))


@dataclass
class ResilienceSweepResult:
    """All reports of one sweep, keyed ``(solver_name, rate)``."""

    n: int
    seed: int
    rates: tuple[float, ...]
    solvers: tuple[str, ...]
    reports: dict = field(default_factory=dict)

    def report(self, solver: str, rate: float) -> ResilienceReport:
        return self.reports[(solver, rate)]

    def as_dict(self) -> dict:
        """JSON-ready sweep output (schema ``repro.resilience_sweep/v2``).

        Top level: ``schema``, ``n``, ``seed``, ``rates``, ``solvers``
        and ``cells`` — one entry per ``(solver, rate)`` in sweep order
        with keys ``solver``, ``rate``, ``converged``, ``iterations``,
        ``relative_residual``, ``faults``, ``retries``, ``rollbacks``,
        ``checkpoints``, ``recoveries``, ``integrity_detections``,
        ``integrity_repairs``, ``degraded``, ``virtual_time_s``.  v2 adds
        the recovery/integrity counters (rank-loss respawns and checksum
        detections/repairs; zero for the plain stack).  The test-suite
        cross-checks these cells against an independent
        :class:`~repro.observe.metrics.MetricsRegistry` oracle.
        """
        cells = []
        for name in self.solvers:
            for rate in self.rates:
                r = self.report(name, rate)
                cells.append({
                    "solver": name,
                    "rate": rate,
                    "converged": r.converged,
                    "iterations": r.iterations,
                    "relative_residual": r.relative_residual,
                    "faults": len(r.fault_events),
                    "retries": r.retries,
                    "rollbacks": r.rollbacks,
                    "checkpoints": r.checkpoints,
                    "recoveries": r.recoveries,
                    "integrity_detections": r.integrity_detections,
                    "integrity_repairs": r.integrity_repairs,
                    "degraded": r.degraded,
                    "virtual_time_s": r.virtual_time_s,
                })
        return {
            "schema": "repro.resilience_sweep/v2",
            "n": self.n,
            "seed": self.seed,
            "rates": list(self.rates),
            "solvers": list(self.solvers),
            "cells": cells,
        }

    @property
    def all_converged(self) -> bool:
        """True when every (solver, rate) cell converged."""
        return all(r.converged for r in self.reports.values())

    @property
    def exit_code(self) -> int:
        """Process exit status: 0 all converged, 1 otherwise."""
        return 0 if self.all_converged else 1


def run_resilience_sweep(n: int = 24,
                         seed: int = 7,
                         rates: tuple[float, ...] = RATES,
                         size: int = 1,
                         solvers=SOLVERS,
                         integrity: bool = False) -> ResilienceSweepResult:
    """Run every solver configuration at every fault rate.

    ``solvers`` is a sequence of ``(name, SolverOptions)`` pairs
    (default: the full :data:`SOLVERS` study) — tests pass a subset to
    keep runtimes short.  ``integrity`` threads the
    :class:`~repro.resilience.integrity.ChecksumComm` layer into every
    run's stack, surfacing checksum detections/repairs in the cells.
    """
    result = ResilienceSweepResult(
        n=n, seed=seed, rates=tuple(rates),
        solvers=tuple(name for name, _ in solvers))
    for name, options in solvers:
        for rate in rates:
            result.reports[(name, rate)] = run_resilient(
                options, fault_plan(rate, seed), n=n, size=size,
                integrity=integrity)
    return result


def render(sweep: ResilienceSweepResult) -> str:
    """Human-readable sweep table."""
    lines = [f"== resilience sweep: crooked pipe n={sweep.n}, "
             f"seed={sweep.seed} =="]
    for name in sweep.solvers:
        lines.append(f"  {name}:")
        for rate in sweep.rates:
            r = sweep.report(name, rate)
            mark = "ok " if r.converged else "FAIL"
            lines.append(
                f"    rate={rate:<6g} [{mark}] {r.iterations:4d} iters  "
                f"rel res {r.relative_residual:.2e}  "
                f"{len(r.fault_events):3d} fault(s) "
                f"{r.retries:3d} retrie(s) {r.rollbacks:2d} rollback(s) "
                f"{r.recoveries:2d} recover(ies)"
                + ("  degraded" if r.degraded else ""))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the sweep; exit 1 when any configuration failed to converge."""
    import argparse

    parser = argparse.ArgumentParser(
        description="resilience sweep: fault rate x solver")
    parser.add_argument("--n", type=int, default=24, help="mesh size")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--size", type=int, default=1, help="world size")
    parser.add_argument("--integrity", action="store_true",
                        help="enable the checksummed-envelope comm layer")
    args = parser.parse_args(argv)
    sweep = run_resilience_sweep(n=args.n, seed=args.seed, size=args.size,
                                 integrity=args.integrity)
    print(render(sweep))
    if not sweep.all_converged:
        failed = [(name, rate) for (name, rate), r in sweep.reports.items()
                  if not r.converged]
        print(f"FAILED: {len(failed)} configuration(s) did not converge: "
              + ", ".join(f"{n}@{r:g}" for n, r in failed))
    return sweep.exit_code


if __name__ == "__main__":
    import sys
    sys.exit(main())
