"""Shared harness configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.io.tables import format_series_table
from repro.perfmodel.iterations import IterationModel, fit_iteration_model
from repro.perfmodel.profiles import SolverConfig
from repro.utils.errors import ConfigurationError

#: The paper's production mesh (§V-B: "strong scaling of mesh converged
#: calculations of 4000x4000").
BENCH_MESH = 4000
#: Solve campaign length the scaling figures charge (a TeaLeaf
#: benchmark-deck-style handful of implicit steps; see EXPERIMENTS.md).
BENCH_STEPS = 5
#: Tolerance used for iteration-count measurement (TeaLeaf tl_eps scale).
BENCH_EPS = 1e-10


def gpu_node_counts(max_nodes: int) -> list[int]:
    """1, 2, 4, ... up to the machine's node count (Figs. 5-6 x-axis)."""
    counts, n = [], 1
    while n <= max_nodes:
        counts.append(n)
        n *= 2
    return counts


def spruce_node_counts() -> list[int]:
    """Fig. 7 x-axis: 1..1024."""
    return gpu_node_counts(1024)


@lru_cache(maxsize=64)
def _fit_cached(solver: str, inner_steps: int, halo_depth: int,
                preconditioner: str) -> IterationModel:
    return fit_iteration_model(
        SolverConfig(solver, inner_steps, halo_depth, preconditioner),
        eps=BENCH_EPS)


def iteration_model_for(config: SolverConfig) -> IterationModel:
    """Memoised iteration-count model (measurement solves are cached)."""
    return _fit_cached(config.solver, config.inner_steps, config.halo_depth,
                       config.preconditioner)


@dataclass
class FigureSeries:
    """One figure's data: labelled series over a node-count axis."""

    name: str
    node_counts: list[int]
    series: dict[str, list[float]] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def add(self, label: str, values: list[float]) -> None:
        if len(values) != len(self.node_counts):
            raise ConfigurationError(
                f"series {label!r} has {len(values)} points for "
                f"{len(self.node_counts)} node counts")
        self.series[label] = list(values)

    def value(self, label: str, nodes: int) -> float:
        return self.series[label][self.node_counts.index(nodes)]

    def best(self, label: str) -> tuple[int, float]:
        """(node count, value) of the series minimum."""
        vals = self.series[label]
        i = min(range(len(vals)), key=vals.__getitem__)
        return self.node_counts[i], vals[i]

    def to_text(self, value_fmt: str = "{:.2f}") -> str:
        header = f"== {self.name} =="
        body = format_series_table(self.node_counts, self.series, value_fmt)
        return f"{header}\n{body}"

    def to_csv(self) -> str:
        lines = ["nodes," + ",".join(self.series)]
        for i, n in enumerate(self.node_counts):
            lines.append(
                f"{n}," + ",".join(f"{self.series[s][i]:.6g}"
                                   for s in self.series))
        return "\n".join(lines)
