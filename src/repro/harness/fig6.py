"""Fig. 6: CUDA strong scaling on Piz Daint (1-2048 nodes).

Same configurations as Fig. 5; the interconnect (Aries dragonfly vs
Gemini torus) is what separates the two figures — the paper attributes
Piz Daint's 47% advantage at 2048 nodes to "the fully connected network".
"""

from __future__ import annotations

from repro.harness.common import BENCH_MESH, BENCH_STEPS, FigureSeries
from repro.harness.fig5 import run_gpu_scaling
from repro.perfmodel.machines import PIZ_DAINT


def run_fig6(mesh_n: int = BENCH_MESH,
             n_steps: int = BENCH_STEPS) -> FigureSeries:
    return run_gpu_scaling(PIZ_DAINT,
                           "Fig. 6: CUDA strong scaling on Piz Daint",
                           mesh_n, n_steps)


def main() -> str:
    fig = run_fig6()
    text = fig.to_text()
    text += (f"\nPPCG-16 at 2048 nodes: "
             f"{fig.value('PPCG - 16', 2048):.2f} s (paper: 2.79 s)")
    print(text)
    return text


if __name__ == "__main__":
    main()
