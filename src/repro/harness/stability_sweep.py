"""Numerical-stability study: solver x dtype x depth over the battery.

Sweeps the solver family over the ill-conditioned crooked-pipe battery
(:func:`~repro.physics.crooked_pipe_jump`, conductivity jumps 1e4-1e10),
running every ``(solver, dtype, depth)`` cell twice:

- **unprotected** — the plain recurrence at the requested working
  precision, with the true residual ``b - A x`` measured once after the
  solve.  These cells demonstrate the hazard: in float32 the recurrence
  residual keeps shrinking below the tolerance while the true residual
  stalls ~2 orders of magnitude higher — the solver *falsely converges*.
- **protected** — the :mod:`repro.numerics` stack: residual replacement
  with condition-aware cadence (cg/ppcg), the breakdown guard's
  stagnation window, and (for float32) mixed-precision iterative
  refinement that recovers float64 accuracy or escalates with a
  structured :class:`~repro.numerics.refine.PrecisionDiagnosis`.

Every decision in a run is taken from globally-reduced scalars and the
sweep uses no wall clocks, so rerunning it produces byte-identical
rendered output and ``as_dict()`` payloads (the determinism invariant
``tests/test_stability_sweep.py`` locks down).

The sweep passes (exit 0) when every *protected* cell either converges
with its true relative residual at the tolerance (10x slack) or refuses
with an escalation diagnosis; unprotected cells are reported — including
their false-convergence count — but never gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.solvers import SolverOptions
from repro.utils.errors import ConvergenceError

#: Conductivity jumps swept by default (subset of the full
#: :data:`~repro.physics.STABILITY_JUMPS` battery to keep the smoke
#: target quick; ``--jumps`` widens it).
JUMPS = (1e4, 1e8)

#: Working precisions studied.
DTYPES = ("float64", "float32")

#: ``(label, solver, halo_depth)`` cells: the paper's depth-1 baselines
#: plus the deep matrix-powers configuration whose 16 stacked stencil
#: applications per inner step amplify recurrence drift.
CELLS = (
    ("cg[depth=1]", "cg", 1),
    ("chebyshev[depth=1]", "chebyshev", 1),
    ("cppcg[depth=16]", "ppcg", 16),
)

#: Relative-residual slack granted on the convergence check of protected
#: cells (the post-solve true residual is measured one splice after the
#: tolerance test).
PASS_SLACK = 10.0

#: Replacement cadence (base interval; the condition-aware policy
#: shrinks it on badly conditioned cells).
REPLACE_INTERVAL = 10


def cell_options(solver: str, depth: int, dtype: str, protected: bool,
                 eps: float, max_iters: int) -> SolverOptions:
    """The :class:`SolverOptions` of one sweep cell.

    Protected cells stack every :mod:`repro.numerics` defence the solver
    supports: residual replacement (cg/ppcg only — it is a CG-recurrence
    repair), the stagnation window, and iterative refinement whenever the
    working precision is not float64.
    """
    replacement = protected and solver in ("cg", "ppcg")
    return SolverOptions(
        solver=solver,
        eps=eps,
        max_iters=max_iters,
        ppcg_inner_steps=16 if solver == "ppcg" else 10,
        halo_depth=depth,
        eigen_warmup_iters=30,
        adaptive=solver == "ppcg",
        degrade=solver in ("ppcg", "chebyshev"),
        dtype=dtype,
        refine=protected and dtype != "float64",
        replace_interval=REPLACE_INTERVAL if replacement else 0,
        replace_adaptive=replacement,
        stagnation_window=60 if protected else 0,
        true_residual=True,
    )


@dataclass
class StabilityCell:
    """Outcome of one ``(solver, dtype, jump, protected)`` run.

    Residuals are relative to ``||b||`` (the same reference for every
    cell, unlike each solver's phase-internal reference), so cells are
    directly comparable.  ``drift_orders`` is
    ``log10(true / recurrence)`` — how many orders of magnitude the
    recurrence estimate undersells the true residual by.
    """

    solver: str
    dtype: str
    depth: int
    jump: float
    protected: bool
    converged: bool = False
    iterations: int = 0
    total_iterations: int = 0
    recurrence_residual: float = math.inf
    true_residual: float = math.inf
    drift_orders: float = 0.0
    replacement_checks: int = 0
    replacement_splices: int = 0
    refinement_steps: int = 0
    escalated: bool = False
    diagnosis: str = ""
    breakdown: str = ""

    def passes(self, eps: float) -> bool:
        """Protected-cell acceptance: honest convergence or diagnosis."""
        if self.escalated and self.diagnosis:
            return True
        return self.converged and self.true_residual <= PASS_SLACK * eps

    def false_convergence(self, eps: float) -> bool:
        """Converged by the recurrence while the truth missed tolerance."""
        return self.converged and self.true_residual > PASS_SLACK * eps

    def as_dict(self) -> dict:
        return {
            "solver": self.solver,
            "dtype": self.dtype,
            "depth": self.depth,
            "jump": self.jump,
            "protected": self.protected,
            "converged": self.converged,
            "iterations": self.iterations,
            "total_iterations": self.total_iterations,
            "recurrence_residual": self.recurrence_residual,
            "true_residual": self.true_residual,
            "drift_orders": self.drift_orders,
            "replacement_checks": self.replacement_checks,
            "replacement_splices": self.replacement_splices,
            "refinement_steps": self.refinement_steps,
            "escalated": self.escalated,
            "diagnosis": self.diagnosis,
            "breakdown": self.breakdown,
        }


@dataclass
class StabilitySweepResult:
    """All cells of one sweep, keyed ``(solver, dtype, jump, protected)``."""

    n: int
    eps: float
    jumps: tuple[float, ...]
    dtypes: tuple[str, ...]
    solvers: tuple[str, ...]
    cells: dict = field(default_factory=dict)

    def cell(self, solver: str, dtype: str, jump: float,
             protected: bool) -> StabilityCell:
        return self.cells[(solver, dtype, jump, protected)]

    @property
    def protected_cells(self) -> list[StabilityCell]:
        return [c for c in self.cells.values() if c.protected]

    @property
    def all_protected_pass(self) -> bool:
        return all(c.passes(self.eps) for c in self.protected_cells)

    @property
    def false_convergences(self) -> int:
        """Unprotected cells whose recurrence lied about convergence."""
        return sum(1 for c in self.cells.values()
                   if not c.protected and c.false_convergence(self.eps))

    @property
    def exit_code(self) -> int:
        return 0 if self.all_protected_pass else 1

    def as_dict(self) -> dict:
        """JSON-ready sweep output (schema ``repro.stability_sweep/v1``).

        Top level: ``schema``, ``n``, ``eps``, ``jumps``, ``dtypes``,
        ``solvers`` and ``cells`` — one entry per run in sweep order with
        the :meth:`StabilityCell.as_dict` keys.  The test-suite
        cross-checks the cells against an independent
        :class:`~repro.observe.metrics.MetricsRegistry` oracle filled by
        :func:`~repro.observe.runner.record_stability_metrics`.
        """
        ordered = [self.cell(s, d, j, p)
                   for s in self.solvers for d in self.dtypes
                   for j in self.jumps for p in (False, True)]
        return {
            "schema": "repro.stability_sweep/v1",
            "n": self.n,
            "eps": self.eps,
            "jumps": list(self.jumps),
            "dtypes": list(self.dtypes),
            "solvers": list(self.solvers),
            "cells": [c.as_dict() for c in ordered],
        }


def _run_cell(label: str, solver: str, depth: int, dtype: str, jump: float,
              protected: bool, n: int, eps: float, max_iters: int,
              size: int) -> StabilityCell:
    from repro.testing import crooked_pipe_jump_system, distributed_solve

    grid, kxg, kyg, bg = crooked_pipe_jump_system(n, jump)
    b_norm = float(np.linalg.norm(bg))
    options = cell_options(solver, depth, dtype, protected, eps, max_iters)
    cell = StabilityCell(solver=label, dtype=dtype, depth=depth, jump=jump,
                         protected=protected)
    try:
        _, result = distributed_solve(grid, kxg, kyg, bg, options, size)
    except ConvergenceError as exc:
        # Breakdown taxonomy: the structured BreakdownError (and plain
        # convergence failures raised through it) become a reported cell,
        # not a dead sweep.
        cell.breakdown = str(exc)
        return cell
    cell.converged = result.converged
    cell.iterations = result.iterations
    cell.total_iterations = result.total_iterations
    cell.recurrence_residual = result.residual_norm / b_norm
    true_norm = result.true_residual_norm
    cell.true_residual = (true_norm / b_norm if true_norm is not None
                          else math.inf)
    if true_norm and result.residual_norm > 0.0:
        cell.drift_orders = math.log10(true_norm / result.residual_norm)
    stats = getattr(result, "replacement", None)
    if stats is not None:
        cell.replacement_checks = stats.checks
        cell.replacement_splices = stats.splices
    cell.refinement_steps = getattr(result, "refinement_steps", 0)
    diagnosis = getattr(result, "diagnosis", None)
    if diagnosis is not None:
        cell.escalated = diagnosis.escalated
        cell.diagnosis = diagnosis.summary()
    return cell


def run_stability_sweep(n: int = 24,
                        eps: float = 1e-8,
                        max_iters: int = 600,
                        jumps: tuple[float, ...] = JUMPS,
                        dtypes: tuple[str, ...] = DTYPES,
                        cells=CELLS,
                        size: int = 1) -> StabilitySweepResult:
    """Run every ``(solver, dtype, jump)`` cell, unprotected and protected.

    ``cells`` is a sequence of ``(label, solver, halo_depth)`` triples
    (default: the full :data:`CELLS` study) — tests pass a subset to keep
    runtimes short.
    """
    result = StabilitySweepResult(
        n=n, eps=eps, jumps=tuple(jumps), dtypes=tuple(dtypes),
        solvers=tuple(label for label, _, _ in cells))
    for label, solver, depth in cells:
        for dtype in dtypes:
            for jump in jumps:
                for protected in (False, True):
                    result.cells[(label, dtype, jump, protected)] = _run_cell(
                        label, solver, depth, dtype, jump, protected,
                        n, eps, max_iters, size)
    return result


def render(sweep: StabilitySweepResult) -> str:
    """Human-readable sweep table."""
    lines = [f"== stability sweep: crooked-pipe battery n={sweep.n}, "
             f"eps={sweep.eps:g} =="]
    for label in sweep.solvers:
        for dtype in sweep.dtypes:
            lines.append(f"  {label} / {dtype}:")
            for jump in sweep.jumps:
                for protected in (False, True):
                    c = sweep.cell(label, dtype, jump, protected)
                    tag = "protected  " if protected else "unprotected"
                    if c.breakdown:
                        lines.append(f"    jump={jump:<6g} {tag} "
                                     f"[BRK ] {c.breakdown}")
                        continue
                    mark = "ok " if c.converged else "FAIL"
                    if not protected and c.false_convergence(sweep.eps):
                        mark = "LIE "
                    detail = (f"    jump={jump:<6g} {tag} [{mark}] "
                              f"{c.iterations:4d} iters  "
                              f"true {c.true_residual:.2e}  "
                              f"rec {c.recurrence_residual:.2e}  "
                              f"drift {c.drift_orders:+5.1f} orders")
                    if c.replacement_checks:
                        detail += (f"  {c.replacement_splices}/"
                                   f"{c.replacement_checks} splice(s)")
                    if c.refinement_steps:
                        detail += f"  {c.refinement_steps} refine step(s)"
                    lines.append(detail)
                    if c.diagnosis:
                        lines.append(f"      diagnosis: {c.diagnosis}")
    lines.append(f"false convergences (unprotected): "
                 f"{sweep.false_convergences}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the sweep; exit 1 when any protected cell failed."""
    import argparse

    parser = argparse.ArgumentParser(
        description="stability sweep: solver x dtype x depth over the "
                    "ill-conditioned crooked-pipe battery")
    parser.add_argument("--n", type=int, default=24, help="mesh size")
    parser.add_argument("--eps", type=float, default=1e-8)
    parser.add_argument("--max-iters", type=int, default=600)
    parser.add_argument("--size", type=int, default=1, help="world size")
    parser.add_argument("--jumps", type=float, nargs="+", default=list(JUMPS),
                        help="conductivity jumps of the battery")
    args = parser.parse_args(argv)
    sweep = run_stability_sweep(n=args.n, eps=args.eps,
                                max_iters=args.max_iters,
                                jumps=tuple(args.jumps), size=args.size)
    print(render(sweep))
    if not sweep.all_protected_pass:
        failed = [c for c in sweep.protected_cells if not c.passes(sweep.eps)]
        print(f"FAILED: {len(failed)} protected cell(s): "
              + ", ".join(f"{c.solver}/{c.dtype}@{c.jump:g}" for c in failed))
    return sweep.exit_code


if __name__ == "__main__":
    import sys
    sys.exit(main())
