"""Write every table and figure to a results directory."""

from __future__ import annotations

from pathlib import Path

from repro.harness import fig3, fig4, fig5, fig6, fig7, fig8, table1


def write_report(out_dir: Path, fig3_mesh: int = 48) -> list[Path]:
    """Regenerate all experiments; returns the written paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []

    def write(name: str, text: str) -> None:
        p = out_dir / name
        p.write_text(text + "\n", encoding="utf-8")
        paths.append(p)

    rows = table1.run_table1()
    headers = list(rows[0])
    from repro.io.tables import format_table
    write("table1.txt",
          format_table(headers, [[r[h] for h in headers] for r in rows]))

    r3 = fig3.run_fig3(fig3_mesh)
    write("fig3.txt", r3.render())
    from repro.io.snapshots import save_field_csv
    paths.append(save_field_csv(out_dir / "fig3_temperature.csv",
                                r3.temperature))

    r4 = fig4.run_fig4()
    write("fig4.csv", "mesh_n,mean_temperature\n" + "\n".join(
        f"{n},{t:.8f}" for n, t in zip(r4.mesh_sizes, r4.mean_temperatures)))

    for name, runner in (("fig5", fig5.run_fig5), ("fig6", fig6.run_fig6),
                         ("fig7", fig7.run_fig7), ("fig8", fig8.run_fig8)):
        fig = runner()
        write(f"{name}.csv", fig.to_csv())
        write(f"{name}.txt", fig.to_text())

    from repro.harness import stability_sweep
    sweep = stability_sweep.run_stability_sweep(
        n=16, jumps=(1e8,),
        cells=(("cg[depth=1]", "cg", 1), ("cppcg[depth=16]", "ppcg", 16)))
    write("stability_sweep.txt", stability_sweep.render(sweep))

    from repro.harness import chaos_sweep
    chaos, ledger = chaos_sweep.run_chaos(
        trials=50, out_dir=out_dir / "chaos")
    write("chaos_campaign.txt", chaos_sweep.render(chaos))
    paths.append(ledger)

    paths.extend(write_trace_profile(out_dir))
    return paths


def write_trace_profile(out_dir: Path, n: int = 24) -> list[Path]:
    """Traced CPPCG crooked-pipe solve: summary, JSONL and Chrome trace.

    The observability artefact of the report: where the time of one
    communication-avoiding solve goes, as a text table plus machine-read
    trace files (see docs/observability.md).
    """
    from repro.observe import (
        metrics_table,
        summary_table,
        traced_crooked_pipe,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.solvers import SolverOptions

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    run = traced_crooked_pipe(n, SolverOptions(
        solver="ppcg", eps=1e-10, ppcg_inner_steps=4, eigen_warmup_iters=10))
    spans = run.spans
    summary = out_dir / "trace_summary.txt"
    summary.write_text(
        f"== traced cppcg solve: crooked pipe n={n} ==\n"
        + run.result.summary() + "\n\n"
        + summary_table(spans) + "\n\n"
        + metrics_table(run.metrics.snapshot()) + "\n",
        encoding="utf-8")
    return [summary,
            write_jsonl(spans, out_dir / "trace.jsonl"),
            write_chrome_trace(spans, out_dir / "trace.chrome.json")]
