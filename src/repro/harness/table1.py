"""Table I: test setup specifications, from the machine registry."""

from __future__ import annotations

from repro.io.tables import format_table
from repro.perfmodel.machines import MACHINES, Machine


def run_table1() -> list[dict]:
    """Rows of the paper's Table I plus the model constants behind them."""
    rows = []
    for name in ("Spruce", "Piz Daint", "Titan"):
        m: Machine = MACHINES[name]
        rows.append({
            "system": m.name,
            "compute_device": m.node.name,
            "interconnect": m.network.topology.value,
            "max_nodes": m.max_nodes,
            "node_bandwidth_GBs": m.node.dram_bandwidth / 1e9,
            "link_latency_us": m.network.inter_node.latency * 1e6,
            "link_bandwidth_GBs": m.network.inter_node.bandwidth / 1e9,
            "ranks_per_node": m.default_ranks_per_node,
        })
    return rows


def main() -> str:
    rows = run_table1()
    headers = list(rows[0])
    table = format_table(headers, [[r[h] for h in headers] for r in rows])
    text = "== Table I: test setup specifications (model registry) ==\n" + table
    print(text)
    return text


if __name__ == "__main__":
    main()
