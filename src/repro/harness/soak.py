"""Soak driver: kill/restart cycles under fault storms, from the CLI.

Thin harness over :func:`repro.resilience.chaos.run_soak`: each cycle
relaunches the SPMD world, restores from the newest durable checkpoint
and advances under a seeded transient-fault storm; the final temperature
must be bit-identical to one uninterrupted fault-free run.  The report
is written as ``SOAK_<n>.json`` next to the checkpoints.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.resilience.chaos import SoakReport, run_soak

_REPORT_RE = re.compile(r"SOAK_(\d+)\.json$")


def write_soak_report(report: SoakReport, out_dir: Path) -> Path:
    """Persist the report as the next free ``SOAK_<n>.json``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    taken = [int(m.group(1)) for p in out_dir.glob("SOAK_*.json")
             if (m := _REPORT_RE.match(p.name))]
    path = out_dir / f"SOAK_{max(taken, default=-1) + 1}.json"
    path.write_text(report.to_json() + "\n", encoding="utf-8")
    return path


def render(report: SoakReport) -> str:
    """Human-readable soak summary."""
    lines = [f"== soak: seed={report.seed} n={report.n} "
             f"ranks={report.nranks} cycles={len(report.cycles)} =="]
    for c in report.cycles:
        lines.append(
            f"  cycle {c.cycle}: {c.steps} step(s), resumed from step "
            f"{c.restored_step}, {c.faults} fault(s), {c.retries} "
            f"retrie(s), {c.virtual_time_s:.3f}s virtual")
    lines.append(f"  final mean T = {report.final_mean_temperature:.6f}, "
                 f"bit-identical to fault-free: {report.bit_identical}")
    for v in report.violations:
        lines.append(f"  VIOLATION: {v}")
    lines.append("  PASS" if report.passed else "  FAIL")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run a soak; exit 1 when any cycle violated the oracle."""
    import argparse

    parser = argparse.ArgumentParser(
        description="soak: periodic fault storms and kill/restart cycles")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--cycles", type=int, default=3)
    parser.add_argument("--steps-per-cycle", type=int, default=2)
    parser.add_argument("--n", type=int, default=16, help="mesh size")
    parser.add_argument("--ranks", type=int, default=2,
                        help="SPMD world size (thread ranks)")
    parser.add_argument("--out", default="results/soak",
                        help="directory for checkpoints + SOAK_<n>.json")
    args = parser.parse_args(argv)
    out = Path(args.out)
    report = run_soak(seed=args.seed, cycles=args.cycles,
                      steps_per_cycle=args.steps_per_cycle, n=args.n,
                      nranks=args.ranks,
                      checkpoint_root=out / "checkpoints")
    print(render(report))
    path = write_soak_report(report, out)
    print(f"report written to {path}")
    return report.exit_code


if __name__ == "__main__":
    import sys
    sys.exit(main())
