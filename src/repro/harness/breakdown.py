"""Extended study: where the time goes, per configuration and scale.

Decomposes each predicted point into compute / halo / allreduce (and, for
the multigrid baseline, coarse-solve and setup) shares.  This is the
quantitative version of the paper's §VI narrative: the strong-scaling knee
is exactly where the latency terms overtake the shrinking compute term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.common import (
    BENCH_MESH,
    BENCH_STEPS,
    gpu_node_counts,
    iteration_model_for,
)
from repro.io.tables import format_table
from repro.perfmodel.machines import Machine, TITAN
from repro.perfmodel.predict import predict_solve_time
from repro.perfmodel.profiles import SolverConfig

CATEGORIES = ("compute", "halo", "allreduce", "coarse", "setup")


@dataclass
class BreakdownResult:
    machine: str
    config: SolverConfig
    node_counts: list[int]
    #: seconds[category][i] aligned with node_counts
    seconds: dict[str, list[float]]

    def totals(self) -> list[float]:
        return [sum(self.seconds[c][i] for c in CATEGORIES)
                for i in range(len(self.node_counts))]

    def share(self, category: str, nodes: int) -> float:
        i = self.node_counts.index(nodes)
        total = self.totals()[i]
        return self.seconds[category][i] / total if total else 0.0

    def dominant(self, nodes: int) -> str:
        i = self.node_counts.index(nodes)
        return max(CATEGORIES, key=lambda c: self.seconds[c][i])

    def to_text(self) -> str:
        headers = ["Nodes", "total_s"] + [f"{c}_%" for c in CATEGORIES]
        rows = []
        totals = self.totals()
        for i, n in enumerate(self.node_counts):
            row = [str(n), f"{totals[i]:.2f}"]
            for c in CATEGORIES:
                pct = 100.0 * self.seconds[c][i] / totals[i] if totals[i] else 0
                row.append(f"{pct:.1f}")
            rows.append(row)
        title = (f"== Time breakdown: {self.config.label} on "
                 f"{self.machine} ==")
        return title + "\n" + format_table(headers, rows)


def run_breakdown(machine: Machine = TITAN,
                  config: SolverConfig | None = None,
                  mesh_n: int = BENCH_MESH,
                  n_steps: int = BENCH_STEPS,
                  node_counts: list[int] | None = None,
                  ranks_per_node: int | None = None) -> BreakdownResult:
    if config is None:
        config = SolverConfig("cg")
    if node_counts is None:
        node_counts = gpu_node_counts(machine.max_nodes)
    iters = iteration_model_for(config)(mesh_n)
    seconds = {c: [] for c in CATEGORIES}
    for nodes in node_counts:
        p = predict_solve_time(machine, config, mesh_n, nodes,
                               outer_iters=iters, n_steps=n_steps,
                               ranks_per_node=ranks_per_node)
        for c in CATEGORIES:
            seconds[c].append(p.breakdown.get(c, 0.0))
    return BreakdownResult(machine=machine.name, config=config,
                           node_counts=node_counts, seconds=seconds)


def main() -> str:
    texts = []
    for config in (SolverConfig("cg"),
                   SolverConfig("ppcg", inner_steps=10, halo_depth=16)):
        result = run_breakdown(TITAN, config)
        texts.append(result.to_text())
        knee = result.node_counts[
            result.totals().index(min(result.totals()))]
        texts.append(f"knee at {knee} nodes; dominant term there: "
                     f"{result.dominant(knee)}\n")
    out = "\n".join(texts)
    print(out)
    return out


if __name__ == "__main__":
    main()
