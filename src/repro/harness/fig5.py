"""Fig. 5: CUDA strong scaling on Titan (1-8192 nodes).

Lines: CG-1 and PPCG at matrix-powers halo depths 1/4/8/16.  Iteration
counts come from real measured solves (extrapolated in N); times from the
Titan machine model.
"""

from __future__ import annotations

from repro.harness.common import (
    BENCH_MESH,
    BENCH_STEPS,
    FigureSeries,
    gpu_node_counts,
    iteration_model_for,
)
from repro.perfmodel.machines import TITAN, Machine
from repro.perfmodel.predict import predict_scaling
from repro.perfmodel.profiles import SolverConfig

#: The figure's configurations, in legend order.
GPU_CONFIGS = (
    SolverConfig("cg"),
    SolverConfig("ppcg", inner_steps=10, halo_depth=1),
    SolverConfig("ppcg", inner_steps=10, halo_depth=4),
    SolverConfig("ppcg", inner_steps=10, halo_depth=8),
    SolverConfig("ppcg", inner_steps=10, halo_depth=16),
)


def run_gpu_scaling(machine: Machine, name: str,
                    mesh_n: int = BENCH_MESH,
                    n_steps: int = BENCH_STEPS) -> FigureSeries:
    """Shared Fig. 5 / Fig. 6 driver for a GPU machine."""
    nodes = gpu_node_counts(machine.max_nodes)
    fig = FigureSeries(name=name, node_counts=nodes,
                       meta={"machine": machine.name, "mesh_n": mesh_n,
                             "n_steps": n_steps})
    for config in GPU_CONFIGS:
        iters = iteration_model_for(config)(mesh_n)
        pts = predict_scaling(machine, config, mesh_n, nodes,
                              outer_iters=iters, n_steps=n_steps)
        fig.add(config.label, [p.seconds for p in pts])
    return fig


def run_fig5(mesh_n: int = BENCH_MESH,
             n_steps: int = BENCH_STEPS) -> FigureSeries:
    return run_gpu_scaling(TITAN, "Fig. 5: CUDA strong scaling on Titan",
                           mesh_n, n_steps)


def main() -> str:
    fig = run_fig5()
    text = fig.to_text()
    best = fig.series["PPCG - 16"][-1]
    text += (f"\nPPCG-16 at 8192 nodes: {best:.2f} s "
             f"(paper: 4.26 s)")
    print(text)
    return text


if __name__ == "__main__":
    main()
