"""Fig. 8: scaling efficiency of the best configuration per machine.

Lines: Spruce PPCG-1 (MPI), Piz Daint PPCG-16 (CUDA), Titan PPCG-16
(CUDA); efficiency relative to one node.  The Spruce line exceeds 1.0
(super-linear) while the working set transitions into cache; the GPU
machines separate at high node counts by interconnect quality.
"""

from __future__ import annotations

from repro.harness.common import (
    BENCH_MESH,
    BENCH_STEPS,
    FigureSeries,
    gpu_node_counts,
    iteration_model_for,
    spruce_node_counts,
)
from repro.perfmodel.efficiency import scaling_efficiency
from repro.perfmodel.machines import PIZ_DAINT, SPRUCE, TITAN
from repro.perfmodel.predict import predict_scaling
from repro.perfmodel.profiles import SolverConfig

#: (label, machine, config, ranks_per_node, node counts)
FIG8_LINES = (
    ("Spruce - PPCG - 1 (MPI)", SPRUCE,
     SolverConfig("ppcg", inner_steps=10, halo_depth=1), 20),
    ("Piz Daint - PPCG - 16 (CUDA)", PIZ_DAINT,
     SolverConfig("ppcg", inner_steps=10, halo_depth=16), 1),
    ("Titan - PPCG - 16 (CUDA)", TITAN,
     SolverConfig("ppcg", inner_steps=10, halo_depth=16), 1),
)


def run_fig8(mesh_n: int = BENCH_MESH,
             n_steps: int = BENCH_STEPS) -> FigureSeries:
    nodes = gpu_node_counts(TITAN.max_nodes)
    fig = FigureSeries(
        name="Fig. 8: scaling efficiency across test systems",
        node_counts=nodes,
        meta={"mesh_n": mesh_n, "n_steps": n_steps})
    for label, machine, config, rpn in FIG8_LINES:
        counts = [n for n in nodes if n <= machine.max_nodes]
        iters = iteration_model_for(config)(mesh_n)
        pts = predict_scaling(machine, config, mesh_n, counts,
                              outer_iters=iters, n_steps=n_steps,
                              ranks_per_node=rpn)
        eff = scaling_efficiency(counts, [p.seconds for p in pts])
        # Pad machines that stop before 8192 nodes.
        fig.add(label, eff + [float("nan")] * (len(nodes) - len(counts)))
    return fig


def main() -> str:
    fig = run_fig8()
    text = fig.to_text(value_fmt="{:.3f}")
    spruce = fig.series["Spruce - PPCG - 1 (MPI)"]
    peak = max(v for v in spruce if v == v)
    text += (f"\nSpruce peak efficiency: {peak:.2f} "
             f"(super-linear, cache effect; paper shows >1 up to 512 nodes)")
    print(text)
    return text


if __name__ == "__main__":
    main()
