"""Extended study: the §VII solver roadmap at Petascale.

Projects the paper's Fig. 5 axes onto the follow-on solvers this library
implements — classical CG, single-reduction CG, deflated CG and CPPCG —
on the Titan model.  The interesting read-out: each successive technique
removes a different share of the global-communication bill, and CPPCG's
inner iterations remain the only scheme that amortises reductions *and*
halo latency together.
"""

from __future__ import annotations

from repro.harness.common import (
    BENCH_MESH,
    BENCH_STEPS,
    FigureSeries,
    gpu_node_counts,
    iteration_model_for,
)
from repro.perfmodel.machines import TITAN, Machine
from repro.perfmodel.predict import predict_scaling
from repro.perfmodel.profiles import SolverConfig

#: The roadmap lines: label -> (config, iteration-model config).
#: Deflation does not change iteration counts at the paper's dt (the
#: spectrum is shift-dominated; see EXPERIMENTS.md), so dcg reuses CG's
#: measured counts — it pays its projector reduction for nothing here,
#: which is itself the honest result.
FUTURE_LINES = (
    ("CG", SolverConfig("cg"), SolverConfig("cg")),
    ("CG-fused", SolverConfig("cg_fused"), SolverConfig("cg")),
    ("Deflated CG", SolverConfig("dcg"), SolverConfig("cg")),
    ("CPPCG - 16", SolverConfig("ppcg", inner_steps=10, halo_depth=16),
     SolverConfig("ppcg", inner_steps=10, halo_depth=16)),
)


def run_future_solvers(machine: Machine = TITAN,
                       mesh_n: int = BENCH_MESH,
                       n_steps: int = BENCH_STEPS) -> FigureSeries:
    nodes = gpu_node_counts(machine.max_nodes)
    fig = FigureSeries(
        name=f"Extended: §VII solver roadmap on {machine.name}",
        node_counts=nodes,
        meta={"machine": machine.name, "mesh_n": mesh_n})
    for label, config, iter_config in FUTURE_LINES:
        iters = iteration_model_for(iter_config)(mesh_n)
        pts = predict_scaling(machine, config, mesh_n, nodes,
                              outer_iters=iters, n_steps=n_steps)
        fig.add(label, [p.seconds for p in pts])
    return fig


def main() -> str:
    fig = run_future_solvers()
    text = fig.to_text()
    best = {label: fig.best(label) for label in fig.series}
    lines = [text, ""]
    for label, (nodes, secs) in best.items():
        lines.append(f"{label:12s}: best {secs:7.2f} s at {nodes} nodes")
    out = "\n".join(lines)
    print(out)
    return out


if __name__ == "__main__":
    main()
