"""Experiment harness: one entry point per paper table and figure.

Each ``figN`` module exposes a ``run_figN(...)`` function returning a
structured result (series data plus provenance) and a ``main()`` that
prints the paper-style table; the corresponding ``benchmarks/test_figN_*``
regenerates and shape-checks it.  See DESIGN.md §4 for the index.
"""

from repro.harness.common import (
    BENCH_MESH,
    BENCH_STEPS,
    FigureSeries,
    gpu_node_counts,
    iteration_model_for,
    spruce_node_counts,
)
from repro.harness.breakdown import run_breakdown
from repro.harness.chaos_sweep import run_chaos
from repro.harness.depth_sweep import run_depth_sweep
from repro.harness.future_solvers import run_future_solvers
from repro.harness.resilience_sweep import run_resilience_sweep
from repro.harness.stability_sweep import run_stability_sweep
from repro.harness.table1 import run_table1
from repro.harness.fig3 import run_fig3
from repro.harness.fig4 import run_fig4
from repro.harness.fig5 import run_fig5
from repro.harness.fig6 import run_fig6
from repro.harness.fig7 import run_fig7
from repro.harness.fig8 import run_fig8

__all__ = [
    "BENCH_MESH",
    "BENCH_STEPS",
    "FigureSeries",
    "gpu_node_counts",
    "spruce_node_counts",
    "iteration_model_for",
    "run_table1",
    "run_breakdown",
    "run_chaos",
    "run_depth_sweep",
    "run_future_solvers",
    "run_resilience_sweep",
    "run_stability_sweep",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
]
