"""Chaos campaign driver: run, render and persist the recovery-SLO ledger.

Thin harness over :func:`repro.resilience.chaos.run_campaign`: runs a
pinned-seed campaign, renders the per-fault-class SLO table, and writes
the ledger as ``CHAOS_<n>.json`` into a results directory (``<n>`` is the
next free index, so successive campaigns never clobber each other's
ledgers).  Minimized fixtures for any oracle failure land next to the
ledger under ``fixtures/``.

Everything in the ledger derives from seeded draws and virtual clocks —
two runs at the same seed write byte-identical JSON (the CI ``chaos``
job and ``tests/test_chaos.py`` both hold that invariant).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.resilience.chaos import (
    ChaosCampaignResult,
    run_campaign,
)

_LEDGER_RE = re.compile(r"CHAOS_(\d+)\.json$")


def next_ledger_path(out_dir: Path) -> Path:
    """The first unused ``CHAOS_<n>.json`` path under ``out_dir``."""
    out_dir = Path(out_dir)
    taken = [int(m.group(1)) for p in out_dir.glob("CHAOS_*.json")
             if (m := _LEDGER_RE.match(p.name))]
    return out_dir / f"CHAOS_{max(taken, default=-1) + 1}.json"


def write_ledger(result: ChaosCampaignResult, out_dir: Path) -> Path:
    """Persist the ledger as the next free ``CHAOS_<n>.json``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = next_ledger_path(out_dir)
    path.write_text(result.to_json() + "\n", encoding="utf-8")
    return path


def render(result: ChaosCampaignResult) -> str:
    """Human-readable SLO ledger table."""
    lines = [f"== chaos campaign: seed={result.seed} n={result.n} "
             f"trials={len(result.results)} "
             f"solvers={','.join(result.solvers)} =="]
    lines.append(f"  {'class':<11} {'trials':>6} {'conv':>5} {'fail':>5} "
                 f"{'abort':>5} {'rate':>6} {'extra':>7} {'retries':>7} "
                 f"{'vtime_s':>8}")
    for cls, s in sorted(result.class_stats().items()):
        lines.append(
            f"  {cls:<11} {s['trials']:>6} {s['converged']:>5} "
            f"{s['failed']:>5} {s['aborted']:>5} "
            f"{s['recovery_rate']:>6.3f} {s['mean_extra_iterations']:>7.1f} "
            f"{s['retries']:>7} {s['virtual_time_s']:>8.3f}")
    for i, v in result.oracle_violations:
        lines.append(f"  ORACLE trial {i}: {v}")
    for v in result.budget_violations():
        lines.append(f"  BUDGET {v}")
    lines.append("  PASS" if result.passed else "  FAIL")
    return "\n".join(lines)


def run_chaos(seed: int = 20170905,
              trials: int = 200,
              *,
              n: int = 12,
              out_dir: Path | str = "results/chaos") -> tuple[
                  ChaosCampaignResult, Path]:
    """Run one campaign and persist its ledger + fixtures under ``out_dir``."""
    out = Path(out_dir)
    result = run_campaign(seed, trials, n=n, fixtures_dir=out / "fixtures")
    return result, write_ledger(result, out)


def main(argv: list[str] | None = None) -> int:
    """Run a campaign; exit 1 on any oracle or budget violation."""
    import argparse

    parser = argparse.ArgumentParser(
        description="chaos campaign: randomized fault storms vs the "
                    "composed resilient stack")
    parser.add_argument("--seed", type=int, default=20170905)
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--n", type=int, default=12, help="mesh size")
    parser.add_argument("--out", default="results/chaos",
                        help="directory for CHAOS_<n>.json + fixtures/")
    args = parser.parse_args(argv)
    result, path = run_chaos(args.seed, args.trials, n=args.n,
                             out_dir=args.out)
    print(render(result))
    print(f"ledger written to {path}")
    return result.exit_code


if __name__ == "__main__":
    import sys
    sys.exit(main())
