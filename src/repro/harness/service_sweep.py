"""Service load-generator: deterministic multi-tenant sweeps → SLO ledger.

Drives the :class:`~repro.service.engine.ServiceEngine` with a seeded
workload of mixed deck-style requests — several tenants (one heavy
hitter that trips its quota), a solver mix, matrix-powers depth
variants, poison decks, chaos storms (transient fault plans plus fatal
rank crashes via PR 7's :func:`~repro.resilience.chaos.random_fault_plan`),
tight deadlines and mid-solve client cancels — and writes the outcome
ledger as ``SERVICE_<n>.json`` (schema ``repro.service/v1``).

Everything runs on virtual time from seeded draws: two same-seed sweeps
write **byte-identical** JSON.  The ledger carries per-status counts,
latency percentiles, shed/degrade/breaker/recovery rates, cache
statistics and the SLO verdicts; completed/degraded solutions are
checked against PR 7's differential oracle
(:class:`~repro.resilience.chaos.GoldenCache` true residuals).
"""

from __future__ import annotations

import json
import random
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.physics.deck import CROOKED_PIPE_DECK
from repro.resilience.chaos import ORACLE_RESIDUAL_SLACK, GoldenCache
from repro.service.engine import ServiceConfig, ServiceEngine
from repro.service.requests import STATUSES, SolveRequest

SCHEMA = "repro.service/v1"

_LEDGER_RE = re.compile(r"SERVICE_(\d+)\.json$")

#: (tenant, arrival weight); acme is the deliberate heavy hitter.
TENANTS = (("acme", 5), ("beta", 3), ("gamma", 2))

#: (deck solver flag, extra deck lines, weight).  Defence selection
#: mirrors PR 7's campaign: the CG family carries residual replacement
#: (corruption cannot fake convergence), the others arm the checksum
#: integrity layer instead.
SOLVER_MIX = (
    ("use_cg", "tl_replace_interval=10", 6),
    ("use_cg_fused", "tl_enable_checksums", 2),
    ("use_jacobi", "tl_enable_checksums", 2),
    ("use_ppcg", "tl_eigen_warmup_iters=8\ntl_enable_checksums", 3),
    ("use_ppcg", "tl_eigen_warmup_iters=8\ntl_ppcg_halo_depth=4\n"
     "tl_enable_checksums", 2),
    ("use_chebyshev", "tl_eigen_warmup_iters=8\ntl_enable_checksums", 2),
)

#: Deck tolerance every sweep request runs at (the oracle threshold is
#: ORACLE_RESIDUAL_SLACK times this; matches PR 7's campaign configs).
SWEEP_EPS = 1e-8

_POISON_DECKS = (
    "*tea\nbogus_key=1\n*endtea\n",                       # unknown setting
    "*tea\nuse_cg\ntl_eps=-1\n*endtea\n",                  # invalid value
    "*tea\nuse_cg\ntl_max_iters=not_a_number\n*endtea\n",  # bad cast
)

#: Default SLO budgets the ledger is judged against.
DEFAULT_SLO = {
    "max_unclassified": 0,
    "max_oracle_violations": 0,
    "min_served_rate": 0.50,       # completed+degraded / admitted
    "max_shed_rate": 0.40,         # shed / submitted
    "max_failed_rate": 0.20,       # failed / submitted
    "max_p99_latency_s": 0.30,     # virtual seconds
    "min_recovery_rate": 0.20,     # served after re-dispatch / redispatched
}


def _weighted(rng: random.Random, pairs):
    total = sum(w for _, w in pairs)
    pick = rng.random() * total
    for value, weight in pairs:
        pick -= weight
        if pick <= 0:
            return value
    return pairs[-1][0]


def _deck_text(flag: str, extra: str, n: int) -> str:
    # The template's own tl_eps line is replaced (not shadowed): the
    # hardened deck parser rejects duplicate settings outright.
    text = (CROOKED_PIPE_DECK.format(n=n)
            .replace("use_ppcg", flag)
            .replace("tl_eps=1e-10", f"tl_eps={SWEEP_EPS}"))
    if extra:
        text = text.replace("*endtea", extra + "\n*endtea")
    return text


def generate_requests(seed: int, count: int, *,
                      chaos: bool = True) -> list[SolveRequest]:
    """Seeded mixed workload (poison/chaos/deadline/cancel flavours)."""
    rng = random.Random(seed)
    requests = []
    now = 0.0
    tenant_pairs = [(t, w) for t, w in TENANTS]
    solver_pairs = [((flag, extra), w) for flag, extra, w in SOLVER_MIX]
    for i in range(count):
        now += rng.expovariate(700.0)   # ~1.4 ms mean inter-arrival
        tenant = _weighted(rng, tenant_pairs)
        n = 16 if rng.random() < 0.35 else 12
        roll = rng.random()
        if roll < 0.03:
            deck = _POISON_DECKS[i % len(_POISON_DECKS)]
        else:
            flag, extra = _weighted(rng, solver_pairs)
            deck = _deck_text(flag, extra, n)
        deadline = None
        if rng.random() < 0.25:
            # Mixed deadlines: roughly half are tight enough to expire.
            deadline = rng.uniform(0.0002, 0.004)
        cancel_after = None
        if rng.random() < 0.05:
            cancel_after = rng.uniform(0.0001, 0.001)
        chaos_trial = -1
        chaos_crash = False
        if chaos and rng.random() < 0.30:
            chaos_trial = i
            chaos_crash = rng.random() < 0.25
        requests.append(SolveRequest(
            request_id=f"req-{i:05d}",
            tenant=tenant,
            arrival_s=now,
            deck_text=deck,
            n=n,
            deadline_s=deadline,
            cancel_after_s=cancel_after,
            max_attempts=3,
            chaos_trial=chaos_trial,
            chaos_crash=chaos_crash,
        ))
    return requests


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


@dataclass
class ServiceSweepResult:
    """One sweep's full ledger (JSON-ready, byte-deterministic)."""

    seed: int
    requests: int
    chaos: bool
    config: dict
    outcomes: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    slo: dict = field(default_factory=dict)
    oracle: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "requests": self.requests,
            "chaos": self.chaos,
            "config": self.config,
            "stats": self.stats,
            "slo": self.slo,
            "oracle": self.oracle,
            "violations": list(self.violations),
            "outcomes": list(self.outcomes),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _compute_stats(outcomes, engine: ServiceEngine) -> dict:
    submitted = len(outcomes)
    by_status = {s: 0 for s in STATUSES}
    for o in outcomes:
        by_status[o.status] = by_status.get(o.status, 0) + 1
    served = [o for o in outcomes if o.status in ("completed", "degraded")]
    latencies = sorted(o.latency_s for o in served)
    admitted = submitted - by_status["shed"]
    redispatched = [o for o in outcomes if o.attempts > 1]
    recovered = [o for o in redispatched
                 if o.status in ("completed", "degraded")]
    makespan = max((o.finish_s for o in outcomes if o.finish_s >= 0),
                   default=0.0)
    per_tenant: dict = {}
    for o in outcomes:
        t = per_tenant.setdefault(o.tenant,
                                  {"submitted": 0, "shed": 0, "served": 0})
        t["submitted"] += 1
        if o.status == "shed":
            t["shed"] += 1
        elif o.status in ("completed", "degraded"):
            t["served"] += 1
    breakers = [w.breaker for w in engine.workers]
    return {
        "submitted": submitted,
        "admitted": admitted,
        "by_status": by_status,
        "served_rate": (len(served) / admitted) if admitted else 0.0,
        "shed_rate": by_status["shed"] / submitted if submitted else 0.0,
        "failed_rate": by_status["failed"] / submitted if submitted else 0.0,
        "degrade_rate": (by_status["degraded"] / admitted) if admitted else 0.0,
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p99_s": _percentile(latencies, 0.99),
        "latency_mean_s": (sum(latencies) / len(latencies)) if latencies
        else 0.0,
        "throughput_rps": (len(served) / makespan) if makespan > 0 else 0.0,
        "makespan_s": makespan,
        "redispatches": len(redispatched),
        "recovery_rate": (len(recovered) / len(redispatched))
        if redispatched else 1.0,
        "breaker_opened": sum(b.opened for b in breakers),
        "breaker_reclosed": sum(b.reclosed for b in breakers),
        "comm_retries": sum(o.retries for o in outcomes),
        "cache": engine.cache.stats(),
        "per_tenant": per_tenant,
        "counters": dict(sorted(
            engine.metrics.snapshot()["counters"].items())),
    }


def _check_oracle(outcomes, requests) -> tuple[dict, list[str]]:
    """Differential oracle over every served solution (PR 7 reuse)."""
    golden = GoldenCache()
    threshold = ORACLE_RESIDUAL_SLACK * SWEEP_EPS
    checked = 0
    violations: list[str] = []
    n_of = {r.request_id: r.n for r in requests}
    for o in outcomes:
        if o.status not in ("completed", "degraded") or o.x is None:
            continue
        checked += 1
        rel = golden.true_relative_residual(o.x, n_of[o.request_id])
        if rel > threshold:
            violations.append(
                f"{o.request_id}: true relative residual {rel:.3e} "
                f"> {threshold:.1e}")
    return ({"checked": checked, "threshold": threshold,
             "violations": len(violations)}, violations)


def run_service_sweep(seed: int = 20170905,
                      count: int = 200,
                      *,
                      chaos: bool = True,
                      config: ServiceConfig | None = None,
                      slo: dict | None = None) -> ServiceSweepResult:
    """Run one sweep and judge it against the SLO budgets."""
    cfg = config if config is not None else ServiceConfig(
        workers=2, group_size=2, max_queue=8,
        quota_rate=300.0, quota_burst=12.0,
        chaos_seed=seed)
    budgets = dict(DEFAULT_SLO)
    if slo:
        budgets.update(slo)
    requests = generate_requests(seed, count, chaos=chaos)
    engine = ServiceEngine(cfg)
    outcomes = engine.run(requests)
    stats = _compute_stats(outcomes, engine)

    violations: list[str] = []
    unclassified = [o for o in outcomes if o.status not in STATUSES
                    or (o.status == "failed" and not o.error_class)]
    if len(unclassified) > budgets["max_unclassified"]:
        violations.append(
            f"{len(unclassified)} unclassified outcome(s): "
            + ", ".join(o.request_id for o in unclassified[:5]))
    oracle, oracle_violations = _check_oracle(outcomes, requests)
    violations.extend(oracle_violations[:10])
    if oracle["violations"] > budgets["max_oracle_violations"]:
        pass  # the individual messages above already fail the sweep
    if stats["served_rate"] < budgets["min_served_rate"]:
        violations.append(
            f"served_rate {stats['served_rate']:.3f} "
            f"< {budgets['min_served_rate']}")
    if stats["shed_rate"] > budgets["max_shed_rate"]:
        violations.append(
            f"shed_rate {stats['shed_rate']:.3f} "
            f"> {budgets['max_shed_rate']}")
    if stats["failed_rate"] > budgets["max_failed_rate"]:
        violations.append(
            f"failed_rate {stats['failed_rate']:.3f} "
            f"> {budgets['max_failed_rate']}")
    if stats["latency_p99_s"] > budgets["max_p99_latency_s"]:
        violations.append(
            f"latency_p99_s {stats['latency_p99_s']:.4f} "
            f"> {budgets['max_p99_latency_s']}")
    if stats["redispatches"] > 0 \
            and stats["recovery_rate"] < budgets["min_recovery_rate"]:
        violations.append(
            f"recovery_rate {stats['recovery_rate']:.3f} "
            f"< {budgets['min_recovery_rate']}")

    return ServiceSweepResult(
        seed=seed,
        requests=count,
        chaos=chaos,
        config=asdict(cfg),
        outcomes=[o.to_dict() for o in outcomes],
        stats=stats,
        slo=budgets,
        oracle=oracle,
        violations=violations,
    )


def next_ledger_path(out_dir: Path) -> Path:
    """The first unused ``SERVICE_<n>.json`` path under ``out_dir``."""
    out_dir = Path(out_dir)
    taken = [int(m.group(1)) for p in out_dir.glob("SERVICE_*.json")
             if (m := _LEDGER_RE.match(p.name))]
    return out_dir / f"SERVICE_{max(taken, default=-1) + 1}.json"


def write_ledger(result: ServiceSweepResult, out_dir: Path,
                 index: int | None = None) -> Path:
    """Persist the ledger (next free index, or a pinned one)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = (out_dir / f"SERVICE_{index}.json" if index is not None
            else next_ledger_path(out_dir))
    path.write_text(result.to_json() + "\n", encoding="utf-8")
    return path


def render(result: ServiceSweepResult) -> str:
    """Human-readable sweep summary."""
    s = result.stats
    lines = [f"== service sweep: seed={result.seed} "
             f"requests={result.requests} chaos={result.chaos} =="]
    lines.append("  " + " ".join(
        f"{status}={s['by_status'][status]}" for status in STATUSES))
    lines.append(
        f"  served_rate={s['served_rate']:.3f} shed={s['shed_rate']:.3f} "
        f"failed={s['failed_rate']:.3f} degrade={s['degrade_rate']:.3f}")
    lines.append(
        f"  latency p50={s['latency_p50_s']*1e3:.2f}ms "
        f"p99={s['latency_p99_s']*1e3:.2f}ms "
        f"throughput={s['throughput_rps']:.0f} req/s "
        f"makespan={s['makespan_s']:.3f}s")
    lines.append(
        f"  redispatches={s['redispatches']} "
        f"recovery_rate={s['recovery_rate']:.3f} "
        f"breaker opened={s['breaker_opened']} "
        f"reclosed={s['breaker_reclosed']} "
        f"comm_retries={s['comm_retries']}")
    cache = s["cache"]
    lines.append(
        f"  cache hits={cache['hits']} misses={cache['misses']} "
        f"evictions={cache['evictions']} corruptions={cache['corruptions']}")
    lines.append(f"  oracle checked={result.oracle['checked']} "
                 f"violations={result.oracle['violations']}")
    for v in result.violations:
        lines.append(f"  SLO {v}")
    lines.append("  PASS" if result.passed else "  FAIL")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run a sweep; exit 1 on any SLO or oracle violation."""
    import argparse

    parser = argparse.ArgumentParser(
        description="deterministic multi-tenant service load sweep "
                    "-> SERVICE_<n>.json")
    parser.add_argument("--seed", type=int, default=20170905)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--no-chaos", action="store_true",
                        help="disable fault storms / crashes")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--group-size", type=int, default=2,
                        help="SPMD ranks per worker group")
    parser.add_argument("--out", default="results/service",
                        help="directory for SERVICE_<n>.json")
    parser.add_argument("--index", type=int, default=-1,
                        help="pin the ledger index (-1: next free slot)")
    args = parser.parse_args(argv)

    cfg = ServiceConfig(workers=args.workers, group_size=args.group_size,
                        max_queue=8, quota_rate=300.0, quota_burst=12.0,
                        chaos_seed=args.seed)
    result = run_service_sweep(args.seed, args.requests,
                               chaos=not args.no_chaos, config=cfg)
    path = write_ledger(result, Path(args.out),
                        index=args.index if args.index >= 0 else None)
    print(render(result))
    print(f"ledger written to {path}")
    return result.exit_code


if __name__ == "__main__":
    import sys
    sys.exit(main())
