"""Extended study: optimal matrix-powers halo depth per machine and scale.

The paper observes (§VI) that deeper halos keep paying off on GPUs up to
depth 16 while CPUs plateau around 8, and conjectures "Increasing the CPPCG
halo depth is expected to improve both its scaling and performance
further".  This study sweeps depth x node-count per machine and reports the
best depth at each scale — quantifying where the redundant-work cost
overtakes the latency saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.common import BENCH_MESH, BENCH_STEPS, iteration_model_for
from repro.perfmodel.machines import Machine, MACHINES
from repro.perfmodel.predict import predict_solve_time
from repro.perfmodel.profiles import SolverConfig

DEPTHS = (1, 2, 4, 8, 16)


@dataclass
class DepthSweepResult:
    machine: str
    ranks_per_node: int
    node_counts: list[int]
    #: seconds[depth][i] for node_counts[i]
    seconds: dict[int, list[float]]

    def best_depth(self, nodes: int) -> int:
        i = self.node_counts.index(nodes)
        return min(self.seconds, key=lambda d: self.seconds[d][i])

    def best_depths(self) -> list[int]:
        return [self.best_depth(n) for n in self.node_counts]


def run_depth_sweep(machine: Machine,
                    node_counts: list[int] | None = None,
                    mesh_n: int = BENCH_MESH,
                    n_steps: int = BENCH_STEPS,
                    ranks_per_node: int | None = None) -> DepthSweepResult:
    """Sweep PPCG halo depth over node counts on one machine."""
    if node_counts is None:
        node_counts = [n for n in (64, 256, 1024, 4096, 8192)
                       if n <= machine.max_nodes]
    rpn = ranks_per_node if ranks_per_node is not None \
        else machine.default_ranks_per_node
    seconds: dict[int, list[float]] = {}
    for depth in DEPTHS:
        config = SolverConfig("ppcg", inner_steps=10, halo_depth=depth)
        iters = iteration_model_for(config)(mesh_n)
        seconds[depth] = [
            predict_solve_time(machine, config, mesh_n, nodes,
                               outer_iters=iters, n_steps=n_steps,
                               ranks_per_node=rpn).seconds
            for nodes in node_counts
        ]
    return DepthSweepResult(machine=machine.name, ranks_per_node=rpn,
                            node_counts=node_counts, seconds=seconds)


def main() -> str:
    lines = []
    for name, rpn in (("Titan", 1), ("Piz Daint", 1), ("Spruce", 20)):
        sweep = run_depth_sweep(MACHINES[name], ranks_per_node=rpn)
        lines.append(f"== {name} (rpn={rpn}): best PPCG halo depth ==")
        for nodes, best in zip(sweep.node_counts, sweep.best_depths()):
            row = "  ".join(f"d{d}={sweep.seconds[d][sweep.node_counts.index(nodes)]:.2f}s"
                            for d in DEPTHS)
            lines.append(f"  {nodes:5d} nodes: best depth {best:2d}   {row}")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
