"""Kill/restart soak of the crash-consistent service → durability ledger.

The campaign drives the journaled :class:`~repro.service.engine.ServiceEngine`
through a seeded mixed workload — resumable checkpointing CG requests,
chaos storms, poison decks, duplicate idempotency keys, deadlines and
client cancels — while a child process is repeatedly ``SIGKILL``\\ ed at
seeded points *mid-campaign* (including mid-frame, leaving a torn journal
tail).  Each restart reopens the same journal, heals the tail, and
replays with exactly-once semantics until the campaign completes.

The recovered run is then judged against an **uninterrupted same-seed
golden run**:

- **zero lost acknowledgements** — every terminal record surviving in
  the journal matches the recovered outcome verbatim;
- **zero duplicate solves** — once a key's completion is journaled,
  no later bearer of that idempotency key is ever admitted for a solve;
- **differential oracle** — every served solution passes PR 7's
  true-residual check;
- **byte identity** — recovered outcomes, the journal record stream,
  and the resulting ``SOAK_SERVICE_<n>.json`` ledger are byte-identical
  to the golden run's, no matter where the kills landed.

The ledger therefore contains only *crash-invariant* data; runtime
recovery statistics (kill cycles, torn tails healed, replayed attempts,
resumed requests) go to stdout.
"""

from __future__ import annotations

import json
import os
import random
import re
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.harness.service_sweep import (
    SWEEP_EPS,
    _deck_text,
    _percentile,
    _weighted,
)
from repro.resilience.chaos import ORACLE_RESIDUAL_SLACK, GoldenCache
from repro.service.engine import ServiceConfig, ServiceEngine
from repro.service.journal import RequestJournal, scan_journal
from repro.service.recovery import ResultStore
from repro.service.requests import STATUSES, SolveRequest

SCHEMA = "repro.service-soak/v1"

_LEDGER_RE = re.compile(r"SOAK_SERVICE_(\d+)\.json$")

#: restart-cycle hard cap (progress >= ~2 records/cycle is guaranteed,
#: so a legitimate campaign finishes far below this)
MAX_CYCLES = 200

#: seeded kill point: this many records past the reopened journal's end
KILL_DRAW = (3, 25)

#: probability a kill lands mid-frame (torn tail) instead of between
#: records
TORN_PROBABILITY = 0.35

#: deck lines opting a request into mid-solve durability (guard
#: snapshots land in the service-managed per-request directory; the
#: deck's dir value is a placeholder)
CHECKPOINT_LINES = "tl_checkpoint_interval=3\ntl_checkpoint_dir=auto"

#: (deck flag, extra lines, chaos-eligible, weight)
SOAK_MIX = (
    ("use_cg", CHECKPOINT_LINES, False, 5),
    ("use_cg", "tl_replace_interval=10", True, 3),
    ("use_jacobi", "tl_enable_checksums", True, 2),
    ("use_ppcg", "tl_eigen_warmup_iters=8\ntl_enable_checksums", False, 2),
    ("use_chebyshev", "tl_eigen_warmup_iters=8\ntl_enable_checksums",
     False, 1),
)

_POISON_DECK = "*tea\nuse_cg\ntl_eps=-1\n*endtea\n"


def generate_soak_requests(seed: int, count: int) -> list[SolveRequest]:
    """Seeded workload exercising every durability surface.

    ~40% of requests carry an idempotency key from a small pool, so the
    campaign *contains* duplicate submissions; checkpointing CG requests
    (the resumable kind) never mix with chaos — fault-plan injection is
    op-indexed and exact resume must not shift it.
    """
    rng = random.Random(seed)
    mix = [((flag, extra, chaos_ok), w)
           for flag, extra, chaos_ok, w in SOAK_MIX]
    requests = []
    now = 0.0
    for i in range(count):
        now += rng.expovariate(700.0)
        tenant = _weighted(rng, [("acme", 3), ("beta", 2)])
        n = 12
        roll = rng.random()
        chaos_trial = -1
        chaos_crash = False
        if roll < 0.05:
            deck = _POISON_DECK
        else:
            flag, extra, chaos_ok = _weighted(rng, mix)
            deck = _deck_text(flag, extra, n)
            if chaos_ok and rng.random() < 0.40:
                chaos_trial = i
                chaos_crash = rng.random() < 0.25
        deadline = rng.uniform(0.0005, 0.004) if rng.random() < 0.10 else None
        cancel_after = rng.uniform(0.0002, 0.001) \
            if rng.random() < 0.05 else None
        key = f"idem-{rng.randrange(6)}" if rng.random() < 0.40 else ""
        requests.append(SolveRequest(
            request_id=f"req-{i:05d}",
            tenant=tenant,
            arrival_s=now,
            deck_text=deck,
            n=n,
            deadline_s=deadline,
            cancel_after_s=cancel_after,
            max_attempts=3,
            chaos_trial=chaos_trial,
            chaos_crash=chaos_crash,
            idempotency_key=key,
        ))
    return requests


def _engine_config(seed: int, workers: int, group_size: int) -> ServiceConfig:
    return ServiceConfig(workers=workers, group_size=group_size,
                         max_queue=8, quota_rate=300.0, quota_burst=12.0,
                         chaos_seed=seed, stuck_after_s=0.05)


def _run_campaign(root: Path, seed: int, count: int, workers: int,
                  group_size: int):
    """One full engine pass over the workload with durability on."""
    root = Path(root)
    journal = RequestJournal(root / "wal")
    engine = ServiceEngine(
        _engine_config(seed, workers, group_size),
        journal=journal,
        results=ResultStore(root / "results"),
        checkpoint_root=root / "checkpoints")
    outcomes = engine.run(generate_soak_requests(seed, count))
    journal.close()
    return engine, outcomes


# -- child process: run until the armed kill fires ---------------------------


def _child(root: Path, seed: int, count: int, workers: int,
           group_size: int, kill_seed: int, cycle: int) -> int:
    """Run the campaign with a seeded SIGKILL armed; 0 = ran to completion.

    The kill point is drawn relative to the *reopened* journal's record
    count, so every cycle makes progress; ``torn`` mode dies mid-frame
    to exercise tail healing on the next open.
    """
    root = Path(root)
    journal = RequestJournal(root / "wal")
    rng = random.Random(f"{kill_seed}:{cycle}")
    kill_after = journal.record_count + rng.randint(*KILL_DRAW)
    mode = "torn" if rng.random() < TORN_PROBABILITY else "clean"
    journal.arm_kill(kill_after, mode)
    engine = ServiceEngine(
        _engine_config(seed, workers, group_size),
        journal=journal,
        results=ResultStore(root / "results"),
        checkpoint_root=root / "checkpoints")
    # Runtime-only sidecar (never compared against golden): what this
    # cycle found on reopen — healed torn tails and in-flight victims
    # eligible for mid-solve resume — before the next kill erases it.
    with (root / "recovery-log.jsonl").open("a", encoding="utf-8") as fh:
        fh.write(json.dumps({
            "cycle": cycle, "records": journal.record_count,
            "healed": list(journal.warnings),
            "in_flight": [list(v) for v in engine.replay.in_flight()],
        }, sort_keys=True) + "\n")
    outcomes = engine.run(generate_soak_requests(seed, count))
    journal.close()
    # Survived the armed kill: the campaign is complete.  Persist what
    # only this process knows (outcomes + runtime recovery stats); the
    # parent re-loads it for the golden comparison.
    oracle, oracle_violations = _check_oracle(
        outcomes, generate_soak_requests(seed, count))
    (root / "outcomes.json").write_text(json.dumps({
        "outcomes": [o.to_dict() for o in outcomes],
        "oracle": oracle,
        "oracle_violations": oracle_violations,
        "recovery": engine.recovery_summary(),
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return 0


def _check_oracle(outcomes, requests) -> tuple[dict, list[str]]:
    """PR 7's differential oracle over every served solution."""
    golden = GoldenCache()
    threshold = ORACLE_RESIDUAL_SLACK * SWEEP_EPS
    checked = 0
    skipped = 0
    violations: list[str] = []
    n_of = {r.request_id: r.n for r in requests}
    for o in outcomes:
        if o.status not in ("completed", "degraded"):
            continue
        if o.x is None:
            skipped += 1
            continue
        checked += 1
        rel = golden.true_relative_residual(o.x, n_of[o.request_id])
        if rel > threshold:
            violations.append(
                f"{o.request_id}: true relative residual {rel:.3e} "
                f"> {threshold:.1e}")
    return ({"checked": checked, "skipped": skipped,
             "threshold": threshold,
             "violations": len(violations)}, violations)


# -- journal audits ----------------------------------------------------------


def _audit_journal(records: list[dict],
                   outcomes_by_id: dict[str, dict]) -> list[str]:
    """Exactly-once invariants over the surviving journal records."""
    violations: list[str] = []
    # Zero lost acknowledgements: every journaled terminal's status is
    # exactly what the recovered run reports for that request.
    for rec in records:
        if rec.get("type") != "terminal":
            continue
        out = outcomes_by_id.get(rec["request_id"])
        if out is None:
            violations.append(
                f"lost acknowledged request {rec['request_id']} "
                f"(journaled terminal {rec['status']!r}, no outcome)")
        elif out["status"] != rec["status"]:
            violations.append(
                f"acknowledgement changed for {rec['request_id']}: "
                f"journaled {rec['status']!r}, recovered {out['status']!r}")
    # Zero duplicate solves for acknowledged idempotency keys: once a
    # key's completion is journaled, every later bearer must be admitted
    # as a "dedup" (served from the digest), never "accepted" for a
    # solve.  Concurrent in-flight bearers admitted *before* the first
    # acknowledgement may legitimately both solve — dedup is an
    # admission-time, journal-order guarantee.
    completed_keys: set = set()
    dedup_requests: set = set()
    for rec in records:
        kind = rec.get("type")
        key = rec.get("key", "")
        if kind == "accepted" and key and key in completed_keys:
            violations.append(
                f"idempotency key {key!r} already acknowledged, but "
                f"{rec['request_id']} was re-admitted for a solve")
        elif kind == "dedup":
            dedup_requests.add(rec["request_id"])
        elif kind == "dispatched" and rec["request_id"] in dedup_requests:
            violations.append(
                f"deduplicated request {rec['request_id']} was "
                f"dispatched anyway")
        elif kind == "terminal" and key and rec.get("digest") \
                and rec.get("status") in ("completed", "degraded"):
            completed_keys.add(key)
    return violations


# -- the soak ----------------------------------------------------------------


@dataclass
class ServiceSoakResult:
    """Crash-invariant ledger + runtime (stdout-only) recovery stats."""

    seed: int
    kill_seed: int
    requests: int
    config: dict
    outcomes: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    checks: dict = field(default_factory=dict)
    oracle: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)
    #: runtime-only (kill cycles, replays, torn tails) — NOT in the ledger
    runtime: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "kill_seed": self.kill_seed,
            "requests": self.requests,
            "config": self.config,
            "stats": self.stats,
            "checks": self.checks,
            "oracle": self.oracle,
            "violations": list(self.violations),
            "outcomes": list(self.outcomes),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _stats(outcomes: list[dict]) -> dict:
    by_status = {s: 0 for s in STATUSES}
    for o in outcomes:
        by_status[o["status"]] = by_status.get(o["status"], 0) + 1
    served = [o for o in outcomes
              if o["status"] in ("completed", "degraded")]
    latencies = sorted(o["latency_s"] for o in served)
    return {
        "submitted": len(outcomes),
        "by_status": by_status,
        "deduplicated": sum(1 for o in outcomes if o["deduplicated"]),
        "with_idempotency_key": sum(
            1 for o in outcomes if o["idempotency_key"]),
        "served": len(served),
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p99_s": _percentile(latencies, 0.99),
        "comm_retries": sum(o["retries"] for o in outcomes),
    }


def run_service_soak(seed: int = 424243, count: int = 30, *,
                     kill_seed: int = 7, workers: int = 2,
                     group_size: int = 2,
                     work_dir: Path) -> ServiceSoakResult:
    """Kill/restart campaign + golden comparison; see the module docs.

    ``work_dir`` receives two trees: ``killed/`` (journal + results +
    checkpoints surviving the SIGKILL cycles) and ``golden/`` (the
    uninterrupted reference).
    """
    work_dir = Path(work_dir)
    killed_root = work_dir / "killed"
    golden_root = work_dir / "golden"
    killed_root.mkdir(parents=True, exist_ok=True)

    child_args = [sys.executable, "-m", "repro.harness.service_soak",
                  "--child", "--root", str(killed_root),
                  "--seed", str(seed), "--requests", str(count),
                  "--kill-seed", str(kill_seed),
                  "--workers", str(workers),
                  "--group-size", str(group_size)]
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

    cycles = 0
    kills = 0
    while True:
        if cycles >= MAX_CYCLES:
            raise RuntimeError(
                f"service soak made no progress in {MAX_CYCLES} cycles")
        cycles += 1
        proc = subprocess.run(
            child_args + ["--cycle", str(cycles)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        if proc.returncode == 0:
            break
        if proc.returncode != -9:   # anything but the armed SIGKILL
            raise RuntimeError(
                f"soak child failed (rc={proc.returncode}):\n"
                + proc.stderr.decode(errors="replace")[-2000:])
        kills += 1

    child_out = json.loads(
        (killed_root / "outcomes.json").read_text(encoding="utf-8"))
    recovered = child_out["outcomes"]

    # Uninterrupted same-seed reference, fully independent tree.
    golden_engine, golden_outcomes = _run_campaign(
        golden_root, seed, count, workers, group_size)
    golden_dicts = [o.to_dict() for o in golden_outcomes]
    golden_oracle, golden_oracle_violations = _check_oracle(
        golden_outcomes, generate_soak_requests(seed, count))

    violations: list[str] = []
    outcomes_match = recovered == golden_dicts
    if not outcomes_match:
        diff = [r["request_id"] for r, g in zip(recovered, golden_dicts)
                if r != g]
        violations.append(
            "recovered outcomes diverge from the uninterrupted run: "
            + ", ".join(diff[:5]))
    cycle_log = []
    log_path = killed_root / "recovery-log.jsonl"
    if log_path.is_file():
        cycle_log = [json.loads(line) for line in
                     log_path.read_text(encoding="utf-8").splitlines()]
    killed_records, killed_warnings = scan_journal(killed_root / "wal")
    golden_records, _ = scan_journal(golden_root / "wal")
    journal_match = killed_records == golden_records
    if not journal_match:
        violations.append(
            f"journal record streams diverge "
            f"({len(killed_records)} vs {len(golden_records)} records)")
    outcomes_by_id = {o["request_id"]: o for o in recovered}
    audit = _audit_journal(killed_records, outcomes_by_id)
    violations.extend(audit)
    violations.extend(child_out["oracle_violations"][:10])
    violations.extend(golden_oracle_violations[:10])
    if child_out["oracle"] != golden_oracle:
        violations.append(
            f"oracle summaries diverge: recovered {child_out['oracle']} "
            f"vs golden {golden_oracle}")

    checks = {
        "outcomes_match_golden": outcomes_match,
        "journal_matches_golden": journal_match,
        "lost_acknowledged": sum(1 for v in audit if "lost" in v
                                 or "changed" in v),
        "duplicate_solves": sum(1 for v in audit
                                if "re-admitted" in v or "anyway" in v),
    }
    return ServiceSoakResult(
        seed=seed,
        kill_seed=kill_seed,
        requests=count,
        config=asdict(_engine_config(seed, workers, group_size)),
        outcomes=recovered,
        stats=_stats(recovered),
        checks=checks,
        oracle=child_out["oracle"],
        violations=violations,
        runtime={
            "cycles": cycles,
            "kills": kills,
            "journal_records": len(killed_records),
            "torn_tail_warnings": killed_warnings,
            "torn_tails_healed": sum(len(c["healed"]) for c in cycle_log),
            "in_flight_victims": sum(len(c["in_flight"])
                                     for c in cycle_log),
            "recovery": child_out["recovery"],
            "golden_recovery": golden_engine.recovery_summary(),
        },
    )


def next_ledger_path(out_dir: Path) -> Path:
    out_dir = Path(out_dir)
    taken = [int(m.group(1)) for p in out_dir.glob("SOAK_SERVICE_*.json")
             if (m := _LEDGER_RE.match(p.name))]
    return out_dir / f"SOAK_SERVICE_{max(taken, default=-1) + 1}.json"


def write_ledger(result: ServiceSoakResult, out_dir: Path,
                 index: int | None = None) -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = (out_dir / f"SOAK_SERVICE_{index}.json" if index is not None
            else next_ledger_path(out_dir))
    path.write_text(result.to_json() + "\n", encoding="utf-8")
    return path


def render(result: ServiceSoakResult) -> str:
    s = result.stats
    r = result.runtime
    lines = [f"== service soak: seed={result.seed} "
             f"kill_seed={result.kill_seed} requests={result.requests} =="]
    lines.append(
        f"  cycles={r.get('cycles', '?')} kills={r.get('kills', '?')} "
        f"journal_records={r.get('journal_records', '?')} "
        f"torn_tails_healed={r.get('torn_tails_healed', 0)} "
        f"in_flight_victims={r.get('in_flight_victims', 0)}")
    rec = r.get("recovery", {})
    lines.append(
        f"  final cycle: replayed_attempts={rec.get('replayed_attempts')} "
        f"resumed={len(rec.get('resumed_requests', []))} "
        f"deduplicated={rec.get('deduplicated')}")
    lines.append("  " + " ".join(
        f"{status}={s['by_status'][status]}" for status in STATUSES))
    lines.append(
        f"  deduplicated={s['deduplicated']} "
        f"keyed={s['with_idempotency_key']} served={s['served']} "
        f"p99={s['latency_p99_s']*1e3:.2f}ms")
    lines.append(
        f"  checks: outcomes_match_golden={result.checks['outcomes_match_golden']} "
        f"journal_matches_golden={result.checks['journal_matches_golden']} "
        f"lost_acknowledged={result.checks['lost_acknowledged']} "
        f"duplicate_solves={result.checks['duplicate_solves']}")
    lines.append(f"  oracle checked={result.oracle['checked']} "
                 f"skipped={result.oracle['skipped']} "
                 f"violations={result.oracle['violations']}")
    for v in result.violations:
        lines.append(f"  VIOLATION {v}")
    lines.append("  PASS" if result.passed else "  FAIL")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the kill/restart soak; exit 1 on any durability violation."""
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        description="SIGKILL/restart soak of the journaled solve service "
                    "-> SOAK_SERVICE_<n>.json")
    parser.add_argument("--seed", type=int, default=424243)
    parser.add_argument("--requests", type=int, default=30)
    parser.add_argument("--kill-seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--group-size", type=int, default=2)
    parser.add_argument("--out", default="results/service",
                        help="directory for SOAK_SERVICE_<n>.json")
    parser.add_argument("--index", type=int, default=-1,
                        help="pin the ledger index (-1: next free slot)")
    parser.add_argument("--work-dir", default="",
                        help="journal/results scratch tree "
                             "(default: a temp dir)")
    # internal: one kill cycle inside the scratch tree
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--root", default="", help=argparse.SUPPRESS)
    parser.add_argument("--cycle", type=int, default=0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return _child(Path(args.root), args.seed, args.requests,
                      args.workers, args.group_size, args.kill_seed,
                      args.cycle)

    if args.work_dir:
        result = run_service_soak(
            args.seed, args.requests, kill_seed=args.kill_seed,
            workers=args.workers, group_size=args.group_size,
            work_dir=Path(args.work_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="service-soak-") as td:
            result = run_service_soak(
                args.seed, args.requests, kill_seed=args.kill_seed,
                workers=args.workers, group_size=args.group_size,
                work_dir=Path(td))
    path = write_ledger(result, Path(args.out),
                        index=args.index if args.index >= 0 else None)
    print(render(result))
    print(f"ledger written to {path}")
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
