"""Fig. 3: the crooked-pipe temperature field after 15 microseconds.

The paper renders the 4000x4000 domain; we run the same physics at a reduced
mesh (the field's structure — heat racing down the low-density pipe, barely
entering the dense material — is mesh-converged long before 4000, which is
Fig. 4's very point) and render it as an ASCII heat map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.ascii_viz import render_heatmap
from repro.mesh.grid import Grid2D
from repro.physics.problems import crooked_pipe
from repro.physics.simulation import SimulationReport, run_simulation
from repro.solvers.options import SolverOptions

#: The paper's time step and end time (microseconds).
DT = 0.04
END_TIME = 15.0


@dataclass
class Fig3Result:
    report: SimulationReport
    mesh_n: int
    end_time: float

    @property
    def temperature(self) -> np.ndarray:
        return self.report.temperature

    def pipe_mask(self) -> np.ndarray:
        """Cells inside the crooked pipe (the low-density region)."""
        grid = Grid2D(self.mesh_n, self.mesh_n)
        density, _ = crooked_pipe().paint(grid)
        return density < 1.0

    def render(self, width: int = 72) -> str:
        return render_heatmap(self.temperature, width=width)


def run_fig3(mesh_n: int = 64, *, dt: float = DT, end_time: float = END_TIME,
             nranks: int = 1, eps: float = 1e-8) -> Fig3Result:
    """Run the crooked-pipe problem to ``end_time`` and return the field."""
    n_steps = max(1, round(end_time / dt))
    options = SolverOptions(solver="ppcg", eps=eps, ppcg_inner_steps=10)
    report = run_simulation(
        Grid2D(mesh_n, mesh_n), crooked_pipe(), options,
        dt=dt, n_steps=n_steps, nranks=nranks)
    return Fig3Result(report=report, mesh_n=mesh_n, end_time=end_time)


def main(mesh_n: int = 64) -> str:
    result = run_fig3(mesh_n)
    T = result.temperature
    pipe = result.pipe_mask()
    text = "\n".join([
        f"== Fig. 3: crooked pipe at t={result.end_time} "
        f"({mesh_n}x{mesh_n}, paper: 4000x4000) ==",
        result.render(),
        f"temperature: min={T.min():.4g} max={T.max():.4g} "
        f"mean={T.mean():.4g}",
        f"pipe mean={T[pipe].mean():.4g}  dense-material "
        f"mean={T[~pipe].mean():.4g}",
    ])
    print(text)
    return text


if __name__ == "__main__":
    main()
