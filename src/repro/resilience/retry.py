"""Bounded retry with deterministic exponential backoff.

:class:`RetryingComm` sits between the instrumentation layer and the
fault injector in the canonical resilient stack::

    InstrumentedComm(RetryingComm(FaultyComm(base)))

It re-issues operations that fail with
:class:`~repro.utils.errors.TransientCommError` — the *recoverable* fault
class — up to ``max_attempts`` times, sleeping
``base_delay * backoff ** (attempt - 1)`` between attempts on a pluggable
clock.  Plain :class:`~repro.utils.errors.CommunicationError` (API
misuse, a receive timeout on a genuinely dropped message, an aborted
world) is *not* retried: re-issuing those can only waste the budget or
hang, so they fail fast to the solver-level recovery machinery.

Every re-issue records a :data:`~repro.comm.instrument.RETRY_KIND`
event, so retries are visible in the event log but never inflate the
logical operation counts the COMM_CONTRACT verifier asserts on.

No wall-clock time is consulted anywhere: the default
:class:`VirtualClock` just accumulates the seconds it was asked to
sleep, which keeps retry schedules (and therefore whole runs) exactly
reproducible and makes backoff costs measurable in tests.
"""

from __future__ import annotations

from repro.comm.base import Communicator
from repro.comm.instrument import RETRY_KIND
from repro.utils.errors import ConfigurationError, TransientCommError
from repro.utils.events import EventLog


class VirtualClock:
    """Deterministic clock: ``sleep`` only advances a counter.

    Shared between :class:`RetryingComm` (backoff sleeps) and
    :class:`~repro.resilience.faults.FaultyComm` (``delay`` faults) so a
    run's total injected latency is a single inspectable number.

    The instance is also **callable** (returns ``now``), so the same
    clock plugs into :class:`~repro.observe.trace.Tracer` and
    :class:`~repro.utils.timing.Timer`, making traces and timings of a
    run deterministic.  A non-zero ``tick`` advances ``now`` by that
    much on every *read*, which keeps deterministic timestamps strictly
    monotonic (distinct) without any wall-clock dependence; ``tick = 0``
    preserves the historical behaviour exactly.
    """

    def __init__(self, tick: float = 0.0):
        self.now = 0.0
        self.tick = tick

    def sleep(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        t = self.now
        self.now += self.tick
        return t


class RetryingComm(Communicator):
    """Communicator decorator that retries transient failures.

    Parameters
    ----------
    inner:
        The wrapped communicator (typically a
        :class:`~repro.resilience.faults.FaultyComm`).
    max_attempts:
        Total attempts per operation (first try included); must be >= 1.
    base_delay / backoff / max_delay:
        Backoff schedule: attempt ``k`` (1-based re-issue) sleeps
        ``min(base_delay * backoff ** (k - 1), max_delay)`` virtual
        seconds.  The cap keeps long retry chains (chaos campaigns run
        with generous ``max_attempts``) from charging exponentially
        growing virtual latency: without it a 20-attempt budget would
        sleep ``base_delay * 2**18`` on its last re-issue.
    clock:
        Object with ``sleep(seconds)``; defaults to a fresh
        :class:`VirtualClock`.
    events:
        Optional :class:`EventLog`; each re-issue records
        ``(RETRY_KIND, op_name)``.
    recv_timeout:
        Per-attempt receive timeout in seconds, forwarded to the inner
        ``recv``.  With a :class:`~repro.comm.threaded.ThreadComm`
        underneath this turns a dead peer into a
        :class:`CommunicationError` instead of a deadlock.
    cancel:
        Optional :class:`~repro.service.cancel.CancelToken`-like object
        polled between retry attempts.  A client-cancelled request stops
        burning its retry budget immediately (the poll raises
        :class:`~repro.utils.errors.Cancelled`, which is *not* a
        CommunicationError, so it surfaces as the primary failure);
        deadline budgets are deliberately not fired here — they are a
        function of the solver's iteration counter, which keeps expiry
        rank-coherent.
    """

    def __init__(self, inner: Communicator, max_attempts: int = 5,
                 base_delay: float = 1e-3, backoff: float = 2.0,
                 clock=None, events: EventLog | None = None,
                 recv_timeout: float | None = None,
                 max_delay: float = 1.0, cancel=None):
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if max_delay < base_delay:
            raise ConfigurationError(
                f"max_delay ({max_delay}) must be >= base_delay "
                f"({base_delay})")
        self.inner = inner
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.backoff = backoff
        self.max_delay = max_delay
        self.clock = clock if clock is not None else VirtualClock()
        self.events = events
        self.recv_timeout = recv_timeout
        self.cancel = cancel
        #: total re-issued attempts across all operations
        self.retries = 0

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    def _attempt(self, op_name: str, call):
        """Run ``call`` with bounded retry on TransientCommError."""
        attempt = 1
        while True:
            try:
                return call()
            except TransientCommError:
                # The final attempt re-raises the *retryable* error class
                # unchanged (TransientCommError, or its ChecksumError
                # subclass), so solver-level recovery machinery can still
                # classify an exhausted budget as a transient-fault death —
                # distinct from the fail-fast plain CommunicationError a
                # recv timeout raises.
                if attempt >= self.max_attempts:
                    raise
                if self.cancel is not None:
                    # A cancelled request must not burn its retry budget;
                    # Cancelled is not a CommunicationError, so it wins
                    # primary-failure selection in launch_spmd.
                    self.cancel.poll()
                self.clock.sleep(min(self.base_delay
                                     * self.backoff ** (attempt - 1),
                                     self.max_delay))
                attempt += 1
                self.retries += 1
                if self.events is not None:
                    self.events.record(RETRY_KIND, op_name)

    # -- point to point --------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._attempt("send", lambda: self.inner.send(obj, dest, tag))

    def recv(self, source: int, tag: int = 0,
             timeout: float | None = None):
        per_attempt = timeout if timeout is not None else self.recv_timeout
        if per_attempt is None:
            return self._attempt(
                "recv", lambda: self.inner.recv(source, tag))
        return self._attempt(
            "recv", lambda: self.inner.recv(source, tag,
                                            timeout=per_attempt))

    # -- collectives -----------------------------------------------------------

    def allreduce(self, value, op: str = "sum"):
        return self._attempt(
            "allreduce", lambda: self.inner.allreduce(value, op))

    def bcast(self, obj, root: int = 0):
        return self._attempt("bcast", lambda: self.inner.bcast(obj, root))

    def gather(self, obj, root: int = 0):
        return self._attempt("gather", lambda: self.inner.gather(obj, root))

    def allgather(self, obj) -> list:
        return self._attempt("allgather", lambda: self.inner.allgather(obj))

    def barrier(self) -> None:
        self._attempt("barrier", lambda: self.inner.barrier())
