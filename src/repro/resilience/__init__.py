"""Deterministic fault injection, retrying communication, self-healing solvers.

The paper's design space (§VIII) is explored on machines where transient
communication faults and corrupted reductions are facts of life; this
package makes those hazards *reproducible experiments* and gives the
solver stack the machinery to survive them:

- :mod:`repro.resilience.faults` — seeded, declarative fault injection
  (:class:`FaultPlan` → :class:`FaultyComm`), logging every injected
  fault as a :class:`FaultEvent`;
- :mod:`repro.resilience.retry` — :class:`RetryingComm`, bounded retry
  with deterministic exponential backoff on a :class:`VirtualClock`;
- :mod:`repro.resilience.guard` — :class:`SolverGuard`, residual health
  checks plus in-memory checkpoint/rollback for CG/PPCG/Chebyshev;
- :mod:`repro.resilience.runner` — the canonical stack
  (:func:`build_resilient_comm`) and a turn-key benchmark driver
  (:func:`run_resilient`).

See ``docs/resilience.md`` for the full model.
"""

from repro.resilience.faults import (
    CrashWindow,
    FaultEvent,
    FaultPlan,
    FaultRule,
    FaultyComm,
    IterationCell,
)
from repro.resilience.guard import GuardEvent, Snapshot, SolverGuard
from repro.resilience.retry import RetryingComm, VirtualClock
from repro.resilience.runner import (
    ResilienceReport,
    ResilientStack,
    build_resilient_comm,
    run_resilient,
)

__all__ = [
    "CrashWindow",
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "FaultyComm",
    "IterationCell",
    "GuardEvent",
    "Snapshot",
    "SolverGuard",
    "RetryingComm",
    "VirtualClock",
    "ResilienceReport",
    "ResilientStack",
    "build_resilient_comm",
    "run_resilient",
]
