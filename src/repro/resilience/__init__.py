"""Deterministic fault injection, retrying communication, self-healing solvers.

The paper's design space (§VIII) is explored on machines where transient
communication faults and corrupted reductions are facts of life; this
package makes those hazards *reproducible experiments* and gives the
solver stack the machinery to survive them:

- :mod:`repro.resilience.faults` — seeded, declarative fault injection
  (:class:`FaultPlan` → :class:`FaultyComm`), logging every injected
  fault as a :class:`FaultEvent`;
- :mod:`repro.resilience.retry` — :class:`RetryingComm`, bounded retry
  with deterministic exponential backoff on a :class:`VirtualClock`;
- :mod:`repro.resilience.guard` — :class:`SolverGuard`, residual health
  checks plus in-memory checkpoint/rollback for CG/PPCG/Chebyshev;
- :mod:`repro.resilience.runner` — the canonical stack
  (:func:`build_resilient_comm`) and a turn-key benchmark driver
  (:func:`run_resilient`);
- :mod:`repro.resilience.checkpoint` — durable atomic on-disk checkpoints
  (versioned manifest, per-array CRC32, per-rank shards) for simulation
  and solver state;
- :mod:`repro.resilience.integrity` — :class:`ChecksumComm`, checksummed
  redundant message envelopes and duplicate-lane reductions that turn
  silent payload corruption into detected, retryable faults;
- :mod:`repro.resilience.recovery` — :func:`run_recoverable`, ULFM-style
  shrink/respawn recovery from rank loss via the durable checkpoints;
- :mod:`repro.resilience.chaos` — seeded chaos campaigns: randomized
  fault storms over the *composed* stack, a differential invariant
  oracle against fault-free golden runs, ddmin fault-plan minimization
  into replayable fixtures, a recovery-SLO ledger, and a kill/restart
  soak runner.

See ``docs/resilience.md`` for the full model.
"""

from repro.resilience.chaos import (
    DEFAULT_BUDGETS,
    FAULT_CLASSES,
    ChaosCampaignResult,
    GoldenCache,
    SoakReport,
    TrialResult,
    TrialSpec,
    campaign_specs,
    known_bad_spec,
    load_fixture,
    minimize_and_write_fixture,
    random_fault_plan,
    replay_fixture,
    run_campaign,
    run_soak,
    run_trial,
    shrink_plan,
    storm_plan,
    write_fixture,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointWarning,
    SolverCheckpointStore,
    array_crc32,
    commit_checkpoint,
    latest_checkpoint,
    load_rank_checkpoint,
    load_shard,
    read_manifest,
    validate_checkpoint,
    write_shard,
)
from repro.resilience.faults import (
    CrashWindow,
    FaultEvent,
    FaultPlan,
    FaultRule,
    FaultyComm,
    IterationCell,
)
from repro.resilience.guard import GuardEvent, Snapshot, SolverGuard
from repro.resilience.integrity import (
    INTEGRITY_KIND,
    ChecksumComm,
    IntegrityEvent,
)
from repro.resilience.recovery import RecoveryEvent, run_recoverable
from repro.resilience.retry import RetryingComm, VirtualClock
from repro.resilience.runner import (
    ResilienceReport,
    ResilientStack,
    build_resilient_comm,
    run_resilient,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointWarning",
    "ChaosCampaignResult",
    "ChecksumComm",
    "DEFAULT_BUDGETS",
    "FAULT_CLASSES",
    "GoldenCache",
    "SoakReport",
    "TrialResult",
    "TrialSpec",
    "CrashWindow",
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "FaultyComm",
    "IterationCell",
    "GuardEvent",
    "INTEGRITY_KIND",
    "IntegrityEvent",
    "RecoveryEvent",
    "Snapshot",
    "SolverCheckpointStore",
    "SolverGuard",
    "RetryingComm",
    "VirtualClock",
    "ResilienceReport",
    "ResilientStack",
    "array_crc32",
    "build_resilient_comm",
    "campaign_specs",
    "commit_checkpoint",
    "known_bad_spec",
    "latest_checkpoint",
    "load_fixture",
    "load_rank_checkpoint",
    "load_shard",
    "minimize_and_write_fixture",
    "random_fault_plan",
    "read_manifest",
    "replay_fixture",
    "run_campaign",
    "run_recoverable",
    "run_resilient",
    "run_soak",
    "run_trial",
    "shrink_plan",
    "storm_plan",
    "validate_checkpoint",
    "write_fixture",
]
