"""Deterministic, seeded communication-fault injection.

At Titan/Piz Daint scale transient link failures, corrupted reductions and
straggling ranks are the norm, not the exception — and
communication-reduced CG variants are exactly the solvers known to be
numerically fragile under perturbed reductions (Bernaschi et al.).  This
module turns those hazards into *reproducible experiments*:

- a :class:`FaultPlan` declares what can go wrong (rules matching
  operations by kind/tag/rank/payload size, plus one-shot rank crash
  windows);
- :class:`FaultyComm` wraps any :class:`~repro.comm.base.Communicator`
  and consults the plan on every operation, injecting the declared faults
  from a seeded generator;
- every injected fault is logged as a :class:`FaultEvent` carrying the
  rank, operation, per-rank operation index and (when a
  :class:`~repro.resilience.guard.SolverGuard` shares an
  :class:`IterationCell`) the solver iteration — two runs with the same
  plan produce byte-identical fault logs.

Determinism and SPMD coherence
------------------------------
Fault decisions never consult wall-clock time or global RNG state.  Each
decision is a single uniform draw from ``np.random.default_rng`` seeded by
``(plan.seed, rule_index, op_code, rank_component, op_count)``:

- **point-to-point** operations include the rank, so each rank's link
  faults are independent — but fixed for a given seed regardless of
  thread scheduling;
- **collective** operations use a rank-*independent* seed keyed by the
  per-rank collective sequence number, which is identical on every rank
  of an SPMD program.  All ranks therefore take the same decision at the
  same collective: a corrupted allreduce is corrupted *identically*
  everywhere (as a faulty reduction tree would), and a transient error on
  a collective raises on every rank before any rank enters the barrier —
  so retries stay coherent and the world never deadlocks.

Fault modes
-----------
``error``
    Raise :class:`~repro.utils.errors.TransientCommError` *before* the
    operation touches the wire; a retry re-issues it cleanly.
``drop``
    Silently discard a ``send`` payload.  This is a *hard* fault: the
    receiver's ``recv`` can only fail by timeout, and retrying the
    receive cannot resurrect the message — it exists to exercise the
    timeout and solver-level degradation paths.
``delay``
    Deliver normally but charge ``delay_s`` to the injected virtual
    clock (see :class:`~repro.resilience.retry.VirtualClock`).
``corrupt_nan`` / ``corrupt_inf`` / ``corrupt_sign`` / ``corrupt_scale``
    Perturb the payload: NaN/Inf injection into one deterministic element
    of an array (or the scalar itself), sign flip, or magnitude scaling —
    the bit-flip-style corruptions that silently break Chebyshev's
    spectrum bounds and CG's recurrences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.comm.base import Communicator, payload_bytes
from repro.utils.errors import ConfigurationError, TransientCommError
from repro.utils.events import EventLog

#: Operation names a rule may match.
OPS = ("send", "recv", "allreduce", "bcast", "gather", "allgather",
       "barrier")
#: Operations whose fault decisions must coincide on every rank.
COLLECTIVE_OPS = frozenset({"allreduce", "bcast", "gather", "allgather",
                            "barrier"})
#: Stable integer codes folded into the seed (order = OPS).
_OP_CODE = {name: i for i, name in enumerate(OPS)}

MODES = ("error", "drop", "delay",
         "corrupt_nan", "corrupt_inf", "corrupt_sign", "corrupt_scale")
#: Modes that perturb the payload instead of failing the operation.
CORRUPTION_MODES = frozenset({"corrupt_nan", "corrupt_inf",
                              "corrupt_sign", "corrupt_scale"})


class IterationCell:
    """Mutable solver-iteration marker shared between guard and injector.

    A :class:`~repro.resilience.guard.SolverGuard` advances ``value`` each
    iteration; :class:`FaultyComm` stamps it into every
    :class:`FaultEvent`, so fault logs read "rank 1, op 37, iteration 12"
    instead of leaving the reader to reconstruct solver phase.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = -1):
        self.value = value


@dataclass(frozen=True)
class FaultRule:
    """One class of injectable fault.

    Parameters
    ----------
    mode:
        One of :data:`MODES` (see module docstring).
    probability:
        Per-matching-operation firing probability in ``[0, 1]``.
    ops:
        Operation kinds the rule applies to.
    ranks:
        Restrict to these ranks (``None`` = every rank).  Ignored for
        collective operations, whose decisions are rank-coherent by
        construction.
    tags:
        Point-to-point tag filter (halo traffic uses tags 101-104).
    min_bytes:
        Only operations whose payload is at least this large match — a
        size-based filter that singles out deep-halo exchanges (the
        matrix-powers kernel's big messages) without the comm layer
        knowing about halos.
    window:
        Half-open operation-index range ``[start, stop)`` in which the
        rule is live (``None`` = always).  Point-to-point operations are
        indexed by the per-rank global op counter; collectives by their
        per-kind collective sequence number, which is identical on every
        rank — so a windowed collective rule stays SPMD-coherent.
    max_faults:
        Cap on how many times this rule fires per communicator endpoint.
    delay_s / scale:
        Mode parameters for ``delay`` and ``corrupt_scale``.
    """

    mode: str
    probability: float = 1.0
    ops: tuple = ("send", "recv", "allreduce")
    ranks: tuple | None = None
    tags: tuple | None = None
    min_bytes: int = 0
    window: tuple | None = None
    max_faults: int | None = None
    delay_s: float = 1e-3
    scale: float = 100.0

    def __post_init__(self):
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}; expected one of {MODES}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}")
        unknown = set(self.ops) - set(OPS)
        if unknown:
            raise ConfigurationError(
                f"unknown op(s) {sorted(unknown)}; expected from {OPS}")

    def to_dict(self) -> dict:
        """JSON-ready description; inverse of :meth:`from_dict`.

        Tuples become lists (JSON has no tuple type); ``None`` filters stay
        ``None``.  The chaos shrinker serializes minimized plans through
        this so regression fixtures are plain JSON files.
        """
        return {
            "mode": self.mode,
            "probability": self.probability,
            "ops": list(self.ops),
            "ranks": None if self.ranks is None else list(self.ranks),
            "tags": None if self.tags is None else list(self.tags),
            "min_bytes": self.min_bytes,
            "window": None if self.window is None else list(self.window),
            "max_faults": self.max_faults,
            "delay_s": self.delay_s,
            "scale": self.scale,
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultRule":
        """Rebuild a rule from :meth:`to_dict` output (validates fields)."""
        def tup(value):
            return None if value is None else tuple(value)
        return FaultRule(
            mode=data["mode"],
            probability=data.get("probability", 1.0),
            ops=tuple(data.get("ops", ("send", "recv", "allreduce"))),
            ranks=tup(data.get("ranks")),
            tags=tup(data.get("tags")),
            min_bytes=data.get("min_bytes", 0),
            window=tup(data.get("window")),
            max_faults=data.get("max_faults"),
            delay_s=data.get("delay_s", 1e-3),
            scale=data.get("scale", 100.0),
        )

    def matches(self, op: str, rank: int, tag: int | None,
                nbytes: int, op_index: int) -> bool:
        if op not in self.ops:
            return False
        if (self.ranks is not None and op not in COLLECTIVE_OPS
                and rank not in self.ranks):
            return False
        if self.tags is not None and tag is not None and tag not in self.tags:
            return False
        if nbytes < self.min_bytes:
            return False
        if self.window is not None \
                and not self.window[0] <= op_index < self.window[1]:
            return False
        return True


@dataclass(frozen=True)
class CrashWindow:
    """A one-shot rank "crash": ``length`` consecutive operations fail.

    The rank is modelled as unresponsive-then-rebooted: every operation it
    attempts while ``start <= op_index < start + length`` raises
    :class:`TransientCommError`.  From its peers' perspective the rank's
    messages simply arrive late — a retrying caller rides out the window
    (each retry advances the operation index) and completes normally,
    provided ``length`` is smaller than the retry layer's ``max_attempts``;
    longer crashes exhaust the budget and surface as a hard failure, which
    is the intended model for a rank that never comes back.
    """

    rank: int
    start: int
    length: int

    def __post_init__(self):
        if self.length < 1 or self.start < 0 or self.rank < 0:
            raise ConfigurationError(
                f"invalid crash window (rank={self.rank}, start={self.start},"
                f" length={self.length})")

    def covers(self, rank: int, op_index: int) -> bool:
        return (rank == self.rank
                and self.start <= op_index < self.start + self.length)

    def to_dict(self) -> dict:
        """JSON-ready description; inverse of :meth:`from_dict`."""
        return {"rank": self.rank, "start": self.start,
                "length": self.length}

    @staticmethod
    def from_dict(data: dict) -> "CrashWindow":
        """Rebuild a crash window from :meth:`to_dict` output."""
        return CrashWindow(rank=data["rank"], start=data["start"],
                           length=data["length"])


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of everything that may go wrong.

    ``FaultPlan.disabled()`` is the identity plan used to prove the
    resilience stack adds zero contract drift when faults are off.
    """

    seed: int = 0
    rules: tuple = ()
    crashes: tuple = ()
    enabled: bool = True

    def __post_init__(self):
        for r in self.rules:
            if not isinstance(r, FaultRule):
                raise ConfigurationError(
                    f"rules must be FaultRule instances, got {type(r).__name__}")
        for c in self.crashes:
            if not isinstance(c, CrashWindow):
                raise ConfigurationError(
                    f"crashes must be CrashWindow instances, got {type(c).__name__}")

    @staticmethod
    def disabled() -> "FaultPlan":
        """A plan that injects nothing (zero-overhead passthrough)."""
        return FaultPlan(enabled=False)

    @staticmethod
    def transient(rate: float, seed: int = 0,
                  ops: tuple = ("send", "recv", "allreduce")) -> "FaultPlan":
        """Uniform transient-error plan: each op fails with ``rate``."""
        return FaultPlan(seed=seed,
                         rules=(FaultRule("error", probability=rate, ops=ops),))

    def active(self) -> bool:
        return self.enabled and bool(self.rules or self.crashes)

    def to_dict(self) -> dict:
        """JSON-ready plan description (schema ``repro.fault_plan/v1``).

        Round-trips exactly through :meth:`from_dict`:
        ``FaultPlan.from_dict(plan.to_dict()) == plan`` for every legal
        plan, which is what lets the chaos shrinker persist minimized
        plans as regression fixtures under ``tests/fixtures/chaos/``.
        """
        return {
            "schema": "repro.fault_plan/v1",
            "seed": self.seed,
            "enabled": self.enabled,
            "rules": [r.to_dict() for r in self.rules],
            "crashes": [c.to_dict() for c in self.crashes],
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        Raises :class:`ConfigurationError` on an unknown schema tag or any
        invalid rule/window field (the dataclass validators re-run).
        """
        schema = data.get("schema", "repro.fault_plan/v1")
        if schema != "repro.fault_plan/v1":
            raise ConfigurationError(
                f"unknown fault-plan schema {schema!r}; expected "
                "'repro.fault_plan/v1'")
        return FaultPlan(
            seed=data.get("seed", 0),
            rules=tuple(FaultRule.from_dict(r)
                        for r in data.get("rules", ())),
            crashes=tuple(CrashWindow.from_dict(c)
                          for c in data.get("crashes", ())),
            enabled=data.get("enabled", True),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, fully identifying its position in the run."""

    rank: int
    op: str
    op_index: int
    iteration: int
    rule: int          # index into plan.rules, or -1 for a crash window
    mode: str
    detail: str = ""

    def __str__(self) -> str:
        where = f"rank {self.rank} op#{self.op_index} ({self.op})"
        it = f" iter {self.iteration}" if self.iteration >= 0 else ""
        return f"[fault {self.mode}] {where}{it}: {self.detail}"


def _corrupt(obj: Any, mode: str, scale: float,
             rng: np.random.Generator) -> tuple[Any, str]:
    """Return a perturbed copy of a payload plus a human-readable note."""
    if isinstance(obj, np.ndarray):
        out = obj.copy()
        flat = out.reshape(-1)
        if flat.size == 0:
            return out, "empty payload untouched"
        i = int(rng.integers(flat.size))
        if mode == "corrupt_nan":
            flat[i] = np.nan
        elif mode == "corrupt_inf":
            flat[i] = np.inf
        elif mode == "corrupt_sign":
            flat[i] = -flat[i]
        else:
            flat[i] = flat[i] * scale
        return out, f"element {i}/{flat.size} perturbed ({mode})"
    if isinstance(obj, (int, float, np.floating, np.integer)):
        v = float(obj)
        if mode == "corrupt_nan":
            return float("nan"), "scalar -> NaN"
        if mode == "corrupt_inf":
            return float("inf"), "scalar -> Inf"
        if mode == "corrupt_sign":
            return -v, "scalar sign flipped"
        return v * scale, f"scalar scaled by {scale}"
    # Structured payloads (tuples from gathers, ...) are left intact:
    # corrupting pickled control data would model a different failure
    # class (software bugs) than the bit-flips this module injects.
    return obj, "non-numeric payload untouched"


class FaultyComm(Communicator):
    """Communicator decorator injecting faults from a :class:`FaultPlan`.

    Composes with the existing wrappers; the canonical resilient stack is
    ``InstrumentedComm(RetryingComm(FaultyComm(base)))`` so instrument
    counts stay first-attempt counts (see
    :data:`repro.comm.instrument.RETRY_KIND`).

    Parameters
    ----------
    inner:
        The wrapped communicator.
    plan:
        The fault plan; ``FaultPlan.disabled()`` makes this a passthrough.
    events:
        Optional :class:`EventLog`; each injected fault records a
        ``("fault", mode)`` event.
    clock:
        Optional clock (``sleep(seconds)``) charged by ``delay`` faults.
    iteration:
        Optional :class:`IterationCell` stamped into fault events.
    """

    def __init__(self, inner: Communicator, plan: FaultPlan,
                 events: EventLog | None = None,
                 clock=None,
                 iteration: IterationCell | None = None):
        self.inner = inner
        self.plan = plan
        self.events = events
        self.clock = clock
        self.iteration = iteration if iteration is not None else IterationCell()
        #: chronological per-endpoint fault log (reproducible across runs)
        self.log: list[FaultEvent] = []
        self._op_index = 0
        self._op_counts: dict[str, int] = {}
        self._rule_fires: dict[int, int] = {}

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    # -- fault decision --------------------------------------------------------

    def _consult(self, op: str, obj: Any = None,
                 tag: int | None = None) -> list[tuple[int, FaultRule]]:
        """Advance counters and return the corruption rules that fired.

        ``error``/``drop``/``delay`` effects are applied in here (raise,
        log, or charge the clock); corruption rules are returned so the
        caller can apply them to its payload or result.
        """
        if not self.plan.active():
            return []
        idx = self._op_index
        self._op_index += 1
        seq = self._op_counts.get(op, 0)
        self._op_counts[op] = seq + 1

        for cw in self.plan.crashes:
            if cw.covers(self.rank, idx):
                self._record(op, idx, -1, "error",
                             f"rank crash window [{cw.start},"
                             f"{cw.start + cw.length})")
                raise TransientCommError(
                    f"injected crash: rank {self.rank} unresponsive at "
                    f"op#{idx} ({op})")

        nbytes = payload_bytes(obj) if obj is not None else 0
        collective = op in COLLECTIVE_OPS
        # Window matching must be rank-coherent for collectives: the
        # per-rank global op index drifts between ranks as their p2p
        # counts differ, so a windowed collective rule matched on it
        # would fire on a strict subset of ranks — an incoherent
        # collective fault that desyncs the world (one rank retries the
        # reduction, its peers move on; found by the chaos campaigns).
        # Collectives therefore match windows on their per-kind sequence
        # number, which is identical on every rank of an SPMD program.
        match_idx = seq if collective else idx
        fired: list[tuple[int, FaultRule]] = []
        for i, rule in enumerate(self.plan.rules):
            if not rule.matches(op, self.rank, tag, nbytes, match_idx):
                continue
            cap = rule.max_faults
            if cap is not None and self._rule_fires.get(i, 0) >= cap:
                continue
            if rule.probability < 1.0:
                rng = self._rng(i, op, seq, collective)
                if rng.random() >= rule.probability:
                    continue
            self._rule_fires[i] = self._rule_fires.get(i, 0) + 1
            if rule.mode == "error":
                self._record(op, idx, i, "error",
                             f"transient link error (p={rule.probability})")
                raise TransientCommError(
                    f"injected transient error: rank {self.rank} op#{idx} "
                    f"({op}, rule {i})")
            if rule.mode == "delay":
                self._record(op, idx, i, "delay", f"+{rule.delay_s}s")
                if self.clock is not None:
                    self.clock.sleep(rule.delay_s)
                continue
            # drop and corruptions are applied by the caller
            fired.append((i, rule))
        return fired

    def _rng(self, rule_index: int, op: str, seq: int,
             collective: bool) -> np.random.Generator:
        rank_component = 0 if collective else self.rank + 1
        return np.random.default_rng(
            (self.plan.seed, rule_index, _OP_CODE[op], rank_component, seq))

    def _payload_rng(self, rule_index: int, op: str,
                     seq: int, collective: bool) -> np.random.Generator:
        # A distinct stream from the decision draw, same determinism rules.
        rank_component = 0 if collective else self.rank + 1
        return np.random.default_rng(
            (self.plan.seed, 7919 + rule_index, _OP_CODE[op],
             rank_component, seq))

    def _record(self, op: str, op_index: int, rule: int, mode: str,
                detail: str) -> None:
        ev = FaultEvent(rank=self.rank, op=op, op_index=op_index,
                        iteration=self.iteration.value, rule=rule,
                        mode=mode, detail=detail)
        self.log.append(ev)
        if self.events is not None:
            self.events.record("fault", mode)

    def _apply_corruptions(self, op: str, obj: Any,
                           fired: list[tuple[int, FaultRule]],
                           op_index: int) -> Any:
        collective = op in COLLECTIVE_OPS
        for i, rule in fired:
            if rule.mode not in CORRUPTION_MODES:
                continue
            seq = self._op_counts[op] - 1
            rng = self._payload_rng(i, op, seq, collective)
            obj, note = _corrupt(obj, rule.mode, rule.scale, rng)
            self._record(op, op_index, i, rule.mode, note)
        return obj

    # -- point to point --------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        idx = self._op_index
        fired = self._consult("send", obj, tag)
        for i, rule in fired:
            if rule.mode == "drop":
                self._record("send", idx, i, "drop",
                             f"payload to rank {dest} tag {tag} discarded")
                return
        obj = self._apply_corruptions("send", obj, fired, idx)
        self.inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0,
             timeout: float | None = None):
        idx = self._op_index
        fired = self._consult("recv", None, tag)
        if timeout is None:
            obj = self.inner.recv(source, tag)
        else:
            obj = self.inner.recv(source, tag, timeout=timeout)
        return self._apply_corruptions("recv", obj, fired, idx)

    # -- collectives -----------------------------------------------------------

    def allreduce(self, value, op: str = "sum"):
        idx = self._op_index
        fired = self._consult("allreduce", value)
        out = self.inner.allreduce(value, op)
        # Corrupt the *result*, identically on every rank (coherent SPMD
        # decision) — modelling a faulty reduction tree, not divergent
        # per-rank contributions that would deadlock the control flow.
        return self._apply_corruptions("allreduce", out, fired, idx)

    def bcast(self, obj, root: int = 0):
        idx = self._op_index
        fired = self._consult("bcast", obj)
        out = self.inner.bcast(obj, root)
        return self._apply_corruptions("bcast", out, fired, idx)

    def gather(self, obj, root: int = 0):
        self._consult("gather", obj)
        return self.inner.gather(obj, root)

    def allgather(self, obj) -> list:
        self._consult("allgather", obj)
        return self.inner.allgather(obj)

    def barrier(self) -> None:
        self._consult("barrier", None)
        self.inner.barrier()
