"""Solver-level fault detection and recovery.

A :class:`SolverGuard` gives an iterative solver three capabilities:

- **health checks** — each iteration's residual (or any scalar the
  recurrence depends on) is screened for NaN/Inf and for divergence
  relative to the best norm seen so far, catching both corrupted
  reductions and recurrences knocked off course by perturbed halos;
- **checkpoints** — every ``checkpoint_interval`` iterations the solver
  hands the guard its live state (fields plus recurrence scalars); the
  guard keeps deep copies in memory;
- **rollback** — on an unhealthy iteration the solver restores the last
  checkpoint and resumes from there, up to ``max_rollbacks`` times, after
  which the guard raises :class:`~repro.utils.errors.ConvergenceError`
  (persistent corruption is not something restarts can fix).

The guard is deliberately passive: it never touches the communicator and
performs no reductions of its own, so it cannot change a solver's
COMM_CONTRACT.  All of its decisions are functions of quantities the
solver already computed from *global* reductions (the residual norm), so
under SPMD every rank takes the same save/rollback decision at the same
iteration — no extra synchronisation needed.

It also carries the :class:`~repro.resilience.faults.IterationCell` that
timestamps injected faults with the solver iteration, tying the fault log
to the convergence history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.resilience.faults import IterationCell
from repro.utils.errors import ConvergenceError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GuardEvent:
    """One guard decision (checkpoint taken, rollback performed)."""

    iteration: int
    action: str          # "checkpoint" | "rollback"
    detail: str = ""

    def __str__(self) -> str:
        return f"[guard {self.action}] iter {self.iteration}: {self.detail}"


@dataclass(frozen=True)
class Snapshot:
    """What :meth:`SolverGuard.rollback` hands back to the solver.

    Field *data* has already been copied back into the live field objects
    by the time the solver sees this; the solver only needs to reinstate
    its recurrence scalars and loop counters from ``scalars``.
    """

    iteration: int
    scalars: dict


class SolverGuard:
    """In-memory checkpoint/rollback controller for iterative solvers.

    Parameters
    ----------
    checkpoint_interval:
        Take a checkpoint every this many iterations (iteration 0 is
        always checkpointed, so there is always a state to roll back to).
    divergence_ratio:
        An iteration is unhealthy when its residual norm exceeds
        ``divergence_ratio`` times the best norm seen so far — the
        "quietly blowing up" signature of corrupted spectrum bounds or a
        perturbed direction vector, long before the norm overflows.
    max_rollbacks:
        Budget of *consecutive* rollbacks without an intervening healthy
        iteration; exceeding it raises :class:`ConvergenceError` (the
        fault is evidently not transient).  A healthy iteration resets
        the budget — distinct transient faults spread over a long solve
        are each recoverable.  A hard ceiling of ``10 * max_rollbacks``
        (at least 100) total rollbacks guards against pathological
        heal/corrupt alternation.
    iteration:
        Shared :class:`IterationCell` for fault-event timestamping; a
        private cell is created when omitted.
    store:
        Optional durable backing store (a
        :class:`~repro.resilience.checkpoint.SolverCheckpointStore`); when
        given, every :meth:`save` also persists the snapshot atomically to
        disk, so a killed process can resume from the guard's last
        collective checkpoint instead of iteration 0.
    """

    def __init__(self, checkpoint_interval: int = 10,
                 divergence_ratio: float = 1e4,
                 max_rollbacks: int = 3,
                 iteration: IterationCell | None = None,
                 store=None):
        check_positive("checkpoint_interval", checkpoint_interval)
        check_positive("divergence_ratio", divergence_ratio)
        check_positive("max_rollbacks", max_rollbacks, allow_zero=True)
        self.interval = checkpoint_interval
        self.divergence_ratio = divergence_ratio
        self.max_rollbacks = max_rollbacks
        self.cell = iteration if iteration is not None else IterationCell()
        self.store = store
        self.checkpoints = 0
        self.rollbacks = 0
        self._consecutive = 0
        self.log: list[GuardEvent] = []
        self._best = float("inf")
        self._saved_best = float("inf")
        self._fields: dict | None = None   # name -> (field object, data copy)
        self._scalars: dict | None = None
        self._iteration = -1

    # -- iteration tracking ----------------------------------------------------

    def begin(self, iteration: int) -> None:
        """Mark the solver iteration (stamps subsequent fault events)."""
        self.cell.value = iteration

    def due(self, iteration: int) -> bool:
        """Should the solver checkpoint now?"""
        return self._fields is None or iteration % self.interval == 0

    # -- checkpointing ---------------------------------------------------------

    def save(self, iteration: int, fields: dict, scalars: dict) -> None:
        """Deep-copy the solver state.

        ``fields`` maps names to live field objects (their ``.data``
        arrays are copied here, keeping allocation out of the solver's
        hot loop); ``scalars`` is copied shallowly and returned verbatim
        on rollback.
        """
        self._fields = {name: (f, np.array(f.data, copy=True))
                        for name, f in fields.items()}
        self._scalars = dict(scalars)
        self._iteration = iteration
        self._saved_best = self._best
        if self.store is not None:
            self.store.save(
                iteration,
                {name: copy for name, (_f, copy) in self._fields.items()},
                self._scalars)
        self.checkpoints += 1
        self.log.append(GuardEvent(iteration, "checkpoint",
                                   f"{len(fields)} field(s), "
                                   f"{len(scalars)} scalar(s)"))

    # -- health + recovery -----------------------------------------------------

    def healthy(self, res_norm: float) -> bool:
        """Screen one iteration's residual norm.

        Returns ``False`` for NaN/Inf or divergence beyond
        ``divergence_ratio`` × best-so-far; otherwise records the norm
        and returns ``True``.
        """
        if not np.isfinite(res_norm):
            return False
        if res_norm > self.divergence_ratio * self._best:
            return False
        if res_norm < self._best:
            self._best = res_norm
        self._consecutive = 0
        return True

    def rollback(self, reason: str = "") -> Snapshot:
        """Restore the last checkpoint into the live fields.

        Returns a :class:`Snapshot` with the checkpoint's iteration
        number and scalars; raises :class:`ConvergenceError` once the
        rollback budget is spent (or if no checkpoint was ever taken).
        """
        if self._fields is None:
            raise ConvergenceError(
                "solver state is corrupt and no checkpoint exists to roll "
                f"back to ({reason or 'unhealthy iteration'})")
        ceiling = max(100, 10 * self.max_rollbacks)
        if (self._consecutive >= self.max_rollbacks
                or self.rollbacks >= ceiling):
            raise ConvergenceError(
                f"rollback budget exhausted ({self.max_rollbacks} "
                f"consecutive, {self.rollbacks} total): state still "
                f"corrupt — {reason or 'persistent fault'}")
        self.rollbacks += 1
        self._consecutive += 1
        for f, saved in self._fields.values():
            f.data[...] = saved
        # The best-so-far norm is part of the rewound timeline: iterations
        # re-executed from the checkpoint legitimately sit above any best
        # achieved after it, and must not trip the divergence screen.
        self._best = self._saved_best
        self.log.append(GuardEvent(
            self.cell.value, "rollback",
            f"restored iteration {self._iteration}"
            + (f" — {reason}" if reason else "")))
        return Snapshot(iteration=self._iteration,
                        scalars=dict(self._scalars))
