"""Durable, atomic on-disk checkpoints of simulation and solver state.

The in-memory :class:`~repro.resilience.guard.SolverGuard` survives bad
iterations; it does not survive process death.  This module adds the durable
layer underneath: versioned checkpoint directories written with the classic
write-to-temp + :func:`os.replace` protocol so a crash at *any* instant
leaves either the previous checkpoint or the new one — never a torn mix.

Layout of a committed checkpoint under ``root``::

    root/
      step-000012/                  # one directory per committed step
        manifest.json               # world-level metadata + per-array CRC32s
        shard-0000.npz              # rank 0's arrays + embedded meta
        shard-0001.npz              # rank 1's ...

Every shard is a standard ``.npz`` holding the rank's arrays plus a
``__repro_meta__`` entry — a 0-d unicode array carrying a JSON document with
the scalars and a per-array ``{crc32, shape, dtype}`` table (readable with
``allow_pickle=False``).  :func:`load_shard` re-validates all three on read,
so a flipped bit on disk surfaces as a :class:`CheckpointError` instead of a
silently wrong restart.

Commit protocol (SPMD-collective over ``comm``):

1. rank 0 prepares ``root/.pending-step-NNNNNN`` (removing any stale one);
2. barrier; every rank writes its shard atomically into the pending dir;
3. per-shard metadata is gathered to rank 0, which writes ``manifest.json``
   atomically and then commits the whole directory with a single
   ``os.replace(pending, final)``;
4. barrier, so no rank resumes before the checkpoint is durable.

A reader (:func:`latest_checkpoint`) only ever sees committed ``step-*``
directories; ``.pending-*`` leftovers from a crash are ignored and reaped by
the next commit.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import zlib
from pathlib import Path

import numpy as np

from repro.comm.base import Communicator
from repro.utils.errors import CheckpointError


class CheckpointWarning(UserWarning):
    """A damaged checkpoint was skipped during discovery.

    Emitted (via :mod:`warnings`) by :func:`latest_checkpoint` when a
    candidate ``step-*`` directory fails validation — truncated or
    bit-flipped shards, an unreadable manifest — and recovery falls back
    to the next older committed step instead of raising.
    """

#: Version tag embedded in every shard and manifest.
CHECKPOINT_SCHEMA = "repro.checkpoint/v1"

#: Key under which shard metadata is stored inside the ``.npz``.
META_KEY = "__repro_meta__"

_STEP_PREFIX = "step-"
_PENDING_PREFIX = ".pending-"


def array_crc32(a: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (C-contiguous view)."""
    return zlib.crc32(np.ascontiguousarray(a).tobytes())


def _json_value(v):
    """Coerce numpy scalars so metadata survives ``json.dumps``."""
    if isinstance(v, np.bool_):
        return bool(v)
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    return v


def write_shard(path: Path, arrays: dict, scalars: dict | None = None) -> dict:
    """Atomically write one rank's arrays + scalars; return the shard meta.

    The returned metadata dict (``schema``/``scalars``/``arrays``) is what
    ends up gathered into the manifest.  Array names must not collide with
    ``META_KEY``.
    """
    path = Path(path)
    if META_KEY in arrays:
        raise CheckpointError(f"array name {META_KEY!r} is reserved")
    meta = {
        "schema": CHECKPOINT_SCHEMA,
        "scalars": {k: _json_value(v) for k, v in (scalars or {}).items()},
        "arrays": {
            name: {
                "crc32": array_crc32(np.asarray(a)),
                "shape": list(np.asarray(a).shape),
                "dtype": str(np.asarray(a).dtype),
            }
            for name, a in arrays.items()
        },
    }
    payload = {name: np.asarray(a) for name, a in arrays.items()}
    payload[META_KEY] = np.array(json.dumps(meta, sort_keys=True))
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return meta


def load_shard(path: Path) -> tuple[dict, dict]:
    """Load and validate one shard; returns ``(arrays, scalars)``.

    Raises :class:`CheckpointError` on a missing file, undecodable archive,
    missing metadata, or any shape/dtype/CRC32 mismatch.
    """
    path = Path(path)
    if not path.is_file():
        raise CheckpointError(f"checkpoint shard missing: {path}")
    try:
        with np.load(path, allow_pickle=False) as npz:
            names = set(npz.files)
            if META_KEY not in names:
                raise CheckpointError(f"shard {path} has no {META_KEY} entry")
            meta = json.loads(str(npz[META_KEY]))
            arrays = {name: npz[name] for name in names - {META_KEY}}
    except CheckpointError:
        raise
    except Exception as exc:  # zip/json/npy decode failures
        raise CheckpointError(f"unreadable checkpoint shard {path}: {exc}") from exc
    if meta.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"shard {path}: schema {meta.get('schema')!r} != {CHECKPOINT_SCHEMA!r}")
    declared = meta.get("arrays", {})
    if set(declared) != set(arrays):
        raise CheckpointError(
            f"shard {path}: manifest names {sorted(declared)} != "
            f"stored names {sorted(arrays)}")
    for name, a in arrays.items():
        d = declared[name]
        if list(a.shape) != d["shape"] or str(a.dtype) != d["dtype"]:
            raise CheckpointError(
                f"shard {path}: array {name!r} is {a.dtype}{a.shape}, "
                f"expected {d['dtype']}{tuple(d['shape'])}")
        crc = array_crc32(a)
        if crc != d["crc32"]:
            raise CheckpointError(
                f"shard {path}: array {name!r} CRC32 {crc:#010x} != "
                f"recorded {d['crc32']:#010x} (corrupted on disk)")
    return arrays, dict(meta.get("scalars", {}))


def shard_name(rank: int) -> str:
    return f"shard-{rank:04d}.npz"


def step_dir_name(step: int) -> str:
    return f"{_STEP_PREFIX}{step:06d}"


def _write_json_atomic(path: Path, doc: dict) -> None:
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def commit_checkpoint(root: Path, step: int, comm: Communicator,
                      arrays: dict, scalars: dict | None = None,
                      config: dict | None = None) -> Path:
    """Collectively commit one checkpoint; returns the committed directory.

    Must be called on every rank of ``comm`` with that rank's ``arrays`` and
    ``scalars``; ``config`` (rank 0's value is authoritative) is stored in
    the manifest so a restart can rebuild the run without the original deck.
    """
    root = Path(root)
    final = root / step_dir_name(step)
    pending = root / f"{_PENDING_PREFIX}{step_dir_name(step)}"
    if comm.rank == 0:
        root.mkdir(parents=True, exist_ok=True)
        if pending.exists():
            shutil.rmtree(pending)
        pending.mkdir()
    comm.barrier()
    meta = write_shard(pending / shard_name(comm.rank), arrays, scalars)
    metas = comm.gather(meta, root=0)
    if comm.rank == 0:
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "step": step,
            "nranks": comm.size,
            "shards": {shard_name(r): m for r, m in enumerate(metas)},
            "config": dict(config or {}),
        }
        _write_json_atomic(pending / "manifest.json", manifest)
        if final.exists():
            shutil.rmtree(final)
        os.replace(pending, final)
    comm.barrier()
    return final


def read_manifest(step_dir: Path) -> dict:
    """Load + validate a committed checkpoint's manifest."""
    path = Path(step_dir) / "manifest.json"
    if not path.is_file():
        raise CheckpointError(f"no manifest.json in {step_dir}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except Exception as exc:
        raise CheckpointError(f"unreadable manifest {path}: {exc}") from exc
    if manifest.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: schema {manifest.get('schema')!r} != "
            f"{CHECKPOINT_SCHEMA!r}")
    return manifest


def validate_checkpoint(step_dir: Path) -> dict:
    """Fully validate a committed step directory; return its manifest.

    Checks the manifest itself, that every shard the manifest names is
    present, and that every shard decodes with matching shapes, dtypes
    and CRC32s.  All failure modes — including raw ``zipfile``/
    ``KeyError`` decode surprises — surface as :class:`CheckpointError`.
    """
    step_dir = Path(step_dir)
    try:
        manifest = read_manifest(step_dir)
        declared = manifest.get("shards", {})
        nranks = int(manifest.get("nranks", 0))
        if len(declared) != nranks:
            raise CheckpointError(
                f"{step_dir}: manifest lists {len(declared)} shard(s) "
                f"for {nranks} rank(s)")
        for rank in range(nranks):
            if shard_name(rank) not in declared:
                raise CheckpointError(
                    f"{step_dir}: manifest is missing {shard_name(rank)}")
            load_shard(step_dir / shard_name(rank))
    except CheckpointError:
        raise
    except Exception as exc:  # any decode surprise is a checkpoint fault
        raise CheckpointError(
            f"invalid checkpoint {step_dir}: {exc}") from exc
    return manifest


def latest_checkpoint(root: Path, *, validate: bool = True) -> Path | None:
    """The newest *fully valid* committed ``step-*`` directory, if any.

    ``.pending-*`` directories (torn commits) and step directories without
    a manifest are always skipped.  With ``validate=True`` (the default)
    every candidate is additionally deep-checked — manifest, shard
    presence, per-array CRC32s — newest first, and a damaged candidate is
    skipped with a :class:`CheckpointWarning` naming the directory and
    the fault, so a truncated or bit-flipped checkpoint degrades recovery
    by one step instead of aborting it.
    """
    import warnings as _warnings

    root = Path(root)
    if not root.is_dir():
        return None
    candidates: list[tuple[int, Path]] = []
    for entry in root.iterdir():
        if not entry.is_dir() or not entry.name.startswith(_STEP_PREFIX):
            continue
        try:
            step = int(entry.name[len(_STEP_PREFIX):])
        except ValueError:
            continue
        if not (entry / "manifest.json").is_file():
            continue
        candidates.append((step, entry))
    for _, entry in sorted(candidates, reverse=True):
        if not validate:
            return entry
        try:
            validate_checkpoint(entry)
        except CheckpointError as exc:
            _warnings.warn(
                f"skipping damaged checkpoint {entry.name}: {exc}",
                CheckpointWarning, stacklevel=2)
            continue
        return entry
    return None


def load_rank_checkpoint(step_dir: Path, rank: int,
                         world_size: int) -> tuple[dict, dict, dict]:
    """Load one rank's shard of a committed checkpoint.

    Validates the manifest's rank count against ``world_size`` and the
    shard contents against their recorded CRCs; returns
    ``(arrays, scalars, manifest)``.
    """
    step_dir = Path(step_dir)
    manifest = read_manifest(step_dir)
    if manifest["nranks"] != world_size:
        raise CheckpointError(
            f"checkpoint {step_dir} was taken on {manifest['nranks']} "
            f"rank(s); cannot restore into a {world_size}-rank world")
    arrays, scalars = load_shard(step_dir / shard_name(rank))
    return arrays, scalars, manifest


class SolverCheckpointStore:
    """Per-rank durable backing store for the solver guard's snapshots.

    One ``.npz`` file per rank under ``root``, overwritten atomically at
    every :meth:`save`, so the newest durable solver state always exists
    intact.  Unlike the step-level simulation checkpoints this is a *local*
    (non-collective) write: each rank persists independently whenever its
    guard checkpoints, and the recovery protocol reconciles divergent shard
    iterations with a min-vote.
    """

    def __init__(self, root: Path, rank: int = 0):
        self.root = Path(root)
        self.rank = rank
        self.root.mkdir(parents=True, exist_ok=True)
        self.saves = 0

    @property
    def path(self) -> Path:
        return self.root / f"solver-{shard_name(self.rank)}"

    def save(self, iteration: int, fields: dict, scalars: dict) -> None:
        """Persist the guard snapshot (arrays copied by the caller)."""
        merged = dict(scalars)
        merged["__iteration__"] = int(iteration)
        write_shard(self.path, fields, merged)
        self.saves += 1

    def load(self) -> tuple[int, dict, dict] | None:
        """Newest durable snapshot as ``(iteration, arrays, scalars)``.

        Returns ``None`` when this rank has never saved.
        """
        if not self.path.is_file():
            return None
        arrays, scalars = load_shard(self.path)
        if "__iteration__" not in scalars:
            raise CheckpointError(
                f"solver shard {self.path} has no __iteration__ scalar "
                f"(not a guard snapshot?)")
        iteration = int(scalars.pop("__iteration__"))
        return iteration, arrays, scalars
