"""Turn-key resilient solves: stack assembly and benchmark runs.

Two conveniences live here:

- :func:`build_resilient_comm` assembles the canonical communicator stack
  ``InstrumentedComm(RetryingComm(FaultyComm(base)))`` and returns all the
  layers so callers can inspect fault logs, retry counts and the virtual
  clock afterwards;
- :func:`run_resilient` runs one :class:`~repro.solvers.SolverOptions`
  configuration on the crooked-pipe benchmark system through that stack —
  serial or genuinely decomposed over the thread SPMD world — and returns
  a :class:`ResilienceReport` whose fault-event log is deterministically
  ordered, so two runs with the same plan and seed compare equal
  event-for-event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.comm import InstrumentedComm, launch_spmd
from repro.comm.base import Communicator
from repro.mesh import Field, decompose
from repro.resilience.checkpoint import SolverCheckpointStore
from repro.resilience.faults import FaultEvent, FaultPlan, FaultyComm, IterationCell
from repro.resilience.guard import GuardEvent, SolverGuard
from repro.resilience.integrity import ChecksumComm
from repro.resilience.retry import RetryingComm, VirtualClock
from repro.solvers import SolverOptions, StencilOperator2D, solve_linear
from repro.solvers.result import SolveResult
from repro.utils.errors import CheckpointError
from repro.utils.events import EventLog, recovery_scope

#: Per-attempt receive timeout (seconds) used by the resilient stack; the
#: thread world polls every 20 ms, so this rides out scheduling noise while
#: still turning a genuinely dropped message into an error promptly.
DEFAULT_RECV_TIMEOUT_S = 5.0


@dataclass
class ResilientStack:
    """The assembled communicator layers, innermost to outermost."""

    faulty: FaultyComm
    retrying: RetryingComm
    comm: InstrumentedComm
    clock: VirtualClock
    cell: IterationCell
    events: EventLog
    checksum: ChecksumComm | None = None


def build_resilient_comm(base: Communicator,
                         plan: FaultPlan,
                         *,
                         events: EventLog | None = None,
                         max_attempts: int = 5,
                         recv_timeout: float | None = DEFAULT_RECV_TIMEOUT_S,
                         clock: VirtualClock | None = None,
                         cell: IterationCell | None = None,
                         integrity: bool = False,
                         copies: int = 2,
                         max_delay: float = 1.0,
                         cancel=None) -> ResilientStack:
    """Wrap ``base`` in the canonical resilient stack.

    The order matters: the instrument layer is outermost so its counts are
    logical (first-attempt) operation counts no matter how many times the
    retry layer re-issues — which is what keeps the COMM_CONTRACT verifier
    oblivious to legal retries (see
    :data:`repro.comm.instrument.RETRY_KIND`).

    With ``integrity=True`` a :class:`ChecksumComm` is inserted between
    the retry and fault layers — detections surface as retryable
    :class:`~repro.utils.errors.ChecksumError` *below* the retry layer
    while the instrument layer still sees one logical op, so contract
    counts are unchanged.
    """
    log = events if events is not None else EventLog()
    clk = clock if clock is not None else VirtualClock()
    it = cell if cell is not None else IterationCell()
    faulty = FaultyComm(base, plan, events=log, clock=clk, iteration=it)
    inner: Communicator = faulty
    checksum = None
    if integrity:
        checksum = ChecksumComm(faulty, events=log, copies=copies)
        inner = checksum
    retrying = RetryingComm(inner, max_attempts=max_attempts,
                            clock=clk, events=log,
                            recv_timeout=recv_timeout,
                            max_delay=max_delay,
                            cancel=cancel)
    outer = InstrumentedComm(retrying, log)
    return ResilientStack(faulty=faulty, retrying=retrying, comm=outer,
                          clock=clk, cell=it, events=log, checksum=checksum)


@dataclass
class ResilienceReport:
    """Outcome of one resilient benchmark solve.

    ``fault_events`` is sorted by ``(rank, op_index)`` — a total order that
    is identical between same-seed runs, so reports can be compared with
    ``==`` on this field to assert reproducibility.
    """

    converged: bool
    iterations: int
    residual_norm: float
    relative_residual: float
    fault_events: list = field(default_factory=list)
    guard_events: list = field(default_factory=list)
    retries: int = 0
    rollbacks: int = 0
    checkpoints: int = 0
    virtual_time_s: float = 0.0
    degraded: bool = False
    result: SolveResult | None = None
    x: np.ndarray | None = None
    recoveries: int = 0
    recovery_events: list = field(default_factory=list)
    resumed_iteration: int = -1
    integrity_detections: int = 0
    integrity_repairs: int = 0
    #: merged per-rank EventLog of the whole run; the chaos oracle reads
    #: the rerouted kinds (RETRY_KIND, RECOVERY_KIND, ...) out of this.
    events: EventLog | None = None

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (f"{status} in {self.iterations} iters "
                f"(rel res {self.relative_residual:.3e}); "
                f"{len(self.fault_events)} fault(s), {self.retries} "
                f"retrie(s), {self.rollbacks} rollback(s)"
                + (f", {self.recoveries} recover(ies)" if self.recoveries
                   else "")
                + (", degraded" if self.degraded else ""))


def run_resilient(options: SolverOptions,
                  plan: FaultPlan,
                  *,
                  n: int = 32,
                  size: int = 1,
                  max_attempts: int = 5,
                  recv_timeout: float | None = DEFAULT_RECV_TIMEOUT_S,
                  integrity: bool = False,
                  checkpoint_dir=None,
                  resume: bool | str = False,
                  cancel=None,
                  setup=None) -> ResilienceReport:
    """Solve the ``n``×``n`` crooked-pipe system through the fault stack.

    Builds the benchmark's first-implicit-step system, decomposes it over
    ``size`` ranks (serial for ``size == 1``), wraps every rank's
    communicator via :func:`build_resilient_comm`, and solves with
    ``options`` — guard and degradation behaviour included when the
    options enable them (``guard_interval > 0``).

    ``integrity=True`` adds the :class:`ChecksumComm` layer.  With a
    ``checkpoint_dir`` the guard additionally persists every snapshot to a
    per-rank durable shard; ``resume=True`` then restores from those
    shards before solving: the ranks vote (min over per-rank shard
    iterations, an allreduce under the recovery scope) on the collective
    checkpoint to resume from, rebuild ``x0`` from their saved state, and
    refresh halos from their neighbours — the comm traffic of all of
    which lands under :data:`~repro.utils.events.RECOVERY_KIND`.

    ``resume="exact"`` goes further: instead of a warm ``x0`` restart it
    continues the CG recurrence *bit-exactly* from the snapshot (fields
    ``x``/``r``/``p`` plus the recurrence scalars), as if the crash had
    been a guard rollback.  Exact resume requires unanimous shards —
    every rank holds a complete snapshot at the *same* iteration
    (min == max in the vote) — plus ``solver="cg"``, no fault plan and
    ``replace_interval=0``; when any condition fails (including a
    corrupt shard, which votes "no checkpoint" instead of raising) the
    solve deterministically restarts from scratch, so either way the
    result is bit-identical to an uninterrupted run.

    ``cancel`` (a :class:`~repro.service.cancel.CancelToken`-like object)
    is shared by every rank: it is checked at solver iteration
    boundaries and polled between retry attempts, so a fired token
    aborts all ranks coherently.  ``setup`` is a
    :class:`~repro.solvers.driver.SolveSetup` of cached expensive
    artifacts.  When ``options.comm_timeout`` is positive it overrides
    the ``recv_timeout`` argument (deck/CLI knob wins over library
    default).
    """
    from repro.testing import crooked_pipe_system

    grid, kxg, kyg, bg = crooked_pipe_system(n)
    halo = options.required_field_halo
    if options.comm_timeout > 0:
        recv_timeout = options.comm_timeout

    def rank_main(comm):
        stack = build_resilient_comm(comm, plan,
                                     max_attempts=max_attempts,
                                     recv_timeout=recv_timeout,
                                     integrity=integrity,
                                     cancel=cancel)
        tile = decompose(grid, comm.size)[comm.rank]
        op = StencilOperator2D.from_global_faces(tile, halo, kxg, kyg,
                                                 stack.comm,
                                                 events=stack.events)
        b = Field.from_global(tile, halo, bg)
        store = None
        if checkpoint_dir is not None:
            store = SolverCheckpointStore(Path(checkpoint_dir), comm.rank)
        guard = None
        if options.guard_interval > 0:
            guard = SolverGuard(
                checkpoint_interval=options.guard_interval,
                divergence_ratio=options.guard_divergence_ratio,
                max_rollbacks=options.guard_max_rollbacks,
                iteration=stack.cell,
                store=store)
        x0 = None
        resumed = -1
        resume_state = None
        if resume:
            if store is None:
                raise CheckpointError(
                    "resume requires a checkpoint_dir")
            exact = resume == "exact"
            if exact:
                try:
                    loaded = store.load()
                except CheckpointError:
                    # A corrupt or foreign shard must degrade recovery
                    # (vote "no checkpoint"), not abort it.
                    loaded = None
            else:
                loaded = store.load()
            # Exact continuation is only sound when nothing perturbs the
            # replayed recurrence; the conditions are uniform across
            # ranks, so every rank takes the same branch.
            exact_eligible = (exact and options.solver == "cg"
                              and options.replace_interval == 0
                              and (plan is None or not plan.active()))
            complete = (loaded is not None
                        and all(k in loaded[1] for k in ("x", "r", "p"))
                        and all(k in loaded[2]
                                for k in ("rz", "rr", "pa", "reference")))
            with recovery_scope(stack.events):
                # Failure vote: every rank contributes its durable shard's
                # iteration (-1 = no shard); the min is the collective
                # checkpoint all ranks can satisfy.  Float-typed so the
                # injector's corruption model applies to it like any
                # other reduction.
                if exact:
                    mine = float(loaded[0]) if complete else -1.0
                else:
                    mine = float(loaded[0]) if loaded is not None else -1.0
                # RPR009 sees `store` as rank-dependent (it is built from
                # comm.rank) and the `if store is None: raise` above as a
                # divergent early exit.  Its None-ness actually depends
                # only on checkpoint_dir — uniform config — so every rank
                # takes the same path to this vote.
                lowest = int(
                    stack.comm.allreduce(mine, "min"))  # repro: ignore[RPR009]
                if exact:
                    # Unanimity vote: exact continuation needs every rank
                    # at the *same* snapshot iteration; shard skew (a
                    # SIGKILL mid-save) falls back to a from-scratch
                    # re-solve, which is equally bit-identical to the
                    # uninterrupted run.
                    highest = int(
                        stack.comm.allreduce(mine, "max"))  # repro: ignore[RPR009]
                    if exact_eligible and 0 <= lowest == highest:
                        saved_x = loaded[1]["x"]
                        probe = op.new_field()
                        if saved_x.shape != probe.data.shape:
                            raise CheckpointError(
                                f"rank {comm.rank}: saved solver state is "
                                f"{saved_x.shape}, tile needs "
                                f"{probe.data.shape}")
                        resumed = lowest
                        resume_state = {"iteration": int(loaded[0]),
                                        "arrays": loaded[1],
                                        "scalars": loaded[2]}
                elif lowest >= 0:
                    resumed = lowest
                    saved_x = loaded[1].get("x")
                    if saved_x is not None:
                        x0 = op.new_field()
                        if saved_x.shape != x0.data.shape:
                            raise CheckpointError(
                                f"rank {comm.rank}: saved solver state is "
                                f"{saved_x.shape}, tile needs "
                                f"{x0.data.shape}")
                        x0.data[...] = saved_x
                        # Neighbour halo refresh: the replacement rank's
                        # reconstructed subdomain gets live boundary data.
                        op.exchanger.exchange([x0], depth=1)
        result = solve_linear(op, b, x0=x0, options=options, guard=guard,
                              cancel=cancel, setup=setup,
                              resume_state=resume_state)
        return tile, result, stack, guard, resumed

    out = launch_spmd(rank_main, size)

    x = np.zeros(grid.shape)
    faults: list[FaultEvent] = []
    guard_log: list[GuardEvent] = []
    retries = rollbacks = checkpoints = 0
    detections = repairs = 0
    vtime = 0.0
    merged_events = EventLog.merged(stack.events for _, _, stack, _, _ in out)
    for tile, result, stack, guard, _resumed in out:
        x[tile.global_slices] = result.x.interior
        faults.extend(stack.faulty.log)
        retries += stack.retrying.retries
        vtime = max(vtime, stack.clock.now)
        if stack.checksum is not None:
            detections += stack.checksum.detections
            repairs += stack.checksum.repairs
        if guard is not None:
            guard_log.extend(guard.log)
            rollbacks += guard.rollbacks
            checkpoints += guard.checkpoints
    faults.sort(key=lambda ev: (ev.rank, ev.op_index))

    r0 = out[0][1]
    # Reference for the relative residual: the solve's *first* recorded
    # norm (for PPCG/Chebyshev that's the warm-up start, which is what
    # the eps criterion is relative to; ``initial_residual_norm`` would
    # be the post-warm-up phase residual).
    reference = r0.history[0] if r0.history else r0.initial_residual_norm
    rel = r0.residual_norm / reference if reference else float("inf")
    return ResilienceReport(
        converged=r0.converged,
        iterations=r0.iterations,
        residual_norm=r0.residual_norm,
        relative_residual=rel,
        fault_events=faults,
        guard_events=guard_log,
        retries=retries,
        rollbacks=rollbacks,
        checkpoints=checkpoints,
        virtual_time_s=vtime,
        degraded=bool(getattr(r0, "degraded", False)),
        result=r0,
        x=x,
        resumed_iteration=out[0][4],
        integrity_detections=detections,
        integrity_repairs=repairs,
        events=merged_events,
    )
