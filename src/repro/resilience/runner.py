"""Turn-key resilient solves: stack assembly and benchmark runs.

Two conveniences live here:

- :func:`build_resilient_comm` assembles the canonical communicator stack
  ``InstrumentedComm(RetryingComm(FaultyComm(base)))`` and returns all the
  layers so callers can inspect fault logs, retry counts and the virtual
  clock afterwards;
- :func:`run_resilient` runs one :class:`~repro.solvers.SolverOptions`
  configuration on the crooked-pipe benchmark system through that stack —
  serial or genuinely decomposed over the thread SPMD world — and returns
  a :class:`ResilienceReport` whose fault-event log is deterministically
  ordered, so two runs with the same plan and seed compare equal
  event-for-event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm import InstrumentedComm, launch_spmd
from repro.comm.base import Communicator
from repro.mesh import Field, decompose
from repro.resilience.faults import FaultEvent, FaultPlan, FaultyComm, IterationCell
from repro.resilience.guard import GuardEvent, SolverGuard
from repro.resilience.retry import RetryingComm, VirtualClock
from repro.solvers import SolverOptions, StencilOperator2D, solve_linear
from repro.solvers.result import SolveResult
from repro.utils.events import EventLog

#: Per-attempt receive timeout (seconds) used by the resilient stack; the
#: thread world polls every 20 ms, so this rides out scheduling noise while
#: still turning a genuinely dropped message into an error promptly.
DEFAULT_RECV_TIMEOUT_S = 5.0


@dataclass
class ResilientStack:
    """The assembled communicator layers, innermost to outermost."""

    faulty: FaultyComm
    retrying: RetryingComm
    comm: InstrumentedComm
    clock: VirtualClock
    cell: IterationCell
    events: EventLog


def build_resilient_comm(base: Communicator,
                         plan: FaultPlan,
                         *,
                         events: EventLog | None = None,
                         max_attempts: int = 5,
                         recv_timeout: float | None = DEFAULT_RECV_TIMEOUT_S,
                         clock: VirtualClock | None = None,
                         cell: IterationCell | None = None) -> ResilientStack:
    """Wrap ``base`` in the canonical resilient stack.

    The order matters: the instrument layer is outermost so its counts are
    logical (first-attempt) operation counts no matter how many times the
    retry layer re-issues — which is what keeps the COMM_CONTRACT verifier
    oblivious to legal retries (see
    :data:`repro.comm.instrument.RETRY_KIND`).
    """
    log = events if events is not None else EventLog()
    clk = clock if clock is not None else VirtualClock()
    it = cell if cell is not None else IterationCell()
    faulty = FaultyComm(base, plan, events=log, clock=clk, iteration=it)
    retrying = RetryingComm(faulty, max_attempts=max_attempts,
                            clock=clk, events=log,
                            recv_timeout=recv_timeout)
    outer = InstrumentedComm(retrying, log)
    return ResilientStack(faulty=faulty, retrying=retrying, comm=outer,
                          clock=clk, cell=it, events=log)


@dataclass
class ResilienceReport:
    """Outcome of one resilient benchmark solve.

    ``fault_events`` is sorted by ``(rank, op_index)`` — a total order that
    is identical between same-seed runs, so reports can be compared with
    ``==`` on this field to assert reproducibility.
    """

    converged: bool
    iterations: int
    residual_norm: float
    relative_residual: float
    fault_events: list = field(default_factory=list)
    guard_events: list = field(default_factory=list)
    retries: int = 0
    rollbacks: int = 0
    checkpoints: int = 0
    virtual_time_s: float = 0.0
    degraded: bool = False
    result: SolveResult | None = None
    x: np.ndarray | None = None

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (f"{status} in {self.iterations} iters "
                f"(rel res {self.relative_residual:.3e}); "
                f"{len(self.fault_events)} fault(s), {self.retries} "
                f"retrie(s), {self.rollbacks} rollback(s)"
                + (", degraded" if self.degraded else ""))


def run_resilient(options: SolverOptions,
                  plan: FaultPlan,
                  *,
                  n: int = 32,
                  size: int = 1,
                  max_attempts: int = 5,
                  recv_timeout: float | None = DEFAULT_RECV_TIMEOUT_S) -> ResilienceReport:
    """Solve the ``n``×``n`` crooked-pipe system through the fault stack.

    Builds the benchmark's first-implicit-step system, decomposes it over
    ``size`` ranks (serial for ``size == 1``), wraps every rank's
    communicator via :func:`build_resilient_comm`, and solves with
    ``options`` — guard and degradation behaviour included when the
    options enable them (``guard_interval > 0``).
    """
    from repro.testing import crooked_pipe_system

    grid, kxg, kyg, bg = crooked_pipe_system(n)
    halo = options.required_field_halo

    def rank_main(comm):
        stack = build_resilient_comm(comm, plan,
                                     max_attempts=max_attempts,
                                     recv_timeout=recv_timeout)
        tile = decompose(grid, comm.size)[comm.rank]
        op = StencilOperator2D.from_global_faces(tile, halo, kxg, kyg,
                                                 stack.comm,
                                                 events=stack.events)
        b = Field.from_global(tile, halo, bg)
        guard = None
        if options.guard_interval > 0:
            guard = SolverGuard(
                checkpoint_interval=options.guard_interval,
                divergence_ratio=options.guard_divergence_ratio,
                max_rollbacks=options.guard_max_rollbacks,
                iteration=stack.cell)
        result = solve_linear(op, b, options=options, guard=guard)
        return tile, result, stack, guard

    out = launch_spmd(rank_main, size)

    x = np.zeros(grid.shape)
    faults: list[FaultEvent] = []
    guard_log: list[GuardEvent] = []
    retries = rollbacks = checkpoints = 0
    vtime = 0.0
    for tile, result, stack, guard in out:
        x[tile.global_slices] = result.x.interior
        faults.extend(stack.faulty.log)
        retries += stack.retrying.retries
        vtime = max(vtime, stack.clock.now)
        if guard is not None:
            guard_log.extend(guard.log)
            rollbacks += guard.rollbacks
            checkpoints += guard.checkpoints
    faults.sort(key=lambda ev: (ev.rank, ev.op_index))

    r0 = out[0][1]
    # Reference for the relative residual: the solve's *first* recorded
    # norm (for PPCG/Chebyshev that's the warm-up start, which is what
    # the eps criterion is relative to; ``initial_residual_norm`` would
    # be the post-warm-up phase residual).
    reference = r0.history[0] if r0.history else r0.initial_residual_norm
    rel = r0.residual_norm / reference if reference else float("inf")
    return ResilienceReport(
        converged=r0.converged,
        iterations=r0.iterations,
        residual_norm=r0.residual_norm,
        relative_residual=rel,
        fault_events=faults,
        guard_events=guard_log,
        retries=retries,
        rollbacks=rollbacks,
        checkpoints=checkpoints,
        virtual_time_s=vtime,
        degraded=bool(getattr(r0, "degraded", False)),
        result=r0,
        x=x,
    )
