"""Silent-data-corruption detection at the communication layer.

:class:`ChecksumComm` wraps any :class:`~repro.comm.base.Communicator` and
turns the fault injector's silent payload corruptions (NaN/Inf/sign/scale —
see :mod:`repro.resilience.faults`) into *detected, retryable* faults:

- **point-to-point** — every logical ``send`` posts ``copies`` redundant
  envelopes on per-copy channels (``tag + k * CHANNEL_OFFSET``).  Each
  envelope is a flat ``float64`` frame ``[seq, ndim, *shape, *data, crc]``
  whose CRC32 covers the sequence number *and* the data, so any corrupted
  element — including the metadata — fails verification.  The receiver
  consumes one message per channel, discards stale duplicates left behind
  by retried sends (``seq`` below the expected counter), and returns the
  first copy that verifies; if *every* copy is bad it raises
  :class:`~repro.utils.errors.ChecksumError`.
- **allreduce** — float payloads are reduced in two identical lanes
  (the contribution concatenated with itself).  The fold is an elementwise,
  fixed-rank-order reduction, so the lanes of an uncorrupted result are
  bitwise identical; any single-element corruption makes them disagree.
  Since the injector corrupts collective results rank-coherently, every
  rank raises the same :class:`ChecksumError` and the retry layer re-issues
  the collective coherently.
- **bcast** — the root broadcasts a framed envelope; receivers verify the
  CRC and raise coherently on corruption so the root re-broadcasts.

``ChecksumError`` derives from ``TransientCommError``, so composing with
:class:`~repro.resilience.retry.RetryingComm` in any order converts
detections into retries.  The canonical resilient stack places it *between*
the retry and fault layers::

    InstrumentedComm(RetryingComm(ChecksumComm(FaultyComm(base))))

keeping the instrument layer's logical counts (and hence the COMM_CONTRACT
verifier) oblivious to both the redundancy and the retries.

Payloads that are not ``float64`` arrays or float scalars are wrapped as
``("__raw__", seq, obj)`` sentinels — tuples pass through the injector's
corruption untouched, so the sentinel always survives; it keeps the
per-(peer, tag) sequence stream uniform across raw and enveloped traffic.

Known limitation: a *corrupted stale duplicate* (a retried copy that was
also corrupted) cannot be identified as stale and consumes one candidate
slot for the current receive; as long as any valid copy exists the receive
still succeeds, and the next receive on that channel re-aligns by
discarding the now-stale leftover.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.comm.base import Communicator
from repro.utils.errors import ChecksumError
from repro.utils.events import EventLog

#: Event kind under which detections/repairs are recorded.
INTEGRITY_KIND = "integrity"

#: Channel stride separating redundant copies of one logical tag.  Real tags
#: in this codebase are small (halo exchange uses 101-104), so copies never
#: collide with logical traffic.
CHANNEL_OFFSET = 1 << 16

_RAW_SENTINEL = "__raw__"


@dataclass(frozen=True)
class IntegrityEvent:
    """One detection made by the integrity layer."""

    op: str            #: "recv", "allreduce" or "bcast"
    kind: str          #: "detect" (bad copy seen) or "repair" (redundancy saved the op)
    peer: int | None   #: source rank for p2p, None for collectives
    tag: int | None    #: logical tag for p2p, None for collectives
    detail: str


def _encode_frame(seq: int, obj) -> np.ndarray | None:
    """Frame a float payload as ``[seq, ndim, *shape, *data, crc]``.

    Returns ``None`` for payloads the envelope cannot represent (anything
    but ``float64`` arrays and float scalars).
    """
    if isinstance(obj, np.ndarray):
        if obj.dtype != np.float64:
            return None
        data = np.ascontiguousarray(obj).ravel()
        shape: tuple[int, ...] = obj.shape
    elif isinstance(obj, (float, np.floating)) and not isinstance(obj, bool):
        data = np.array([float(obj)])
        shape = ()
    else:
        return None
    head = np.empty(2 + len(shape))
    head[0] = seq
    head[1] = len(shape)
    head[2:] = shape
    crc = zlib.crc32(np.concatenate(([float(seq)], data)).tobytes())
    return np.concatenate((head, data, [crc]))


def _decode_frame(frame) -> tuple[int, object] | None:
    """Verify + unpack a frame; ``None`` if it is invalid or corrupted."""
    if not isinstance(frame, np.ndarray) or frame.dtype != np.float64 \
            or frame.ndim != 1 or frame.size < 3:
        return None
    try:
        seq_f, nd_f = frame[0], frame[1]
        if not (np.isfinite(seq_f) and np.isfinite(nd_f)):
            return None
        seq, nd = int(seq_f), int(nd_f)
        if seq != seq_f or nd != nd_f or seq < 0 or not 0 <= nd <= 8:
            return None
        shape_f = frame[2:2 + nd]
        if not np.all(np.isfinite(shape_f)):
            return None
        shape = tuple(int(s) for s in shape_f)
        if any(s != f or s < 0 for s, f in zip(shape, shape_f)):
            return None
        count = 1 if nd == 0 else int(np.prod(shape))
        if frame.size != 2 + nd + count + 1:
            return None
        data = frame[2 + nd:-1]
        crc_f = frame[-1]
        if not np.isfinite(crc_f) or int(crc_f) != crc_f:
            return None
        crc = zlib.crc32(np.concatenate(([float(seq)], data)).tobytes())
        if crc != int(crc_f):
            return None
    except (ValueError, OverflowError):
        return None
    if nd == 0:
        return seq, float(data[0])
    return seq, data.copy().reshape(shape)


class ChecksumComm(Communicator):
    """Checksummed redundant-envelope wrapper over an inner communicator.

    Point-to-point and broadcast payloads travel in CRC32-verified frames;
    float allreduce runs in duplicate lanes.  Detected corruption raises
    :class:`ChecksumError` (retryable) unless a redundant copy repairs it
    in place.  ``gather``/``allgather``/``barrier`` pass through unchanged
    (the injector does not corrupt them).
    """

    def __init__(self, inner: Communicator, events: EventLog | None = None,
                 copies: int = 2):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        self.inner = inner
        self.events = events
        self.copies = copies
        self.detections = 0
        self.repairs = 0
        self.integrity_events: list[IntegrityEvent] = []
        self._send_seq: dict[tuple[int, int], int] = {}
        self._recv_seq: dict[tuple[int, int], int] = {}
        # Mid-protocol receive state per (source, tag): a transient error
        # on one copy's channel must not discard the copies already
        # consumed and verified — the retry layer re-enters recv() and
        # resumes at the channel that failed (see recv()).
        self._recv_partial: dict[tuple[int, int], dict] = {}

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    def _note(self, op: str, kind: str, detail: str,
              peer: int | None = None, tag: int | None = None) -> None:
        if kind == "detect":
            self.detections += 1
        else:
            self.repairs += 1
        self.integrity_events.append(
            IntegrityEvent(op=op, kind=kind, peer=peer, tag=tag, detail=detail))
        if self.events is not None:
            self.events.record(INTEGRITY_KIND, kind)

    # -- point to point -----------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        key = (dest, tag)
        seq = self._send_seq.get(key, 0)
        frame = _encode_frame(seq, obj)
        payload = (_RAW_SENTINEL, seq, obj) if frame is None else frame
        for k in range(self.copies):
            # A mid-loop transient error leaves earlier copies on the wire
            # with this same seq; the retried send re-posts them and the
            # receiver drops the duplicates (seq already consumed).
            self.inner.send(payload, dest, tag + k * CHANNEL_OFFSET)
        self._send_seq[key] = seq + 1

    def recv(self, source: int, tag: int = 0, timeout: float | None = None):
        """Receive one logical message (first verifying copy wins).

        The copy loop is *resumable*: consuming and verifying a copy
        advances durable per-key state, so when a transient error fires on
        a later copy's channel and the retry layer re-enters this method,
        it resumes at the channel that failed instead of re-consuming the
        earlier channels — re-consuming would deliver the *next* logical
        message's envelope for the current receive and silently shift the
        whole sequence stream (a cross-mechanism bug the chaos campaigns
        caught: retry x redundant envelopes).
        """
        key = (source, tag)
        expected = self._recv_seq.get(key, 0)
        state = self._recv_partial.setdefault(key, {"next_copy": 0,
                                                    "good": None, "bad": 0})
        while state["next_copy"] < self.copies:
            k = state["next_copy"]
            chan = tag + k * CHANNEL_OFFSET
            while True:
                # May raise TransientCommError *before* consuming (the
                # injector fails operations pre-wire): `state` still
                # points at this channel for the retried attempt.
                if timeout is None:
                    msg = self.inner.recv(source, chan)
                else:
                    msg = self.inner.recv(source, chan, timeout=timeout)
                if (isinstance(msg, tuple) and len(msg) == 3
                        and msg[0] == _RAW_SENTINEL):
                    decoded: tuple[int, object] | None = (msg[1], msg[2])
                else:
                    decoded = _decode_frame(msg)
                if decoded is not None and decoded[0] < expected:
                    continue  # stale duplicate from a retried send
                break
            if decoded is None:
                state["bad"] += 1
                self._note("recv", "detect",
                           f"corrupted copy {k} on channel {chan}",
                           peer=source, tag=tag)
            elif state["good"] is None:
                state["good"] = decoded
            state["next_copy"] = k + 1
        good, bad = state["good"], state["bad"]
        del self._recv_partial[key]
        if good is None:
            raise ChecksumError(
                f"rank {self.rank}: all {self.copies} copies of message "
                f"(source={source}, tag={tag}, seq>={expected}) failed "
                f"checksum verification")
        if bad:
            self._note("recv", "repair",
                       f"{bad} bad cop{'ies' if bad > 1 else 'y'} outvoted",
                       peer=source, tag=tag)
        self._recv_seq[key] = good[0] + 1
        return good[1]

    # -- collectives -----------------------------------------------------------------

    def allreduce(self, value, op: str = "sum"):
        if isinstance(value, np.ndarray) and value.dtype == np.float64:
            flat = np.ascontiguousarray(value).ravel()
            n = flat.size
            lanes = self.inner.allreduce(np.concatenate((flat, flat)), op)
            a, b = lanes[:n], lanes[n:]
            if not np.array_equal(a, b, equal_nan=True):
                self._note("allreduce", "detect",
                           f"duplicate lanes disagree (op={op}, n={n})")
                raise ChecksumError(
                    f"rank {self.rank}: allreduce(op={op}) duplicate lanes "
                    f"disagree — corrupted reduction result")
            return a.copy().reshape(value.shape)
        if isinstance(value, (float, np.floating)) \
                and not isinstance(value, bool):
            lanes = self.inner.allreduce(
                np.array([float(value), float(value)]), op)
            if not np.array_equal(lanes[:1], lanes[1:], equal_nan=True):
                self._note("allreduce", "detect",
                           f"duplicate lanes disagree (op={op}, scalar)")
                raise ChecksumError(
                    f"rank {self.rank}: scalar allreduce(op={op}) duplicate "
                    f"lanes disagree — corrupted reduction result")
            return float(lanes[0])
        return self.inner.allreduce(value, op)

    def bcast(self, obj, root: int = 0):
        if self.rank == root:
            frame = _encode_frame(0, obj)
            payload = (_RAW_SENTINEL, 0, obj) if frame is None else frame
        else:
            payload = None
        out = self.inner.bcast(payload, root)
        if isinstance(out, tuple) and len(out) == 3 and out[0] == _RAW_SENTINEL:
            return out[2]
        decoded = _decode_frame(out)
        if decoded is None:
            self._note("bcast", "detect", f"corrupted broadcast from {root}")
            raise ChecksumError(
                f"rank {self.rank}: broadcast envelope from root {root} "
                f"failed checksum verification")
        return decoded[1]

    def gather(self, obj, root: int = 0):
        return self.inner.gather(obj, root)

    def allgather(self, obj) -> list:
        return self.inner.allgather(obj)

    def barrier(self) -> None:
        self.inner.barrier()
