"""ULFM-style rank-loss recovery over the thread SPMD world.

When a :class:`~repro.resilience.faults.CrashWindow` outlasts the retry
budget, the resilient stack cannot hide it: the failed rank's operations
keep raising until the whole world aborts with a
:class:`~repro.utils.errors.CommunicationError`.  Real ULFM applications
survive this by *shrinking* the communicator, agreeing on the failure,
respawning a replacement process, rebuilding its state from checkpoints,
and continuing.  :func:`run_recoverable` implements that protocol for the
in-process world, where "respawn" means relaunching the SPMD run with the
failed rank's hardware replaced:

1. **detect** — :func:`~repro.resilience.runner.run_resilient` escalates
   the unrecoverable crash as a ``CommunicationError`` that reaches the
   launcher (every surviving rank is aborted by the thread world, exactly
   like an MPI job kill);
2. **agree** — the relaunched ranks vote on the resume point with a
   min-allreduce over their durable shard iterations (under the recovery
   scope, so contract counts stay clean) — the in-process analogue of
   ULFM's agreement on the failed-process set;
3. **respawn** — the failed rank's crash windows are removed from the
   fault plan (the replacement runs on fresh hardware; everything else in
   the plan — other ranks' windows, all probabilistic rules — still
   applies) and the world is relaunched at full size;
4. **rebuild** — each rank restores its subdomain solver state from its
   last durable guard shard and refreshes halos from its neighbours, then
   the solve resumes from the agreed collective checkpoint instead of
   iteration 0.

The per-rank durable shards are written by the
:class:`~repro.resilience.guard.SolverGuard` (``store=`` a
:class:`~repro.resilience.checkpoint.SolverCheckpointStore`), so the guard's
last collective checkpoint is exactly what recovery resumes from.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path

from repro.resilience.faults import FaultPlan
from repro.resilience.runner import (DEFAULT_RECV_TIMEOUT_S,
                                     ResilienceReport, run_resilient)
from repro.solvers import SolverOptions
from repro.utils.errors import CommunicationError, ConvergenceError


@dataclass(frozen=True)
class RecoveryEvent:
    """One shrink/respawn recovery performed by :func:`run_recoverable`."""

    attempt: int        #: which solve attempt failed (0 = first)
    failed_rank: int    #: rank whose crash window outlasted the retries
    window_start: int   #: op index where that window opened
    detail: str = ""

    def __str__(self) -> str:
        return (f"[recovery {self.attempt}] rank {self.failed_rank} lost "
                f"at op {self.window_start}: {self.detail}")


def _fatal_window(plan: FaultPlan, max_attempts: int):
    """The earliest crash window the retry budget cannot absorb, if any."""
    fatal = [w for w in plan.crashes if w.length >= max_attempts]
    if not fatal:
        return None
    return min(fatal, key=lambda w: (w.start, w.rank))


def _drop_rank_windows(plan: FaultPlan, rank: int) -> FaultPlan:
    """The plan after replacing ``rank``'s hardware (its windows removed)."""
    return dataclasses.replace(
        plan, crashes=tuple(w for w in plan.crashes if w.rank != rank))


def run_recoverable(options: SolverOptions,
                    plan: FaultPlan,
                    *,
                    n: int = 32,
                    size: int = 1,
                    checkpoint_dir,
                    max_attempts: int = 5,
                    max_recoveries: int = 2,
                    integrity: bool = False,
                    recv_timeout: float | None = DEFAULT_RECV_TIMEOUT_S) -> ResilienceReport:
    """Run :func:`run_resilient`, surviving unrecoverable rank loss.

    Solves the crooked-pipe benchmark with durable guard checkpoints under
    ``checkpoint_dir``; when an attempt dies of an escalated crash window,
    performs one shrink/respawn recovery (up to ``max_recoveries``) and
    resumes from the last collective checkpoint.  The returned report is
    the final attempt's, annotated with ``recoveries``/``recovery_events``.

    Raises the final :class:`CommunicationError` unchanged once the
    recovery budget is spent or when no fatal crash window can explain
    the failure (a genuine bug should not be eaten by recovery).
    """
    checkpoint_dir = Path(checkpoint_dir)
    recovery_events: list[RecoveryEvent] = []
    attempt = 0
    current = plan
    resume = False
    while True:
        try:
            report = run_resilient(options, current, n=n, size=size,
                                   max_attempts=max_attempts,
                                   recv_timeout=recv_timeout,
                                   integrity=integrity,
                                   checkpoint_dir=checkpoint_dir,
                                   resume=resume)
            break
        except ConvergenceError:
            raise
        except CommunicationError:
            window = _fatal_window(current, max_attempts)
            if window is None or len(recovery_events) >= max_recoveries:
                raise
            recovery_events.append(RecoveryEvent(
                attempt=attempt,
                failed_rank=window.rank,
                window_start=window.start,
                detail=(f"window length {window.length} >= retry budget "
                        f"{max_attempts}; respawned from last durable "
                        f"checkpoint")))
            current = _drop_rank_windows(current, window.rank)
            resume = True
            attempt += 1
    report.recoveries = len(recovery_events)
    report.recovery_events = list(recovery_events)
    return report
