"""Chaos campaigns: randomized fault storms against the composed stack.

PRs 2-6 built the individual resilience mechanisms — retry/backoff, guard
rollback, durable checkpoint/restart, ULFM-style rank recovery, checksummed
envelopes, residual replacement, the SPMD sanitizer — each proven by
hand-written single-mechanism tests.  Resilience mechanisms interact in
non-obvious ways, and only randomized *composition* finds the
cross-mechanism bugs.  This module is that campaign engine:

- :func:`random_fault_plan` generates seeded randomized :class:`FaultPlan`
  compositions — transient errors x payload corruption x drops/delays x
  crash windows, across ops/ranks/op-index windows and burst patterns;
- :func:`run_trial` runs one full solve (or multi-step simulation) under
  the complete stack and checks it against the **invariant oracle**:

  * *differential* — agreement with a cached fault-free golden run:
    bit-identical when the plan is transparent (only retried transient
    errors and virtual delays, no rollback/degradation), true-residual
    tolerance otherwise;
  * *accounting* — retried/recovered traffic must land in the rerouted
    event kinds (``RETRY_KIND``, ``RECOVERY_KIND``), so logical
    COMM_CONTRACT counts of a transparent trial equal the golden's;
  * *no-hang* — the watchdog: receive timeouts turn dead peers into
    clean aborts, the virtual clock is budgeted, and a wall-clock
    deadline catches everything else;
  * *durability* — recovery trials must leave validated (CRC-checked)
    durable checkpoint shards behind.

- :func:`run_campaign` runs a whole seeded campaign and aggregates a
  **recovery-SLO ledger** (per-fault-class recovery rates, extra
  iterations, retry counts, virtual-clock overhead) with enforced
  budgets; two runs with the same seed produce byte-identical ledgers
  (``CHAOS_<n>.json``, see :mod:`repro.harness.chaos_sweep`);
- :func:`shrink_plan` is a delta-debugging minimizer: given a failing
  trial it removes rules/crash windows until the smallest plan that
  still reproduces the oracle violation remains, and
  :func:`write_fixture` serializes it as a JSON regression fixture
  (``tests/fixtures/chaos/``) replayable with :func:`replay_fixture`;
- :func:`run_soak` is the long-haul runner: a multi-step simulation
  advanced in cycles, each cycle under a fresh fault storm, the process
  "killed" between cycles and resumed from its durable checkpoints —
  the final field must still be bit-identical to one uninterrupted
  fault-free run.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.comm import launch_spmd
from repro.comm.instrument import RETRY_KIND
from repro.utils.events import RECOVERY_KIND, REPLACEMENT_KIND, EventLog
from repro.mesh import Field
from repro.resilience.checkpoint import SolverCheckpointStore
from repro.resilience.faults import (CORRUPTION_MODES, CrashWindow,
                                     FaultPlan, FaultRule)
from repro.resilience.recovery import run_recoverable
from repro.resilience.runner import (DEFAULT_RECV_TIMEOUT_S,
                                     build_resilient_comm, run_resilient)
from repro.solvers import SolverOptions
from repro.utils.errors import (CommunicationError, ConfigurationError,
                                ConvergenceError)

#: Fault classes the ledger buckets trials under.  A trial belongs to the
#: class of every hazard its plan composes (plus ``"none"`` for fault-free
#: control trials), so cross-class interactions are visible in each bucket.
FAULT_CLASSES = ("none", "transient", "corruption", "latency", "crash")

#: Oracle slack on the true relative residual of a converged faulty solve:
#: recurrence-vs-true drift under rollbacks/splices is bounded well inside
#: two orders of magnitude of the requested tolerance.
ORACLE_RESIDUAL_SLACK = 100.0

#: Virtual-clock ceiling per trial (injected delays + backoff sleeps); a
#: trial charging more latency than this is runaway retrying, not recovery.
VIRTUAL_TIME_BUDGET_S = 120.0

#: Wall-clock deadline per trial — the last-resort no-hang watchdog.
WALL_TIME_BUDGET_S = 60.0

#: Fixture schema tag.
FIXTURE_SCHEMA = "repro.chaos_fixture/v1"

#: Ledger schema tag.
LEDGER_SCHEMA = "repro.chaos/v1"

#: Default recovery-SLO budgets enforced on the campaign ledger, keyed by
#: fault class.  ``min_recovery_rate`` is the fraction of the class's
#: trials that must end converged; ``max_mean_extra_iterations`` bounds the
#: mean iteration overhead of its converged trials over the golden run;
#: ``max_virtual_time_s`` bounds the total injected latency absorbed.
DEFAULT_BUDGETS = {
    "none": {"min_recovery_rate": 1.0},
    "transient": {"min_recovery_rate": 0.98,
                  "max_mean_extra_iterations": 40.0,
                  "max_virtual_time_s": 60.0},
    "corruption": {"min_recovery_rate": 0.85,
                   "max_mean_extra_iterations": 80.0},
    "latency": {"min_recovery_rate": 0.55,
                "max_virtual_time_s": 60.0},
    "crash": {"min_recovery_rate": 0.90},
}

#: The five protected solver configurations the default campaign storms.
#: Every config runs the full composed defence: guard rollback, graceful
#: degradation where the solver supports it, and (for the CG family)
#: van der Vorst-Ye residual replacement so a corrupted convergence-check
#: reduction cannot exit falsely.  The ``cg[kernels=fused]`` entry storms
#: the fused :mod:`repro.kernels` backend so the cache-blocked hot path
#: faces the same fault classes — and the same differential oracle — as
#: the baseline.
CAMPAIGN_SOLVERS = (
    ("cg", SolverOptions(solver="cg", eps=1e-8, max_iters=500,
                         guard_interval=5, replace_interval=10)),
    ("cg[kernels=fused]", SolverOptions(solver="cg", eps=1e-8, max_iters=500,
                                        guard_interval=5, replace_interval=10,
                                        kernel_backend="fused")),
    ("ppcg", SolverOptions(solver="ppcg", eps=1e-8, max_iters=200,
                           ppcg_inner_steps=4, eigen_warmup_iters=8,
                           guard_interval=5, degrade=True,
                           replace_interval=10)),
    ("cppcg[depth=4]", SolverOptions(solver="ppcg", eps=1e-8, max_iters=200,
                                     ppcg_inner_steps=8, halo_depth=4,
                                     eigen_warmup_iters=8,
                                     guard_interval=5, degrade=True,
                                     replace_interval=10)),
    ("chebyshev", SolverOptions(solver="chebyshev", eps=1e-8, max_iters=500,
                                eigen_warmup_iters=8,
                                guard_interval=5, degrade=True)),
)

_MODE_CLASS = {
    "error": "transient",
    "drop": "latency",
    "delay": "latency",
    "corrupt_nan": "corruption",
    "corrupt_inf": "corruption",
    "corrupt_sign": "corruption",
    "corrupt_scale": "corruption",
}


def plan_classes(plan: FaultPlan) -> tuple[str, ...]:
    """The fault classes a plan composes, sorted (``("none",)`` if inert)."""
    if not plan.active():
        return ("none",)
    classes = {_MODE_CLASS[r.mode] for r in plan.rules}
    if plan.crashes:
        classes.add("crash")
    return tuple(sorted(classes))


def transparent(plan: FaultPlan) -> bool:
    """True when every hazard is invisible after retries.

    Transient errors are re-issued cleanly and delays only charge the
    virtual clock, so a solve under such a plan must reproduce the
    fault-free golden run *bit for bit* — the strongest differential
    oracle.  Corruption, drops and crashes may legitimately change the
    iteration path (rollbacks, degradation, resume), so they get the
    tolerance oracle instead.
    """
    if not plan.active():
        return True
    if plan.crashes:
        return False
    return all(r.mode in ("error", "delay") for r in plan.rules)


# -- trial specification -------------------------------------------------------


@dataclass(frozen=True)
class TrialSpec:
    """One chaos trial: what to run and what to inject.

    ``kind`` selects the driver: ``"solve"`` is one full linear solve via
    :func:`~repro.resilience.runner.run_resilient`; ``"recover"`` is a
    solve with a fatal crash window driven through
    :func:`~repro.resilience.recovery.run_recoverable` (durable
    checkpoints + shrink/respawn); ``"sim"`` is a ``steps``-step
    :class:`~repro.physics.simulation.Simulation` with step-level
    checkpoint/retry under the same comm stack.
    """

    index: int
    kind: str
    solver: str
    options: SolverOptions
    plan: FaultPlan
    n: int = 12
    size: int = 1
    integrity: bool = False
    max_attempts: int = 5
    steps: int = 0
    recv_timeout: float = DEFAULT_RECV_TIMEOUT_S

    def __post_init__(self):
        if self.kind not in ("solve", "recover", "sim"):
            raise ConfigurationError(
                f"unknown trial kind {self.kind!r}; expected solve, "
                "recover or sim")
        if self.kind == "sim" and self.steps < 1:
            raise ConfigurationError("sim trials need steps >= 1")


@dataclass
class TrialResult:
    """Outcome of one trial plus its oracle verdict.

    ``outcome`` is one of ``"converged"`` (solve finished and claims the
    tolerance), ``"failed"`` (an *honest* ConvergenceError — the stack
    admitted defeat, which the oracle allows and the SLO budgets punish)
    or ``"aborted"`` (the world died of a CommunicationError — clean only
    when the plan can explain it: drops or un-recovered fatal crashes).
    ``violations`` is empty iff the trial passed the invariant oracle.
    """

    spec: TrialSpec
    outcome: str
    iterations: int = 0
    golden_iterations: int = 0
    faults: int = 0
    retries: int = 0
    rollbacks: int = 0
    recoveries: int = 0
    degraded: bool = False
    virtual_time_s: float = 0.0
    violations: list = field(default_factory=list)

    @property
    def classes(self) -> tuple[str, ...]:
        return plan_classes(self.spec.plan)

    @property
    def extra_iterations(self) -> int:
        return self.iterations - self.golden_iterations

    def row(self) -> dict:
        """JSON-ready ledger row (deterministic for a pinned seed)."""
        return {
            "trial": self.spec.index,
            "kind": self.spec.kind,
            "solver": self.spec.solver,
            "size": self.spec.size,
            "classes": list(self.classes),
            "outcome": self.outcome,
            "iterations": self.iterations,
            "golden_iterations": self.golden_iterations,
            "faults": self.faults,
            "retries": self.retries,
            "rollbacks": self.rollbacks,
            "recoveries": self.recoveries,
            "degraded": self.degraded,
            "virtual_time_s": round(self.virtual_time_s, 9),
            "violations": list(self.violations),
        }


# -- randomized plan generation ------------------------------------------------

def _rule_probability(rng: np.random.Generator) -> float:
    """Log-uniform firing probability in [0.005, 0.08]."""
    lo, hi = np.log10(0.005), np.log10(0.08)
    return round(float(10.0 ** rng.uniform(lo, hi)), 6)


def _maybe_window(rng: np.random.Generator) -> tuple | None:
    """A burst window over per-rank op indices, half of the time."""
    if rng.random() < 0.5:
        start = int(rng.integers(0, 60))
        return (start, start + int(rng.integers(4, 30)))
    return None


def random_fault_plan(seed: int,
                      trial: int,
                      *,
                      size: int = 1,
                      solver: str = "cg",
                      max_attempts: int = 5,
                      allow_drops: bool = False,
                      fatal_crash: bool = False) -> FaultPlan:
    """One randomized fault storm, fully determined by ``(seed, trial)``.

    Composes 1-3 probabilistic rules (transient errors, delays, payload
    corruption — restricted to collectives in serial worlds, where no
    point-to-point traffic exists) with optional burst windows, an
    optional survivable crash window in multi-rank worlds, a single
    deterministic drop when ``allow_drops`` (the hard fault whose only
    legal outcome is a clean timeout abort or a degraded recovery), and a
    fatal crash window (``length > max_attempts``) when ``fatal_crash``
    (for recovery trials).

    Chebyshev has no residual-replacement defence, so its corruption menu
    excludes the magnitude-scaling mode that could fake its convergence
    check; the CG family runs with ``replace_interval`` on, which forces a
    true-residual check on every convergence claim.
    """
    rng = np.random.default_rng((seed, trial))
    p2p = size > 1
    ops_pool = ("send", "recv", "allreduce") if p2p else ("allreduce",)
    corrupt_modes = ["corrupt_nan", "corrupt_inf", "corrupt_sign"]
    if not solver.startswith("chebyshev"):
        corrupt_modes.append("corrupt_scale")
    rules: list[FaultRule] = []
    for _ in range(int(rng.integers(1, 4))):
        kind = rng.random()
        if kind < 0.5:
            rules.append(FaultRule(
                mode="error", probability=_rule_probability(rng),
                ops=ops_pool, window=_maybe_window(rng)))
        elif kind < 0.75:
            rules.append(FaultRule(
                mode="delay", probability=_rule_probability(rng),
                ops=ops_pool, delay_s=round(float(rng.uniform(1e-4, 5e-3)), 9),
                window=_maybe_window(rng)))
        else:
            mode = corrupt_modes[int(rng.integers(len(corrupt_modes)))]
            rules.append(FaultRule(
                mode=mode, probability=_rule_probability(rng),
                ops=("allreduce",),
                scale=100.0,
                max_faults=int(rng.integers(1, 4)),
                window=_maybe_window(rng)))
    if allow_drops and p2p:
        start = int(rng.integers(10, 40))
        rules.append(FaultRule(
            mode="drop", probability=1.0, ops=("send",), max_faults=1,
            window=(start, start + 20)))
    crashes: tuple = ()
    if fatal_crash and p2p:
        crashes = (CrashWindow(
            rank=int(rng.integers(1, size)),
            start=int(rng.integers(30, 60)),
            length=max_attempts + int(rng.integers(3, 8))),)
    elif p2p and rng.random() < 0.4:
        crashes = (CrashWindow(
            rank=int(rng.integers(1, size)),
            start=int(rng.integers(10, 80)),
            length=int(rng.integers(1, max_attempts))),)
    return FaultPlan(seed=int(rng.integers(1 << 31)),
                     rules=tuple(rules), crashes=crashes)


# -- golden runs and the differential oracle -----------------------------------


class GoldenCache:
    """Cached fault-free reference runs plus the true-residual checker.

    Golden runs depend only on the (kind, options, n, size, steps)
    configuration, never on the fault plan, so a 200-trial campaign pays
    for one golden per solver config instead of one per trial.
    """

    def __init__(self):
        self._solves: dict = {}
        self._sims: dict = {}
        self._systems: dict = {}

    def solve(self, options: SolverOptions, n: int, size: int):
        key = (options, n, size)
        if key not in self._solves:
            self._solves[key] = run_resilient(
                options, FaultPlan.disabled(), n=n, size=size)
        return self._solves[key]

    def sim(self, options: SolverOptions, n: int, size: int, steps: int):
        key = (options, n, size, steps)
        if key not in self._sims:
            self._sims[key] = _run_sim(options, FaultPlan.disabled(),
                                       n=n, size=size, steps=steps)
        return self._sims[key]

    def _system(self, n: int):
        if n not in self._systems:
            from repro.testing import crooked_pipe_system, serial_operator
            grid, kxg, kyg, bg = crooked_pipe_system(n)
            op = serial_operator(grid, kxg, kyg)
            b = Field.from_global(op.tile, 1, bg)
            self._systems[n] = (op, b, float(np.linalg.norm(bg)))
        return self._systems[n]

    def true_relative_residual(self, x: np.ndarray, n: int) -> float:
        """``||b - A x|| / ||b||`` recomputed from the global system.

        This is the oracle's own arithmetic — independent of anything the
        (possibly corrupted) solve believed about its residual.
        """
        op, b, bnorm = self._system(n)
        xf = op.new_field()
        xf.interior[...] = x
        out = op.new_field()
        op.residual(b, xf, out)
        return float(np.linalg.norm(out.interior)) / bnorm


# -- trial drivers -------------------------------------------------------------


@dataclass
class _SimRun:
    """What one (possibly faulty) simulation run hands the oracle."""

    temperature: np.ndarray
    iterations: int
    faults: int = 0
    retries: int = 0
    rollbacks: int = 0
    virtual_time_s: float = 0.0
    retry_events: int = 0


def _run_sim(options: SolverOptions, plan: FaultPlan, *,
             n: int, size: int, steps: int,
             max_attempts: int = 5,
             recv_timeout: float = DEFAULT_RECV_TIMEOUT_S) -> _SimRun:
    """A ``steps``-step crooked-pipe simulation under the resilient stack.

    Step-level checkpoint/retry is armed (every step, 3 retries), so a
    step killed by an exhausted comm retry budget rolls the whole world
    back coherently instead of aborting the run.
    """
    from repro.mesh.grid import Grid2D
    from repro.physics import crooked_pipe
    from repro.physics.simulation import Simulation

    grid = Grid2D(n, n)
    problem = crooked_pipe()

    def rank_main(comm):
        stack = build_resilient_comm(comm, plan,
                                     max_attempts=max_attempts,
                                     recv_timeout=recv_timeout)
        sim = Simulation(stack.comm, grid, problem, options)
        stats = sim.run(steps, checkpoint_interval=1, max_step_retries=3)
        temp = sim.gather_temperature(root=0)
        return temp, stats, stack

    out = launch_spmd(rank_main, size)
    temp = out[0][0]
    # Iteration counts are globally coherent (the convergence check is an
    # allreduce), so rank 0's stats speak for the world.
    iters = sum(s.iterations + s.inner_iterations + s.warmup_iterations
                for s in out[0][1])
    faults = sum(len(o[2].faulty.log) for o in out)
    retries = sum(o[2].retrying.retries for o in out)
    retry_events = sum(_retry_events(o[2].events) for o in out)
    vtime = max(o[2].clock.now for o in out)
    return _SimRun(temperature=temp, iterations=iters, faults=faults,
                   retries=retries, virtual_time_s=vtime,
                   retry_events=retry_events)


def _abort_expected(spec: TrialSpec) -> bool:
    """Can the plan explain a world abort (clean, watchdog-detected)?

    Drops starve a receiver (only its timeout can fail it) and a fatal
    crash window outside a recovery trial kills the world by design.
    Anything else aborting is an oracle violation.
    """
    plan = spec.plan
    if any(r.mode == "drop" for r in plan.rules):
        return True
    fatal = any(c.length >= spec.max_attempts for c in plan.crashes)
    return fatal and spec.kind != "recover"


def run_trial(spec: TrialSpec,
              golden: GoldenCache,
              *,
              workdir=None) -> TrialResult:
    """Run one trial under the composed stack and apply the full oracle.

    ``workdir`` backs the durable checkpoints of ``"recover"`` trials
    (a throw-away directory; its contents never enter the ledger).
    """
    if spec.kind == "recover" and workdir is None:
        raise ConfigurationError(
            "recover trials need a workdir for durable checkpoints")
    t0 = time.monotonic()
    res = TrialResult(spec=spec, outcome="converged")
    try:
        if spec.kind == "sim":
            gold = golden.sim(spec.options, spec.n, spec.size, spec.steps)
            run = _run_sim(spec.options, spec.plan, n=spec.n,
                           size=spec.size, steps=spec.steps,
                           max_attempts=spec.max_attempts,
                           recv_timeout=spec.recv_timeout)
            res.golden_iterations = gold.iterations
            res.iterations = run.iterations
            res.faults, res.retries = run.faults, run.retries
            res.virtual_time_s = run.virtual_time_s
            _check_sim(res, run, gold)
        else:
            gold = golden.solve(spec.options, spec.n, spec.size)
            res.golden_iterations = gold.iterations
            if spec.kind == "recover":
                report = run_recoverable(
                    spec.options, spec.plan, n=spec.n, size=spec.size,
                    checkpoint_dir=workdir,
                    max_attempts=spec.max_attempts,
                    integrity=spec.integrity,
                    recv_timeout=spec.recv_timeout)
            else:
                report = run_resilient(
                    spec.options, spec.plan, n=spec.n, size=spec.size,
                    max_attempts=spec.max_attempts,
                    integrity=spec.integrity,
                    recv_timeout=spec.recv_timeout)
            _fill(res, report)
            _check_solve(res, report, gold, golden)
            if spec.kind == "recover":
                _check_durability(res, workdir, spec.size)
    except ConvergenceError:
        # The stack gave up *honestly*: detected, classified, reported.
        # Not an invariant violation — the SLO budgets account for it.
        res.outcome = "failed"
    except CommunicationError:
        res.outcome = "aborted"
        if not _abort_expected(spec):
            res.violations.append("no-hang:unexplained-world-abort")
    except Exception as exc:  # the oracle must classify *anything*
        res.outcome = "error"
        res.violations.append(
            f"oracle:unexpected-{type(exc).__name__}")
    if time.monotonic() - t0 > WALL_TIME_BUDGET_S:
        res.violations.append("no-hang:wall-clock-budget-exceeded")
    return res


def _fill(res: TrialResult, report) -> None:
    res.iterations = report.iterations
    res.faults = len(report.fault_events)
    res.retries = report.retries
    res.rollbacks = report.rollbacks
    res.recoveries = report.recoveries
    res.degraded = report.degraded
    res.virtual_time_s = report.virtual_time_s
    if not report.converged:
        res.outcome = "failed"


def _retry_events(events: EventLog) -> int:
    """Logical retry events, wherever the scopes rerouted them.

    A transient fault can fire during a residual-replacement reduction or
    inside recovery traffic; the retry is then recorded under
    ``(REPLACEMENT_KIND, RETRY_KIND)`` / ``(RECOVERY_KIND, RETRY_KIND)``
    instead of ``(RETRY_KIND, op)`` — the exact cross-mechanism
    interaction this accounting check exists to pin down.
    """
    return (events.count_kind(RETRY_KIND)
            + events.count(RECOVERY_KIND, RETRY_KIND)
            + events.count(REPLACEMENT_KIND, RETRY_KIND))


def _check_solve(res: TrialResult, report, gold, golden: GoldenCache) -> None:
    """Differential + accounting + virtual-clock checks for solve trials."""
    spec = res.spec
    if report.events is not None \
            and _retry_events(report.events) != report.retries:
        res.violations.append(
            f"accounting:retry-events {_retry_events(report.events)}"
            f" != retries {report.retries}")
    if res.virtual_time_s > VIRTUAL_TIME_BUDGET_S:
        res.violations.append(
            f"no-hang:virtual-clock {res.virtual_time_s:.3f}s over budget")
    if not report.converged:
        return
    rel = golden.true_relative_residual(report.x, spec.n)
    tol = spec.options.eps * ORACLE_RESIDUAL_SLACK
    if not rel <= tol:
        res.violations.append(
            f"differential:true-residual {rel:.3e} > {tol:.3e}")
    if transparent(spec.plan) and report.rollbacks == 0 \
            and not report.degraded and report.recoveries == 0:
        # Recovery claims full transparency: hold it to bit-identity.
        if report.iterations != gold.iterations:
            res.violations.append(
                f"differential:iterations {report.iterations} != golden "
                f"{gold.iterations} under a transparent plan")
        if report.x is not None and gold.x is not None \
                and not np.array_equal(report.x, gold.x):
            res.violations.append("differential:bit-drift under a "
                                  "transparent plan")
        if report.events is not None and gold.events is not None:
            for kind in ("allreduce", "halo_exchange"):
                a = report.events.count_kind(kind)
                g = gold.events.count_kind(kind)
                if a != g:
                    res.violations.append(
                        f"accounting:{kind} count {a} != golden {g} "
                        "(retries leaked into logical counts)")


def _check_sim(res: TrialResult, run: _SimRun, gold: _SimRun) -> None:
    """Sim trials inject only transparent hazards: demand bit-identity."""
    if run.retry_events != run.retries:
        res.violations.append(
            f"accounting:retry-events {run.retry_events} != retries "
            f"{run.retries}")
    if res.virtual_time_s > VIRTUAL_TIME_BUDGET_S:
        res.violations.append(
            f"no-hang:virtual-clock {res.virtual_time_s:.3f}s over budget")
    if run.temperature is None or gold.temperature is None:
        res.violations.append("differential:missing temperature field")
        return
    if not np.array_equal(run.temperature, gold.temperature):
        res.violations.append("differential:simulation temperature drifted "
                              "under a transparent storm")


def _check_durability(res: TrialResult, workdir, size: int) -> None:
    """Recovery must leave loadable, CRC-valid durable shards behind."""
    from repro.utils.errors import CheckpointError
    for rank in range(size):
        store = SolverCheckpointStore(Path(workdir), rank)
        try:
            loaded = store.load()
        except CheckpointError as exc:
            res.violations.append(
                f"durability:rank {rank} shard invalid ({exc})")
            continue
        if loaded is None:
            res.violations.append(
                f"durability:rank {rank} left no durable shard")


# -- campaign ------------------------------------------------------------------


def campaign_specs(seed: int,
                   trials: int,
                   *,
                   n: int = 12,
                   solvers=CAMPAIGN_SOLVERS,
                   sim_steps: int = 3,
                   max_attempts: int = 5) -> list[TrialSpec]:
    """The deterministic trial schedule of one campaign.

    Round-robins the solver configs and interleaves the trial kinds on
    fixed residues so any prefix of the schedule covers every kind:
    serial solves (the bulk), 2-rank solves (p2p hazards + survivable
    crashes), drop trials (hard faults, clean aborts allowed), fatal
    crash + ULFM recovery trials, multi-step simulations, and fault-free
    controls that anchor the differential oracle.

    Defence selection mirrors the design-space argument: the CG family
    carries residual replacement (``replace_interval``), which revalidates
    every convergence claim against a true residual, so payload corruption
    cannot fake convergence; Chebyshev has no such numerical defence — its
    corruption trials arm the :class:`ChecksumComm` integrity layer
    instead, whose duplicate-lane reductions turn the corruption into a
    retryable detection.  A deterministic slice of replacement-protected
    trials also runs with integrity on, exercising the checksum +
    replacement composition.
    """

    def _integrity(i: int, options: SolverOptions, plan: FaultPlan) -> bool:
        corrupting = any(r.mode in CORRUPTION_MODES for r in plan.rules)
        return corrupting and (options.replace_interval == 0 or i % 5 == 2)

    specs: list[TrialSpec] = []
    for i in range(trials):
        name, options = solvers[i % len(solvers)]
        if i % 25 == 24:
            specs.append(TrialSpec(
                index=i, kind="solve", solver=name, options=options,
                plan=FaultPlan.disabled(), n=n,
                max_attempts=max_attempts))
            continue
        if i % 20 == 7:
            plan = random_fault_plan(seed, i, size=2, solver=name,
                                     max_attempts=max_attempts,
                                     fatal_crash=True)
            specs.append(TrialSpec(
                index=i, kind="recover", solver=name, options=options,
                plan=plan, n=n, size=2, max_attempts=max_attempts,
                integrity=_integrity(i, options, plan)))
            continue
        if i % 20 == 17:
            plan = random_fault_plan(seed, i, size=2, solver=name,
                                     max_attempts=max_attempts,
                                     allow_drops=True)
            specs.append(TrialSpec(
                index=i, kind="solve", solver=name, options=options,
                plan=plan, n=n, size=2, max_attempts=max_attempts,
                recv_timeout=0.5, integrity=_integrity(i, options, plan)))
            continue
        if i % 10 == 6:
            plan = _transparent_only(random_fault_plan(
                seed, i, size=1, solver=name, max_attempts=max_attempts))
            specs.append(TrialSpec(
                index=i, kind="sim", solver=name, options=options,
                plan=plan, n=n, steps=sim_steps,
                max_attempts=max_attempts))
            continue
        size = 2 if i % 10 == 3 else 1
        plan = random_fault_plan(seed, i, size=size, solver=name,
                                 max_attempts=max_attempts)
        specs.append(TrialSpec(
            index=i, kind="solve", solver=name, options=options,
            plan=plan, n=n, size=size, max_attempts=max_attempts,
            integrity=_integrity(i, options, plan)))
    return specs


def _transparent_only(plan: FaultPlan) -> FaultPlan:
    """Strip a random plan down to its transparent (error/delay) rules."""
    rules = tuple(r for r in plan.rules if r.mode in ("error", "delay"))
    if not rules:
        rules = (FaultRule(mode="error", probability=0.02,
                           ops=("allreduce",)),)
    return FaultPlan(seed=plan.seed, rules=rules)


@dataclass
class ChaosCampaignResult:
    """All trial results of one campaign plus the enforced SLO ledger."""

    seed: int
    n: int
    solvers: tuple[str, ...]
    budgets: dict
    results: list = field(default_factory=list)

    @property
    def oracle_violations(self) -> list:
        """Flat ``(trial_index, violation)`` list across all trials."""
        return [(r.spec.index, v) for r in self.results for v in r.violations]

    def class_stats(self) -> dict:
        """Per-fault-class SLO aggregates (the heart of the ledger)."""
        stats: dict = {}
        for cls in FAULT_CLASSES:
            rows = [r for r in self.results if cls in r.classes]
            if not rows:
                continue
            converged = [r for r in rows if r.outcome == "converged"]
            extra = [r.extra_iterations for r in converged]
            # Drop trials (and un-recovered fatal crashes) abort *by
            # design* — the watchdog turning a starved receiver into a
            # clean abort is the mechanism working, not failing — so
            # clean expected aborts leave the recovery-rate denominator.
            expected_aborts = sum(
                r.outcome == "aborted" and not r.violations for r in rows)
            recoverable = len(rows) - expected_aborts
            stats[cls] = {
                "trials": len(rows),
                "converged": len(converged),
                "failed": sum(r.outcome == "failed" for r in rows),
                "aborted": sum(r.outcome == "aborted" for r in rows),
                "expected_aborts": expected_aborts,
                "recovery_rate": round(
                    len(converged) / recoverable if recoverable else 1.0, 6),
                "mean_extra_iterations": round(
                    float(np.mean(extra)) if extra else 0.0, 6),
                "retries": sum(r.retries for r in rows),
                "rollbacks": sum(r.rollbacks for r in rows),
                "recoveries": sum(r.recoveries for r in rows),
                "virtual_time_s": round(
                    sum(r.virtual_time_s for r in rows), 9),
            }
        return stats

    def budget_violations(self) -> list[str]:
        """Every way the measured SLOs miss the enforced budgets."""
        out: list[str] = []
        stats = self.class_stats()
        for cls, budget in sorted(self.budgets.items()):
            if cls not in stats:
                continue
            s = stats[cls]
            rate = budget.get("min_recovery_rate")
            if rate is not None and s["recovery_rate"] < rate:
                out.append(f"{cls}: recovery rate {s['recovery_rate']:.3f} "
                           f"< budget {rate:.3f}")
            cap = budget.get("max_mean_extra_iterations")
            if cap is not None and s["mean_extra_iterations"] > cap:
                out.append(f"{cls}: mean extra iterations "
                           f"{s['mean_extra_iterations']:.1f} > budget "
                           f"{cap:.1f}")
            vcap = budget.get("max_virtual_time_s")
            if vcap is not None and s["virtual_time_s"] > vcap:
                out.append(f"{cls}: virtual time "
                           f"{s['virtual_time_s']:.3f}s > budget "
                           f"{vcap:.1f}s")
        return out

    @property
    def passed(self) -> bool:
        return not self.oracle_violations and not self.budget_violations()

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def as_dict(self) -> dict:
        """The recovery-SLO ledger (schema ``repro.chaos/v1``).

        Byte-stable for a pinned seed: every number is derived from
        seeded draws and virtual clocks, never wall time, so two runs of
        the same campaign serialize identically (the acceptance test
        compares the JSON bytes).
        """
        return {
            "schema": LEDGER_SCHEMA,
            "seed": self.seed,
            "n": self.n,
            "trials": len(self.results),
            "solvers": list(self.solvers),
            "passed": self.passed,
            "oracle_violations": [
                {"trial": i, "violation": v}
                for i, v in self.oracle_violations],
            "budget_violations": self.budget_violations(),
            "budgets": self.budgets,
            "classes": self.class_stats(),
            "trial_rows": [r.row() for r in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def run_campaign(seed: int = 20170905,
                 trials: int = 200,
                 *,
                 n: int = 12,
                 solvers=CAMPAIGN_SOLVERS,
                 budgets: dict | None = None,
                 sim_steps: int = 3,
                 max_attempts: int = 5,
                 fixtures_dir=None,
                 workdir=None) -> ChaosCampaignResult:
    """Run a full seeded chaos campaign and aggregate the SLO ledger.

    ``fixtures_dir``: when a trial fails the oracle, its plan is shrunk
    with :func:`shrink_plan` and the minimized reproduction is written
    there as a JSON fixture (the campaign still reports the failure).
    ``workdir``: directory for recovery trials' throw-away durable
    checkpoints (a temporary directory when omitted).
    """
    import tempfile

    golden = GoldenCache()
    out = ChaosCampaignResult(
        seed=seed, n=n, solvers=tuple(name for name, _ in solvers),
        budgets=budgets if budgets is not None else DEFAULT_BUDGETS)
    specs = campaign_specs(seed, trials, n=n, solvers=solvers,
                           sim_steps=sim_steps, max_attempts=max_attempts)
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(workdir) if workdir is not None else Path(tmp)
        for spec in specs:
            trial_dir = base / f"trial-{spec.index:06d}"
            result = run_trial(spec, golden, workdir=trial_dir)
            out.results.append(result)
            if result.violations and fixtures_dir is not None:
                minimize_and_write_fixture(spec, golden,
                                           Path(fixtures_dir),
                                           workdir=trial_dir)
    return out


# -- delta-debugging shrinker and fixtures -------------------------------------


def shrink_plan(plan: FaultPlan, failing, *, max_runs: int = 256) -> FaultPlan:
    """ddmin over the plan's rules + crash windows.

    ``failing(plan) -> bool`` must be deterministic and True for the input
    plan; the returned plan is 1-minimal under it (removing any single
    remaining rule or crash window makes the failure disappear), reached
    in at most ``max_runs`` predicate evaluations.
    """
    atoms: list = [("rule", r) for r in plan.rules] \
        + [("crash", c) for c in plan.crashes]

    def build(selected) -> FaultPlan:
        return FaultPlan(
            seed=plan.seed,
            rules=tuple(obj for k, obj in selected if k == "rule"),
            crashes=tuple(obj for k, obj in selected if k == "crash"),
            enabled=True)

    runs = 0

    def check(selected) -> bool:
        nonlocal runs
        runs += 1
        if runs > max_runs:
            raise ConfigurationError(
                f"shrinker exceeded its run budget ({max_runs})")
        return bool(failing(build(selected)))

    if not check(atoms):
        raise ConfigurationError(
            "shrink_plan needs a failing plan to start from")
    granularity = 2
    while len(atoms) >= 2:
        chunk = max(1, len(atoms) // granularity)
        reduced = False
        for start in range(0, len(atoms), chunk):
            candidate = atoms[:start] + atoms[start + chunk:]
            if candidate and check(candidate):
                atoms = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(atoms):
                break
            granularity = min(len(atoms), granularity * 2)
    return build(atoms)


def options_to_dict(options: SolverOptions) -> dict:
    """JSON-ready SolverOptions (tuples become lists)."""
    return {k: (list(v) if isinstance(v, tuple) else v)
            for k, v in asdict(options).items()}


def options_from_dict(data: dict) -> SolverOptions:
    """Invert :func:`options_to_dict` (re-runs all option validation)."""
    raw = dict(data)
    for key in ("eigen_safety", "deflation_blocks"):
        if key in raw and isinstance(raw[key], list):
            raw[key] = tuple(raw[key])
    return SolverOptions(**raw)


def spec_to_dict(spec: TrialSpec) -> dict:
    return {
        "index": spec.index,
        "kind": spec.kind,
        "solver": spec.solver,
        "options": options_to_dict(spec.options),
        "plan": spec.plan.to_dict(),
        "n": spec.n,
        "size": spec.size,
        "integrity": spec.integrity,
        "max_attempts": spec.max_attempts,
        "steps": spec.steps,
        "recv_timeout": spec.recv_timeout,
    }


def spec_from_dict(data: dict) -> TrialSpec:
    return TrialSpec(
        index=data["index"],
        kind=data["kind"],
        solver=data["solver"],
        options=options_from_dict(data["options"]),
        plan=FaultPlan.from_dict(data["plan"]),
        n=data["n"],
        size=data.get("size", 1),
        integrity=data.get("integrity", False),
        max_attempts=data.get("max_attempts", 5),
        steps=data.get("steps", 0),
        recv_timeout=data.get("recv_timeout", DEFAULT_RECV_TIMEOUT_S),
    )


def write_fixture(spec: TrialSpec, violations: list, path) -> Path:
    """Serialize a (minimized) failing trial as a regression fixture."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": FIXTURE_SCHEMA,
        "spec": spec_to_dict(spec),
        "violations": list(violations),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_fixture(path) -> TrialSpec:
    """Rebuild the trial spec of a fixture written by :func:`write_fixture`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != FIXTURE_SCHEMA:
        raise ConfigurationError(
            f"{path}: unknown fixture schema {data.get('schema')!r}")
    return spec_from_dict(data["spec"])


def replay_fixture(path, *, workdir=None) -> TrialResult:
    """Re-run a fixture's trial; its violations should reproduce."""
    import tempfile

    spec = load_fixture(path)
    golden = GoldenCache()
    if workdir is not None:
        return run_trial(spec, golden, workdir=workdir)
    with tempfile.TemporaryDirectory() as tmp:
        return run_trial(spec, golden, workdir=Path(tmp))


def minimize_and_write_fixture(spec: TrialSpec,
                               golden: GoldenCache,
                               fixtures_dir: Path,
                               *,
                               workdir=None,
                               max_runs: int = 256) -> Path:
    """Shrink a failing trial's plan and persist the minimal reproduction.

    The predicate re-runs the trial with a candidate sub-plan and asks
    "does the oracle still object?" — so the minimized fixture is the
    smallest fault composition that still breaks the invariant, which is
    exactly what a regression test wants to replay.
    """
    import dataclasses

    def failing(candidate: FaultPlan) -> bool:
        trial = dataclasses.replace(spec, plan=candidate)
        return bool(run_trial(trial, golden, workdir=workdir).violations)

    minimal = shrink_plan(spec.plan, failing, max_runs=max_runs)
    final = dataclasses.replace(spec, plan=minimal)
    result = run_trial(final, golden, workdir=workdir)
    name = f"chaos-seed{spec.plan.seed}-trial{spec.index:04d}.json"
    return write_fixture(final, result.violations, fixtures_dir / name)


def known_bad_spec(seed: int = 99) -> TrialSpec:
    """The seeded known-bad mutation the shrinker acceptance test uses.

    Protections off (no guard, no residual replacement, integrity
    disabled) while a storm of transient errors, delays and a
    magnitude-crushing corruption of the convergence-check reduction
    rages: the scaled-down ``r.r`` fakes convergence, the solve exits
    early, and only the oracle's independently recomputed true residual
    notices.  The shrinker must strip the decoy rules and leave <= 2.
    """
    options = SolverOptions(solver="cg", eps=1e-8, max_iters=500)
    plan = FaultPlan(seed=seed, rules=(
        FaultRule(mode="error", probability=0.01, ops=("allreduce",)),
        FaultRule(mode="delay", probability=0.01, ops=("allreduce",),
                  delay_s=1e-3),
        FaultRule(mode="corrupt_scale", probability=1.0,
                  ops=("allreduce",), scale=1e-12, window=(20, 1 << 30)),
    ))
    return TrialSpec(index=0, kind="solve", solver="cg[unprotected]",
                     options=options, plan=plan, n=12)


# -- soak runner ---------------------------------------------------------------


@dataclass
class SoakCycle:
    """One storm-then-kill cycle of a soak run."""

    cycle: int
    steps: int
    restored_step: int       #: checkpoint step resumed from (-1 = fresh)
    faults: int
    retries: int
    virtual_time_s: float

    def row(self) -> dict:
        return {
            "cycle": self.cycle,
            "steps": self.steps,
            "restored_step": self.restored_step,
            "faults": self.faults,
            "retries": self.retries,
            "virtual_time_s": round(self.virtual_time_s, 9),
        }


@dataclass
class SoakReport:
    """Outcome of a :func:`run_soak` run (JSON-ready via :meth:`as_dict`)."""

    seed: int
    n: int
    nranks: int
    cycles: list = field(default_factory=list)
    bit_identical: bool = False
    violations: list = field(default_factory=list)
    final_mean_temperature: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def as_dict(self) -> dict:
        return {
            "schema": "repro.chaos_soak/v1",
            "seed": self.seed,
            "n": self.n,
            "nranks": self.nranks,
            "passed": self.passed,
            "bit_identical": self.bit_identical,
            "violations": list(self.violations),
            "final_mean_temperature": self.final_mean_temperature,
            "cycles": [c.row() for c in self.cycles],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def storm_plan(seed: int, cycle: int, *, nranks: int) -> FaultPlan:
    """The (transparent) fault storm of one soak cycle.

    Bursty transient errors plus background delays: every hazard is
    retried or merely charged to the virtual clock, so the soak's
    bit-identity oracle stays exact across any number of storms.
    """
    rng = np.random.default_rng((seed, 0x50AB, cycle))
    ops = ("send", "recv", "allreduce") if nranks > 1 else ("allreduce",)
    start = int(rng.integers(0, 40))
    return FaultPlan(seed=int(rng.integers(1 << 31)), rules=(
        FaultRule(mode="error", probability=0.05, ops=ops,
                  window=(start, start + int(rng.integers(10, 40)))),
        FaultRule(mode="error", probability=0.01, ops=ops),
        FaultRule(mode="delay", probability=0.02, ops=ops, delay_s=1e-3),
    ))


def run_soak(*,
             seed: int = 11,
             cycles: int = 3,
             steps_per_cycle: int = 2,
             n: int = 16,
             nranks: int = 1,
             checkpoint_root,
             options: SolverOptions | None = None) -> SoakReport:
    """Soak the mini-app: periodic fault storms and kill/restart cycles.

    Each cycle relaunches the SPMD world (everything in memory is lost —
    the "kill"), restores from the newest durable checkpoint, and
    advances ``steps_per_cycle`` steps under a fresh seeded storm with
    durable checkpoints committed every step.  After all cycles the final
    temperature must be **bit-identical** to one uninterrupted fault-free
    run: the composed claim that checkpoint/restart and the retry stack
    are both exact.
    """
    from repro.mesh.grid import Grid2D
    from repro.physics import crooked_pipe
    from repro.physics.simulation import Simulation, checkpoint_config
    from repro.resilience.checkpoint import latest_checkpoint

    opts = options if options is not None else SolverOptions(
        solver="cg", eps=1e-8, max_iters=500)
    grid = Grid2D(n, n)
    problem = crooked_pipe()
    total = cycles * steps_per_cycle
    root = Path(checkpoint_root)
    config = checkpoint_config(grid, problem, opts, dt=0.04, n_steps=total,
                               nranks=nranks,
                               conductivity="recip_density",
                               face_mean="harmonic", warm_start=True,
                               checkpoint_interval=1)

    def golden_main(comm):
        sim = Simulation(comm, grid, problem, opts)
        sim.run(total)
        return sim.gather_temperature(root=0), sim.mean_temperature()

    golden_temp, _ = launch_spmd(golden_main, nranks)[0]

    report = SoakReport(seed=seed, n=n, nranks=nranks)
    for cycle in range(cycles):
        plan = storm_plan(seed, cycle, nranks=nranks)
        resume_dir = latest_checkpoint(root)

        def cycle_main(comm, step_dir=resume_dir, storm=plan):
            stack = build_resilient_comm(comm, storm)
            sim = Simulation(stack.comm, grid, problem, opts)
            restored = -1
            if step_dir is not None:
                restored = sim.restore_from_checkpoint(step_dir)
            sim.run(steps_per_cycle, checkpoint_interval=1,
                    max_step_retries=3, checkpoint_dir=root,
                    checkpoint_config=config)
            temp = sim.gather_temperature(root=0)
            return temp, restored, stack, sim.mean_temperature()

        out = launch_spmd(cycle_main, nranks)
        temp, restored = out[0][0], out[0][1]
        report.cycles.append(SoakCycle(
            cycle=cycle,
            steps=steps_per_cycle,
            restored_step=restored,
            faults=sum(len(o[2].faulty.log) for o in out),
            retries=sum(o[2].retrying.retries for o in out),
            virtual_time_s=max(o[2].clock.now for o in out),
        ))
        report.final_mean_temperature = float(out[0][3])
        if cycle > 0 and restored != cycle * steps_per_cycle:
            report.violations.append(
                f"cycle {cycle}: resumed from step {restored}, expected "
                f"{cycle * steps_per_cycle}")

    report.bit_identical = bool(np.array_equal(temp, golden_temp))
    if not report.bit_identical:
        report.violations.append(
            "final temperature drifted from the uninterrupted fault-free "
            "run")
    if not any(c.faults for c in report.cycles):
        report.violations.append("no storm fault ever fired (vacuous soak)")
    return report
