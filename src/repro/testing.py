"""Public test/benchmark scaffolding.

Construction helpers used throughout this repository's tests, benchmarks
and examples — exported so downstream experiments can build the same
reference systems in a line or two:

- :func:`crooked_pipe_system` — global operator coefficients and RHS of
  the paper's benchmark first implicit step;
- :func:`random_spd_faces` — random positive face coefficients (an SPD
  ``I + D`` operator) for property-style testing;
- :func:`serial_operator` / :func:`reference_solution` — a one-rank
  operator and the direct sparse ground truth;
- :func:`distributed_solve` — run any :class:`SolverOptions` configuration
  genuinely decomposed over the in-process SPMD world and return the
  assembled global solution.
"""

from __future__ import annotations

import numpy as np

from repro.comm import SerialComm, launch_spmd
from repro.mesh import Field, Grid2D, decompose
from repro.physics import (
    cell_conductivity,
    crooked_pipe,
    crooked_pipe_jump,
    face_coefficients,
    global_initial_state,
)
from repro.solvers import SolverOptions, StencilOperator2D, solve_linear

__all__ = [
    "crooked_pipe_system",
    "crooked_pipe_jump_system",
    "random_spd_faces",
    "serial_operator",
    "reference_solution",
    "distributed_solve",
]


def crooked_pipe_system(n: int, dt: float = 0.04):
    """Global arrays of the crooked-pipe first implicit step.

    Returns ``(grid, kx_global, ky_global, b_global)``.
    """
    grid = Grid2D(n, n)
    density, _, u0 = global_initial_state(grid, crooked_pipe())
    kappa = cell_conductivity(density)
    rx = dt / grid.dx ** 2
    ry = dt / grid.dy ** 2
    kxg, kyg = face_coefficients(kappa, rx, ry)
    return grid, kxg, kyg, u0


def crooked_pipe_jump_system(n: int, jump: float, dt: float = 0.04):
    """Like :func:`crooked_pipe_system` for one ill-conditioned battery
    problem (:func:`~repro.physics.crooked_pipe_jump`): the conductivity
    contrast — and the operator's condition number — scales with ``jump``.
    """
    grid = Grid2D(n, n)
    density, _, u0 = global_initial_state(grid, crooked_pipe_jump(jump))
    kappa = cell_conductivity(density)
    rx = dt / grid.dx ** 2
    ry = dt / grid.dy ** 2
    kxg, kyg = face_coefficients(kappa, rx, ry)
    return grid, kxg, kyg, u0


def random_spd_faces(rng: np.random.Generator, ny: int, nx: int,
                     scale: float = 1.0):
    """Random positive face coefficients with zero physical-boundary faces."""
    kx = np.zeros((ny, nx + 1))
    ky = np.zeros((ny + 1, nx))
    kx[:, 1:nx] = scale * rng.uniform(0.1, 2.0, size=(ny, nx - 1))
    ky[1:ny, :] = scale * rng.uniform(0.1, 2.0, size=(ny - 1, nx))
    return kx, ky


def serial_operator(grid: Grid2D, kxg: np.ndarray, kyg: np.ndarray,
                    halo: int = 1) -> StencilOperator2D:
    """A one-rank operator over the whole grid."""
    tile = decompose(grid, 1)[0]
    return StencilOperator2D.from_global_faces(tile, halo, kxg, kyg,
                                               SerialComm())


def reference_solution(kxg, kyg, bg):
    """Direct sparse solve of the global system (scipy ground truth)."""
    import scipy.sparse.linalg as spla
    A = StencilOperator2D.assemble_sparse(kxg, kyg)
    return spla.spsolve(A.tocsc(), bg.ravel()).reshape(bg.shape)


def distributed_solve(grid: Grid2D, kxg, kyg, bg,
                      options: SolverOptions, size: int):
    """Solve on a ``size``-rank world; returns (global x, rank-0 result)."""

    def rank_main(comm):
        tile = decompose(grid, comm.size)[comm.rank]
        halo = options.required_field_halo
        op = StencilOperator2D.from_global_faces(tile, halo, kxg, kyg, comm)
        b = Field.from_global(tile, halo, bg)
        result = solve_linear(op, b, options=options)
        return tile, result

    out = launch_spmd(rank_main, size)
    x = np.zeros(grid.shape)
    for tile, result in out:
        x[tile.global_slices] = result.x.interior
    return x, out[0][1]
