"""Command-line entry points.

``python -m repro.cli.main tealeaf --deck tea.in`` runs a deck;
``python -m repro.cli.main figure fig5`` regenerates a paper figure;
``python -m repro.cli.main report --out results/`` writes everything.
"""
