"""repro command-line interface."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_tealeaf(args) -> int:
    from repro.io.ascii_viz import render_heatmap
    from repro.physics.deck import deck_to_problem, parse_deck
    from repro.physics.simulation import run_simulation
    from repro.solvers.options import SolverOptions

    deck = parse_deck(args.deck)
    checkpoint_dir = args.checkpoint_dir or deck.tl_checkpoint_dir
    checkpoint_interval = args.checkpoint_interval or deck.tl_checkpoint_interval
    if checkpoint_interval and not checkpoint_dir:
        print("error: --checkpoint-interval needs --checkpoint-dir "
              "(or tl_checkpoint_dir in the deck)", file=sys.stderr)
        return 2
    options = SolverOptions(
        solver=deck.solver,
        eps=deck.tl_eps,
        max_iters=deck.tl_max_iters,
        preconditioner=deck.tl_preconditioner_type,
        ppcg_inner_steps=deck.tl_ppcg_inner_steps,
        halo_depth=deck.tl_ppcg_halo_depth,
        eigen_warmup_iters=deck.tl_eigen_warmup_iters,
        checkpoint_interval=checkpoint_interval,
        checkpoint_dir=str(checkpoint_dir),
        recovery=deck.tl_enable_recovery,
        integrity=deck.tl_enable_checksums,
        abft_interval=deck.tl_abft_interval,
        dtype=deck.tl_working_dtype,
        refine=deck.tl_enable_refinement,
        replace_interval=deck.tl_replace_interval,
        true_residual=deck.tl_check_true_residual,
        kernel_backend=deck.tl_kernel_backend,
        comm_timeout=args.comm_timeout or deck.tl_comm_timeout,
    )
    n_steps = args.steps if args.steps else deck.n_steps
    report = run_simulation(
        deck.grid, deck_to_problem(deck), options,
        dt=deck.initial_timestep, n_steps=n_steps, nranks=args.ranks,
        conductivity=deck.tl_coefficient)
    print(f"TeaLeaf: {deck.x_cells}x{deck.y_cells} mesh, solver={deck.solver}, "
          f"{n_steps} steps on {args.ranks} rank(s)")
    for s in report.steps:
        true = (f" true={s.true_residual_norm:.3e}"
                if s.true_residual_norm is not None else "")
        print(f"  step {s.step:4d} t={s.time:8.3f} iters={s.iterations:5d}"
              f" (+{s.inner_iterations} inner) residual={s.residual_norm:.3e}"
              f"{true} mean T={s.mean_temperature:.6f}")
    if args.show:
        print(render_heatmap(report.temperature, width=args.width))
    if args.out:
        from repro.io.snapshots import save_field_npy
        path = save_field_npy(args.out, report.temperature)
        print(f"temperature field written to {path}")
    if args.vtk:
        from repro.io.vtk import write_vtk
        density, _ = deck_to_problem(deck).paint(deck.grid)
        path = write_vtk(args.vtk, deck.grid,
                         {"temperature": report.temperature,
                          "density": density})
        print(f"VTK file written to {path}")
    return 0


def _cmd_restart(args) -> int:
    """Resume a checkpointed run from its newest committed checkpoint."""
    from repro.io.ascii_viz import render_heatmap
    from repro.physics.simulation import restart_simulation
    from repro.utils.errors import CheckpointError

    try:
        report = restart_simulation(
            args.from_dir,
            extra_steps=args.steps or None,
            nranks=args.ranks or None,
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"restarted from {args.from_dir}: "
          f"{len(report.steps)} step(s) resumed")
    for s in report.steps:
        print(f"  step {s.step:4d} t={s.time:8.3f} iters={s.iterations:5d}"
              f" (+{s.inner_iterations} inner) residual={s.residual_norm:.3e}"
              f" mean T={s.mean_temperature:.6f}")
    if args.show:
        print(render_heatmap(report.temperature, width=args.width))
    if args.out:
        from repro.io.snapshots import save_field_npy
        path = save_field_npy(args.out, report.temperature)
        print(f"temperature field written to {path}")
    return 0


def _cmd_solve(args) -> int:
    """One-shot linear solve of a deck's first implicit step."""
    import numpy as np

    from repro.comm import InstrumentedComm, launch_spmd
    from repro.mesh import Field, decompose
    from repro.physics import cell_conductivity, face_coefficients
    from repro.physics.deck import deck_to_problem, parse_deck
    from repro.physics.state import global_initial_state
    from repro.solvers import StencilOperator2D, SolverOptions, solve_linear
    from repro.utils import EventLog

    deck = parse_deck(args.deck)
    options = SolverOptions(
        solver=args.solver or deck.solver,
        eps=deck.tl_eps,
        max_iters=deck.tl_max_iters,
        preconditioner=deck.tl_preconditioner_type,
        ppcg_inner_steps=deck.tl_ppcg_inner_steps,
        halo_depth=args.halo_depth or deck.tl_ppcg_halo_depth,
        dtype=args.dtype or deck.tl_working_dtype,
        refine=deck.tl_enable_refinement,
        replace_interval=deck.tl_replace_interval,
        true_residual=args.true_residual or deck.tl_check_true_residual,
        kernel_backend=args.kernel_backend or deck.tl_kernel_backend,
        comm_timeout=args.comm_timeout or deck.tl_comm_timeout,
    )
    grid = deck.grid
    density, _, u0 = global_initial_state(grid, deck_to_problem(deck))
    kappa = cell_conductivity(density, deck.tl_coefficient)
    rx = deck.initial_timestep / grid.dx ** 2
    ry = deck.initial_timestep / grid.dy ** 2
    kxg, kyg = face_coefficients(kappa, rx, ry)

    def rank_main(comm):
        log = EventLog()
        comm = InstrumentedComm(comm, log)
        tile = decompose(grid, comm.size)[comm.rank]
        op = StencilOperator2D.from_global_faces(
            tile, options.required_field_halo, kxg, kyg, comm, events=log)
        b = Field.from_global(tile, options.required_field_halo, u0)
        result = solve_linear(op, b, options=options)
        return result, log

    result, log = launch_spmd(
        rank_main, args.ranks,
        recv_timeout=options.comm_timeout if options.comm_timeout > 0
        else None)[0]
    print(result.summary())
    print(f"matvecs={log.count('matvec')} "
          f"reductions={log.count_kind('allreduce')} "
          f"halo exchanges={log.count_kind('halo_exchange')} "
          f"({log.total('halo_exchange', 'bytes') / 1024:.1f} KiB)")
    return 0 if result.converged else 1


def _cmd_trace(args) -> int:
    """Traced one-shot solve: JSONL + Chrome trace + text summaries."""
    from repro.observe import (
        deck_system,
        metrics_table,
        summary_table,
        traced_solve,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.physics.deck import parse_deck
    from repro.solvers import SolverOptions

    deck = parse_deck(args.deck)
    solver = args.solver or deck.solver
    # Accept the paper's name for the Chebyshev-preconditioned solver.
    if solver == "cppcg":
        solver = "ppcg"
    options = SolverOptions(
        solver=solver,
        eps=deck.tl_eps,
        max_iters=deck.tl_max_iters,
        preconditioner=deck.tl_preconditioner_type,
        ppcg_inner_steps=deck.tl_ppcg_inner_steps,
        halo_depth=args.halo_depth or deck.tl_ppcg_halo_depth,
        eigen_warmup_iters=deck.tl_eigen_warmup_iters,
    )
    clock_factory = None
    if args.virtual_clock:
        from repro.resilience import VirtualClock
        clock_factory = lambda rank: VirtualClock(tick=1e-6)  # noqa: E731
    grid, kxg, kyg, bg = deck_system(deck)
    run = traced_solve(grid, kxg, kyg, bg, options, size=args.ranks,
                       clock_factory=clock_factory, capacity=args.capacity)

    out = Path(args.out)
    spans = run.spans
    jsonl_path = write_jsonl(spans, out / "trace.jsonl")
    chrome_path = write_chrome_trace(spans, out / "trace.chrome.json")
    print(run.result.summary())
    print(summary_table(spans))
    print(metrics_table(run.metrics.snapshot()))
    dropped = sum(t.dropped for t in run.tracers)
    if dropped:
        print(f"note: ring buffer dropped {dropped} span(s) "
              f"(capacity {args.capacity}/rank)")
    print(f"trace written to {jsonl_path}")
    print(f"chrome trace written to {chrome_path} "
          "(open in chrome://tracing or ui.perfetto.dev)")
    return 0 if run.result.converged else 1


def _cmd_figure(args) -> int:
    from repro.harness import fig3, fig4, fig5, fig6, fig7, fig8, table1
    from repro.harness import breakdown, depth_sweep, future_solvers
    mains = {
        "table1": table1.main, "fig3": fig3.main, "fig4": fig4.main,
        "fig5": fig5.main, "fig6": fig6.main, "fig7": fig7.main,
        "fig8": fig8.main, "depth-sweep": depth_sweep.main,
        "future-solvers": future_solvers.main, "breakdown": breakdown.main,
    }
    mains[args.name]()
    return 0


def _cmd_chaos(args) -> int:
    """Seeded chaos campaign against the composed resilient stack."""
    from repro.harness.chaos_sweep import main as chaos_main
    argv = ["--seed", str(args.seed), "--trials", str(args.trials),
            "--n", str(args.n), "--out", args.out]
    return chaos_main(argv)


def _cmd_soak(args) -> int:
    """Kill/restart soak of the mini-app under periodic fault storms."""
    if args.service:
        from repro.harness.service_soak import main as service_soak_main
        argv = ["--seed", str(args.seed),
                "--requests", str(args.requests),
                "--kill-seed", str(args.kill_seed),
                "--out", args.out]
        if args.out == "results/soak":   # service ledgers live elsewhere
            argv[-1] = "results/service"
        return service_soak_main(argv)
    from repro.harness.soak import main as soak_main
    argv = ["--seed", str(args.seed), "--cycles", str(args.cycles),
            "--steps-per-cycle", str(args.steps_per_cycle),
            "--n", str(args.n), "--ranks", str(args.ranks),
            "--out", args.out]
    return soak_main(argv)


def _cmd_bench(args) -> int:
    """Pinned kernel + whole-solver microbenchmark suite."""
    from repro.harness.bench import main as bench_main
    if args.compare:
        return bench_main(["--compare", *args.compare,
                           "--threshold", str(args.threshold)])
    argv = ["--out", args.out, "--pr", str(args.pr),
            "--repeats", str(args.repeats)]
    if args.quick:
        argv.append("--quick")
    if args.backends:
        argv += ["--backends", args.backends]
    return bench_main(argv)


def _cmd_serve(args) -> int:
    """Multi-tenant solve service: load sweep or interactive demo."""
    if args.demo:
        import asyncio
        return asyncio.run(_serve_demo())
    from repro.harness.service_sweep import main as sweep_main
    argv = ["--seed", str(args.seed), "--requests", str(args.requests),
            "--workers", str(args.workers),
            "--group-size", str(args.group_size), "--out", args.out]
    if args.no_chaos:
        argv.append("--no-chaos")
    if args.index >= 0:
        argv += ["--index", str(args.index)]
    return sweep_main(argv)


async def _serve_demo() -> int:
    """Tiny real-time front-end demo: mixed outcomes from one gather."""
    import asyncio

    from repro.physics.deck import CROOKED_PIPE_DECK
    from repro.service import SolveService

    deck = CROOKED_PIPE_DECK.format(n=12)
    with SolveService(workers=2, quota_rate=50.0, quota_burst=4.0) as svc:
        jobs = [svc.submit(deck, tenant="demo", n=12)
                for _ in range(3)]
        jobs.append(svc.submit(deck, tenant="demo", n=12,
                               deadline_s=1e-4))
        jobs.append(svc.submit("*tea\nbogus=1\n*endtea\n", tenant="demo"))
        outcomes = await asyncio.gather(*jobs)
    for o in outcomes:
        extra = f" [{o.error_class}]" if o.error_class else ""
        print(f"  {o.request_id} {o.status:<17} solver={o.solver or '-':<9} "
              f"iters={o.iterations:<4} {o.latency_s * 1e3:7.1f} ms{extra}")
    statuses = {o.status for o in outcomes}
    ok = statuses <= {"completed", "degraded", "deadline_exceeded",
                      "failed", "shed"} and \
        any(s in ("completed", "degraded") for s in statuses)
    print(f"  demo {'PASS' if ok else 'FAIL'}: statuses={sorted(statuses)}")
    return 0 if ok else 1


def _cmd_report(args) -> int:
    from repro.harness.report import write_report
    paths = write_report(Path(args.out))
    for p in paths:
        print(f"wrote {p}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TeaLeaf reproduction: solvers, mini-app, paper figures")
    sub = parser.add_subparsers(dest="command", required=True)

    p_tea = sub.add_parser("tealeaf", help="run an input deck")
    p_tea.add_argument("--deck", required=True, help="tea.in-style deck file")
    p_tea.add_argument("--ranks", type=int, default=1,
                       help="SPMD world size (thread ranks)")
    p_tea.add_argument("--steps", type=int, default=0,
                       help="override step count (0: from deck end_time)")
    p_tea.add_argument("--show", action="store_true",
                       help="render the final temperature as ASCII")
    p_tea.add_argument("--width", type=int, default=72)
    p_tea.add_argument("--out", default="",
                       help="write the final field to this .npy path")
    p_tea.add_argument("--vtk", default="",
                       help="write the final state to this legacy-VTK path")
    p_tea.add_argument("--checkpoint-dir", default="",
                       help="commit durable checkpoints into this directory "
                            "(overrides the deck's tl_checkpoint_dir)")
    p_tea.add_argument("--checkpoint-interval", type=int, default=0,
                       help="checkpoint every N completed steps "
                            "(overrides the deck's tl_checkpoint_interval)")
    p_tea.add_argument("--comm-timeout", type=float, default=0.0,
                       help="per-attempt receive timeout in seconds "
                            "(deck: tl_comm_timeout; 0: library default)")
    p_tea.set_defaults(func=_cmd_tealeaf)

    p_restart = sub.add_parser(
        "restart", help="resume a run from its newest durable checkpoint")
    p_restart.add_argument("--from", dest="from_dir", required=True,
                           help="checkpoint directory written by a previous "
                                "'repro tealeaf --checkpoint-dir' run")
    p_restart.add_argument("--ranks", type=int, default=0,
                           help="world size (0: from the checkpoint manifest)")
    p_restart.add_argument("--steps", type=int, default=0,
                           help="override the remaining step count "
                                "(0: finish the original run)")
    p_restart.add_argument("--show", action="store_true",
                           help="render the final temperature as ASCII")
    p_restart.add_argument("--width", type=int, default=72)
    p_restart.add_argument("--out", default="",
                           help="write the final field to this .npy path")
    p_restart.set_defaults(func=_cmd_restart)

    p_solve = sub.add_parser("solve",
                             help="one-shot linear solve of a deck's first step")
    p_solve.add_argument("--deck", required=True)
    p_solve.add_argument("--ranks", type=int, default=1)
    p_solve.add_argument("--solver", default="",
                         help="override the deck's solver selection")
    p_solve.add_argument("--halo-depth", type=int, default=0,
                         help="override the matrix-powers halo depth")
    p_solve.add_argument("--dtype", default="",
                         choices=["", "float32", "float64"],
                         help="override the working precision "
                              "(deck: tl_working_dtype)")
    p_solve.add_argument("--true-residual", action="store_true",
                         help="recompute ||b - A x|| after the solve and "
                              "report it next to the recurrence residual")
    p_solve.add_argument("--kernel-backend", default="",
                         choices=["", "numpy", "fused", "numba"],
                         help="kernel backend for the hot paths "
                              "(deck: tl_kernel_backend)")
    p_solve.add_argument("--comm-timeout", type=float, default=0.0,
                         help="per-attempt receive timeout in seconds "
                              "(deck: tl_comm_timeout; 0: library default)")
    p_solve.set_defaults(func=_cmd_solve)

    p_trace = sub.add_parser(
        "trace", help="traced one-shot solve of a deck's first step")
    p_trace.add_argument("--deck", required=True)
    p_trace.add_argument("--ranks", type=int, default=1)
    p_trace.add_argument("--solver", default="",
                         help="override the deck's solver (accepts 'cppcg')")
    p_trace.add_argument("--halo-depth", type=int, default=0,
                         help="override the matrix-powers halo depth")
    p_trace.add_argument("--out", default="results/trace",
                         help="directory for trace.jsonl / trace.chrome.json")
    p_trace.add_argument("--capacity", type=int, default=1 << 16,
                         help="per-rank span ring-buffer bound")
    p_trace.add_argument("--virtual-clock", action="store_true",
                         help="deterministic virtual timestamps "
                              "(byte-identical traces across runs)")
    p_trace.set_defaults(func=_cmd_trace)

    p_fig = sub.add_parser("figure", help="regenerate one paper figure/table")
    p_fig.add_argument("name", choices=["table1", "fig3", "fig4", "fig5",
                                        "fig6", "fig7", "fig8",
                                        "depth-sweep", "future-solvers",
                                        "breakdown"])
    p_fig.set_defaults(func=_cmd_figure)

    p_chaos = sub.add_parser(
        "chaos", help="seeded chaos campaign against the resilient stack")
    p_chaos.add_argument("--seed", type=int, default=20170905)
    p_chaos.add_argument("--trials", type=int, default=200)
    p_chaos.add_argument("--n", type=int, default=12, help="mesh size")
    p_chaos.add_argument("--out", default="results/chaos",
                         help="directory for CHAOS_<n>.json + fixtures/")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_soak = sub.add_parser(
        "soak", help="kill/restart soak under periodic fault storms")
    p_soak.add_argument("--seed", type=int, default=11)
    p_soak.add_argument("--cycles", type=int, default=3)
    p_soak.add_argument("--steps-per-cycle", type=int, default=2)
    p_soak.add_argument("--n", type=int, default=16, help="mesh size")
    p_soak.add_argument("--ranks", type=int, default=2,
                        help="SPMD world size (thread ranks)")
    p_soak.add_argument("--out", default="results/soak",
                        help="directory for checkpoints + SOAK_<n>.json")
    p_soak.add_argument("--service", action="store_true",
                        help="soak the journaled solve service instead: "
                             "SIGKILL/replay cycles -> SOAK_SERVICE_<n>.json")
    p_soak.add_argument("--requests", type=int, default=30,
                        help="service workload size (with --service)")
    p_soak.add_argument("--kill-seed", type=int, default=7,
                        help="seed for SIGKILL points (with --service)")
    p_soak.set_defaults(func=_cmd_soak)

    p_bench = sub.add_parser(
        "bench", help="pinned kernel + solver microbenchmarks -> BENCH_<n>.json")
    p_bench.add_argument("--out", default="results/bench",
                         help="directory for BENCH_<n>.json")
    p_bench.add_argument("--pr", type=int, default=0,
                         help="ledger index (0: next free slot in --out)")
    p_bench.add_argument("--repeats", type=int, default=5,
                         help="timed repeats per case (min is reported)")
    p_bench.add_argument("--quick", action="store_true",
                         help="smallest grid only (CI smoke)")
    p_bench.add_argument("--backends", default="",
                         help="comma-separated backend subset "
                              "(default: all available)")
    p_bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                         help="compare two ledgers (exit 1 on regression) "
                              "instead of running the suite")
    p_bench.add_argument("--threshold", type=float, default=1.25,
                         help="regression ratio for --compare")
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="multi-tenant solve service: deterministic load "
                      "sweep -> SERVICE_<n>.json (or --demo)")
    p_serve.add_argument("--seed", type=int, default=20170905)
    p_serve.add_argument("--requests", type=int, default=200)
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--group-size", type=int, default=2,
                         help="SPMD ranks per worker group")
    p_serve.add_argument("--no-chaos", action="store_true",
                         help="disable fault storms / crashes")
    p_serve.add_argument("--out", default="results/service",
                         help="directory for SERVICE_<n>.json")
    p_serve.add_argument("--index", type=int, default=-1,
                         help="pin the ledger index (-1: next free slot)")
    p_serve.add_argument("--demo", action="store_true",
                         help="run the asyncio front-end demo instead")
    p_serve.set_defaults(func=_cmd_serve)

    p_rep = sub.add_parser("report", help="write all figures/tables to a directory")
    p_rep.add_argument("--out", default="results")
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
