"""Pluggable kernel backends for the solver hot paths.

Registry of :class:`~repro.kernels.base.KernelBackend` implementations:

========  ===========================================================
backend   implementation
========  ===========================================================
numpy     whole-array NumPy; the baseline, extracted verbatim from the
          original operator / halo code (always available)
fused     loop-fused + cache-blocked NumPy (always available)
numba     JIT-compiled serial loops (optional; auto-detected)
========  ===========================================================

Select per solve with ``SolverOptions(kernel_backend=...)`` or the deck
key ``tl_kernel_backend``.  Requesting an unavailable backend raises
:class:`~repro.utils.errors.ConfigurationError` carrying the reason
reported by :func:`backend_status`.
"""

from __future__ import annotations

from repro.kernels import numba_backend
from repro.kernels.base import (KERNEL_STREAMS, REDUCTION_ULP_FACTOR,
                                KernelBackend, reduction_tolerance)
from repro.kernels.fused import FusedBackend
from repro.kernels.numpy_backend import NumpyBackend
from repro.utils.errors import ConfigurationError

#: Every backend name the registry knows about, available or not.
KNOWN_BACKENDS = ("numpy", "fused", "numba")

DEFAULT_BACKEND = "numpy"

_FACTORIES = {
    "numpy": NumpyBackend,
    "fused": FusedBackend,
}


def backend_status() -> dict:
    """Map of backend name -> availability reason ("" when available)."""
    status = {name: "" for name in _FACTORIES}
    status["numba"] = ("" if numba_backend.available()
                       else numba_backend.UNAVAILABLE_REASON)
    return status


def available_backends() -> tuple:
    """Names of backends that :func:`get_backend` will construct."""
    return tuple(name for name in KNOWN_BACKENDS if not backend_status()[name])


def get_backend(name: str) -> KernelBackend:
    """Construct the backend called ``name``.

    Raises ``ConfigurationError`` for unknown names and for known but
    unavailable backends (carrying the skip reason).
    """
    if name in _FACTORIES:
        return _FACTORIES[name]()
    if name == "numba":
        if not numba_backend.available():
            raise ConfigurationError(
                f"kernel backend 'numba' is unavailable: "
                f"{numba_backend.UNAVAILABLE_REASON}")
        return numba_backend.NumbaBackend()  # pragma: no cover
    raise ConfigurationError(
        f"unknown kernel backend {name!r}; known: {', '.join(KNOWN_BACKENDS)}")


__all__ = [
    "KERNEL_STREAMS",
    "REDUCTION_ULP_FACTOR",
    "KernelBackend",
    "NumpyBackend",
    "FusedBackend",
    "KNOWN_BACKENDS",
    "DEFAULT_BACKEND",
    "backend_status",
    "available_backends",
    "get_backend",
    "reduction_tolerance",
]
