"""Loop-fused, cache-blocked kernels (pure NumPy).

Generalizes the data-locality idea behind the ``cg_fused`` prototype
(Kronbichler et al., arXiv 2205.08909): stream each field through cache
**once** per chain instead of once per whole-array NumPy expression.
Two levers:

1. **Row blocking** — every kernel walks the region in row blocks sized
   so the block working set (operands + scratch) fits in L2.  The
   whole-array baseline materialises ~9 full-size temporaries per
   stencil apply; here the temporaries are two reused block-sized
   scratch buffers that stay cache-resident.
2. **Chain fusion** — ``apply_dot`` and ``apply_axpy_dot`` fold the
   trailing dot/axpy into the same block pass, so the freshly computed
   output block is consumed while still hot instead of being written to
   memory and re-read by a separate BLAS-1 sweep.

Equivalence policy (enforced by ``tests/test_kernels_equivalence.py``):
the per-element operation order of every elementwise kernel exactly
mirrors the ``numpy`` baseline, so ``stencil_apply``, ``axpy`` and the
field updates of the fused chains are **bit-identical** for every dtype.
Reductions accumulate block partials (``np.dot`` per block, exact
``math.fsum`` across partials) and therefore reassociate relative to the
baseline's single ``np.dot`` — they match within the documented bound of
:func:`repro.kernels.base.reduction_tolerance`.  Block sizes depend only
on region shape and dtype, so results are deterministic run to run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.numpy_backend import NumpyBackend

#: Target bytes for one block's working set (operands + scratch); sized
#: to sit comfortably inside a typical per-core L2.
_BLOCK_BYTES = 1 << 20

#: Floor on rows per block — below this the per-block Python dispatch
#: overhead dominates any locality win.
_MIN_BLOCK_ROWS = 8


def _block_rows(nrows: int, ncols: int, itemsize: int, streams: int) -> int:
    """Rows per block so ``streams`` arrays of the block fit the target."""
    per_row = max(1, streams * ncols * itemsize)
    return max(_MIN_BLOCK_ROWS, min(nrows, _BLOCK_BYTES // per_row))


class FusedBackend(NumpyBackend):
    """Cache-blocked + chain-fused NumPy kernels."""

    name = "fused"

    # -- blocked stencil core --------------------------------------------------

    @staticmethod
    def _stencil_block(kx, ky, p, b0, b1, c0, c1, acc, tmp):
        """``acc[:] = (A p)[b0:b1, c0:c1]`` using two scratch buffers.

        The operation sequence replays the baseline expression exactly
        per element (IEEE addition is commutative, so ``ky_hi + 1.0``
        equals the baseline's ``1.0 + ky_hi`` bit for bit).
        """
        pc = p[b0:b1, c0:c1]
        ky_lo = ky[b0:b1, c0:c1]
        ky_hi = ky[b0 + 1:b1 + 1, c0:c1]
        kx_lo = kx[b0:b1, c0:c1]
        kx_hi = kx[b0:b1, c0:c1 + 1]
        np.add(ky_hi, 1.0, out=acc)
        np.add(acc, ky_lo, out=acc)
        np.add(acc, kx_hi[:, 1:], out=acc)
        np.add(acc, kx_lo, out=acc)
        np.multiply(acc, pc, out=acc)
        np.multiply(ky_hi, p[b0 + 1:b1 + 1, c0:c1], out=tmp)
        np.subtract(acc, tmp, out=acc)
        np.multiply(ky_lo, p[b0 - 1:b1 - 1, c0:c1], out=tmp)
        np.subtract(acc, tmp, out=acc)
        np.multiply(kx_hi[:, 1:], p[b0:b1, c0 + 1:c1 + 1], out=tmp)
        np.subtract(acc, tmp, out=acc)
        np.multiply(kx_lo, p[b0:b1, c0 - 1:c1 - 1], out=tmp)
        np.subtract(acc, tmp, out=acc)

    def _scratch(self, rows: int, cols: int, dtype) -> tuple:
        acc = np.empty((rows, cols), dtype=dtype)
        tmp = np.empty((rows, cols), dtype=dtype)
        return acc, tmp

    # -- stencil chains --------------------------------------------------------

    def stencil_apply(self, kx, ky, p, out, r0, r1, c0, c1):
        w = c1 - c0
        bs = _block_rows(r1 - r0, w, p.itemsize, streams=6)
        acc, tmp = self._scratch(bs, w, out.dtype)
        for b0 in range(r0, r1, bs):
            b1 = min(b0 + bs, r1)
            h = b1 - b0
            self._stencil_block(kx, ky, p, b0, b1, c0, c1, acc[:h], tmp[:h])
            out[b0:b1, c0:c1] = acc[:h]

    def apply_dot(self, kx, ky, p, out, r0, r1, c0, c1):
        w = c1 - c0
        bs = _block_rows(r1 - r0, w, p.itemsize, streams=7)
        acc, tmp = self._scratch(bs, w, out.dtype)
        partials = []
        for b0 in range(r0, r1, bs):
            b1 = min(b0 + bs, r1)
            h = b1 - b0
            self._stencil_block(kx, ky, p, b0, b1, c0, c1, acc[:h], tmp[:h])
            out[b0:b1, c0:c1] = acc[:h]
            # The dot consumes the scratch block (contiguous, cache-hot)
            # rather than re-reading the strided slice just written.
            partials.append(float(np.dot(p[b0:b1, c0:c1].ravel(),
                                         acc[:h].ravel())))
        return math.fsum(partials)

    def apply_axpy_dot(self, kx, ky, p, out, y, alpha, r0, r1, c0, c1):
        w = c1 - c0
        bs = _block_rows(r1 - r0, w, p.itemsize, streams=8)
        acc, tmp = self._scratch(bs, w, out.dtype)
        partials = []
        for b0 in range(r0, r1, bs):
            b1 = min(b0 + bs, r1)
            h = b1 - b0
            self._stencil_block(kx, ky, p, b0, b1, c0, c1, acc[:h], tmp[:h])
            out[b0:b1, c0:c1] = acc[:h]
            yb = y[b0:b1, c0:c1]
            np.multiply(acc[:h], alpha, out=tmp[:h])
            np.add(yb, tmp[:h], out=yb)
            partials.append(float(np.dot(yb.ravel(), yb.ravel())))
        return math.fsum(partials)

    # -- BLAS-1 tail -----------------------------------------------------------

    def dot(self, a, b):
        nrows = a.shape[0]
        bs = _block_rows(nrows, a.shape[-1], a.itemsize, streams=2)
        if bs >= nrows:
            return float(np.dot(a.ravel(), b.ravel()))
        partials = [float(np.dot(a[b0:b0 + bs].ravel(),
                                 b[b0:b0 + bs].ravel()))
                    for b0 in range(0, nrows, bs)]
        return math.fsum(partials)

    def axpy(self, y, alpha, x):
        nrows = y.shape[0]
        bs = _block_rows(nrows, y.shape[-1], y.itemsize, streams=3)
        if bs >= nrows:
            y += alpha * x
            return
        tmp = np.empty((bs,) + y.shape[1:], dtype=y.dtype)
        for b0 in range(0, nrows, bs):
            b1 = min(b0 + bs, nrows)
            h = b1 - b0
            np.multiply(x[b0:b1], alpha, out=tmp[:h])
            yb = y[b0:b1]
            np.add(yb, tmp[:h], out=yb)

    def norm(self, a):
        return math.sqrt(self.dot(a, a))
