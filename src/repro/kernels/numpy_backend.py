"""The ``numpy`` baseline backend.

These bodies are the repository's original hot-path implementations,
extracted verbatim from :meth:`repro.solvers.operator.StencilOperator2D.
apply_noexchange`, :meth:`repro.mesh.field.Field.local_dot` and the halo
exchanger's pack/unpack sites.  Every other backend is proven against
this one by the differential battery, so its results define the
reference bit patterns.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelBackend


class NumpyBackend(KernelBackend):
    """Whole-array NumPy kernels (the pre-``repro.kernels`` behaviour)."""

    name = "numpy"

    # -- stencil chains --------------------------------------------------------

    def stencil_apply(self, kx, ky, p, out, r0, r1, c0, c1):
        pc = p[r0:r1, c0:c1]
        ky_lo = ky[r0:r1, c0:c1]
        ky_hi = ky[r0 + 1:r1 + 1, c0:c1]
        kx_lo = kx[r0:r1, c0:c1]
        kx_hi = kx[r0:r1, c0 + 1:c1 + 1]
        out[r0:r1, c0:c1] = (
            (1.0 + ky_hi + ky_lo + kx_hi + kx_lo) * pc
            - ky_hi * p[r0 + 1:r1 + 1, c0:c1]
            - ky_lo * p[r0 - 1:r1 - 1, c0:c1]
            - kx_hi * p[r0:r1, c0 + 1:c1 + 1]
            - kx_lo * p[r0:r1, c0 - 1:c1 - 1]
        )

    def apply_dot(self, kx, ky, p, out, r0, r1, c0, c1):
        self.stencil_apply(kx, ky, p, out, r0, r1, c0, c1)
        return float(np.dot(p[r0:r1, c0:c1].ravel(),
                            out[r0:r1, c0:c1].ravel()))

    def apply_axpy_dot(self, kx, ky, p, out, y, alpha, r0, r1, c0, c1):
        self.stencil_apply(kx, ky, p, out, r0, r1, c0, c1)
        yr = y[r0:r1, c0:c1]
        yr += alpha * out[r0:r1, c0:c1]
        return float(np.dot(yr.ravel(), yr.ravel()))

    # -- BLAS-1 tail -----------------------------------------------------------

    def dot(self, a, b):
        return float(np.dot(a.ravel(), b.ravel()))

    def axpy(self, y, alpha, x):
        y += alpha * x

    def norm(self, a):
        return float(np.sqrt(self.dot(a, a)))

    # -- halo pack/unpack ------------------------------------------------------

    def pack_halo(self, a, rows, cols):
        return np.ascontiguousarray(a[rows, cols])

    def unpack_halo(self, a, rows, cols, buf):
        a[rows, cols] = buf
