"""Optional ``numba`` backend — JIT-compiled serial loops.

Auto-detected: availability is probed via ``importlib.util.find_spec``
(cheap, no import cost) and the heavy ``numba`` import plus JIT
compilation are deferred until the backend is first instantiated.  When
numba is not installed the registry reports the backend as unavailable
with a human-readable reason and :func:`repro.kernels.get_backend`
raises ``ConfigurationError`` — nothing else in the package imports
numba, so the absence is a clean skip, never an ImportError.

Numerical policy: the stencil loop evaluates the baseline expression in
the same per-element operation order (with the ``1.0`` constant cast to
the array dtype so float32 arithmetic stays float32), so elementwise
results are bit-identical to the ``numpy`` backend.  Reductions
accumulate serially in float64 and fall under the documented
reassociation bound of :func:`repro.kernels.base.reduction_tolerance`.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.kernels.numpy_backend import NumpyBackend


def available() -> bool:
    """True when the numba package can be imported."""
    return importlib.util.find_spec("numba") is not None


UNAVAILABLE_REASON = "numba is not installed (pip install 'repro[numba]')"

_jitted = None


def _compile():  # pragma: no cover - requires numba
    """Import numba and build the jitted kernel set (once)."""
    global _jitted
    if _jitted is not None:
        return _jitted
    import numba

    @numba.njit(cache=True)
    def stencil(kx, ky, p, out, r0, r1, c0, c1, one):
        for k in range(r0, r1):
            for j in range(c0, c1):
                ky_hi = ky[k + 1, j]
                ky_lo = ky[k, j]
                kx_hi = kx[k, j + 1]
                kx_lo = kx[k, j]
                out[k, j] = (
                    (one + ky_hi + ky_lo + kx_hi + kx_lo) * p[k, j]
                    - ky_hi * p[k + 1, j]
                    - ky_lo * p[k - 1, j]
                    - kx_hi * p[k, j + 1]
                    - kx_lo * p[k, j - 1]
                )

    @numba.njit(cache=True)
    def stencil_dot(kx, ky, p, out, r0, r1, c0, c1, one):
        acc = 0.0
        for k in range(r0, r1):
            for j in range(c0, c1):
                ky_hi = ky[k + 1, j]
                ky_lo = ky[k, j]
                kx_hi = kx[k, j + 1]
                kx_lo = kx[k, j]
                w = (
                    (one + ky_hi + ky_lo + kx_hi + kx_lo) * p[k, j]
                    - ky_hi * p[k + 1, j]
                    - ky_lo * p[k - 1, j]
                    - kx_hi * p[k, j + 1]
                    - kx_lo * p[k, j - 1]
                )
                out[k, j] = w
                acc += np.float64(p[k, j]) * np.float64(w)
        return acc

    @numba.njit(cache=True)
    def stencil_axpy_dot(kx, ky, p, out, y, alpha, r0, r1, c0, c1, one):
        acc = 0.0
        for k in range(r0, r1):
            for j in range(c0, c1):
                ky_hi = ky[k + 1, j]
                ky_lo = ky[k, j]
                kx_hi = kx[k, j + 1]
                kx_lo = kx[k, j]
                w = (
                    (one + ky_hi + ky_lo + kx_hi + kx_lo) * p[k, j]
                    - ky_hi * p[k + 1, j]
                    - ky_lo * p[k - 1, j]
                    - kx_hi * p[k, j + 1]
                    - kx_lo * p[k, j - 1]
                )
                out[k, j] = w
                yv = y[k, j] + alpha * w
                y[k, j] = yv
                acc += np.float64(yv) * np.float64(yv)
        return acc

    @numba.njit(cache=True)
    def dot2(a, b):
        acc = 0.0
        fa = a.ravel()
        fb = b.ravel()
        for i in range(fa.size):
            acc += np.float64(fa[i]) * np.float64(fb[i])
        return acc

    @numba.njit(cache=True)
    def axpy2(y, alpha, x):
        fy = y.reshape(-1)
        fx = x.reshape(-1)
        for i in range(fy.size):
            fy[i] = fy[i] + alpha * fx[i]

    _jitted = (stencil, stencil_dot, stencil_axpy_dot, dot2, axpy2)
    return _jitted


class NumbaBackend(NumpyBackend):  # pragma: no cover - requires numba
    """Serial JIT loops; elementwise order matches the baseline."""

    name = "numba"

    def __init__(self) -> None:
        (self._stencil, self._stencil_dot, self._stencil_axpy_dot,
         self._dot, self._axpy) = _compile()

    @staticmethod
    def _one(a):
        return a.dtype.type(1.0)

    def stencil_apply(self, kx, ky, p, out, r0, r1, c0, c1):
        self._stencil(kx, ky, p, out, r0, r1, c0, c1, self._one(p))

    def apply_dot(self, kx, ky, p, out, r0, r1, c0, c1):
        return float(self._stencil_dot(kx, ky, p, out, r0, r1, c0, c1,
                                       self._one(p)))

    def apply_axpy_dot(self, kx, ky, p, out, y, alpha, r0, r1, c0, c1):
        return float(self._stencil_axpy_dot(
            kx, ky, p, out, y, y.dtype.type(alpha), r0, r1, c0, c1,
            self._one(p)))

    def dot(self, a, b):
        return float(self._dot(np.ascontiguousarray(a),
                               np.ascontiguousarray(b)))

    def axpy(self, y, alpha, x):
        if y.flags.c_contiguous and x.flags.c_contiguous:
            self._axpy(y, y.dtype.type(alpha), x)
        else:
            y += alpha * x

    def norm(self, a):
        return float(np.sqrt(self.dot(a, a)))
