"""The pluggable kernel interface behind the hot paths.

Every computational kernel of the solver family — the 5-point stencil
apply (paper Listing 1), the fused apply+dot and apply+axpy+dot chains,
halo pack/unpack, and the BLAS-1 tail (dot/axpy/norm) — is routed through
a :class:`KernelBackend`.  Backends operate on **raw padded arrays plus
explicit loop bounds** so implementations are free to block, fuse or JIT
without knowing anything about :class:`~repro.mesh.field.Field`,
communicators or tracing; all of that stays in the operator layer.

Loop-bound convention: ``(r0, r1, c0, c1)`` are *padded-array* indices of
the region to compute (``rows = r0:r1``, ``cols = c0:c1``), exactly the
slices returned by :meth:`repro.mesh.field.Field.region`.  The stencil
reads one extra ring (``r0-1 .. r1`` / ``c0-1 .. c1``), which the caller
guarantees is valid (a fresh halo).

Numerical policy (see ``docs/kernels.md``):

- **fp-order-preserving kernels** — ``stencil_apply``, ``axpy``, the
  field updates of ``apply_axpy_dot``, ``pack_halo``/``unpack_halo`` —
  must match the ``numpy`` baseline **bit for bit** for every dtype.
  They are elementwise, so blocking/JIT cannot change results as long as
  the per-element operation order is preserved.
- **reductions** — ``dot``, ``norm`` and the scalar returned by
  ``apply_dot``/``apply_axpy_dot`` — may reassociate (blocked partial
  sums, JIT accumulation loops) and must agree with the baseline within
  the documented bound ``|d - d_ref| <= 64 * eps(dtype) * sum_i |a_i b_i|``.

The equivalence battery (``tests/test_kernels_equivalence.py``) enforces
both halves differentially against the ``numpy`` backend for every
registered backend; no backend ships without it.
"""

from __future__ import annotations

import numpy as np

#: Per-kernel minimum achievable memory streams (arrays read + written
#: once per cell), used by the bench ledger's modelled ``bytes_moved``:
#: ``bytes = streams * cells * itemsize``.  The stencil kernels count
#: ``p``/``kx``/``ky`` reads and the ``out`` write; the fused chains add
#: the extra operand streamed (``y`` read+write for the axpy tail) but
#: *not* re-reads the fusion exists to avoid.
KERNEL_STREAMS = {
    "stencil_apply": 4,
    "apply_dot": 4,
    "apply_axpy_dot": 6,
    "dot": 2,
    "axpy": 3,
    "norm": 1,
    "pack_halo": 2,
    "unpack_halo": 2,
}

#: Documented reduction-reassociation bound multiplier (ULP policy).
REDUCTION_ULP_FACTOR = 64.0


def reduction_tolerance(a: np.ndarray, b: np.ndarray) -> float:
    """The documented bound on ``|dot(a, b) - dot_ref(a, b)|``.

    ``64 * eps(dtype) * sum|a_i b_i|`` — a forward-error envelope wide
    enough to cover any two summation orders (pairwise, blocked partials,
    serial JIT loops) at the sizes the solvers use, yet ~10 orders of
    magnitude below the quantities the solvers compare.
    """
    eps = float(np.finfo(np.result_type(a.dtype, b.dtype)).eps)
    weight = float(np.sum(np.abs(a.astype(np.float64, copy=False)
                                 * b.astype(np.float64, copy=False))))
    return REDUCTION_ULP_FACTOR * eps * max(weight, 1e-300)


class KernelBackend:
    """Abstract kernel set.  Subclasses implement every method.

    Backends must be stateless with respect to results (scratch buffers
    are fine); one instance may be shared by an operator and its halo
    exchanger.
    """

    #: Registry name (``"numpy"`` / ``"fused"`` / ``"numba"``).
    name = "?"

    # -- stencil chains --------------------------------------------------------

    def stencil_apply(self, kx: np.ndarray, ky: np.ndarray, p: np.ndarray,
                      out: np.ndarray, r0: int, r1: int, c0: int, c1: int,
                      ) -> None:
        """``out[R] = (A p)[R]`` (paper Listing 1) on region ``R``."""
        raise NotImplementedError

    def apply_dot(self, kx: np.ndarray, ky: np.ndarray, p: np.ndarray,
                  out: np.ndarray, r0: int, r1: int, c0: int, c1: int,
                  ) -> float:
        """``out[R] = (A p)[R]``; returns the local ``<p, A p>`` over ``R``.

        The fusion CG's matvec+direction-dot chain streams through: one
        pass over ``p``/``kx``/``ky`` instead of re-reading ``p`` and
        ``out`` for the dot.
        """
        raise NotImplementedError

    def apply_axpy_dot(self, kx: np.ndarray, ky: np.ndarray, p: np.ndarray,
                       out: np.ndarray, y: np.ndarray, alpha: float,
                       r0: int, r1: int, c0: int, c1: int) -> float:
        """``out[R] = (A p)[R]; y[R] += alpha * out[R]``; returns local
        ``<y, y>`` over ``R``.

        With ``y`` pre-loaded with ``b`` and ``alpha = -1`` this is the
        fused residual + convergence-norm chain of Jacobi (and of the
        solvers' true-residual checks): ``y = b - A p`` and ``<y, y>`` in
        one streaming pass.
        """
        raise NotImplementedError

    # -- BLAS-1 tail -----------------------------------------------------------

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Local dot product of two (2D view) arrays."""
        raise NotImplementedError

    def axpy(self, y: np.ndarray, alpha: float, x: np.ndarray) -> None:
        """``y += alpha * x`` in place (bit-identical to the baseline)."""
        raise NotImplementedError

    def norm(self, a: np.ndarray) -> float:
        """Local 2-norm ``sqrt(<a, a>)``."""
        raise NotImplementedError

    # -- halo pack/unpack ------------------------------------------------------

    def pack_halo(self, a: np.ndarray, rows: slice, cols: slice) -> np.ndarray:
        """Contiguous copy of ``a[rows, cols]`` ready to send."""
        raise NotImplementedError

    def unpack_halo(self, a: np.ndarray, rows: slice, cols: slice,
                    buf: np.ndarray) -> None:
        """``a[rows, cols] = buf`` (received payload into ghost cells)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelBackend {self.name}>"
