"""Iterative sparse linear solvers over the matrix-free stencil operator.

The design space the paper explores:

- :func:`~repro.solvers.jacobi.jacobi_solve` — point Jacobi relaxation,
- :func:`~repro.solvers.cg.cg_solve` — (preconditioned) conjugate gradients,
- :func:`~repro.solvers.chebyshev.chebyshev_solve` — Chebyshev iteration
  (needs a-priori eigenvalue bounds; no dot products per iteration),
- :func:`~repro.solvers.ppcg.ppcg_solve` — **CPPCG**, CG preconditioned by a
  shifted/scaled Chebyshev polynomial: the paper's communication-avoiding
  contribution, optionally combined with the matrix powers kernel
  (``halo_depth`` > 1) so inner iterations exchange a deep halo once per
  ``halo_depth`` stencil applications.

Plus the supporting machinery: the matrix-free operator (Listing 1),
eigenvalue estimation from the CG Lanczos recurrence, and the local
preconditioners (diagonal Jacobi, 4x1-strip block Jacobi via the Thomas
algorithm).
"""

from repro.solvers.operator import StencilOperator2D, embed_global
from repro.solvers.operator3d import DistributedOperator3D, embed_global_3d
from repro.solvers.result import SolveResult
from repro.solvers.eigen import (
    EigenBounds,
    lanczos_tridiagonal,
    estimate_eigenvalues,
    chebyshev_epsilon,
    iteration_bounds,
    IterationBounds,
)
from repro.solvers.preconditioners import (
    Preconditioner,
    IdentityPreconditioner,
    DiagonalPreconditioner,
    BlockJacobiPreconditioner,
    make_local_preconditioner,
)
from repro.solvers.cg import cg_solve
from repro.solvers.cg_fused import cg_fused_solve
from repro.solvers.deflation import DeflationSpace, deflated_cg_solve
from repro.solvers.jacobi import jacobi_solve
from repro.solvers.chebyshev import ChebyshevPreconditioner, chebyshev_solve
from repro.solvers.ppcg import ppcg_solve
from repro.solvers.options import SolverOptions
from repro.solvers.driver import solve_linear

__all__ = [
    "StencilOperator2D",
    "embed_global",
    "DistributedOperator3D",
    "embed_global_3d",
    "SolveResult",
    "EigenBounds",
    "lanczos_tridiagonal",
    "estimate_eigenvalues",
    "chebyshev_epsilon",
    "iteration_bounds",
    "IterationBounds",
    "Preconditioner",
    "IdentityPreconditioner",
    "DiagonalPreconditioner",
    "BlockJacobiPreconditioner",
    "make_local_preconditioner",
    "cg_solve",
    "cg_fused_solve",
    "DeflationSpace",
    "deflated_cg_solve",
    "jacobi_solve",
    "ChebyshevPreconditioner",
    "chebyshev_solve",
    "ppcg_solve",
    "SolverOptions",
    "solve_linear",
]
