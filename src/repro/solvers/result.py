"""Solve outcome record shared by all solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mesh.field import Field
from repro.utils.events import EventLog


@dataclass
class SolveResult:
    """Outcome of one linear solve.

    Attributes
    ----------
    x:
        The solution field (interior valid).
    solver:
        Solver name (``"cg"``, ``"ppcg"``, ...).
    converged:
        Whether the tolerance was met within the iteration budget.
    iterations:
        Outer iterations performed (CG steps, Chebyshev steps, ...).
    inner_iterations:
        Total preconditioner inner steps (CPPCG Chebyshev applications);
        zero for solvers without an inner loop.
    residual_norm / initial_residual_norm:
        Global 2-norms of the final and initial residuals.
    history:
        Residual norm per convergence check (including the initial one).
    eigen_bounds:
        ``(lambda_min, lambda_max)`` estimates used, when applicable.
    warmup_iterations:
        CG iterations spent estimating eigenvalues (PPCG/Chebyshev).
    events:
        The event log accumulated during the solve (communication and
        kernel counts); shared with the operator.
    """

    x: Field
    solver: str
    converged: bool
    iterations: int
    residual_norm: float
    initial_residual_norm: float
    inner_iterations: int = 0
    warmup_iterations: int = 0
    history: list = field(default_factory=list)
    eigen_bounds: tuple | None = None
    events: EventLog | None = None
    #: Global 2-norm of the *true* residual ``b - A x`` (recomputed after
    #: the solve, under the replacement event scope) — None unless the
    #: solve requested it (``SolverOptions.true_residual``) or came
    #: through iterative refinement, whose defect norm is the true
    #: residual by construction.  ``residual_norm`` above is the
    #: *recurrence* residual, which can drift in finite precision.
    true_residual_norm: float | None = None

    @property
    def relative_residual(self) -> float:
        if self.initial_residual_norm == 0.0:
            return 0.0
        return self.residual_norm / self.initial_residual_norm

    @property
    def true_relative_residual(self) -> float | None:
        """True residual relative to the initial norm (None when unmeasured)."""
        if self.true_residual_norm is None:
            return None
        if self.initial_residual_norm == 0.0:
            return 0.0
        return self.true_residual_norm / self.initial_residual_norm

    @property
    def total_iterations(self) -> int:
        """Outer + inner + warm-up iterations (~ matvec count)."""
        return self.iterations + self.inner_iterations + self.warmup_iterations

    def summary(self) -> str:
        text = (f"{self.solver}: {'converged' if self.converged else 'NOT converged'} "
                f"in {self.iterations} outer + {self.inner_iterations} inner "
                f"(+{self.warmup_iterations} warm-up) iterations, "
                f"relative residual {self.relative_residual:.3e}")
        if self.true_residual_norm is not None:
            text += f" (true {self.true_relative_residual:.3e})"
        return text
