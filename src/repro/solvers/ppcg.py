"""CPPCG: Chebyshev polynomially preconditioned conjugate gradients.

The paper's communication-avoiding solver (§III).  Structure:

1. **Warm-up** — ``warmup_iters`` of plain (P)CG, recording the recurrence
   coefficients; the Lanczos tridiagonal built from them yields estimates
   of the extreme eigenvalues (§III-D).
2. **Switch-over** — continue from the warm-up iterate with PCG whose
   preconditioner applies ``inner_steps`` Chebyshev steps per outer
   iteration (:class:`~repro.solvers.chebyshev.ChebyshevPreconditioner`).

Per *outer* iteration CPPCG pays the same two allreduces as CG but performs
``inner_steps + 1`` stencil applications, so the global-communication count
drops by roughly ``sqrt(kappa_cg / kappa_pcg)`` (Eqs. 6-7) while the matvec count is
unchanged — a trade that wins exactly where the paper's strong-scaling
study shows it: at high node counts where allreduce latency dominates.

With ``halo_depth = n > 1`` the inner iterations additionally use the
matrix powers kernel: one ``n``-deep halo exchange per ``n`` inner steps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.mesh.field import Field
from repro.solvers.cg import cg_solve
from repro.solvers.chebyshev import ChebyshevPreconditioner
from repro.solvers.eigen import (
    EigenBounds,
    estimate_eigenvalues,
    iteration_bounds,
)
from repro.solvers.operator import StencilOperator2D
from repro.solvers.preconditioners import make_local_preconditioner
from repro.solvers.result import SolveResult
from repro.utils.errors import (
    CommunicationError,
    ConfigurationError,
    ConvergenceError,
    stall_error,
)
from repro.utils.validation import check_finite_field, check_positive

if TYPE_CHECKING:
    from repro.resilience.guard import SolverGuard

#: Machine-checked communication budget (see ``repro.analysis``).  CPPCG's
#: outer loop *is* ``cg_solve`` running with the Chebyshev preconditioner,
#: so the static per-iteration budget is enforced in
#: :mod:`repro.solvers.cg` (``delegates_to``); this contract declares the
#: outer budget the dynamic verifier checks: the same two allreduces as
#: CG, one outer matvec exchange, plus one exchange per inner Chebyshev
#: step — amortised to ``ceil(inner_steps / halo_depth)`` per outer
#: iteration by the matrix powers kernel.
COMM_CONTRACT = {
    "solver": "ppcg",
    "halo_exchanges_per_iter": 1,
    "allreduces_per_iter": 2,
    "halo_exchanges_per_inner_step": 1,
    "halo_depth": 1,
    "hot_function": None,
    "delegates_to": "repro.solvers.cg",
}


def ppcg_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    eps: float = 1e-10,
    max_iters: int = 10_000,
    inner_steps: int = 10,
    halo_depth: int = 1,
    warmup_iters: int = 25,
    eigen_safety: tuple[float, float] = (0.95, 1.05),
    inner_preconditioner: str = "none",
    bounds: EigenBounds | None = None,
    adaptive: bool = False,
    max_restarts: int = 2,
    raise_on_stall: bool = False,
    guard: "SolverGuard | None" = None,
    degrade: bool = False,
    abft_interval: int = 0,
    abft_tolerance: float = 1e-6,
    replace_interval: int = 0,
    replace_adaptive: bool = False,
    replace_tolerance: float = 0.0,
    stagnation_window: int = 0,
    cancel=None,
) -> SolveResult:
    """Solve ``A x = b`` with CPPCG.

    Parameters
    ----------
    inner_steps:
        Chebyshev polynomial degree ``m`` applied per outer iteration
        (TeaLeaf ``tl_ppcg_inner_steps``).
    halo_depth:
        Matrix-powers halo depth ``n`` for the inner iterations; the paper
        evaluates 1/4/8/16.  Requires operator fields with halo >= n.
    warmup_iters:
        Plain CG iterations used for eigenvalue estimation before the
        switch-over.
    inner_preconditioner:
        Local preconditioner applied inside the Chebyshev inner steps
        (``none``/``diagonal``; ``block_jacobi`` only with halo depth 1).
    bounds:
        Skip estimation and use these eigenvalue bounds directly.
    adaptive:
        Robust mode (paper §VIII asks whether "these simpler methods can
        cope with extreme condition numbers robustly"): when the outer
        iteration stalls or breaks down — typically because the estimated
        ``lam_max`` undershot the spectrum and the Chebyshev polynomial
        lost positive-definiteness — re-run a short CG from the current
        iterate, re-estimate with widened safety factors, and restart, up
        to ``max_restarts`` times.
    raise_on_stall:
        Raise :class:`ConvergenceError` (with solver name, final relative
        residual and iteration count) instead of returning an unconverged
        result when the budget is exhausted.
    guard:
        Optional :class:`~repro.resilience.guard.SolverGuard`, threaded
        through to every inner ``cg_solve`` phase (warm-up, outer,
        re-warm-up) for checkpoint/rollback recovery.
    abft_interval, abft_tolerance:
        Periodic ABFT residual-replay check threaded through to every
        ``cg_solve`` phase (see :func:`~repro.solvers.cg.cg_solve`) —
        particularly valuable here, where the fused inner/outer structure
        lets undetected corruption propagate across ``inner_steps``
        stencil applications before any residual check sees it.
    replace_interval / replace_adaptive / replace_tolerance:
        Residual replacement for the Chebyshev-preconditioned outer phase
        (and the plain-CG fallback), see :func:`~repro.solvers.cg.cg_solve`.
        Deep matrix-powers inner steps are exactly where the recurrence
        residual drifts from the true residual, so this is the knob that
        lets depth-16 CPPCG converge to the same *true*-residual tolerance
        as depth-1.
    stagnation_window:
        Breakdown-guard stagnation window threaded to every CG phase
        (0 disables).
    degrade:
        Graceful degradation: fall back to *plain CG* when the Chebyshev
        preconditioner is unusable (invalid/non-finite spectrum bounds,
        or breakdown persisting after ``max_restarts``), and fall back to
        ``halo_depth = 1`` when the matrix-powers deep exchanges keep
        failing with :class:`CommunicationError`.  A degraded result
        carries ``result.degraded = True`` and ``result.degraded_reason``.
    """
    check_positive("inner_steps", inner_steps)
    check_positive("warmup_iters", warmup_iters)
    check_finite_field("b", b)
    check_finite_field("x0", x0)
    if not 1 <= halo_depth <= op.halo:
        raise ConfigurationError(
            f"halo_depth {halo_depth} requires operator halo >= {halo_depth}, "
            f"got {op.halo}")
    if inner_preconditioner == "block_jacobi" and halo_depth > 1:
        raise ConfigurationError(
            "block Jacobi cannot be combined with matrix powers "
            "(halo_depth > 1); see paper §IV-C2")

    local_M = make_local_preconditioner(op, inner_preconditioner)
    from repro.observe.trace import tracer_of
    tracer = tracer_of(op)
    with tracer.span("phase", "warmup"):
        warmup = cg_solve(op, b, x0, eps=eps, max_iters=warmup_iters,
                          preconditioner=local_M, solver_name="ppcg",
                          guard=guard, abft_interval=abft_interval,
                          abft_tolerance=abft_tolerance, cancel=cancel)
    if warmup.converged:
        warmup.warmup_iterations = warmup.iterations
        warmup.iterations = 0
        warmup.restarts = 0
        return warmup
    if bounds is None:
        bounds = estimate_eigenvalues(warmup.alphas, warmup.betas,
                                      safety=eigen_safety)

    reference = warmup.initial_residual_norm
    extra_warmup = 0
    history_prefix = list(warmup.history)
    current_x = warmup.x
    restarts = 0
    budget = max_iters
    outer = None
    safety = eigen_safety
    depth = halo_depth
    # When set, the Chebyshev machinery is unusable and the remaining
    # budget is spent on plain CG (graceful degradation, ``degrade=True``).
    cg_reason: str | None = None

    if degrade and _invalid_bounds(bounds):
        cg_reason = ("invalid spectrum bounds "
                     f"[{bounds.lam_min:.3e}, {bounds.lam_max:.3e}]")

    while cg_reason is None:
        cheby = ChebyshevPreconditioner(
            op, bounds, steps=inner_steps, halo_depth=depth,
            inner_preconditioner=inner_preconditioner)
        # Stall detection window: Eq. 7 predicts the outer iteration count
        # *if the bounds are right*; exceeding it by 4x means they are not.
        chunk = max(budget, 1)
        if adaptive and restarts < max_restarts:
            predicted = iteration_bounds(bounds, inner_steps,
                                         tolerance=eps).k_outer
            chunk = min(chunk, int(4 * predicted) + 20)
        breakdown: ConvergenceError | None = None
        try:
            with tracer.span("phase", "outer"):
                outer = cg_solve(
                    op, b, current_x,
                    eps=eps,
                    max_iters=chunk,
                    preconditioner=cheby,
                    reference_norm=reference,
                    solver_name="ppcg",
                    guard=guard,
                    abft_interval=abft_interval,
                    abft_tolerance=abft_tolerance,
                    replace_interval=replace_interval,
                    replace_adaptive=replace_adaptive,
                    replace_tolerance=replace_tolerance,
                    stagnation_window=stagnation_window,
                    cancel=cancel,
                )
        except CommunicationError:
            if degrade and depth > 1:
                # The deep exchanges of the matrix powers kernel keep
                # failing (retries exhausted): trade the communication
                # saving for plain depth-1 inner steps and press on.
                depth = 1
                continue
            raise
        except ConfigurationError as exc:
            # Chebyshev rejected its spectrum bounds (delta <= 0).
            if degrade:
                cg_reason = f"chebyshev preconditioner unusable: {exc}"
                break
            raise
        except ConvergenceError as exc:
            if not adaptive:
                if degrade:
                    cg_reason = f"chebyshev-preconditioned CG broke down: {exc}"
                    break
                raise
            breakdown = exc
        if breakdown is None:
            history_prefix += outer.history[1:]
            budget -= outer.iterations
            current_x = outer.x
            if outer.converged or not adaptive or budget <= 0 \
                    or restarts >= max_restarts:
                break
        elif restarts >= max_restarts:
            if degrade:
                cg_reason = (f"breakdown persists after {restarts} "
                             f"restart(s): {breakdown}")
                break
            raise breakdown

        # Restart: widen the interval and re-estimate from where we are.
        restarts += 1
        safety = (safety[0] * 0.85, safety[1] * 1.25)
        with tracer.span("phase", "rewarm"):
            rewarm = cg_solve(op, b, current_x, eps=eps,
                              max_iters=warmup_iters,
                              reference_norm=reference, solver_name="ppcg",
                              guard=guard, abft_interval=abft_interval,
                              abft_tolerance=abft_tolerance, cancel=cancel)
        extra_warmup += rewarm.iterations
        history_prefix += rewarm.history[1:]
        current_x = rewarm.x
        if rewarm.converged:
            outer = rewarm
            outer.iterations = 0
            break
        bounds = estimate_eigenvalues(rewarm.alphas, rewarm.betas,
                                      safety=safety)
        if degrade and _invalid_bounds(bounds):
            cg_reason = ("re-estimated spectrum bounds invalid "
                         f"[{bounds.lam_min:.3e}, {bounds.lam_max:.3e}]")
            break

    if cg_reason is not None:
        # Graceful degradation: finish the solve with plain CG — slower,
        # but immune to bad spectrum bounds (the stopping criterion is
        # unchanged: same eps against the same reference norm).
        with tracer.span("phase", "fallback_cg"):
            outer = cg_solve(op, b, current_x, eps=eps,
                             max_iters=max(budget, 1),
                             reference_norm=reference, solver_name="ppcg",
                             guard=guard, abft_interval=abft_interval,
                             abft_tolerance=abft_tolerance,
                             replace_interval=replace_interval,
                             replace_adaptive=replace_adaptive,
                             replace_tolerance=replace_tolerance,
                             stagnation_window=stagnation_window,
                             cancel=cancel)
        history_prefix += outer.history[1:]
        current_x = outer.x

    outer.x = current_x
    outer.warmup_iterations = warmup.iterations + extra_warmup
    outer.history = history_prefix
    outer.eigen_bounds = (bounds.lam_min, bounds.lam_max)
    outer.restarts = restarts
    outer.degraded = cg_reason is not None or depth != halo_depth
    if cg_reason is not None:
        outer.degraded_reason = f"fell back to plain CG: {cg_reason}"
    elif depth != halo_depth:
        outer.degraded_reason = (f"matrix-powers halo depth fell back "
                                 f"{halo_depth} -> 1 after repeated "
                                 "communication failures")
    if raise_on_stall and not outer.converged:
        raise stall_error("ppcg", len(outer.history) - 1,
                          outer.residual_norm, reference, eps, result=outer)
    return outer


def _invalid_bounds(bounds: EigenBounds) -> bool:
    """Spectrum bounds the Chebyshev polynomial cannot be built from."""
    return not (np.isfinite(bounds.lam_min) and np.isfinite(bounds.lam_max)
                and 0.0 < bounds.lam_min < bounds.lam_max)
