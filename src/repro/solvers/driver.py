"""Single entry point dispatching to the configured solver."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.field import Field
from repro.solvers.cg import cg_solve
from repro.solvers.chebyshev import chebyshev_solve
from repro.solvers.jacobi import jacobi_solve
from repro.solvers.operator import StencilOperator2D
from repro.solvers.options import SolverOptions
from repro.solvers.ppcg import ppcg_solve
from repro.solvers.preconditioners import make_local_preconditioner
from repro.solvers.result import SolveResult
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class SolveSetup:
    """Reusable expensive setup artifacts injected into a solve.

    ``bounds`` short-circuits the Chebyshev/CPPCG warm-up eigenvalue
    estimation; ``preconditioner`` is a prebuilt local preconditioner
    object (e.g. a factorised
    :class:`~repro.solvers.preconditioners.BlockJacobiPreconditioner`)
    handed to the cg/cg_fused family instead of factorising per solve.
    Both default to ``None`` (= compute as usual).  The service layer's
    LRU setup cache keys these by (mesh, coefficients, options).
    """

    bounds: object | None = None
    preconditioner: object | None = None


def solve_linear(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    options: SolverOptions | None = None,
    guard=None,
    cancel=None,
    setup=None,
    resume_state=None,
) -> SolveResult:
    """Solve ``A x = b`` with the solver selected in ``options``.

    The operator's fields must have halo depth >=
    ``options.required_field_halo`` (matrix powers needs deep halos).

    ``guard`` is an optional pre-built
    :class:`~repro.resilience.guard.SolverGuard` (so callers can share its
    iteration cell with a fault injector); when omitted and
    ``options.guard_interval > 0`` one is constructed from the options.
    Guards apply to the cg/ppcg/chebyshev family.

    ``cancel`` is an optional
    :class:`~repro.service.cancel.CancelToken`-like object checked at
    every iteration boundary of the cg/cg_fused/jacobi/chebyshev/ppcg
    family (a fired token raises
    :class:`~repro.utils.errors.DeadlineExceeded` /
    :class:`~repro.utils.errors.Cancelled` coherently on every rank; an
    inert token is bit-transparent).

    ``setup`` is an optional :class:`SolveSetup` of reusable expensive
    artifacts — Chebyshev eigenvalue bounds and a prefactorised local
    preconditioner — typically served by the service layer's LRU setup
    cache (:mod:`repro.service.cache`).

    ``resume_state`` is an optional exact mid-solve resume snapshot
    (see :func:`~repro.solvers.cg.cg_solve`); only the plain ``cg``
    solver supports it.
    """
    opt = options if options is not None else SolverOptions()
    if op.halo < opt.required_field_halo:
        raise ConfigurationError(
            f"{opt.label()} needs field halo >= {opt.required_field_halo}, "
            f"operator has {op.halo}")
    if opt.refine and opt.dtype != "float64":
        # Mixed-precision iterative refinement wraps whole inner solves
        # (which come back through this entry point with refine=False).
        from repro.numerics.refine import refined_solve
        return refined_solve(op, b, x0, opt, guard=guard)
    if guard is None and opt.guard_interval > 0:
        from repro.resilience.guard import SolverGuard
        guard = SolverGuard(checkpoint_interval=opt.guard_interval,
                            divergence_ratio=opt.guard_divergence_ratio,
                            max_rollbacks=opt.guard_max_rollbacks)

    solve_op, bb, xx = op, b, x0
    if opt.dtype != str(op.dtype):
        # Demote the operator/fields to the working precision; the caller
        # keeps its own precision — the solution is promoted back below.
        from repro.numerics.precision import cast_field, cast_operator
        solve_op = cast_operator(op, opt.dtype)
        bb = cast_field(b, opt.dtype)
        xx = cast_field(x0, opt.dtype) if x0 is not None else None
    if opt.kernel_backend != solve_op.kernels.name:
        # Routed copy; the caller's operator keeps its own backend.  The
        # true-residual referee below still runs through the original
        # ``op`` — a backend-neutral check of the routed solve.
        solve_op = solve_op.with_kernels(opt.kernel_backend)

    from repro.observe.trace import tracer_of
    with tracer_of(solve_op).span("solve", opt.solver):
        result = _dispatch(solve_op, bb, xx, opt, guard, cancel, setup,
                           resume_state)
    if result.x.data.dtype != b.data.dtype:
        result.x = Field(result.x.tile, result.x.halo,
                         result.x.data.astype(b.data.dtype))
    if opt.true_residual and result.true_residual_norm is None:
        from repro.numerics.replacement import attach_true_residual
        attach_true_residual(result, op, b)
    return result


def _dispatch(op, b, x0, opt, guard, cancel=None, setup=None,
              resume_state=None) -> SolveResult:
    bounds = setup.bounds if setup is not None else None
    prebuilt = setup.preconditioner if setup is not None else None
    if resume_state is not None and opt.solver != "cg":
        raise ConfigurationError(
            f"exact mid-solve resume is only supported for the plain "
            f"'cg' solver, not {opt.solver!r}")
    if opt.solver == "jacobi":
        return jacobi_solve(op, b, x0, eps=opt.eps, max_iters=opt.max_iters,
                            stagnation_window=opt.stagnation_window,
                            cancel=cancel)
    if opt.solver == "cg":
        M = prebuilt if prebuilt is not None \
            else make_local_preconditioner(op, opt.preconditioner)
        return cg_solve(op, b, x0, eps=opt.eps, max_iters=opt.max_iters,
                        preconditioner=M, raise_on_stall=opt.raise_on_stall,
                        guard=guard, abft_interval=opt.abft_interval,
                        abft_tolerance=opt.abft_tolerance,
                        replace_interval=opt.replace_interval,
                        replace_adaptive=opt.replace_adaptive,
                        replace_tolerance=opt.replace_tolerance,
                        stagnation_window=opt.stagnation_window,
                        cancel=cancel, resume_state=resume_state)
    if opt.solver == "cg_fused":
        from repro.solvers.cg_fused import cg_fused_solve
        M = prebuilt if prebuilt is not None \
            else make_local_preconditioner(op, opt.preconditioner)
        return cg_fused_solve(op, b, x0, eps=opt.eps,
                              max_iters=opt.max_iters, preconditioner=M,
                              cancel=cancel)
    if opt.solver == "dcg":
        from repro.solvers.deflation import deflated_cg_solve
        return deflated_cg_solve(op, b, x0, eps=opt.eps,
                                 max_iters=opt.max_iters,
                                 blocks=opt.deflation_blocks,
                                 preconditioner=opt.preconditioner)
    if opt.solver == "chebyshev":
        return chebyshev_solve(
            op, b, x0, eps=opt.eps, max_iters=opt.max_iters,
            warmup_iters=opt.eigen_warmup_iters,
            eigen_safety=opt.eigen_safety,
            check_interval=opt.check_interval,
            preconditioner=opt.preconditioner,
            halo_depth=opt.halo_depth,
            raise_on_stall=opt.raise_on_stall,
            guard=guard,
            degrade=opt.degrade,
            stagnation_window=opt.stagnation_window,
            bounds=bounds,
            cancel=cancel,
        )
    if opt.solver == "ppcg":
        return ppcg_solve(
            op, b, x0, eps=opt.eps, max_iters=opt.max_iters,
            inner_steps=opt.ppcg_inner_steps,
            halo_depth=opt.halo_depth,
            warmup_iters=opt.eigen_warmup_iters,
            eigen_safety=opt.eigen_safety,
            inner_preconditioner=opt.preconditioner,
            adaptive=opt.adaptive,
            raise_on_stall=opt.raise_on_stall,
            guard=guard,
            degrade=opt.degrade,
            abft_interval=opt.abft_interval,
            abft_tolerance=opt.abft_tolerance,
            replace_interval=opt.replace_interval,
            replace_adaptive=opt.replace_adaptive,
            replace_tolerance=opt.replace_tolerance,
            stagnation_window=opt.stagnation_window,
            bounds=bounds,
            cancel=cancel,
        )
    if opt.solver == "mgcg":
        # Imported lazily: multigrid builds on this package.  Serial runs
        # use the global-grid hierarchy; decomposed runs use the hybrid
        # domain-decomposition + agglomeration V-cycle (paper §VII).
        if op.comm.size == 1:
            from repro.multigrid.mgcg import mgcg_solve
            return mgcg_solve(op, b, x0, eps=opt.eps, max_iters=opt.max_iters)
        from repro.multigrid.distributed import dmgcg_solve
        return dmgcg_solve(op, b, x0, eps=opt.eps, max_iters=opt.max_iters)
    raise ConfigurationError(f"unknown solver {opt.solver!r}")
