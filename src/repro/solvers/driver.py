"""Single entry point dispatching to the configured solver."""

from __future__ import annotations

from repro.mesh.field import Field
from repro.solvers.cg import cg_solve
from repro.solvers.chebyshev import chebyshev_solve
from repro.solvers.jacobi import jacobi_solve
from repro.solvers.operator import StencilOperator2D
from repro.solvers.options import SolverOptions
from repro.solvers.ppcg import ppcg_solve
from repro.solvers.preconditioners import make_local_preconditioner
from repro.solvers.result import SolveResult
from repro.utils.errors import ConfigurationError


def solve_linear(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    options: SolverOptions | None = None,
    guard=None,
) -> SolveResult:
    """Solve ``A x = b`` with the solver selected in ``options``.

    The operator's fields must have halo depth >=
    ``options.required_field_halo`` (matrix powers needs deep halos).

    ``guard`` is an optional pre-built
    :class:`~repro.resilience.guard.SolverGuard` (so callers can share its
    iteration cell with a fault injector); when omitted and
    ``options.guard_interval > 0`` one is constructed from the options.
    Guards apply to the cg/ppcg/chebyshev family.
    """
    opt = options if options is not None else SolverOptions()
    if op.halo < opt.required_field_halo:
        raise ConfigurationError(
            f"{opt.label()} needs field halo >= {opt.required_field_halo}, "
            f"operator has {op.halo}")
    if guard is None and opt.guard_interval > 0:
        from repro.resilience.guard import SolverGuard
        guard = SolverGuard(checkpoint_interval=opt.guard_interval,
                            divergence_ratio=opt.guard_divergence_ratio,
                            max_rollbacks=opt.guard_max_rollbacks)

    from repro.observe.trace import tracer_of
    with tracer_of(op).span("solve", opt.solver):
        return _dispatch(op, b, x0, opt, guard)


def _dispatch(op, b, x0, opt, guard) -> SolveResult:
    if opt.solver == "jacobi":
        return jacobi_solve(op, b, x0, eps=opt.eps, max_iters=opt.max_iters)
    if opt.solver == "cg":
        M = make_local_preconditioner(op, opt.preconditioner)
        return cg_solve(op, b, x0, eps=opt.eps, max_iters=opt.max_iters,
                        preconditioner=M, raise_on_stall=opt.raise_on_stall,
                        guard=guard, abft_interval=opt.abft_interval,
                        abft_tolerance=opt.abft_tolerance)
    if opt.solver == "cg_fused":
        from repro.solvers.cg_fused import cg_fused_solve
        M = make_local_preconditioner(op, opt.preconditioner)
        return cg_fused_solve(op, b, x0, eps=opt.eps,
                              max_iters=opt.max_iters, preconditioner=M)
    if opt.solver == "dcg":
        from repro.solvers.deflation import deflated_cg_solve
        return deflated_cg_solve(op, b, x0, eps=opt.eps,
                                 max_iters=opt.max_iters,
                                 blocks=opt.deflation_blocks,
                                 preconditioner=opt.preconditioner)
    if opt.solver == "chebyshev":
        return chebyshev_solve(
            op, b, x0, eps=opt.eps, max_iters=opt.max_iters,
            warmup_iters=opt.eigen_warmup_iters,
            eigen_safety=opt.eigen_safety,
            check_interval=opt.check_interval,
            preconditioner=opt.preconditioner,
            halo_depth=opt.halo_depth,
            raise_on_stall=opt.raise_on_stall,
            guard=guard,
            degrade=opt.degrade,
        )
    if opt.solver == "ppcg":
        return ppcg_solve(
            op, b, x0, eps=opt.eps, max_iters=opt.max_iters,
            inner_steps=opt.ppcg_inner_steps,
            halo_depth=opt.halo_depth,
            warmup_iters=opt.eigen_warmup_iters,
            eigen_safety=opt.eigen_safety,
            inner_preconditioner=opt.preconditioner,
            adaptive=opt.adaptive,
            raise_on_stall=opt.raise_on_stall,
            guard=guard,
            degrade=opt.degrade,
            abft_interval=opt.abft_interval,
            abft_tolerance=opt.abft_tolerance,
        )
    if opt.solver == "mgcg":
        # Imported lazily: multigrid builds on this package.  Serial runs
        # use the global-grid hierarchy; decomposed runs use the hybrid
        # domain-decomposition + agglomeration V-cycle (paper §VII).
        if op.comm.size == 1:
            from repro.multigrid.mgcg import mgcg_solve
            return mgcg_solve(op, b, x0, eps=opt.eps, max_iters=opt.max_iters)
        from repro.multigrid.distributed import dmgcg_solve
        return dmgcg_solve(op, b, x0, eps=opt.eps, max_iters=opt.max_iters)
    raise ConfigurationError(f"unknown solver {opt.solver!r}")
