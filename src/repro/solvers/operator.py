"""The matrix-free 5-point diffusion operator (paper Listing 1).

``w = A p`` with

    w[k,j] = (1 + Ky[k+1,j] + Ky[k,j] + Kx[k,j+1] + Kx[k,j]) * p[k,j]
           - Ky[k+1,j]*p[k+1,j] - Ky[k,j]*p[k-1,j]
           - Kx[k,j+1]*p[k,j+1] - Kx[k,j]*p[k,j-1]

where ``Kx``/``Ky`` are the face conduction coefficients scaled by
``dt/dx^2``/``dt/dy^2``.  ``A = I + D`` with ``D`` symmetric weakly
diagonally dominant, so ``A`` is SPD with ``lambda_min = 1`` exactly (the
constant vector, from the insulated boundaries).

The operator is *matrix free*: it reads the coefficient arrays in mesh
layout and no sparse matrix is ever assembled (except by
:meth:`StencilOperator2D.to_sparse`, which exists for testing against
``scipy``).  Every method also supports the **extended bounds** needed by
the matrix powers kernel: computing on the interior grown by ``ext`` cells
toward neighbouring ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np
import scipy.sparse as sp

from repro.comm.base import Communicator
from repro.kernels import DEFAULT_BACKEND, KernelBackend, get_backend
from repro.mesh.decomposition import Tile
from repro.mesh.field import Field
from repro.mesh.halo import HaloExchanger
from repro.utils.errors import ConfigurationError
from repro.utils.events import EventLog


def embed_global(local: np.ndarray, global_array: np.ndarray,
                 y_off: int, x_off: int) -> None:
    """Copy ``global_array`` into ``local`` with ``local[r,c] =
    global[r+y_off, c+x_off]`` wherever that index is in range.

    Out-of-range cells are left untouched (callers pre-fill with zeros).
    Used to build padded local coefficient/field arrays from global ones in
    tests and reference constructions.
    """
    gh, gw = global_array.shape
    lh, lw = local.shape
    r0 = max(0, -y_off)
    c0 = max(0, -x_off)
    r1 = min(lh, gh - y_off)
    c1 = min(lw, gw - x_off)
    if r1 > r0 and c1 > c0:
        local[r0:r1, c0:c1] = global_array[r0 + y_off:r1 + y_off,
                                           c0 + x_off:c1 + x_off]


@dataclass
class StencilOperator2D:
    """Rank-local matrix-free operator plus its communication context.

    Parameters
    ----------
    kx, ky:
        Padded face-coefficient fields (see
        :func:`repro.physics.state.build_coefficient_fields`); ``kx.data[k,j]``
        couples padded cells ``(k, j-1)`` and ``(k, j)``.
    comm:
        The communicator (dot products reduce over it).
    exchanger:
        Halo exchanger used for the depth-1 exchange inside :meth:`apply`.
    events:
        Event log shared by the operator, exchanger and solvers.
    tracer:
        Optional :class:`~repro.observe.trace.Tracer`, shared with the
        exchanger; the stencil emits ``stencil`` spans, solvers read it
        for ``iteration``/``precond`` spans (null tracer by default).
    kernels:
        The :class:`~repro.kernels.KernelBackend` (or registry name) the
        hot paths route through; shared with the exchanger.  Defaults to
        the ``numpy`` baseline.
    """

    kx: Field
    ky: Field
    comm: Communicator
    exchanger: HaloExchanger = None
    events: EventLog = dc_field(default_factory=EventLog)
    tracer: object = dc_field(default=None)
    kernels: KernelBackend = dc_field(default=None)
    #: Lazily allocated workspace for the fused residual chain.
    _scratch: Field = dc_field(default=None, init=False, repr=False,
                               compare=False)

    def __post_init__(self):
        if self.kx.tile != self.ky.tile or self.kx.halo != self.ky.halo:
            raise ConfigurationError("kx/ky fields must share tile and halo")
        if self.tracer is None:
            # Deferred import: keeps the solver core importable without
            # loading the observability package at module import time.
            from repro.observe.trace import NULL_TRACER
            self.tracer = NULL_TRACER
        if self.kernels is None:
            self.kernels = get_backend(DEFAULT_BACKEND)
        elif isinstance(self.kernels, str):
            self.kernels = get_backend(self.kernels)
        if self.exchanger is None:
            self.exchanger = HaloExchanger(self.comm, events=self.events,
                                           tracer=self.tracer,
                                           kernels=self.kernels)
        else:
            if self.exchanger.events is None:
                self.exchanger.events = self.events
            if getattr(self.exchanger, "tracer", None) is None \
                    or not self.exchanger.tracer.enabled:
                self.exchanger.tracer = self.tracer

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_global_faces(
        cls,
        tile: Tile,
        halo: int,
        kx_global: np.ndarray,
        ky_global: np.ndarray,
        comm: Communicator,
        events: EventLog | None = None,
        tracer=None,
        dtype: np.dtype = np.float64,
    ) -> "StencilOperator2D":
        """Build the rank-local operator from global face arrays.

        ``kx_global`` has shape ``(ny, nx+1)`` and ``ky_global`` has shape
        ``(ny+1, nx)`` (see :func:`repro.physics.conduction.face_coefficients`).
        Faces outside the global domain are zero, so no halo exchange of the
        coefficients is needed.  ``dtype`` sets the working precision of the
        coefficient fields (and hence of :meth:`new_field` workspaces).
        """
        kx = Field(tile, halo, dtype=dtype)
        ky = Field(tile, halo, dtype=dtype)
        embed_global(kx.data, kx_global, tile.y0 - halo, tile.x0 - halo)
        embed_global(ky.data, ky_global, tile.y0 - halo, tile.x0 - halo)
        return cls(kx=kx, ky=ky, comm=comm,
                   events=events if events is not None else EventLog(),
                   tracer=tracer)

    # -- geometry helpers --------------------------------------------------------

    @property
    def tile(self) -> Tile:
        return self.kx.tile

    @property
    def halo(self) -> int:
        return self.kx.halo

    @property
    def dtype(self) -> np.dtype:
        """Working precision of the operator's coefficient fields."""
        return self.kx.data.dtype

    def new_field(self) -> Field:
        return Field(self.tile, self.halo, dtype=self.dtype)

    # -- the stencil ---------------------------------------------------------------

    def _region(self, ext: int) -> tuple[slice, slice]:
        if not 0 <= ext <= self.halo - 1:
            raise ConfigurationError(
                f"stencil extension {ext} must be in [0, halo-1={self.halo - 1}]")
        return self.kx.region(ext)

    def apply_noexchange(self, p: Field, out: Field, ext: int = 0) -> None:
        """``out = A p`` on the interior grown by ``ext`` toward neighbours.

        Requires ``p`` valid on extension ``ext + 1`` (i.e. a fresh halo of
        at least that depth); no communication is performed.
        """
        rows, cols = self._region(ext)
        r0, r1, c0, c1 = rows.start, rows.stop, cols.start, cols.stop
        with self.tracer.span("stencil", ext):
            self.kernels.stencil_apply(self.kx.data, self.ky.data,
                                       p.data, out.data, r0, r1, c0, c1)
        self.events.record("matvec", None,
                           cells=(r1 - r0) * (c1 - c0))

    def apply(self, p: Field, out: Field) -> None:
        """``out = A p`` on the interior, exchanging p's depth-1 halo first."""
        self.exchanger.exchange(p, depth=1)
        self.apply_noexchange(p, out, ext=0)

    def apply_dot(self, p: Field, out: Field) -> float:
        """``out = A p``; returns the global ``<p, A p>``.

        Same communication budget as the ``apply`` + ``dots`` pair it
        fuses (one depth-1 exchange, one allreduce), but the backend may
        stream the dot through the stencil pass (see
        :meth:`repro.kernels.base.KernelBackend.apply_dot`).
        """
        self.exchanger.exchange(p, depth=1)
        rows, cols = self._region(0)
        r0, r1, c0, c1 = rows.start, rows.stop, cols.start, cols.stop
        with self.tracer.span("stencil", 0):
            local = self.kernels.apply_dot(self.kx.data, self.ky.data,
                                           p.data, out.data, r0, r1, c0, c1)
        self.events.record("matvec", None,
                           cells=(r1 - r0) * (c1 - c0))
        return float(self.comm.allreduce(local))

    def residual_dot(self, b: Field, x: Field, out: Field) -> float:
        """``out = b - A x``; returns the global ``<out, out>``.

        The fused residual + convergence-norm chain (Jacobi's per-sweep
        tail): one depth-1 exchange and one allreduce, identical to the
        ``residual`` + ``dot`` pair it replaces.
        """
        self.exchanger.exchange(x, depth=1)
        if self._scratch is None:
            self._scratch = self.new_field()
        rows, cols = self._region(0)
        r0, r1, c0, c1 = rows.start, rows.stop, cols.start, cols.stop
        out.interior[...] = b.interior
        with self.tracer.span("stencil", 0):
            local = self.kernels.apply_axpy_dot(
                self.kx.data, self.ky.data, x.data, self._scratch.data,
                out.data, -1.0, r0, r1, c0, c1)
        self.events.record("matvec", None,
                           cells=(r1 - r0) * (c1 - c0))
        return float(self.comm.allreduce(local))

    def with_kernels(self, backend) -> "StencilOperator2D":
        """This operator routed through kernel backend ``backend``.

        Returns ``self`` when the backend already matches; otherwise a
        shallow copy sharing coefficients, communicator, events and
        tracer, with a fresh exchanger bound to the new backend.
        """
        k = get_backend(backend) if isinstance(backend, str) else backend
        if k.name == self.kernels.name:
            return self
        exchanger = HaloExchanger(self.comm, events=self.events,
                                  tracer=self.tracer, kernels=k)
        return StencilOperator2D(kx=self.kx, ky=self.ky, comm=self.comm,
                                 exchanger=exchanger, events=self.events,
                                 tracer=self.tracer, kernels=k)

    #: spatial dimensionality (3D operators report 3)
    ndim = 2

    def diagonal(self) -> np.ndarray:
        """The diagonal of ``A`` over the interior, shape ``(ny, nx)``."""
        rows, cols = self.kx.region(0)
        r0, r1, c0, c1 = rows.start, rows.stop, cols.start, cols.stop
        kxd, kyd = self.kx.data, self.ky.data
        return (1.0
                + kyd[r0 + 1:r1 + 1, c0:c1] + kyd[r0:r1, c0:c1]
                + kxd[r0:r1, c0 + 1:c1 + 1] + kxd[r0:r1, c0:c1])

    def diagonal_padded(self) -> np.ndarray:
        """diag(A) over the full padded array (outer edges padded with 1)."""
        kxd, kyd = self.kx.data, self.ky.data
        d = np.ones_like(kxd)
        d[:-1, :-1] = (1.0 + kyd[1:, :-1] + kyd[:-1, :-1]
                       + kxd[:-1, 1:] + kxd[:-1, :-1])
        return d

    # -- global reductions --------------------------------------------------------

    def dot(self, a: Field, b: Field) -> float:
        """Global dot product over interiors (one allreduce)."""
        return float(self.comm.allreduce(
            self.kernels.dot(a.interior, b.interior)))

    def dots(self, pairs: list[tuple[Field, Field]]) -> tuple[float, ...]:
        """Several global dot products fused into a single allreduce.

        This is the "multiple dot products combined into a single
        communication step" optimisation the paper lists as future work.
        """
        local = np.array([self.kernels.dot(a.interior, b.interior)
                          for a, b in pairs])
        out = self.comm.allreduce(local)
        return tuple(float(v) for v in out)

    def norm(self, a: Field) -> float:
        return float(np.sqrt(self.dot(a, a)))

    def residual(self, b: Field, x: Field, out: Field) -> None:
        """``out = b - A x`` on the interior (one depth-1 exchange)."""
        self.apply(x, out)
        np.subtract(b.interior, out.interior, out=out.interior)

    # -- reference assembly (tests/ground truth) --------------------------------------

    @staticmethod
    def assemble_sparse(kx_global: np.ndarray, ky_global: np.ndarray) -> sp.csr_matrix:
        """Assemble the explicit global sparse matrix (serial, for tests).

        Row-major cell ordering: cell ``(k, j)`` maps to row ``k*nx + j``.
        """
        ny, nxp1 = kx_global.shape
        nx = nxp1 - 1
        n = nx * ny

        def idx(k, j):
            return k * nx + j

        rows, cols, vals = [], [], []
        for k in range(ny):
            for j in range(nx):
                d = (1.0 + kx_global[k, j] + kx_global[k, j + 1]
                     + ky_global[k, j] + ky_global[k + 1, j])
                rows.append(idx(k, j)); cols.append(idx(k, j)); vals.append(d)
                if j > 0 and kx_global[k, j] != 0.0:
                    rows.append(idx(k, j)); cols.append(idx(k, j - 1))
                    vals.append(-kx_global[k, j])
                if j < nx - 1 and kx_global[k, j + 1] != 0.0:
                    rows.append(idx(k, j)); cols.append(idx(k, j + 1))
                    vals.append(-kx_global[k, j + 1])
                if k > 0 and ky_global[k, j] != 0.0:
                    rows.append(idx(k, j)); cols.append(idx(k - 1, j))
                    vals.append(-ky_global[k, j])
                if k < ny - 1 and ky_global[k + 1, j] != 0.0:
                    rows.append(idx(k, j)); cols.append(idx(k + 1, j))
                    vals.append(-ky_global[k + 1, j])
        return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
