"""Point-Jacobi relaxation (TeaLeaf ``tl_use_jacobi``).

The simplest solver in the design space: per iteration one depth-1 halo
exchange, one stencil application and one allreduce (the convergence check).
Written in correction form ``u <- u + D^{-1}(b - A u)``, which is
algebraically identical to the classic update ``D u_new = b + N u_old`` and
reuses the shared matvec kernel.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.field import Field
from repro.numerics.breakdown import BreakdownGuard
from repro.solvers.operator import StencilOperator2D
from repro.solvers.result import SolveResult
from repro.utils.validation import check_finite_field, check_positive

#: Machine-checked communication budget (see ``repro.analysis``): one
#: depth-1 exchange in the residual matvec plus the convergence-check
#: allreduce.
COMM_CONTRACT = {
    "solver": "jacobi",
    "halo_exchanges_per_iter": 1,
    "allreduces_per_iter": 1,
    "halo_depth": 1,
}


def jacobi_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    eps: float = 1e-10,
    max_iters: int = 100_000,
    stagnation_window: int = 0,
    cancel=None,
) -> SolveResult:
    """Solve ``A x = b`` by Jacobi iteration.

    Converges for the diffusion operator (strictly diagonally dominant),
    but slowly — it exists as the paper's simplest baseline and as the
    smoother building block for multigrid.  The shared breakdown guard
    (:mod:`repro.numerics.breakdown`) turns a non-finite residual into a
    loud :class:`~repro.numerics.breakdown.BreakdownError` (previously the
    loop would spin its whole budget on NaNs); ``stagnation_window``
    additionally bounds how long the residual may fail to improve.
    """
    check_positive("eps", eps)
    check_positive("max_iters", max_iters)
    check_finite_field("b", b)
    check_finite_field("x0", x0)
    breakdown = BreakdownGuard("jacobi",
                               stagnation_window=stagnation_window)
    x = x0.copy() if x0 is not None else op.new_field()
    r = op.new_field()
    inv_diag = 1.0 / op.diagonal()

    rr = op.residual_dot(b, x, out=r)
    r0_norm = float(np.sqrt(rr))
    threshold = eps * r0_norm
    history = [r0_norm]
    converged = r0_norm <= threshold
    iterations = 0
    res_norm = r0_norm

    from repro.observe.trace import tracer_of
    tracer = tracer_of(op)
    while not converged and iterations < max_iters:
        # Cancellation boundary: before the iteration's exchange/reduce,
        # so all ranks stop coherently (see repro.service.cancel).
        if cancel is not None:
            cancel.check(iterations)
        with tracer.span("iteration", "jacobi"):
            x.interior += inv_diag * r.interior
            # Fused residual + convergence dot: one exchange, one
            # allreduce, exactly the budget of the residual + dot pair.
            rr = op.residual_dot(b, x, out=r)
            iterations += 1
            res_norm = float(np.sqrt(rr))
            history.append(res_norm)
            breakdown.residual(res_norm, iterations)
            converged = res_norm <= threshold

    return SolveResult(
        x=x,
        solver="jacobi",
        converged=converged,
        iterations=iterations,
        residual_norm=res_norm,
        initial_residual_norm=r0_norm,
        history=history,
        events=op.events,
    )
