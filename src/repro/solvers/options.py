"""Unified solver configuration object.

Mirrors the TeaLeaf deck's ``tl_*`` settings; validated once at
construction so downstream code can trust it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_in, check_positive, require

SOLVERS = ("jacobi", "cg", "cg_fused", "dcg", "chebyshev", "ppcg", "mgcg")
PRECONDITIONERS = ("none", "diagonal", "block_jacobi")
WORKING_DTYPES = ("float32", "float64")
KERNEL_BACKENDS = ("numpy", "fused", "numba")


@dataclass(frozen=True)
class SolverOptions:
    """Validated solver configuration.

    Attributes
    ----------
    solver:
        ``jacobi`` | ``cg`` | ``chebyshev`` | ``ppcg`` (= CPPCG) |
        ``mgcg`` (the CG + geometric-multigrid baseline standing in for
        PETSc CG + BoomerAMG).
    eps:
        Relative residual tolerance (TeaLeaf ``tl_eps``).
    max_iters:
        Outer iteration budget (``tl_max_iters``).
    preconditioner:
        Local preconditioner for CG, and inner preconditioner for
        Chebyshev/PPCG inner steps.
    ppcg_inner_steps:
        Chebyshev polynomial degree per outer iteration
        (``tl_ppcg_inner_steps``).
    halo_depth:
        Matrix-powers halo depth for Chebyshev/PPCG inner iterations; the
        paper's configurations "PPCG - n" set this to 1/4/8/16.
    eigen_warmup_iters / eigen_safety:
        Eigenvalue-estimation controls (§III-D).
    check_interval:
        Residual-check cadence for the standalone Chebyshev solver.
    """

    solver: str = "cg"
    eps: float = 1e-10
    max_iters: int = 10_000
    preconditioner: str = "none"
    ppcg_inner_steps: int = 10
    halo_depth: int = 1
    eigen_warmup_iters: int = 25
    eigen_safety: tuple[float, float] = (0.95, 1.05)
    check_interval: int = 10
    #: PPCG robustness: re-estimate eigenvalue bounds and restart when the
    #: outer iteration stalls or breaks down (addresses the paper's §VIII
    #: open question about robustness at extreme condition numbers).
    adaptive: bool = False
    #: Deflated CG (solver="dcg"): subdomain partition (qx, qy).
    deflation_blocks: tuple[int, int] = (4, 4)
    #: Raise :class:`~repro.utils.errors.ConvergenceError` (solver name,
    #: final relative residual, iteration count) instead of returning an
    #: unconverged result when the iteration budget is exhausted.
    #: Honoured uniformly by cg, ppcg and chebyshev.
    raise_on_stall: bool = False
    #: Resilience (see :mod:`repro.resilience`): checkpoint the solver
    #: state every this many iterations and roll back on unhealthy
    #: residuals.  0 disables the guard entirely.
    guard_interval: int = 0
    #: An iteration is unhealthy when its residual norm exceeds this
    #: multiple of the best norm seen so far (or is NaN/Inf).
    guard_divergence_ratio: float = 1e4
    #: Rollback budget before the guard gives up and raises.
    guard_max_rollbacks: int = 3
    #: Graceful degradation: CPPCG falls back to plain CG on unusable
    #: spectrum bounds; matrix-powers depth falls back to 1 on repeated
    #: halo-exchange failure.
    degrade: bool = False
    #: Durable checkpointing (see :mod:`repro.resilience.checkpoint`):
    #: commit an atomic on-disk simulation checkpoint every this many
    #: steps.  0 disables durable checkpoints; > 0 requires
    #: ``checkpoint_dir``.
    checkpoint_interval: int = 0
    #: Directory receiving the versioned ``step-*`` checkpoint
    #: directories (and the guard's per-rank solver shards).
    checkpoint_dir: str = ""
    #: Rank-loss recovery (ULFM-style shrink/respawn, see
    #: :mod:`repro.resilience.recovery`).  Requires durable state to
    #: resume from: either ``checkpoint_interval > 0`` or
    #: ``guard_interval > 0`` with a ``checkpoint_dir``.
    recovery: bool = False
    #: Integrity layer (:class:`~repro.resilience.integrity.ChecksumComm`):
    #: checksummed redundant message envelopes + duplicate-lane
    #: reductions, turning silent payload corruption into retryable
    #: faults.
    integrity: bool = False
    #: ABFT residual replay: every this many CG/PPCG iterations recompute
    #: the true residual ``b - A x`` and compare against the recurrence
    #: (0 disables).
    abft_interval: int = 0
    #: Relative drift tolerated by the ABFT replay before it triggers a
    #: rollback.
    abft_tolerance: float = 1e-6
    #: Working precision of the solve (:mod:`repro.numerics`): fields,
    #: operator coefficients and inner recurrence arithmetic run at this
    #: dtype; global reductions stay float64 regardless.
    dtype: str = "float64"
    #: Mixed-precision iterative refinement: run the inner solver at
    #: ``dtype`` and recover full accuracy through float64 defect
    #: re-solves, escalating precision (with a structured
    #: :class:`~repro.numerics.refine.PrecisionDiagnosis`) when the
    #: refinement stagnates.  No effect when ``dtype == "float64"``.
    refine: bool = False
    #: Outer refinement-step budget.
    refine_max_steps: int = 8
    #: A refinement step stagnates when the defect norm fails to contract
    #: below this fraction of the previous step's norm.
    refine_stagnation: float = 0.5
    #: Residual replacement (cg/ppcg): every this many outer iterations
    #: recompute the true residual ``b - A x`` and splice it into the
    #: recurrence when the drift exceeds the rounding-error bound.
    #: 0 disables replacement.
    replace_interval: int = 0
    #: Condition-aware cadence: shrink the replacement interval toward
    #: ``1/sqrt(u * kappa)`` using live Lanczos condition estimates.
    replace_adaptive: bool = False
    #: Explicit relative drift bound for splicing; 0 derives the bound
    #: from the running rounding-error estimate.
    replace_tolerance: float = 0.0
    #: Breakdown stagnation window (:class:`~repro.numerics.breakdown.
    #: BreakdownGuard`): raise when the residual norm fails to improve
    #: across this many iterations.  0 disables the window.
    stagnation_window: int = 0
    #: Compute the true residual ``b - A x`` once after the solve (under
    #: the replacement event scope) and attach it to the result.
    true_residual: bool = False
    #: Kernel backend (:mod:`repro.kernels`) the solve's hot paths route
    #: through (TeaLeaf deck key ``tl_kernel_backend``).  ``numpy`` is
    #: the baseline; ``fused`` is loop-fused + cache-blocked; ``numba``
    #: requires the optional numba extra (availability is checked at
    #: solve time, so an options object naming it stays constructible).
    kernel_backend: str = "numpy"
    #: Per-attempt receive timeout in seconds for the resilient comm
    #: stack (TeaLeaf-style deck key ``tl_comm_timeout``, CLI
    #: ``--comm-timeout``).  0 keeps the library default
    #: (:data:`repro.resilience.runner.DEFAULT_RECV_TIMEOUT_S`); a
    #: positive value overrides it, turning a dead peer into a
    #: :class:`~repro.utils.errors.CommunicationError` after that long.
    #: Must be at least 0.05 s when set: the thread world polls its
    #: mailboxes every 20 ms, so tighter deadlines are pure noise.
    comm_timeout: float = 0.0

    def __post_init__(self):
        check_in("solver", self.solver, SOLVERS)
        check_in("preconditioner", self.preconditioner, PRECONDITIONERS)
        check_positive("eps", self.eps)
        check_positive("max_iters", self.max_iters)
        check_positive("ppcg_inner_steps", self.ppcg_inner_steps)
        check_positive("halo_depth", self.halo_depth)
        check_positive("eigen_warmup_iters", self.eigen_warmup_iters)
        check_positive("check_interval", self.check_interval)
        qx, qy = self.deflation_blocks
        check_positive("deflation_blocks[0]", qx)
        check_positive("deflation_blocks[1]", qy)
        check_positive("guard_interval", self.guard_interval, allow_zero=True)
        check_positive("guard_divergence_ratio", self.guard_divergence_ratio)
        check_positive("guard_max_rollbacks", self.guard_max_rollbacks,
                       allow_zero=True)
        require(
            not (self.preconditioner == "block_jacobi" and self.halo_depth > 1
                 and self.solver in ("chebyshev", "ppcg")),
            "block Jacobi cannot be combined with matrix powers "
            "(halo_depth > 1); see paper §IV-C2",
        )
        lo, hi = self.eigen_safety
        require(0 < lo <= 1.0 <= hi,
                f"eigen_safety must satisfy 0 < lo <= 1 <= hi, got {self.eigen_safety}")
        check_positive("checkpoint_interval", self.checkpoint_interval,
                       allow_zero=True)
        check_positive("abft_interval", self.abft_interval, allow_zero=True)
        check_positive("abft_tolerance", self.abft_tolerance)
        require(
            not (self.checkpoint_interval > 0 and not self.checkpoint_dir),
            "checkpoint_interval > 0 requires a checkpoint_dir to write "
            "the durable checkpoints into",
        )
        require(
            not (self.recovery
                 and self.checkpoint_interval <= 0
                 and self.guard_interval <= 0),
            "recovery enabled without a checkpoint cadence: set "
            "checkpoint_interval > 0 (durable step checkpoints) or "
            "guard_interval > 0 (durable solver shards) so there is "
            "state to resume from",
        )
        require(
            not (self.recovery and not self.checkpoint_dir),
            "recovery enabled without a checkpoint_dir: the respawned "
            "rank rebuilds its subdomain from the on-disk shards",
        )
        check_in("dtype", self.dtype, WORKING_DTYPES)
        check_in("kernel_backend", self.kernel_backend, KERNEL_BACKENDS)
        check_positive("refine_max_steps", self.refine_max_steps)
        require(0.0 < self.refine_stagnation < 1.0,
                f"refine_stagnation must be in (0, 1), "
                f"got {self.refine_stagnation}")
        check_positive("replace_interval", self.replace_interval,
                       allow_zero=True)
        check_positive("replace_tolerance", self.replace_tolerance,
                       allow_zero=True)
        check_positive("stagnation_window", self.stagnation_window,
                       allow_zero=True)
        require(
            not (self.replace_interval > 0
                 and self.solver not in ("cg", "ppcg")),
            "residual replacement is a CG-recurrence repair: "
            "replace_interval > 0 requires solver cg or ppcg",
        )
        check_positive("comm_timeout", self.comm_timeout, allow_zero=True)
        require(
            not (0 < self.comm_timeout < 0.05),
            f"comm_timeout {self.comm_timeout} s is below the thread "
            "world's 20 ms mailbox poll quantum; use >= 0.05 s (or 0 for "
            "the library default)",
        )

    @property
    def required_field_halo(self) -> int:
        """Minimum halo depth the solve's fields must be allocated with."""
        if self.solver in ("chebyshev", "ppcg"):
            return max(1, self.halo_depth)
        return 1

    def label(self) -> str:
        """Figure-legend-style label, e.g. ``"PPCG - 16"`` or ``"CG - 1"``."""
        base = {"cg": "CG", "ppcg": "PPCG", "chebyshev": "Cheby",
                "jacobi": "Jacobi", "mgcg": "MG-CG", "cg_fused": "CG-F",
                "dcg": "DCG"}[self.solver]
        depth = self.halo_depth if self.solver in ("chebyshev", "ppcg") else 1
        return f"{base} - {depth}"
