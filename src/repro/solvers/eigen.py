"""Eigenvalue estimation and the paper's iteration-count bounds.

CPPCG needs a-priori estimates of the extreme eigenvalues of the (possibly
preconditioned) operator.  Following the paper (§III-D), these come from a
few warm-up iterations of plain (P)CG: the CG coefficients ``alpha_i``
(step lengths) and ``beta_i`` define the Lanczos tridiagonal matrix whose
extreme eigenvalues (Ritz values) converge to the extreme eigenvalues of
the system from the inside.

This module also implements the bounds of §III-C (Eqs. 4-7): the effective
PCG condition number under an ``m``-step Chebyshev preconditioner and the
resulting total/outer iteration counts — the analytic engine behind the
"ratio of outer to inner iterations" claim that motivates CPPCG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import eigvalsh_tridiagonal

from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class EigenBounds:
    """Estimated extreme eigenvalues (after safety factors)."""

    lam_min: float
    lam_max: float

    def __post_init__(self):
        if not (0 < self.lam_min <= self.lam_max):
            raise ConfigurationError(
                f"invalid eigenvalue bounds [{self.lam_min}, {self.lam_max}]")

    @property
    def condition_number(self) -> float:
        return self.lam_max / self.lam_min

    @property
    def theta(self) -> float:
        """Chebyshev ellipse centre ``(lam_max + lam_min)/2``."""
        return 0.5 * (self.lam_max + self.lam_min)

    @property
    def delta(self) -> float:
        """Chebyshev ellipse half-width ``(lam_max - lam_min)/2``."""
        return 0.5 * (self.lam_max - self.lam_min)


def lanczos_tridiagonal(alphas: np.ndarray, betas: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Build the Lanczos tridiagonal from CG coefficients.

    With CG step lengths ``alpha_i`` and direction updates ``beta_i``
    (``i = 0..k-1``), the tridiagonal ``T_k`` similar to the projection of
    the operator onto the Krylov space has

        diag[i]    = 1/alpha_i + beta_{i-1}/alpha_{i-1}   (beta_{-1} = 0)
        offdiag[i] = sqrt(beta_i) / alpha_i

    Returns ``(diag, offdiag)`` with ``len(offdiag) == len(diag) - 1``.
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    k = len(alphas)
    if k < 1:
        raise ConfigurationError("need at least one CG iteration for Lanczos")
    if len(betas) < k - 1:
        raise ConfigurationError(
            f"need at least {k - 1} betas for {k} alphas, got {len(betas)}")
    if np.any(alphas <= 0) or np.any(betas[:k - 1] < 0):
        raise ConfigurationError(
            "CG coefficients imply a non-SPD system (alpha<=0 or beta<0)")
    diag = 1.0 / alphas
    diag[1:] += betas[:k - 1] / alphas[:k - 1]
    offdiag = np.sqrt(betas[:k - 1]) / alphas[:k - 1]
    return diag, offdiag


def estimate_eigenvalues(
    alphas,
    betas,
    safety: tuple[float, float] = (0.95, 1.05),
) -> EigenBounds:
    """Extreme-eigenvalue estimates from CG coefficients.

    Ritz values under-estimate ``lam_max`` and over-estimate ``lam_min``, so a
    safety factor widens the interval (TeaLeaf does the same); Chebyshev
    preconditioning diverges if the true spectrum escapes ``[lam_min, lam_max]``
    above, and merely degrades gracefully below.
    """
    lo_safety, hi_safety = safety
    if not (0 < lo_safety <= 1.0 and hi_safety >= 1.0):
        raise ConfigurationError(
            f"safety factors must satisfy 0 < lo <= 1 <= hi, got {safety}")
    diag, offdiag = lanczos_tridiagonal(alphas, betas)
    if len(diag) == 1:
        ritz = diag
    else:
        ritz = eigvalsh_tridiagonal(diag, offdiag)
    lam_min = float(ritz[0]) * lo_safety
    lam_max = float(ritz[-1]) * hi_safety
    return EigenBounds(lam_min=lam_min, lam_max=lam_max)


def condition_estimate(alphas, betas, default: float = 1.0) -> float:
    """Condition-number estimate ``lam_max/lam_min`` from CG coefficients.

    Safety-free Ritz estimate (``safety=(1, 1)``): the Lanczos view of the
    spectrum as CG itself saw it, used by :mod:`repro.numerics` to size
    residual-replacement intervals and judge float32 feasibility.  Returns
    ``default`` when the coefficients are absent, non-SPD-looking or
    numerically unusable — condition-aware safeguards degrade to their
    fixed-cadence behaviour rather than fail.
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    if alphas.size == 0 or not np.all(np.isfinite(alphas)):
        return default
    try:
        bounds = estimate_eigenvalues(alphas, betas, safety=(1.0, 1.0))
    except (ConfigurationError, np.linalg.LinAlgError):
        return default
    kappa = bounds.condition_number
    if not np.isfinite(kappa) or kappa < 1.0:
        return default
    return float(kappa)


def _cheb_T(m: int, x: float) -> float:
    """Chebyshev polynomial of the first kind at ``|x| >= 1`` (stable form)."""
    ax = abs(x)
    if ax < 1.0:
        return float(np.cos(m * np.arccos(x)))
    t = float(np.cosh(m * np.arccosh(ax)))
    return t if (x > 0 or m % 2 == 0) else -t


def chebyshev_epsilon(m: int, bounds: EigenBounds) -> float:
    """Eq. 5: the polynomial damping factor ``eps_m``.

    ``eps_m <= |T_m((lam_max+lam_min)/(lam_max-lam_min))|^{-1}`` — the worst-case
    reduction of the Chebyshev preconditioning polynomial over the spectrum.
    """
    if m < 0:
        raise ConfigurationError(f"polynomial degree must be >= 0, got {m}")
    if m == 0:
        return 1.0
    if bounds.delta == 0.0:
        return 0.0
    x = (bounds.lam_max + bounds.lam_min) / (bounds.lam_max - bounds.lam_min)
    return 1.0 / abs(_cheb_T(m, x))


@dataclass(frozen=True)
class IterationBounds:
    """Predicted iteration counts for CG vs CPPCG (Eqs. 4, 6, 7)."""

    kappa_cg: float
    kappa_pcg: float
    k_total: float       # total matvecs, Eq. 6
    k_outer: float       # outer (dot-product) iterations, Eq. 7
    dot_reduction: float  # ~ sqrt(kappa_cg/kappa_pcg): global-comm saving


def iteration_bounds(bounds: EigenBounds, inner_steps: int,
                     tolerance: float = 1e-10) -> IterationBounds:
    """The paper's Eqs. 4-7 for an ``inner_steps``-degree preconditioner.

    ``k_total`` bounds the matvec count (unchanged by polynomial
    preconditioning — O'Leary's optimality argument) while ``k_outer``
    bounds the number of iterations that perform global dot products;
    their ratio is the communication-avoidance factor of CPPCG.
    """
    if not 0 < tolerance < 1:
        raise ConfigurationError(f"tolerance must be in (0,1), got {tolerance}")
    kappa_cg = bounds.condition_number
    eps_m = chebyshev_epsilon(inner_steps, bounds)
    kappa_pcg = (1.0 + eps_m) / (1.0 - eps_m) if eps_m < 1.0 else np.inf
    log_term = np.log(2.0 / tolerance)
    k_total = 0.5 * np.sqrt(kappa_cg) * log_term
    k_outer = 0.5 * np.sqrt(kappa_pcg) * log_term
    reduction = k_total / k_outer if k_outer > 0 else np.inf
    return IterationBounds(kappa_cg=kappa_cg, kappa_pcg=kappa_pcg,
                           k_total=k_total, k_outer=k_outer,
                           dot_reduction=reduction)
