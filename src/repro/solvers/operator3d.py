"""Distributed matrix-free 7-point operator.

The 3D counterpart of :class:`repro.solvers.operator.StencilOperator2D`,
with the same method surface — which is the whole point: the CG, Chebyshev
and CPPCG implementations in this package are dimension-agnostic (they
only touch ``new_field``/``apply``/``apply_noexchange``/``dots``/
``region``), so every 2D solver — including the matrix powers kernel —
runs unchanged on decomposed 3D problems through this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.comm.base import Communicator
from repro.mesh.decomposition3d import Tile3D
from repro.mesh.field3d import Field3D
from repro.mesh.halo3d import HaloExchanger3D
from repro.utils.errors import ConfigurationError
from repro.utils.events import EventLog


def embed_global_3d(local: np.ndarray, global_array: np.ndarray,
                    z_off: int, y_off: int, x_off: int) -> None:
    """3D window copy: ``local[p,r,c] = global[p+z_off, r+y_off, c+x_off]``
    wherever in range; out-of-range cells untouched."""
    gd, gh, gw = global_array.shape
    ld, lh, lw = local.shape
    p0 = max(0, -z_off)
    r0 = max(0, -y_off)
    c0 = max(0, -x_off)
    p1 = min(ld, gd - z_off)
    r1 = min(lh, gh - y_off)
    c1 = min(lw, gw - x_off)
    if p1 > p0 and r1 > r0 and c1 > c0:
        local[p0:p1, r0:r1, c0:c1] = global_array[
            p0 + z_off:p1 + z_off, r0 + y_off:r1 + y_off,
            c0 + x_off:c1 + x_off]


@dataclass
class DistributedOperator3D:
    """Rank-local 7-point operator with its communication context.

    ``kx.data[i, k, j]`` couples padded cells ``(i, k, j-1)``/``(i, k, j)``;
    ``ky`` and ``kz`` likewise along y and z.
    """

    kx: Field3D
    ky: Field3D
    kz: Field3D
    comm: Communicator
    exchanger: HaloExchanger3D = None
    events: EventLog = dc_field(default_factory=EventLog)
    #: Kernel backend for the BLAS-1 tail (dot/axpy).  The 7-point stencil
    #: itself stays whole-array NumPy — :mod:`repro.kernels` backends are
    #: 2D-only for the stencil chains (documented scope, docs/kernels.md).
    kernels: object = dc_field(default=None)

    ndim = 3

    def __post_init__(self):
        tiles = {self.kx.tile, self.ky.tile, self.kz.tile}
        halos = {self.kx.halo, self.ky.halo, self.kz.halo}
        if len(tiles) != 1 or len(halos) != 1:
            raise ConfigurationError(
                "kx/ky/kz fields must share tile and halo")
        if self.kernels is None:
            from repro.kernels import DEFAULT_BACKEND, get_backend
            self.kernels = get_backend(DEFAULT_BACKEND)
        elif isinstance(self.kernels, str):
            from repro.kernels import get_backend
            self.kernels = get_backend(self.kernels)
        if self.exchanger is None:
            self.exchanger = HaloExchanger3D(self.comm, events=self.events)
        elif self.exchanger.events is None:
            self.exchanger.events = self.events

    @classmethod
    def from_global_faces(
        cls,
        tile: Tile3D,
        halo: int,
        kx_global: np.ndarray,
        ky_global: np.ndarray,
        kz_global: np.ndarray,
        comm: Communicator,
        events: EventLog | None = None,
    ) -> "DistributedOperator3D":
        """Build the rank-local operator from global face arrays
        (shapes per :func:`repro.physics.conduction.face_coefficients_3d`)."""
        kx = Field3D(tile, halo)
        ky = Field3D(tile, halo)
        kz = Field3D(tile, halo)
        offs = (tile.z0 - halo, tile.y0 - halo, tile.x0 - halo)
        embed_global_3d(kx.data, kx_global, *offs)
        embed_global_3d(ky.data, ky_global, *offs)
        embed_global_3d(kz.data, kz_global, *offs)
        return cls(kx=kx, ky=ky, kz=kz, comm=comm,
                   events=events if events is not None else EventLog())

    # -- geometry --------------------------------------------------------------

    @property
    def tile(self) -> Tile3D:
        return self.kx.tile

    @property
    def halo(self) -> int:
        return self.kx.halo

    def new_field(self) -> Field3D:
        return Field3D(self.tile, self.halo)

    # -- the stencil -------------------------------------------------------------

    def apply_noexchange(self, p: Field3D, out: Field3D, ext: int = 0) -> None:
        """``out = A p`` on the interior grown by ``ext`` (no comm).

        Requires ``p`` valid on extension ``ext + 1``.
        """
        if not 0 <= ext <= self.halo - 1:
            raise ConfigurationError(
                f"stencil extension {ext} must be in [0, halo-1="
                f"{self.halo - 1}]")
        zz, yy, xx = self.kx.region(ext)
        z0, z1, y0, y1, x0, x1 = zz.start, zz.stop, yy.start, yy.stop, \
            xx.start, xx.stop
        pd = p.data
        kxd, kyd, kzd = self.kx.data, self.ky.data, self.kz.data
        c = (slice(z0, z1), slice(y0, y1), slice(x0, x1))
        kx_lo = kxd[c]
        kx_hi = kxd[z0:z1, y0:y1, x0 + 1:x1 + 1]
        ky_lo = kyd[c]
        ky_hi = kyd[z0:z1, y0 + 1:y1 + 1, x0:x1]
        kz_lo = kzd[c]
        kz_hi = kzd[z0 + 1:z1 + 1, y0:y1, x0:x1]
        out.data[c] = (
            (1.0 + kz_hi + kz_lo + ky_hi + ky_lo + kx_hi + kx_lo) * pd[c]
            - kz_hi * pd[z0 + 1:z1 + 1, y0:y1, x0:x1]
            - kz_lo * pd[z0 - 1:z1 - 1, y0:y1, x0:x1]
            - ky_hi * pd[z0:z1, y0 + 1:y1 + 1, x0:x1]
            - ky_lo * pd[z0:z1, y0 - 1:y1 - 1, x0:x1]
            - kx_hi * pd[z0:z1, y0:y1, x0 + 1:x1 + 1]
            - kx_lo * pd[z0:z1, y0:y1, x0 - 1:x1 - 1]
        )
        self.events.record("matvec", None,
                           cells=(z1 - z0) * (y1 - y0) * (x1 - x0))

    def apply(self, p: Field3D, out: Field3D) -> None:
        self.exchanger.exchange(p, depth=1)
        self.apply_noexchange(p, out, ext=0)

    def apply_dot(self, p: Field3D, out: Field3D) -> float:
        """``out = A p``; returns the global ``<p, A p>``.

        Unfused in 3D (apply then dot) but the same one-exchange,
        one-allreduce budget as the 2D fused chain.
        """
        self.apply(p, out)
        return float(self.comm.allreduce(
            self.kernels.dot(p.interior, out.interior)))

    def residual_dot(self, b: Field3D, x: Field3D, out: Field3D) -> float:
        """``out = b - A x``; returns the global ``<out, out>``."""
        self.residual(b, x, out)
        return float(self.comm.allreduce(
            self.kernels.dot(out.interior, out.interior)))

    def with_kernels(self, backend) -> "DistributedOperator3D":
        """This operator with backend ``backend`` for its BLAS-1 tail."""
        from repro.kernels import get_backend
        k = get_backend(backend) if isinstance(backend, str) else backend
        if k.name == self.kernels.name:
            return self
        return DistributedOperator3D(kx=self.kx, ky=self.ky, kz=self.kz,
                                     comm=self.comm,
                                     exchanger=self.exchanger,
                                     events=self.events, kernels=k)

    def diagonal(self) -> np.ndarray:
        zz, yy, xx = self.kx.region(0)
        z0, z1, y0, y1, x0, x1 = zz.start, zz.stop, yy.start, yy.stop, \
            xx.start, xx.stop
        kxd, kyd, kzd = self.kx.data, self.ky.data, self.kz.data
        c = (slice(z0, z1), slice(y0, y1), slice(x0, x1))
        return (1.0
                + kzd[z0 + 1:z1 + 1, y0:y1, x0:x1] + kzd[c]
                + kyd[z0:z1, y0 + 1:y1 + 1, x0:x1] + kyd[c]
                + kxd[z0:z1, y0:y1, x0 + 1:x1 + 1] + kxd[c])

    def diagonal_padded(self) -> np.ndarray:
        kxd, kyd, kzd = self.kx.data, self.ky.data, self.kz.data
        d = np.ones_like(kxd)
        d[:-1, :-1, :-1] = (1.0
                            + kzd[1:, :-1, :-1] + kzd[:-1, :-1, :-1]
                            + kyd[:-1, 1:, :-1] + kyd[:-1, :-1, :-1]
                            + kxd[:-1, :-1, 1:] + kxd[:-1, :-1, :-1])
        return d

    # -- global reductions ----------------------------------------------------------

    def dot(self, a: Field3D, b: Field3D) -> float:
        return float(self.comm.allreduce(
            self.kernels.dot(a.interior, b.interior)))

    def dots(self, pairs) -> tuple[float, ...]:
        local = np.array([self.kernels.dot(a.interior, b.interior)
                          for a, b in pairs])
        out = self.comm.allreduce(local)
        return tuple(float(v) for v in out)

    def norm(self, a: Field3D) -> float:
        return float(np.sqrt(self.dot(a, a)))

    def residual(self, b: Field3D, x: Field3D, out: Field3D) -> None:
        self.apply(x, out)
        np.subtract(b.interior, out.interior, out=out.interior)
