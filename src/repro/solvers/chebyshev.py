"""Chebyshev acceleration: standalone solver and CPPCG preconditioner.

Given eigenvalue bounds ``[lam_min, lam_max]`` of the (preconditioned)
operator, the Chebyshev recurrence (Saad, *Iterative Methods for Sparse
Linear Systems*, Alg. 12.1) drives the residual down with **no dot
products** — per step it needs only one stencil application and (at halo
depth 1) one neighbour halo exchange:

    theta = (lam_max+lam_min)/2,  delta = (lam_max-lam_min)/2,  sigma = theta/delta
    d_0 = M^{-1} r_0 / theta,     rho_0 = 1/sigma
    step j:   z += d;   r -= A d
              rho' = 1/(2 sigma - rho)
              d <- rho' rho d + (2 rho'/delta) M^{-1} r;   rho <- rho'

**Matrix powers kernel** (paper §IV-C2): with ``halo_depth = n > 1`` the
iteration exchanges an ``n``-deep halo once per ``n`` steps and runs each
step on loop bounds extended by ``n-1-s`` cells toward neighbouring ranks
(``s`` = steps since the exchange).  The redundant overlap computation is
recorded through the operator's ``matvec`` cell counts, and the exchange
count drops by the factor ``n`` — exactly the communication/computation
trade the paper evaluates at depths 1/4/8/16.

The block Jacobi preconditioner cannot be combined with matrix powers
(its strip partition would need fresh neighbour values every step —
paper §IV-C2 end); with ``halo_depth == 1`` it is applied per inner step
with a single depth-1 exchange of the direction vector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.mesh.field import Field
from repro.numerics.breakdown import BreakdownGuard
from repro.solvers.cg import cg_solve
from repro.solvers.eigen import EigenBounds, estimate_eigenvalues
from repro.solvers.operator import StencilOperator2D
from repro.solvers.preconditioners import (
    BlockJacobiPreconditioner,
    DiagonalPreconditioner,
    IdentityPreconditioner,
    Preconditioner,
    make_local_preconditioner,
)
from repro.solvers.result import SolveResult
from repro.utils.errors import (
    CommunicationError,
    ConfigurationError,
    stall_error,
)
from repro.utils.validation import check_finite_field, check_positive

if TYPE_CHECKING:
    from repro.resilience.guard import SolverGuard

#: Machine-checked communication budget (see ``repro.analysis``).  The
#: Chebyshev recurrence itself (``ChebyshevIteration.run``) performs **no
#: global reductions** — that is the paper's communication-avoiding
#: property — and one halo exchange per step at depth 1 (amortised to
#: ``1/halo_depth`` by the matrix powers kernel).  The standalone solver
#: additionally pays one allreduce per ``check_interval`` steps for the
#: convergence check, declared as ``allreduces_per_check``.
COMM_CONTRACT = {
    "solver": "chebyshev",
    "halo_exchanges_per_iter": 1,
    "allreduces_per_iter": 0,
    "allreduces_per_check": 1,
    "halo_depth": 1,
    "hot_function": "ChebyshevIteration.run",
}


class ChebyshevIteration:
    """Stateful Chebyshev recurrence advancing a residual field.

    Mutates ``rr`` (the residual) in place and accumulates the solution
    update into ``accum.interior``.  The caller may interleave convergence
    checks between :meth:`run` calls; recurrence state carries across.
    """

    def __init__(
        self,
        op: StencilOperator2D,
        rr: Field,
        accum: Field,
        bounds: EigenBounds,
        halo_depth: int = 1,
        local_precond: Preconditioner | None = None,
    ):
        if not 1 <= halo_depth <= op.halo:
            raise ConfigurationError(
                f"halo_depth {halo_depth} must be in [1, field halo {op.halo}]")
        self.op = op
        self.rr = rr
        self.accum = accum
        self.bounds = bounds
        self.n = halo_depth
        self.M = local_precond if local_precond is not None \
            else IdentityPreconditioner(op)
        if isinstance(self.M, BlockJacobiPreconditioner) and self.n > 1:
            raise ConfigurationError(
                "block Jacobi cannot be combined with matrix powers "
                "(halo_depth > 1): the strip solve needs up-to-date whole "
                "blocks every step (paper §IV-C2)")
        self._pointwise_M = isinstance(
            self.M, (IdentityPreconditioner, DiagonalPreconditioner))
        self.d = op.new_field()
        self.w = op.new_field()
        self.theta = bounds.theta
        self.delta = bounds.delta
        if self.delta <= 0:
            raise ConfigurationError(
                "Chebyshev needs lam_max > lam_min (delta > 0); got equal bounds")
        self.sigma = self.theta / self.delta
        self.rho = 1.0 / self.sigma
        self.steps_done = 0
        self._since_exchange = 0

    # -- preconditioner application on a padded region -----------------------------

    def _precondition(self, src: Field, dst: Field, region: tuple,
                      scale: float) -> None:
        """``dst[region] = scale * M^{-1} src[region]``.

        ``region`` is the tuple of padded-array slices returned by
        ``Field.region`` (two slices in 2D, three in 3D).
        """
        if isinstance(self.M, IdentityPreconditioner):
            np.multiply(src.data[region], scale, out=dst.data[region])
        elif isinstance(self.M, DiagonalPreconditioner):
            self.M.apply_region(src, dst, region)
            dst.data[region] *= scale
        else:
            # interior-only preconditioner (block Jacobi); n == 1 enforced.
            self.M.apply(src, dst)
            dst.interior[...] *= scale

    def run(self, steps: int) -> None:
        """Advance ``steps`` Chebyshev steps."""
        if steps <= 0:
            return
        op, n = self.op, self.n
        extended = self._pointwise_M and n >= 1
        from repro.observe.trace import tracer_of
        tracer = tracer_of(op)
        # Named "cheby_step", not "iteration": under CPPCG these nest
        # inside the outer CG's precond span and must not inflate its
        # iteration count.
        for _ in range(steps):
            with tracer.span("cheby_step", n):
                if extended:
                    self._step_extended()
                else:
                    self._step_interior()
                self.steps_done += 1

    # -- matrix-powers (extended bounds) stepping ----------------------------------

    def _step_extended(self) -> None:
        op, n = self.op, self.n
        s = self._since_exchange
        if self.steps_done == 0:
            # d_0 derives pointwise from the freshly exchanged residual, so
            # the first block needs no exchange of d itself.
            op.exchanger.exchange(self.rr, depth=n)
            region = self.rr.region(n)
            self._precondition(self.rr, self.d, region, 1.0 / self.theta)
            self._since_exchange = s = 0
        elif s == 0:
            # At depth 1 the residual is only ever read on the interior, so
            # only the direction vector needs fresh halos (as in TeaLeaf).
            fields = [self.rr, self.d] if n > 1 else [self.d]
            op.exchanger.exchange(fields, depth=n)
        ext = n - 1 - s
        region = self.rr.region(ext)
        op.apply_noexchange(self.d, self.w, ext=ext)
        op.kernels.axpy(self.accum.interior, 1.0, self.d.interior)
        op.kernels.axpy(self.rr.data[region], -1.0, self.w.data[region])
        rho_new = 1.0 / (2.0 * self.sigma - self.rho)
        # d <- rho' rho d + (2 rho'/delta) M^{-1} r  on the extended region
        self.d.data[region] *= rho_new * self.rho
        self._precondition(self.rr, self.w, region, 2.0 * rho_new / self.delta)
        self.d.data[region] += self.w.data[region]
        self.rho = rho_new
        self._since_exchange = (s + 1) % n

    # -- interior-only stepping (block Jacobi inner preconditioner) -----------------

    def _step_interior(self) -> None:
        op = self.op
        if self.steps_done == 0:
            self.M.apply(self.rr, self.d)
            self.d.interior[...] /= self.theta
        op.apply(self.d, self.w)  # depth-1 exchange of d inside
        op.kernels.axpy(self.accum.interior, 1.0, self.d.interior)
        op.kernels.axpy(self.rr.interior, -1.0, self.w.interior)
        rho_new = 1.0 / (2.0 * self.sigma - self.rho)
        self.M.apply(self.rr, self.w)
        self.d.interior[...] = (rho_new * self.rho * self.d.interior
                                + (2.0 * rho_new / self.delta) * self.w.interior)
        self.rho = rho_new


class ChebyshevPreconditioner(Preconditioner):
    """The "C" of CPPCG: ``z ~= A^{-1} r`` via ``m`` Chebyshev steps.

    Applying this inside PCG yields the shifted/scaled Chebyshev polynomial
    preconditioner of Ashby, Manteuffel & Otto (Eq. 2): the induced
    ``B(lambda) lambda = 1 - T_m(xi(lambda))/T_m(xi(0))`` is SPD for any SPD ``A`` whose
    spectrum lies within the supplied bounds, so outer CG remains valid.
    """

    name = "chebyshev"
    communication_free = False  # needs halo exchanges (still no dot products)

    def __init__(
        self,
        op: StencilOperator2D,
        bounds: EigenBounds,
        steps: int = 10,
        halo_depth: int = 1,
        inner_preconditioner: str = "none",
    ):
        check_positive("steps", steps)
        self.op = op
        self.bounds = bounds
        self.steps = steps
        self.halo_depth = halo_depth
        self.inner_kind = inner_preconditioner
        self._inner = make_local_preconditioner(op, inner_preconditioner)
        self._rr = op.new_field()
        self.applications = 0

    @property
    def inner_steps(self) -> int:
        return self.steps

    def apply(self, r: Field, z: Field) -> None:
        self._rr.data[...] = r.data
        z.data.fill(0.0)
        it = ChebyshevIteration(self.op, self._rr, z, self.bounds,
                                halo_depth=self.halo_depth,
                                local_precond=self._inner)
        it.run(self.steps)
        self.applications += 1


def chebyshev_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    eps: float = 1e-10,
    max_iters: int = 20_000,
    warmup_iters: int = 25,
    eigen_safety: tuple[float, float] = (0.95, 1.05),
    check_interval: int = 10,
    preconditioner: str = "none",
    halo_depth: int = 1,
    bounds: EigenBounds | None = None,
    raise_on_stall: bool = False,
    guard: "SolverGuard | None" = None,
    degrade: bool = False,
    stagnation_window: int = 0,
    cancel=None,
) -> SolveResult:
    """Standalone Chebyshev solver (TeaLeaf ``tl_use_chebyshev``).

    Runs ``warmup_iters`` of (P)CG to estimate the spectrum (unless
    ``bounds`` is supplied), then iterates the Chebyshev recurrence with a
    residual-norm check (one allreduce) every ``check_interval`` steps —
    between checks there is **no global communication at all**.

    ``raise_on_stall`` raises :class:`ConvergenceError` (solver name,
    final relative residual, iteration count) when the budget runs out
    unconverged.  ``guard`` enables checkpoint/rollback of the recurrence
    state at each convergence check (see
    :class:`~repro.resilience.guard.SolverGuard`).  ``degrade`` lets a
    matrix-powers run (``halo_depth > 1``) whose deep exchanges keep
    failing restart the recurrence at depth 1 instead of aborting; the
    result then carries ``degraded = True``.  ``stagnation_window``
    (counted in residual *checks*, i.e. ``check_interval`` steps each)
    enables the shared breakdown guard's stagnation detection.
    """
    check_positive("check_interval", check_interval)
    check_finite_field("b", b)
    check_finite_field("x0", x0)
    breakdown = BreakdownGuard("chebyshev",
                               stagnation_window=stagnation_window)
    from repro.observe.trace import tracer_of
    tracer = tracer_of(op)
    local_M = make_local_preconditioner(op, preconditioner)
    warmup = cg_solve(op, b, x0, eps=eps, max_iters=warmup_iters,
                      preconditioner=local_M, solver_name="chebyshev",
                      guard=guard, cancel=cancel)
    if warmup.converged:
        warmup.warmup_iterations = warmup.iterations
        warmup.iterations = 0
        return warmup
    if bounds is None:
        bounds = estimate_eigenvalues(warmup.alphas, warmup.betas,
                                      safety=eigen_safety)

    x = warmup.x
    rr = op.new_field()
    op.residual(b, x, out=rr)
    it = ChebyshevIteration(op, rr, x, bounds, halo_depth=halo_depth,
                            local_precond=local_M)
    threshold = eps * warmup.initial_residual_norm
    history = list(warmup.history)
    res_norm = history[-1]
    converged = False
    degraded = False
    steps_offset = 0  # recurrence steps retired by abandoned deep runs
    while steps_offset + it.steps_done < max_iters:
        # Cancellation boundary: between residual checks, right after the
        # previous chunk's convergence allreduce synchronised every rank,
        # so all ranks stop at the same chunk boundary with no exchange
        # in flight (see repro.service.cancel).
        if cancel is not None:
            cancel.check(steps_offset + it.steps_done)
        if guard is not None:
            guard.begin(steps_offset + it.steps_done)
            if guard.due(steps_offset + it.steps_done):
                with tracer.span("checkpoint", "chebyshev"):
                    guard.save(steps_offset + it.steps_done,
                               fields={"x": x, "rr": rr, "d": it.d},
                               scalars={"rho": it.rho,
                                        "steps": it.steps_done,
                                        "since": it._since_exchange,
                                        "hist": len(history)})
        try:
            it.run(min(check_interval,
                       max_iters - steps_offset - it.steps_done))
        except CommunicationError:
            if not (degrade and it.n > 1):
                raise
            # The matrix powers kernel's deep exchanges keep failing
            # (retries exhausted): restart the recurrence at depth 1 from
            # the current iterate — Chebyshev restarts are legal, only
            # the communication amortisation is lost.
            steps_offset += it.steps_done
            op.residual(b, x, out=rr)
            it = ChebyshevIteration(op, rr, x, bounds, halo_depth=1,
                                    local_precond=local_M)
            degraded = True
            if guard is not None:
                # Re-anchor the checkpoint on the new recurrence state:
                # the previous snapshot referenced the abandoned one.
                with tracer.span("checkpoint", "chebyshev"):
                    guard.save(steps_offset + it.steps_done,
                               fields={"x": x, "rr": rr, "d": it.d},
                               scalars={"rho": it.rho,
                                        "steps": it.steps_done,
                                        "since": it._since_exchange,
                                        "hist": len(history)})
            continue
        res_norm = float(np.sqrt(op.dot(rr, rr)))
        history.append(res_norm)
        if guard is not None and not guard.healthy(res_norm):
            with tracer.span("recover", "chebyshev"):
                snap = guard.rollback(f"residual norm {res_norm:.3e}")
                it.rho = snap.scalars["rho"]
                it.steps_done = snap.scalars["steps"]
                it._since_exchange = snap.scalars["since"]
                del history[snap.scalars["hist"]:]
                res_norm = history[-1]
                breakdown.reset()
            continue
        # Shared breakdown guard: a non-finite residual means the
        # eigenvalue bounds exclude part of the spectrum (lam_max
        # underestimated?) and the recurrence diverged.
        breakdown.residual(res_norm, steps_offset + it.steps_done)
        if res_norm <= threshold:
            converged = True
            break

    iterations = steps_offset + it.steps_done
    if not converged and raise_on_stall:
        raise stall_error("chebyshev", iterations, res_norm,
                          warmup.initial_residual_norm, eps)

    result = SolveResult(
        x=x,
        solver="chebyshev",
        converged=converged,
        iterations=iterations,
        warmup_iterations=warmup.iterations,
        residual_norm=res_norm,
        initial_residual_norm=warmup.initial_residual_norm,
        history=history,
        eigen_bounds=(bounds.lam_min, bounds.lam_max),
        events=op.events,
    )
    result.degraded = degraded
    if degraded:
        result.degraded_reason = (f"matrix-powers halo depth fell back "
                                  f"{halo_depth} -> 1 after repeated "
                                  "communication failures")
    return result
