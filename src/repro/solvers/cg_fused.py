"""Single-reduction CG (Chronopoulos & Gear).

The paper's §VII lists this restructuring as planned work: "The Krylov
solver can be restructured so that the multiple dot products are combined
into a single communication step and the communications can be overlapped
with the application of the preconditioner."

This variant computes all three inner products of an iteration —
``gamma = <r, u>``, ``delta = <w, u>`` and the convergence check ``<r, r>`` — in
**one** fused allreduce, halving CG's global synchronisation count at the
price of one extra vector recurrence (``s = A p`` is maintained instead of
recomputed).  In exact arithmetic the iterates coincide with classical CG;
in floating point they drift slightly (the classic stability trade of
communication-reduced Krylov methods), which the tests quantify.

Per iteration: 1 matvec (one depth-1 halo exchange), 1 allreduce,
vs. classical CG's 1 matvec + 2 allreduces.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.field import Field
from repro.solvers.operator import StencilOperator2D
from repro.solvers.preconditioners import (
    IdentityPreconditioner,
    Preconditioner,
)
from repro.solvers.result import SolveResult
from repro.numerics.breakdown import BreakdownError
from repro.utils.validation import check_finite_field, check_positive

#: Machine-checked communication budget (see ``repro.analysis``): the
#: whole point of this variant is the single fused allreduce — adding a
#: second one silently reverts it to classical CG.
COMM_CONTRACT = {
    "solver": "cg_fused",
    "halo_exchanges_per_iter": 1,
    "allreduces_per_iter": 1,
    "halo_depth": 1,
}


def cg_fused_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    eps: float = 1e-10,
    max_iters: int = 10_000,
    preconditioner: Preconditioner | None = None,
    reference_norm: float | None = None,
    cancel=None,
) -> SolveResult:
    """Solve ``A x = b`` with one global reduction per iteration."""
    check_positive("eps", eps)
    check_positive("max_iters", max_iters)
    check_finite_field("b", b)
    check_finite_field("x0", x0)
    M = preconditioner if preconditioner is not None \
        else IdentityPreconditioner(op)

    x = x0.copy() if x0 is not None else op.new_field()
    r = op.new_field()
    op.residual(b, x, out=r)

    u = op.new_field()   # u = M^-1 r
    w = op.new_field()   # w = A u
    M.apply(r, u)
    op.apply(u, w)
    gamma, delta, rr = op.dots([(r, u), (w, u), (r, r)])

    r0_norm = float(np.sqrt(rr))
    reference = r0_norm if reference_norm is None else reference_norm
    threshold = eps * reference
    history = [r0_norm]
    alphas: list[float] = []
    betas: list[float] = []

    if r0_norm <= threshold:
        return SolveResult(x=x, solver="cg_fused", converged=True,
                           iterations=0, residual_norm=r0_norm,
                           initial_residual_norm=r0_norm, history=history,
                           events=op.events)

    if not (np.isfinite(delta) and delta > 0):
        raise BreakdownError(
            f"fused CG breakdown at setup: <Au, u> = {delta:.3e} <= 0",
            solver="cg_fused", iteration=0, quantity="pAp", value=delta)
    alpha = gamma / delta
    beta = 0.0
    p = u.copy()
    s = w.copy()   # s = A p, maintained by recurrence

    converged = False
    iterations = 0
    res_norm = r0_norm

    while iterations < max_iters:
        # Cancellation boundary: before the iteration's matvec exchange
        # and fused reduction (see repro.service.cancel).
        if cancel is not None:
            cancel.check(iterations)
        op.kernels.axpy(x.interior, alpha, p.interior)
        op.kernels.axpy(r.interior, -alpha, s.interior)
        M.apply(r, u)
        op.apply(u, w)
        gamma_new, delta, rr = op.dots([(r, u), (w, u), (r, r)])
        iterations += 1
        res_norm = float(np.sqrt(rr))
        history.append(res_norm)
        alphas.append(float(alpha))
        if res_norm <= threshold:
            converged = True
            betas.append(float(gamma_new / gamma))
            break
        beta = gamma_new / gamma
        betas.append(float(beta))
        denom = delta - beta * gamma_new / alpha
        if not (np.isfinite(denom) and denom > 0):
            raise BreakdownError(
                f"fused CG breakdown: alpha denominator {denom:.3e} <= 0 "
                "(non-SPD operator or accumulated round-off)",
                solver="cg_fused", iteration=iterations,
                quantity="alpha_denominator", value=denom)
        alpha = gamma_new / denom
        gamma = gamma_new
        p.interior[...] = u.interior + beta * p.interior
        s.interior[...] = w.interior + beta * s.interior

    result = SolveResult(
        x=x,
        solver="cg_fused",
        converged=converged,
        iterations=iterations,
        residual_norm=res_norm,
        initial_residual_norm=r0_norm,
        history=history,
        events=op.events,
    )
    result.alphas = alphas
    result.betas = betas
    return result
