"""Deflated CG (Frank & Vuik) — the paper's route beyond CPPCG.

§VII: "Using deflation techniques [27] we will be able to represent these
low energy modes in a series of nested lower dimensional sub-spaces."
Reference [27] is Frank & Vuik, *On the construction of deflation-based
preconditioners* — subdomain-constant deflation vectors, implemented here.

The deflation space ``W`` holds one indicator vector per rectangular
subdomain block (a ``qx x qy`` partition of the global mesh, independent of
the rank decomposition).  With ``E = W^T A W`` (a tiny dense SPD matrix,
factorised once and replicated) and the projector ``P = I − A W E^{-1} W^T``,
deflated CG runs ordinary (P)CG on ``P A`` and finishes with the correction
``x = W E^{-1} W^T b + P^T x̂``.  The projector removes the lowest "energy"
modes — exactly the near-constant-per-subdomain modes that dominate the
diffusion operator's small eigenvalues — so the effective condition number
drops to ``lambda_max / lambda_{k+1}``.

Communication: each projector application adds **one** small allreduce (the
``k`` local subdomain sums) — the coarse solve itself is replicated local
work, so deflation composes with the communication-avoiding design rather
than fighting it.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.mesh.field import Field
from repro.solvers.operator import StencilOperator2D
from repro.solvers.preconditioners import (
    IdentityPreconditioner,
    Preconditioner,
    make_local_preconditioner,
)
from repro.solvers.result import SolveResult
from repro.utils.errors import ConfigurationError, ConvergenceError
from repro.utils.validation import check_finite_field, check_positive

#: Machine-checked communication budget (see ``repro.analysis``): CG's two
#: fused allreduces plus the one k-sized allreduce hidden in each projector
#: application (``DeflationSpace.wt``) — the coarse solve itself is
#: replicated local work.
COMM_CONTRACT = {
    "solver": "dcg",
    "halo_exchanges_per_iter": 1,
    "allreduces_per_iter": 3,
    "halo_depth": 1,
    "hot_function": "deflated_cg_solve",
}


class DeflationSpace:
    """Subdomain-constant deflation vectors and the coarse operator.

    Parameters
    ----------
    op:
        The (rank-local) stencil operator.
    grid_shape:
        Global mesh shape ``(ny, nx)``.
    blocks:
        ``(qx, qy)`` subdomain partition; ``k = qx*qy`` deflation vectors.
    """

    def __init__(self, op: StencilOperator2D,
                 grid_shape: tuple[int, int],
                 blocks: tuple[int, int] = (4, 4)):
        qx, qy = blocks
        check_positive("qx", qx)
        check_positive("qy", qy)
        ny_g, nx_g = grid_shape
        if qx > nx_g or qy > ny_g:
            raise ConfigurationError(
                f"deflation blocks {blocks} exceed mesh {grid_shape}")
        self.op = op
        self.k = qx * qy
        tile = op.tile

        # Global block id of every local interior cell.
        ys = np.arange(tile.y0, tile.y1)
        xs = np.arange(tile.x0, tile.x1)
        by = np.minimum(ys * qy // ny_g, qy - 1)
        bx = np.minimum(xs * qx // nx_g, qx - 1)
        self.block_id = (by[:, None] * qx + bx[None, :])  # (ny_loc, nx_loc)

        # AW columns restricted to this rank: apply A to each indicator.
        # Only blocks touching this tile (or its neighbours) are nonzero,
        # but k is small so dense local storage is fine.
        self._aw = np.zeros((self.k, tile.ny, tile.nx))
        ind = op.new_field()
        out = op.new_field()
        for j in range(self.k):
            ind.data.fill(0.0)
            ind.interior[...] = (self.block_id == j)
            op.apply(ind, out)  # halo exchange inside handles spill
            self._aw[j] = out.interior

        # E = W^T A W: local partials, summed once globally.
        local_E = np.zeros((self.k, self.k))
        for i in range(self.k):
            mask = self.block_id == i
            if mask.any():
                local_E[i] = self._aw[:, mask].sum(axis=1)
        E = op.comm.allreduce(local_E)
        E = 0.5 * (E + E.T)  # symmetrise round-off
        try:
            self._E_factor = sla.cho_factor(E)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - guard
            raise ConfigurationError(
                f"deflation coarse matrix not SPD: {exc}")

    # -- coarse-space algebra ------------------------------------------------

    def wt(self, v: Field) -> np.ndarray:
        """``W^T v``: per-subdomain sums (one k-sized allreduce)."""
        local = np.bincount(self.block_id.ravel(),
                            weights=v.interior.ravel(),
                            minlength=self.k)
        return np.asarray(self.op.comm.allreduce(local))

    def awt(self, v: Field) -> np.ndarray:
        """``(A W)^T v`` (one k-sized allreduce)."""
        local = self._aw.reshape(self.k, -1) @ v.interior.ravel()
        return np.asarray(self.op.comm.allreduce(local))

    def coarse_solve(self, rhs: np.ndarray) -> np.ndarray:
        """``E^{-1} rhs`` (replicated tiny dense solve)."""
        return sla.cho_solve(self._E_factor, rhs)

    def project(self, v: Field) -> None:
        """In place ``v <- P v = v − A W E^{-1} W^T v``."""
        lam = self.coarse_solve(self.wt(v))
        v.interior -= np.tensordot(lam, self._aw, axes=(0, 0))

    def project_transpose(self, v: Field) -> None:
        """In place ``v <- P^T v = v − W E^{-1} (A W)^T v``."""
        lam = self.coarse_solve(self.awt(v))
        v.interior -= lam[self.block_id]

    def coarse_correction(self, b: Field, out: Field) -> None:
        """``out <- W E^{-1} W^T b`` (the ``Q b`` term)."""
        lam = self.coarse_solve(self.wt(b))
        out.interior[...] = lam[self.block_id]


def deflated_cg_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    grid_shape: tuple[int, int] | None = None,
    blocks: tuple[int, int] = (4, 4),
    eps: float = 1e-10,
    max_iters: int = 10_000,
    preconditioner: str | Preconditioner = "none",
) -> SolveResult:
    """Solve ``A x = b`` with deflated (preconditioned) CG.

    ``grid_shape`` defaults to the operator tile's global grid extent
    inferred from the decomposition (``px * nx`` style); pass it explicitly
    for non-uniform tilings.
    """
    check_positive("eps", eps)
    check_finite_field("b", b)
    check_finite_field("x0", x0)
    if grid_shape is None:
        t = op.tile
        # Recover the global shape from this tile's slice arithmetic: the
        # decomposition is contiguous, so the grid ends where the last
        # tiles end.  All ranks compute identical values.
        ny_g = int(op.comm.allreduce(t.y1 if t.up is None else 0, op="max"))
        nx_g = int(op.comm.allreduce(t.x1 if t.right is None else 0, op="max"))
        grid_shape = (ny_g, nx_g)
    space = DeflationSpace(op, grid_shape, blocks)
    M = (make_local_preconditioner(op, preconditioner)
         if isinstance(preconditioner, str) else preconditioner)
    identity = isinstance(M, IdentityPreconditioner)

    x = x0.copy() if x0 is not None else op.new_field()
    r = op.new_field()
    w = op.new_field()
    op.residual(b, x, out=r)
    space.project(r)  # rhat = P r

    if identity:
        z = r
        (rz,) = op.dots([(r, r)])
        rr = rz
    else:
        z = op.new_field()
        M.apply(r, z)
        rz, rr = op.dots([(r, z), (r, r)])
    p = z.copy()

    r0_norm = float(np.sqrt(rr))
    threshold = eps * r0_norm
    history = [r0_norm]
    converged = r0_norm <= threshold
    iterations = 0
    res_norm = r0_norm

    while not converged and iterations < max_iters:
        op.apply(p, w)
        space.project(w)  # w = P A p
        (pw,) = op.dots([(p, w)])
        if pw <= 0:
            raise ConvergenceError(
                f"deflated CG breakdown: <p, PAp> = {pw:.3e} <= 0")
        alpha = rz / pw
        x.interior += alpha * p.interior
        r.interior -= alpha * w.interior
        if identity:
            (rz_new,) = op.dots([(r, r)])
            rr = rz_new
        else:
            M.apply(r, z)
            rz_new, rr = op.dots([(r, z), (r, r)])
        iterations += 1
        res_norm = float(np.sqrt(rr))
        history.append(res_norm)
        if res_norm <= threshold:
            converged = True
            break
        p.interior[...] = z.interior + (rz_new / rz) * p.interior
        rz = rz_new

    # x_final = Q b + P^T x_hat
    space.project_transpose(x)
    qb = op.new_field()
    space.coarse_correction(b, qb)
    x.interior += qb.interior

    result = SolveResult(
        x=x, solver="dcg", converged=converged, iterations=iterations,
        residual_norm=res_norm, initial_residual_norm=r0_norm,
        history=history, events=op.events)
    result.deflation_dim = space.k
    return result
