"""(Preconditioned) conjugate gradient solver.

Communication per iteration (the quantities the paper's scaling analysis is
built on):

- one depth-1 halo exchange (inside the matvec), and
- two global reductions: ``pw = <p, Ap>`` and the fused ``(<r,z>, <r,r>)``
  pair — the fusion of the convergence-check and direction dot products into
  a single allreduce is the "multiple dot products combined into a single
  communication step" restructuring the paper mentions (§VII).

The CG coefficients ``alpha_i``/``beta_i`` are recorded so the Lanczos
eigenvalue estimation (:mod:`repro.solvers.eigen`) can consume them — this
is how CPPCG obtains its spectrum bounds (§III-D).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.mesh.field import Field
from repro.numerics.breakdown import BreakdownGuard
from repro.numerics.replacement import ResidualReplacer
from repro.solvers.operator import StencilOperator2D
from repro.solvers.preconditioners import (
    IdentityPreconditioner,
    Preconditioner,
)
from repro.solvers.result import SolveResult
from repro.utils.errors import (
    ConfigurationError,
    ConvergenceError,
    stall_error,
)
from repro.utils.events import recovery_scope, replacement_scope
from repro.utils.validation import check_finite_field, check_positive

if TYPE_CHECKING:
    from repro.resilience.guard import SolverGuard, Snapshot

#: Machine-checked communication budget per CG iteration (enforced by
#: ``python -m repro.analysis``): one depth-1 halo exchange inside the
#: matvec and two fused allreduces — ``<p, Ap>`` and the combined
#: ``(<r,z>, <r,r>)`` pair.  The scaling figures assume exactly this.
COMM_CONTRACT = {
    "solver": "cg",
    "halo_exchanges_per_iter": 1,
    "allreduces_per_iter": 2,
    "halo_depth": 1,
}


def _rewind(snap: "Snapshot", alphas: list, betas: list, history: list):
    """Truncate the recurrence records back to a guard checkpoint.

    Field data has already been restored by ``guard.rollback``; this
    drops the coefficients/history recorded since the checkpoint and
    returns the loop scalars to reinstate.
    """
    steps = snap.scalars["steps"]
    del alphas[steps:], betas[steps:], history[steps + 1:]
    return (snap.iteration, snap.scalars["rz"], snap.scalars["rr"],
            snap.scalars["pa"], history[-1])


def cg_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    eps: float = 1e-10,
    max_iters: int = 10_000,
    preconditioner: Preconditioner | None = None,
    reference_norm: float | None = None,
    solver_name: str = "cg",
    raise_on_stall: bool = False,
    guard: "SolverGuard | None" = None,
    abft_interval: int = 0,
    abft_tolerance: float = 1e-6,
    replace_interval: int = 0,
    replace_adaptive: bool = False,
    replace_tolerance: float = 0.0,
    stagnation_window: int = 0,
    cancel=None,
    resume_state: dict | None = None,
) -> SolveResult:
    """Solve ``A x = b`` with (preconditioned) CG.

    Parameters
    ----------
    op, b, x0:
        Operator, right-hand side, and optional initial guess (zero default).
    eps:
        Relative tolerance: converged when ``||r|| <= eps * reference``.
    max_iters:
        Outer-iteration budget.
    preconditioner:
        ``z = M^{-1} r`` provider; identity when omitted.  Pass a
        :class:`~repro.solvers.chebyshev.ChebyshevPreconditioner` to get
        CPPCG's outer loop.
    reference_norm:
        Norm the tolerance is relative to; defaults to the *initial residual
        norm* of this call.  PPCG's second phase passes the phase-1 value so
        the overall stopping criterion is unchanged by the switch-over.
    raise_on_stall:
        Raise :class:`ConvergenceError` instead of returning an unconverged
        result when the budget is exhausted.
    guard:
        Optional :class:`~repro.resilience.guard.SolverGuard`: checkpoint
        the live state (``x``/``r``/``p`` plus the recurrence scalars)
        every ``guard.interval`` iterations, screen each residual norm
        for NaN/Inf and divergence, and roll back to the last checkpoint
        instead of raising when an iteration is unhealthy (bounded by the
        guard's rollback budget).  With ``guard=None`` behaviour is
        byte-identical to the unguarded solver.
    abft_interval:
        When positive, every this many iterations the *true* residual
        ``b - A x`` is recomputed and its norm compared against the
        recurrence's ``||r||`` — the ABFT-style replay that catches
        corruption checksums cannot see (a consistently corrupted
        recurrence whose own norm still looks healthy).  The replay's
        halo exchange and reduction run under the recovery scope, so
        contract counts see first-attempt traffic only.
    abft_tolerance:
        Relative drift budget for the replay check: a deviation beyond
        ``abft_tolerance * reference`` triggers a guard rollback (or a
        :class:`ConvergenceError` without a guard).
    replace_interval / replace_adaptive / replace_tolerance:
        Residual replacement (:mod:`repro.numerics.replacement`): every
        ``replace_interval`` iterations recompute the true residual
        ``b - A x`` and, when the recurrence has drifted beyond the
        rounding-error bound, splice it in and restart the search
        direction.  ``replace_adaptive`` shrinks the cadence using live
        Lanczos condition estimates; ``replace_tolerance`` overrides the
        derived drift bound.  The check's halo exchange and reduction run
        under the replacement event scope, so first-attempt
        ``COMM_CONTRACT`` counts are unchanged.  0 disables.
    stagnation_window:
        Breakdown-guard stagnation window (0 disables).
    cancel:
        Optional :class:`~repro.service.cancel.CancelToken`-like object
        whose ``check(iteration)`` is called at every iteration boundary
        *before* the iteration issues any communication, so a fired
        token stops all ranks at the same boundary with no in-flight
        messages.  An inert token is bit-transparent.
    resume_state:
        Exact mid-solve resume from a durable guard snapshot:
        ``{"iteration": k, "arrays": {"x","r","p"}, "scalars":
        {"rz","rr","pa","reference"}}`` (the shape a
        :class:`~repro.resilience.checkpoint.SolverCheckpointStore`
        shard holds).  The entire pre-loop phase is skipped and the
        recurrence continues from iteration ``k`` with the restored
        fields and scalars — exactly a guard rollback, but into a fresh
        process.  Because snapshots are taken at iteration boundaries,
        the resumed trajectory is **bit-identical** to the
        uninterrupted run from ``k`` on, provided nothing perturbs the
        replay: no fault injection and ``replace_interval=0`` (the
        replacer's condition estimates depend on the truncated
        coefficient history).  ``x0`` and ``reference_norm`` are
        ignored when resuming.

    Returns
    -------
    SolveResult
        With ``alphas``/``betas`` attached as attributes for eigenvalue
        estimation.
    """
    check_positive("eps", eps)
    check_positive("max_iters", max_iters)
    check_positive("abft_interval", abft_interval, allow_zero=True)
    check_positive("abft_tolerance", abft_tolerance)
    check_positive("replace_interval", replace_interval, allow_zero=True)
    check_finite_field("b", b)
    check_finite_field("x0", x0)
    breakdown = BreakdownGuard(solver_name,
                               stagnation_window=stagnation_window)
    replacer = None
    if replace_interval:
        replacer = ResidualReplacer(replace_interval, dtype=str(op.dtype),
                                    adaptive=replace_adaptive,
                                    tolerance=replace_tolerance)
    M = preconditioner if preconditioner is not None else IdentityPreconditioner(op)
    identity = isinstance(M, IdentityPreconditioner)
    from repro.observe.trace import tracer_of
    tracer = tracer_of(op)

    w = op.new_field()
    alphas: list[float] = []
    betas: list[float] = []

    if resume_state is not None:
        if replace_interval:
            raise ConfigurationError(
                "exact CG resume is incompatible with residual "
                "replacement (replace_interval must be 0)")
        arrays = resume_state["arrays"]
        scalars = resume_state["scalars"]
        x, r, p = op.new_field(), op.new_field(), op.new_field()
        x.data[...] = arrays["x"]
        r.data[...] = arrays["r"]
        p.data[...] = arrays["p"]
        # z is recomputed from r before its first use in the loop body;
        # for the identity preconditioner it must alias r as usual.
        z = r if identity else op.new_field()
        rz = float(scalars["rz"])
        rr = float(scalars["rr"])
        precond_applies = int(scalars["pa"])
        reference = float(scalars["reference"])
        iterations = int(resume_state["iteration"])
        threshold = eps * reference
        res_norm = float(np.sqrt(rr))
        r0_norm = reference
        history = [res_norm]
        converged = res_norm <= threshold
    else:
        x = x0.copy() if x0 is not None else op.new_field()
        r = op.new_field()
        op.residual(b, x, out=r)

        if identity:
            z = r
            (rz,) = op.dots([(r, r)])
            rr = rz
        else:
            z = op.new_field()
            with tracer.span("precond", solver_name):
                M.apply(r, z)
            rz, rr = op.dots([(r, z), (r, r)])
        p = z.copy()

        r0_norm = float(np.sqrt(rr))
        reference = r0_norm if reference_norm is None else reference_norm
        threshold = eps * reference
        history = [r0_norm]

        converged = r0_norm <= threshold
        iterations = 0
        # the pre-loop z = M^-1 r counts toward inner-iteration accounting
        precond_applies = 0 if identity else 1
        res_norm = r0_norm

    while not converged and iterations < max_iters:
        # Cancellation boundary: checked before the iteration issues any
        # communication, so every rank stops at the same boundary with
        # nothing in flight (see repro.service.cancel).
        if cancel is not None:
            cancel.check(iterations)
        # The span covers the full loop body, so ``iteration`` spans are
        # strict parents of the halo/allreduce/precond spans within —
        # `continue`/`break`/raise all close it cleanly.
        with tracer.span("iteration", solver_name):
            if guard is not None:
                guard.begin(iterations)
                if guard.due(iterations):
                    with tracer.span("checkpoint", solver_name):
                        guard.save(iterations,
                                   fields={"x": x, "r": r, "p": p},
                                   scalars={"rz": rz, "rr": rr,
                                            "pa": precond_applies,
                                            "steps": len(alphas),
                                            "reference": reference})
            # Fused matvec + direction dot: same exchange/allreduce budget
            # as the apply + dots pair, one streaming pass on fused
            # backends.
            pw = op.apply_dot(p, w)
            if guard is not None and not (np.isfinite(pw) and pw > 0.0):
                # Corrupted reduction or perturbed direction vector: restore
                # the last checkpoint and replay (the fault stream has moved
                # on, so the replayed iterations see clean communication).
                with tracer.span("recover", solver_name):
                    snap = guard.rollback(f"<p, Ap> = {pw:.3e}")
                    iterations, rz, rr, precond_applies, res_norm = _rewind(
                        snap, alphas, betas, history)
                    breakdown.reset()
                continue
            # Curvature guard: finite *and* positive (an unguarded
            # ``pw <= 0`` test is False for NaN, which used to let a
            # poisoned reduction silently NaN the whole recurrence).
            breakdown.curvature(pw, iterations)
            alpha = rz / pw
            op.kernels.axpy(x.interior, alpha, p.interior)
            op.kernels.axpy(r.interior, -alpha, w.interior)
            if identity:
                (rz_new,) = op.dots([(r, r)])
                rr = rz_new
            else:
                with tracer.span("precond", solver_name):
                    M.apply(r, z)
                precond_applies += 1
                rz_new, rr = op.dots([(r, z), (r, r)])
            beta = rz_new / rz
            alphas.append(float(alpha))
            betas.append(float(beta))
            iterations += 1
            res_norm = float(np.sqrt(rr))
            history.append(res_norm)
            if guard is not None and not guard.healthy(res_norm):
                with tracer.span("recover", solver_name):
                    snap = guard.rollback(f"residual norm {res_norm:.3e}")
                    iterations, rz, rr, precond_applies, res_norm = _rewind(
                        snap, alphas, betas, history)
                    breakdown.reset()
                continue
            breakdown.residual(res_norm, iterations)
            if abft_interval and iterations % abft_interval == 0:
                # ABFT residual replay: recompute the *true* residual and
                # check the recurrence hasn't silently drifted away from it
                # (w is free scratch here; its next use overwrites it).
                # Its extra halo exchange + reduction run under the
                # recovery scope so contract counts stay first-attempt.
                with tracer.span("recover", "abft_replay"), \
                        recovery_scope(op.events,
                                       getattr(op.comm, "events", None)):
                    op.residual(b, x, out=w)
                    (true_rr,) = op.dots([(w, w)])
                true_norm = float(np.sqrt(true_rr))
                if abs(true_norm - res_norm) > abft_tolerance * reference:
                    reason = (f"ABFT replay: true residual {true_norm:.6e} "
                              f"vs recurrence {res_norm:.6e} at iteration "
                              f"{iterations}")
                    if guard is not None:
                        with tracer.span("recover", solver_name):
                            snap = guard.rollback(reason)
                            (iterations, rz, rr, precond_applies,
                             res_norm) = _rewind(snap, alphas, betas,
                                                 history)
                        continue
                    raise ConvergenceError(
                        f"silent corruption detected — {reason}")
            if replacer is not None and (replacer.due(iterations)
                                         or res_norm <= threshold):
                # Residual replacement (van der Vorst-Ye): recompute the
                # true residual; when the recurrence has drifted past the
                # rounding-error bound, splice it in and restart the
                # search direction (beta = 0).  Also forced whenever the
                # recurrence claims convergence, so the tolerance test
                # below is always taken against a freshly verified
                # residual (false convergence is the signature failure of
                # a drifted recurrence).  Decisions come from
                # globally-reduced scalars, so every rank takes the same
                # branch; the extra exchange and reductions run under the
                # replacement scope to keep first-attempt contract counts
                # exact.
                replacer.update_condition(alphas, betas)
                with tracer.span("replace", solver_name), \
                        replacement_scope(op.events,
                                          getattr(op.comm, "events", None)):
                    op.residual(b, x, out=w)
                    (true_rr,) = op.dots([(w, w)])
                    true_norm = float(np.sqrt(true_rr))
                    if replacer.observe(abs(true_norm - res_norm),
                                        max(true_norm, res_norm),
                                        iterations):
                        r.interior[...] = w.interior
                        if identity:
                            rz_new = rr = true_rr
                        else:
                            M.apply(r, z)
                            precond_applies += 1
                            rz_new, rr = op.dots([(r, z), (r, r)])
                        beta = 0.0
                        res_norm = float(np.sqrt(rr))
                        history[-1] = res_norm
                        breakdown.reset()
            if res_norm <= threshold:
                converged = True
                break
            if guard is not None and not np.isfinite(beta):
                # A corrupted (rz, rr) reduction poisons beta before it
                # poisons the residual norm: roll back now rather than let
                # NaNs propagate into p and surface one matvec later.
                with tracer.span("recover", solver_name):
                    snap = guard.rollback(f"beta = {beta!r}")
                    iterations, rz, rr, precond_applies, res_norm = _rewind(
                        snap, alphas, betas, history)
                    breakdown.reset()
                continue
            breakdown.coefficient("beta", beta, iterations)
            p.interior[...] = z.interior + beta * p.interior
            rz = rz_new

    if not converged and raise_on_stall:
        raise stall_error(solver_name, iterations, res_norm, reference, eps)

    result = SolveResult(
        x=x,
        solver=solver_name,
        converged=converged,
        iterations=iterations,
        inner_iterations=precond_applies * M.inner_steps,
        residual_norm=res_norm,
        initial_residual_norm=r0_norm,
        history=history,
        events=op.events,
    )
    # CG recurrence coefficients for Lanczos eigenvalue estimation.
    result.alphas = alphas
    result.betas = betas
    # Residual-replacement accounting for harnesses/stability sweeps.
    result.replacement = replacer.stats if replacer is not None else None
    return result
