"""Local (communication-free) preconditioners.

Two of TeaLeaf's preconditioners live here:

- **diagonal Jacobi** (``tl_preconditioner_type=jac_diag``): ``z = r / diag(A)``;
- **block Jacobi** (``jac_block``, paper §IV-C1): the mesh is split into
  4x1 strips along y; each strip's 4x4 block of ``A`` is tridiagonal (the
  in-strip ``Ky`` couplings) and is solved directly with the Thomas
  algorithm, vectorised across all strips at once.  Strips are truncated to
  length 3/2/1 at domain and rank boundaries.  No communication is ever
  needed, which is why the paper pairs it with communication-avoiding CG —
  but it cannot be combined with matrix-powers extended bounds (the strip
  partition would shift every inner step), which the driver enforces.

The Chebyshev polynomial preconditioner (the "C" of CPPCG) is in
:mod:`repro.solvers.chebyshev` since it shares machinery with the
standalone Chebyshev solver.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.mesh.field import Field
from repro.solvers.operator import StencilOperator2D
from repro.utils.errors import ConfigurationError

#: Strip length used by TeaLeaf's block Jacobi.
BLOCK_STRIP = 4


class Preconditioner(ABC):
    """``z = M^{-1} r`` on the interior; must be SPD to keep PCG valid."""

    #: True when applying M needs no communication (all of these do not).
    communication_free: bool = True
    name: str = "preconditioner"

    @abstractmethod
    def apply(self, r: Field, z: Field) -> None:
        """Compute ``z = M^{-1} r`` over the interior."""

    #: Inner iteration count contributed per application (Chebyshev only).
    inner_steps: int = 0


class IdentityPreconditioner(Preconditioner):
    """M = I: plain CG."""

    name = "none"

    def __init__(self, op: StencilOperator2D | None = None):
        self.op = op

    def apply(self, r: Field, z: Field) -> None:
        z.interior[...] = r.interior


class DiagonalPreconditioner(Preconditioner):
    """M = diag(A): pointwise scaling, vectorises trivially.

    Also usable on matrix-powers extended bounds via :meth:`apply_region`
    because the operator diagonal is available over the whole padded
    array; works for any operator dimensionality (the operator provides
    ``diagonal_padded()``).
    """

    name = "diagonal"

    def __init__(self, op):
        self.op = op
        self.inv_diag_padded = 1.0 / op.diagonal_padded()

    def apply(self, r: Field, z: Field) -> None:
        sl = r.region(0)
        np.multiply(r.data[sl], self.inv_diag_padded[sl], out=z.data[sl])

    def apply_region(self, r: Field, z: Field, region: tuple) -> None:
        """Extended-bounds application for the matrix powers kernel."""
        np.multiply(r.data[region], self.inv_diag_padded[region],
                    out=z.data[region])


class BlockJacobiPreconditioner(Preconditioner):
    """TeaLeaf's 4x1-strip block Jacobi (paper §IV-C1).

    Setup factorises every strip's tridiagonal block once (the forward
    elimination multipliers of the Thomas algorithm); each application then
    costs two short vectorised sweeps over ``(n_strips, nx)`` arrays.
    """

    name = "block_jacobi"

    def __init__(self, op: StencilOperator2D, strip: int = BLOCK_STRIP):
        if strip < 1:
            raise ConfigurationError(f"strip length must be >= 1, got {strip}")
        if getattr(op, "ndim", 2) != 2:
            raise ConfigurationError(
                "block Jacobi strips are defined for the 2D operator only; "
                "use the diagonal preconditioner in 3D")
        self.op = op
        self.strip = strip
        t, h = op.tile, op.halo
        diag = op.diagonal()                       # (ny, nx)
        # In-strip coupling between interior rows k and k+1 is -Ky[k+1].
        coupling = -op.ky.data[h + 1:h + t.ny, h:h + t.nx]   # (ny-1, nx)
        self._groups = []
        n_full, rem = divmod(t.ny, strip)
        if n_full:
            self._groups.append(self._factorise(
                rows0=0, n_strips=n_full, length=strip,
                diag=diag, coupling=coupling))
        if rem:
            self._groups.append(self._factorise(
                rows0=n_full * strip, n_strips=1, length=rem,
                diag=diag, coupling=coupling))

    @staticmethod
    def _factorise(rows0: int, n_strips: int, length: int,
                   diag: np.ndarray, coupling: np.ndarray) -> dict:
        """Thomas forward-elimination factors for a group of equal strips."""
        nx = diag.shape[1]
        strip_rows = rows0 + (np.arange(n_strips) * length)[:, None] \
            + np.arange(length)[None, :]
        b = diag[strip_rows.ravel(), :].reshape(n_strips, length, nx)
        if length > 1:
            cpl_rows = strip_rows[:, :-1]
            a = coupling[cpl_rows.ravel(), :].reshape(n_strips, length - 1, nx)
        else:
            a = np.zeros((n_strips, 0, nx))
        inv_denom = np.empty_like(b)
        cp = np.empty_like(a)
        inv_denom[:, 0] = 1.0 / b[:, 0]
        for i in range(1, length):
            cp[:, i - 1] = a[:, i - 1] * inv_denom[:, i - 1]
            inv_denom[:, i] = 1.0 / (b[:, i] - a[:, i - 1] * cp[:, i - 1])
        return {"rows0": rows0, "n": n_strips, "L": length,
                "a": a, "cp": cp, "inv_denom": inv_denom}

    def apply(self, r: Field, z: Field) -> None:
        rin = r.interior
        zout = z.interior
        nx = rin.shape[1]
        for g in self._groups:
            n, L = g["n"], g["L"]
            rows = slice(g["rows0"], g["rows0"] + n * L)
            rr = rin[rows].reshape(n, L, nx)
            a, cp, inv_denom = g["a"], g["cp"], g["inv_denom"]
            dp = np.empty_like(rr)
            dp[:, 0] = rr[:, 0] * inv_denom[:, 0]
            for i in range(1, L):
                dp[:, i] = (rr[:, i] - a[:, i - 1] * dp[:, i - 1]) * inv_denom[:, i]
            x = np.empty_like(rr)
            x[:, L - 1] = dp[:, L - 1]
            for i in range(L - 2, -1, -1):
                x[:, i] = dp[:, i] - cp[:, i] * x[:, i + 1]
            zout[rows] = x.reshape(n * L, nx)


def make_local_preconditioner(op: StencilOperator2D, kind: str) -> Preconditioner:
    """Factory for the local preconditioners by deck/option name."""
    if kind in (None, "none"):
        return IdentityPreconditioner(op)
    if kind == "diagonal":
        return DiagonalPreconditioner(op)
    if kind == "block_jacobi":
        return BlockJacobiPreconditioner(op)
    raise ConfigurationError(
        f"unknown preconditioner {kind!r}; expected none|diagonal|block_jacobi")
