"""3D (7-point) diffusion operator and serial solvers.

TeaLeaf "solves the linear heat conduction equation ... in two and three
dimensions via five and seven point finite difference stencils" (§II); the
paper's evaluation is 2D ("the 3D results are similar"), so the 3D path is
provided serially: the matrix-free 7-point operator, CG, Jacobi and the
ground-truth sparse assembly, all on plain ``(nz, ny, nx)`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.numerics.breakdown import BreakdownError
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive


@dataclass
class StencilOperator3D:
    """Matrix-free 7-point operator ``A = I + D`` on global arrays.

    Face arrays follow :func:`repro.physics.conduction.face_coefficients_3d`:
    ``kx``: ``(nz, ny, nx+1)``, ``ky``: ``(nz, ny+1, nx)``,
    ``kz``: ``(nz+1, ny, nx)``; boundary faces zero (insulated).
    """

    kx: np.ndarray
    ky: np.ndarray
    kz: np.ndarray

    def __post_init__(self):
        nz, ny, nxp1 = self.kx.shape
        nx = nxp1 - 1
        if self.ky.shape != (nz, ny + 1, nx) or self.kz.shape != (nz + 1, ny, nx):
            raise ConfigurationError(
                f"inconsistent face shapes {self.kx.shape} / "
                f"{self.ky.shape} / {self.kz.shape}")
        self.shape = (nz, ny, nx)

    @property
    def n_cells(self) -> int:
        nz, ny, nx = self.shape
        return nz * ny * nx

    def diagonal(self) -> np.ndarray:
        return (1.0
                + self.kx[:, :, :-1] + self.kx[:, :, 1:]
                + self.ky[:, :-1, :] + self.ky[:, 1:, :]
                + self.kz[:-1, :, :] + self.kz[1:, :, :])

    def apply(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``out = A u``."""
        if u.shape != self.shape:
            raise ConfigurationError(
                f"field shape {u.shape} != operator shape {self.shape}")
        if out is None:
            out = np.empty_like(u)
        kx, ky, kz = self.kx, self.ky, self.kz
        np.multiply(self.diagonal(), u, out=out)
        out[:, :, 1:] -= kx[:, :, 1:-1] * u[:, :, :-1]
        out[:, :, :-1] -= kx[:, :, 1:-1] * u[:, :, 1:]
        out[:, 1:, :] -= ky[:, 1:-1, :] * u[:, :-1, :]
        out[:, :-1, :] -= ky[:, 1:-1, :] * u[:, 1:, :]
        out[1:, :, :] -= kz[1:-1, :, :] * u[:-1, :, :]
        out[:-1, :, :] -= kz[1:-1, :, :] * u[1:, :, :]
        return out

    def to_sparse(self) -> sp.csr_matrix:
        """Explicit sparse assembly (tests/ground truth)."""
        nz, ny, nx = self.shape
        n = self.n_cells

        def idx(i, k, j):
            return (i * ny + k) * nx + j

        diag = self.diagonal()
        rows, cols, vals = [], [], []
        for i in range(nz):
            for k in range(ny):
                for j in range(nx):
                    r = idx(i, k, j)
                    rows.append(r); cols.append(r); vals.append(diag[i, k, j])
                    if j > 0 and self.kx[i, k, j]:
                        rows.append(r); cols.append(idx(i, k, j - 1))
                        vals.append(-self.kx[i, k, j])
                    if j < nx - 1 and self.kx[i, k, j + 1]:
                        rows.append(r); cols.append(idx(i, k, j + 1))
                        vals.append(-self.kx[i, k, j + 1])
                    if k > 0 and self.ky[i, k, j]:
                        rows.append(r); cols.append(idx(i, k - 1, j))
                        vals.append(-self.ky[i, k, j])
                    if k < ny - 1 and self.ky[i, k + 1, j]:
                        rows.append(r); cols.append(idx(i, k + 1, j))
                        vals.append(-self.ky[i, k + 1, j])
                    if i > 0 and self.kz[i, k, j]:
                        rows.append(r); cols.append(idx(i - 1, k, j))
                        vals.append(-self.kz[i, k, j])
                    if i < nz - 1 and self.kz[i + 1, k, j]:
                        rows.append(r); cols.append(idx(i + 1, k, j))
                        vals.append(-self.kz[i + 1, k, j])
        return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def cg_solve_3d(op: StencilOperator3D, b: np.ndarray,
                x0: np.ndarray | None = None, *,
                eps: float = 1e-10, max_iters: int = 10_000
                ) -> tuple[np.ndarray, int, float]:
    """Serial CG for the 3D operator.

    Returns ``(x, iterations, relative_residual)``.
    """
    check_positive("eps", eps)
    check_positive("max_iters", max_iters)
    x = x0.copy() if x0 is not None else np.zeros_like(b)
    r = b - op.apply(x)
    p = r.copy()
    rr = float(np.vdot(r, r).real)
    r0 = np.sqrt(rr)
    if r0 == 0.0:
        return x, 0, 0.0
    threshold = (eps * r0) ** 2
    w = np.empty_like(b)
    iterations = 0
    while rr > threshold and iterations < max_iters:
        op.apply(p, out=w)
        pw = float(np.vdot(p, w).real)
        if not (np.isfinite(pw) and pw > 0):
            raise BreakdownError(f"3D CG breakdown: <p,Ap>={pw:.3e}",
                                 solver="cg3d", iteration=iterations,
                                 quantity="pAp", value=pw)
        alpha = rr / pw
        x += alpha * p
        r -= alpha * w
        rr_new = float(np.vdot(r, r).real)
        p *= rr_new / rr
        p += r
        rr = rr_new
        iterations += 1
    return x, iterations, float(np.sqrt(rr) / r0)


def jacobi_solve_3d(op: StencilOperator3D, b: np.ndarray,
                    x0: np.ndarray | None = None, *,
                    eps: float = 1e-8, max_iters: int = 100_000
                    ) -> tuple[np.ndarray, int, float]:
    """Serial Jacobi for the 3D operator (correction form)."""
    check_positive("eps", eps)
    x = x0.copy() if x0 is not None else np.zeros_like(b)
    inv_diag = 1.0 / op.diagonal()
    r = b - op.apply(x)
    r0 = float(np.linalg.norm(r))
    if r0 == 0.0:
        return x, 0, 0.0
    iterations = 0
    res = r0
    while res > eps * r0 and iterations < max_iters:
        x += inv_diag * r
        r = b - op.apply(x)
        res = float(np.linalg.norm(r))
        iterations += 1
    return x, iterations, res / r0
