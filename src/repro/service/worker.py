"""Worker groups: SPMD solver backends of the service engine.

A :class:`WorkerGroup` owns one ThreadComm SPMD world configuration (a
``group_size``-rank solve slot) plus its :class:`CircuitBreaker` and
busy-until bookkeeping.  :meth:`WorkerGroup.execute` runs one request's
solve through the canonical resilient stack
(:func:`~repro.resilience.runner.run_resilient`) with the request's
fault plan, cancel token and cached setup, and classifies the raised
exception — the engine turns the classification into a terminal
:class:`~repro.service.requests.RequestOutcome` or a re-dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.faults import FaultPlan
from repro.resilience.runner import ResilienceReport, run_resilient
from repro.service.breaker import CircuitBreaker
from repro.solvers.options import SolverOptions
from repro.utils.errors import (
    Cancelled,
    CommunicationError,
    ConfigurationError,
    ConvergenceError,
    DeadlineExceeded,
    WorkerStuck,
)


@dataclass
class ExecutionResult:
    """Classified outcome of one worker execution attempt."""

    #: "ok" | "deadline_exceeded" | "cancelled" | "stuck" | "retryable"
    #: | "fatal"
    kind: str
    report: ResilienceReport | None = None
    error: BaseException | None = None
    iterations: int = 0

    @property
    def error_class(self) -> str:
        return type(self.error).__name__ if self.error is not None else ""


def _iteration_of(exc: BaseException) -> int:
    """The iteration a Cancelled/DeadlineExceeded stopped at.

    :func:`~repro.comm.spmd.launch_spmd` re-wraps a rank's error as
    ``type(exc)(f"[rank r] ...")``, which loses the ``iteration``
    attribute to its default — the original error survives as
    ``__cause__``, so look there too.
    """
    for err in (exc, exc.__cause__):
        iteration = getattr(err, "iteration", -1)
        if iteration is not None and iteration >= 0:
            return iteration
    return -1


class WorkerGroup:
    """One solve slot: a ``group_size``-rank SPMD world per execution."""

    def __init__(self, wid: int, group_size: int = 1,
                 max_attempts: int = 5,
                 breaker: CircuitBreaker | None = None):
        self.wid = wid
        self.group_size = group_size
        self.max_attempts = max_attempts
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: virtual time until which this worker is occupied
        self.busy_until = 0.0
        self.executed = 0

    @property
    def idle(self) -> bool:
        return self.busy_until <= 0.0

    def execute(self, options: SolverOptions, n: int,
                plan: FaultPlan | None = None,
                cancel=None, setup=None,
                checkpoint_dir=None,
                resume: bool | str = False) -> ExecutionResult:
        """Run one solve and classify how it ended.

        Classification drives the engine's terminal-status guarantee:

        - ``ok`` — converged (possibly internally degraded) result;
        - ``deadline_exceeded`` / ``cancelled`` — the cancel token fired
          at an iteration boundary; every rank stopped coherently;
        - ``stuck`` — the supervisor declared the dispatch dead
          (:class:`~repro.utils.errors.WorkerStuck`): re-dispatch
          elsewhere, and count it against the breaker;
        - ``retryable`` — comm-level failure (crash storm, exhausted
          retry budget, recv timeout): worth re-dispatching elsewhere,
          and what the breaker counts;
        - ``fatal`` — structured non-retryable failure (poison options,
          breakdown, stalled convergence): re-dispatching cannot help.

        ``checkpoint_dir`` makes guard snapshots durable (per-rank
        solver shards); ``resume`` restores from them first — the
        crash-recovery engine passes ``resume="exact"`` to continue the
        interrupted CG recurrence bit-identically (see
        :func:`~repro.resilience.runner.run_resilient`).
        """
        self.executed += 1
        run_plan = plan if plan is not None else FaultPlan.disabled()
        try:
            report = run_resilient(options, run_plan, n=n,
                                   size=self.group_size,
                                   max_attempts=self.max_attempts,
                                   cancel=cancel, setup=setup,
                                   checkpoint_dir=checkpoint_dir,
                                   resume=resume)
        except DeadlineExceeded as exc:
            return ExecutionResult("deadline_exceeded", error=exc,
                                   iterations=max(0, _iteration_of(exc)))
        except WorkerStuck as exc:
            # Before Cancelled: WorkerStuck subclasses it (same coherent
            # iteration-boundary abort, different disposition).
            return ExecutionResult("stuck", error=exc,
                                   iterations=max(0, _iteration_of(exc)))
        except Cancelled as exc:
            return ExecutionResult("cancelled", error=exc,
                                   iterations=max(0, _iteration_of(exc)))
        except CommunicationError as exc:
            return ExecutionResult("retryable", error=exc)
        except (ConfigurationError, ConvergenceError, ArithmeticError,
                ValueError) as exc:
            # BreakdownError subclasses ArithmeticError; a poison deck's
            # options error and a genuinely stalled solve both land here.
            return ExecutionResult("fatal", error=exc)
        if not report.converged:
            return ExecutionResult(
                "fatal",
                report=report,
                error=ConvergenceError(
                    f"{options.solver} exhausted {options.max_iters} "
                    f"iterations (residual {report.relative_residual:.3e})"),
                iterations=report.iterations)
        return ExecutionResult("ok", report=report,
                               iterations=report.iterations)
