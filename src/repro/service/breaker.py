"""Per-worker circuit breaker: closed → open → half-open → closed.

Shields the queue from a worker group that keeps crashing (a fault storm
concentrated on one group, a wedged runtime): after
``failure_threshold`` consecutive retryable failures the breaker opens
and the dispatcher routes around the worker for ``cooldown_s`` virtual
seconds; the first dispatch after the cooldown is the *probe*
(half-open) — success re-closes the breaker, failure re-opens it for
another cooldown.  Driven entirely by caller-supplied virtual
timestamps, so breaker trajectories are deterministic.
"""

from __future__ import annotations

from repro.utils.validation import check_positive

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker on a virtual clock."""

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 5.0):
        check_positive("failure_threshold", failure_threshold)
        check_positive("cooldown_s", cooldown_s)
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False
        #: lifetime statistics
        self.opened = 0
        self.reclosed = 0

    def allow(self, now: float) -> bool:
        """May the dispatcher hand this worker a request at ``now``?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at >= self.cooldown_s:
                self.state = HALF_OPEN
                self._probing = False
            else:
                return False
        # Half-open: exactly one probe in flight at a time.
        if self._probing:
            return False
        return True

    def on_dispatch(self) -> None:
        """Record that a request was handed over (marks the probe)."""
        if self.state == HALF_OPEN:
            self._probing = True

    def record_success(self) -> None:
        self._consecutive = 0
        if self.state != CLOSED:
            self.state = CLOSED
            self.reclosed += 1
        self._probing = False

    def record_failure(self, now: float) -> None:
        self._consecutive += 1
        self._probing = False
        if self.state == HALF_OPEN or \
                self._consecutive >= self.failure_threshold:
            self.state = OPEN
            self._opened_at = now
            self._consecutive = 0
            self.opened += 1
