"""Per-worker circuit breaker: closed → open → half-open → closed.

Shields the queue from a worker group that keeps crashing (a fault storm
concentrated on one group, a wedged runtime): after
``failure_threshold`` consecutive retryable failures the breaker opens
and the dispatcher routes around the worker for ``cooldown_s`` virtual
seconds; the first dispatch after the cooldown is the *probe*
(half-open) — success re-closes the breaker, failure re-opens it for
another cooldown.  Driven entirely by caller-supplied virtual
timestamps, so breaker trajectories are deterministic.

Thread safety: the virtual-clock engine is single-threaded, but the
asyncio front-end dispatches from a thread pool, where two concurrent
requests could historically both pass the half-open gate between one
task's ``allow`` and its ``on_dispatch`` (the classic check-then-act
race, letting two probes hammer a recovering worker).  All state
transitions now happen under one lock, and :meth:`on_dispatch` is the
*atomic* admit-and-claim: it both answers "may I dispatch?" and, in the
same critical section, claims the single half-open probe slot.
"""

from __future__ import annotations

import threading

from repro.utils.validation import check_positive

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker on a virtual clock."""

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 5.0):
        check_positive("failure_threshold", failure_threshold)
        check_positive("cooldown_s", cooldown_s)
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False
        self._lock = threading.Lock()
        #: lifetime statistics
        self.opened = 0
        self.reclosed = 0

    def _admit(self, now: float | None) -> bool:
        """Lock-held core of ``allow``/``on_dispatch``.

        ``now=None`` skips the cooldown transition (the caller already
        ran ``allow(now)`` this step); a timestamp additionally moves an
        expired OPEN breaker to HALF_OPEN before deciding.
        """
        if self.state == OPEN:
            if now is not None and now - self._opened_at >= self.cooldown_s:
                self.state = HALF_OPEN
                self._probing = False
            else:
                return False
        if self.state == HALF_OPEN and self._probing:
            return False
        return True

    def allow(self, now: float) -> bool:
        """May the dispatcher hand this worker a request at ``now``?

        Pure query apart from the OPEN → HALF_OPEN cooldown transition;
        it does **not** claim the probe slot.  Concurrent dispatchers
        must gate on :meth:`on_dispatch`, whose answer is atomic with
        the claim.
        """
        with self._lock:
            return self._admit(now)

    def on_dispatch(self, now: float | None = None) -> bool:
        """Atomically admit a dispatch and claim the half-open probe.

        Returns ``False`` when the dispatch must not proceed (breaker
        open, or another thread already holds the probe slot).  On
        ``True`` in the half-open state, the caller now owns the single
        probe; :meth:`record_success`/:meth:`record_failure` releases
        it.  The legacy no-argument call after a winning ``allow(now)``
        remains valid — ``now=None`` merely skips re-checking the
        cooldown clock.
        """
        with self._lock:
            if not self._admit(now):
                return False
            if self.state == HALF_OPEN:
                self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            if self.state != CLOSED:
                self.state = CLOSED
                self.reclosed += 1
            self._probing = False

    def record_failure(self, now: float) -> None:
        with self._lock:
            self._consecutive += 1
            self._probing = False
            if self.state == HALF_OPEN or \
                    self._consecutive >= self.failure_threshold:
                self.state = OPEN
                self._opened_at = now
                self._consecutive = 0
                self.opened += 1
