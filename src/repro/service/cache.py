"""LRU cache of expensive solve setup artifacts.

Chebyshev/CPPCG spend their warm-up budget estimating eigenvalue bounds
and the cg family refactorises its block-Jacobi preconditioner on every
solve — both are pure functions of (mesh, coefficients, solver options),
so a service replaying similar decks can reuse them.  The cache stores
:class:`~repro.solvers.driver.SolveSetup` values under caller-built
keys and guards every hit with a content fingerprint taken at insert
time: a mismatch (bit-rot, an aliasing caller that mutated the cached
arrays) counts as *corruption*, invalidates the entry and reports a
miss — a corrupt setup silently injected into a solve would poison every
request behind it.

Metrics (hits / misses / evictions / corruptions) are plain counters
mirrored into an optional
:class:`~repro.observe.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict

from repro.utils.validation import check_positive


def fingerprint(obj) -> int:
    """CRC32 over the numeric content of a setup artifact.

    Walks floats/ints, tuples/lists, numpy arrays and plain-attribute
    objects (one level of ``__dict__``), so it covers
    :class:`~repro.solvers.eigen.EigenBounds` and the factorised
    block-Jacobi preconditioners without either class knowing about the
    cache.
    """
    crc = 0
    for chunk in _walk(obj, depth=0):
        crc = zlib.crc32(chunk, crc)
    return crc


def _walk(obj, depth: int):
    if depth > 4 or obj is None:
        return
    if isinstance(obj, bool):
        yield b"\x01" if obj else b"\x00"
    elif isinstance(obj, int):
        yield struct.pack("<q", obj)
    elif isinstance(obj, float):
        yield struct.pack("<d", obj)
    elif isinstance(obj, str):
        yield obj.encode()
    elif isinstance(obj, (tuple, list)):
        for item in obj:
            yield from _walk(item, depth + 1)
    elif hasattr(obj, "tobytes"):        # numpy arrays
        yield obj.tobytes()
    elif hasattr(obj, "__dict__"):
        for name in sorted(vars(obj)):
            yield name.encode()
            yield from _walk(vars(obj)[name], depth + 1)
    elif hasattr(obj, "__slots__"):
        for name in sorted(obj.__slots__):
            yield name.encode()
            yield from _walk(getattr(obj, name, None), depth + 1)


class SetupCache:
    """Bounded LRU of ``key -> SolveSetup`` with corruption-safe hits."""

    def __init__(self, max_entries: int = 32, metrics=None):
        check_positive("max_entries", max_entries)
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corruptions = 0
        self._metrics = metrics

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"service.cache.{name}").inc()

    def get(self, key):
        """The cached setup for ``key``, or ``None`` (miss/corrupt)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("miss")
            return None
        setup, crc = entry
        if fingerprint(setup) != crc:
            # Corrupt entry: invalidate rather than serve — a poisoned
            # preconditioner/bounds would fail every downstream solve.
            del self._entries[key]
            self.corruptions += 1
            self.misses += 1
            self._count("corruption")
            self._count("miss")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._count("hit")
        return setup

    def put(self, key, setup) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        self._entries[key] = (setup, fingerprint(setup))
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("eviction")

    def invalidate(self, key) -> bool:
        """Drop ``key`` if present; returns whether it existed."""
        return self._entries.pop(key, None) is not None

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "corruptions": self.corruptions,
                "entries": len(self._entries)}
