"""Per-tenant admission quotas: deterministic token buckets.

A :class:`TokenBucket` refills continuously at ``rate`` tokens per
(virtual) second up to ``burst``; each admitted request spends one
token.  All arithmetic is plain float math on the caller-supplied
timestamps — no wall clock — so admission decisions are a pure function
of the request arrival sequence and identical between same-seed runs.
"""

from __future__ import annotations

from repro.utils.validation import check_positive


class TokenBucket:
    """Continuous-refill token bucket.

    Parameters
    ----------
    rate:
        Tokens added per virtual second.
    burst:
        Bucket capacity (also the initial fill): the largest admission
        burst a cold tenant gets.
    """

    def __init__(self, rate: float, burst: float):
        check_positive("rate", rate)
        check_positive("burst", burst)
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self._last = 0.0
        #: admission statistics
        self.granted = 0
        self.rejected = 0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens at virtual time ``now`` if available."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            self.granted += 1
            return True
        self.rejected += 1
        return False

    def available(self, now: float) -> float:
        """Current fill level (refilled to ``now``) without spending."""
        self._refill(now)
        return self.tokens
